"""Timing-engine throughput: legacy per-command loop vs compiled stream.

Measures commands/sec of ``TimingEngine.simulate`` (the ground-truth
per-command loop) against ``TimingEngine.simulate_stream`` (the SoA
compiled-stream loop) on fixed NTT command programs, plus the one-time
stream compile cost and the end-to-end functional ``run_ntt`` speedup of
the stream-routed driver over the legacy per-command bank — and merges
the measurements into ``BENCH_kernels.json`` at the repo root.

Non-gating when run directly —

    PYTHONPATH=src python benchmarks/bench_timing_engine.py

and a CI smoke target (reduced size) asserting the stream engine is
bit-identical to — and not slower than — the legacy loop:

    PYTHONPATH=src python -m pytest benchmarks/bench_timing_engine.py -s
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

from bench_backend_speedup import _best_of, merge_sections

from repro.arith import NttParams, bit_reverse_permute, find_ntt_prime
from repro.dram import (
    HBM2E_ARCH,
    HBM2E_TIMING,
    TimingEngine,
    cached_stream,
    clear_stream_cache,
    compile_stream,
)
from repro.pim.bank_pim import PimBank
from repro.pim.params import PimParams
from repro.sim.driver import NttPimDriver, SimConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_kernels.json"


def run(ns=(1024, 4096), repeats: int = 5,
        out_path: Path = DEFAULT_OUT) -> dict:
    section = {}
    compiler = {}
    for n in ns:
        q = find_ntt_prime(n, 32)
        params = NttParams(n, q)
        driver = NttPimDriver()
        commands = driver.map_commands(params)
        engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH,
                              compute=driver.config.pim.compute_timing())

        # Cold compile = full IR pipeline every call (compile_stream
        # never caches); warm = structural stream-cache hit.
        compile_s = _best_of(lambda: compile_stream(commands, HBM2E_ARCH),
                             repeats)
        stream = compile_stream(commands, HBM2E_ARCH)
        clear_stream_cache()
        warm_s = _best_of(
            lambda: cached_stream(commands, HBM2E_ARCH, key=("bench", n)),
            repeats)
        compiler[str(n)] = {
            "commands": len(commands),
            "cold_compile_s": compile_s,
            "cold_us_per_cmd": compile_s / len(commands) * 1e6,
            "warm_hit_s": warm_s,
        }

        legacy_s = _best_of(lambda: engine.simulate(commands), repeats)
        stream_s = _best_of(lambda: engine.simulate_stream(stream), repeats)

        # End-to-end functional execution: stream-fused bank vs the
        # legacy per-command bank on the same program and data.
        rng = random.Random(n)
        data = bit_reverse_permute([rng.randrange(q) for _ in range(n)])

        def run_bank(use_stream: bool):
            bank = PimBank(driver.config.arch, driver.config.pim)
            bank.set_parameters(q)
            bank.load_polynomial(0, list(data))
            if use_stream:
                bank.run_stream(stream)
            else:
                bank.run(commands)

        bank_legacy_s = _best_of(lambda: run_bank(False), max(repeats // 2, 2))
        bank_stream_s = _best_of(lambda: run_bank(True), max(repeats // 2, 2))

        section[str(n)] = {
            "commands": len(commands),
            "compile_s": compile_s,
            "engine_legacy_s": legacy_s,
            "engine_stream_s": stream_s,
            "engine_legacy_cmds_per_s": len(commands) / legacy_s,
            "engine_stream_cmds_per_s": len(commands) / stream_s,
            "engine_speedup": legacy_s / stream_s,
            "bank_legacy_s": bank_legacy_s,
            "bank_stream_s": bank_stream_s,
            "bank_speedup": bank_legacy_s / bank_stream_s,
        }
    compiler["nb1"] = _bench_nb1(repeats)
    results = {"timing_engine": section, "compiler": compiler}
    merge_sections(out_path, results)
    return results


def _bench_nb1(repeats: int, n: int = 256) -> dict:
    """Nb=1 µ-op programs: the lane-renaming pass must fuse them, and
    the fused run must beat the per-command fallback (the pre-compiler
    behavior, reproduced by toggling the ``lane_fuse`` pass off)."""
    q = find_ntt_prime(n, 32)
    config = SimConfig(pim=PimParams(nb_buffers=1))
    commands = NttPimDriver(config).map_commands(NttParams(n, q))
    fused = compile_stream(commands, HBM2E_ARCH)
    fallback = compile_stream(commands, HBM2E_ARCH,
                              passes={"rename", "group", "pool"})
    assert fused.plan is not None and fused.plan.mode == "lane"
    assert fallback.plan is None
    rng = random.Random(n)
    data = bit_reverse_permute([rng.randrange(q) for _ in range(n)])

    def run_bank(stream):
        bank = PimBank(config.arch, config.pim)
        bank.set_parameters(q)
        bank.load_polynomial(0, list(data))
        bank.run_stream(stream)

    fused_s = _best_of(lambda: run_bank(fused), repeats)
    fallback_s = _best_of(lambda: run_bank(fallback), repeats)
    return {
        "n": n,
        "commands": len(commands),
        "fused_s": fused_s,
        "fallback_s": fallback_s,
        "fused_speedup": fallback_s / fused_s,
    }


def _format(results: dict) -> str:
    lines = ["timing engine: legacy per-command loop vs compiled stream:"]
    for n, entry in results["timing_engine"].items():
        lines.append(
            f"  N={n:>5s}  {entry['commands']:>6d} cmds  "
            f"engine {entry['engine_legacy_cmds_per_s'] / 1e6:5.2f} -> "
            f"{entry['engine_stream_cmds_per_s'] / 1e6:5.2f} Mcmd/s "
            f"({entry['engine_speedup']:4.1f}x)  "
            f"bank {entry['bank_legacy_s'] * 1e3:7.2f} -> "
            f"{entry['bank_stream_s'] * 1e3:6.2f} ms "
            f"({entry['bank_speedup']:4.1f}x)  "
            f"compile {entry['compile_s'] * 1e3:6.1f} ms")
    lines.append("compiler: cold IR pipeline vs warm cache hit:")
    for n, entry in results["compiler"].items():
        if n == "nb1":
            continue
        lines.append(
            f"  N={n:>5s}  cold {entry['cold_compile_s'] * 1e3:6.2f} ms "
            f"({entry['cold_us_per_cmd']:.2f} us/cmd)  "
            f"warm {entry['warm_hit_s'] * 1e6:6.1f} us")
    nb1 = results["compiler"]["nb1"]
    lines.append(
        f"  Nb=1 N={nb1['n']} ({nb1['commands']} u-op cmds): lane-fused "
        f"{nb1['fused_s'] * 1e3:.2f} ms vs per-command "
        f"{nb1['fallback_s'] * 1e3:.2f} ms ({nb1['fused_speedup']:.1f}x)")
    return "\n".join(lines)


def test_stream_engine_smoke(show, tmp_path):
    """CI smoke: on a fixed program the stream engine must match the
    legacy loop bit for bit and must not be slower (generous, non-flaky
    threshold — the measured speedup is several-fold)."""
    n = 512
    q = find_ntt_prime(n, 32)
    driver = NttPimDriver()
    commands = driver.map_commands(NttParams(n, q))
    engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH,
                          compute=driver.config.pim.compute_timing())
    stream = compile_stream(commands, HBM2E_ARCH)
    legacy = engine.simulate(commands)
    streamed = engine.simulate_stream(stream)
    assert streamed.timings == legacy.timings
    assert streamed.stats == legacy.stats
    assert streamed.energy_nj == legacy.energy_nj

    legacy_s = _best_of(lambda: engine.simulate(commands), 3)
    stream_s = _best_of(lambda: engine.simulate_stream(stream), 3)
    show(f"N={n}: legacy {legacy_s * 1e3:.2f} ms, "
         f"stream {stream_s * 1e3:.2f} ms "
         f"({legacy_s / stream_s:.1f}x)")
    # "Not slower" with generous headroom against CI timer noise.
    assert stream_s <= legacy_s * 1.5

    results = run(ns=(256,), repeats=2,
                  out_path=tmp_path / "BENCH_kernels.json")
    assert results["timing_engine"]["256"]["engine_speedup"] > 0
    assert results["compiler"]["256"]["cold_us_per_cmd"] > 0
    assert results["compiler"]["nb1"]["fused_speedup"] > 0


def main(argv=None) -> int:
    ns = tuple(int(a) for a in (argv or sys.argv[1:])) or (1024, 4096)
    results = run(ns=ns)
    print(_format(results))
    print(f"updated {DEFAULT_OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
