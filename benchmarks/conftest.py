"""Shared fixtures for the benchmark suite.

Each bench regenerates one of the paper's tables/figures, printing the
reproduced rows/series (run pytest with ``-s`` to see them inline; they
are also summarized in EXPERIMENTS.md).  Simulation benches use
``benchmark.pedantic`` with one round — a full PIM simulation is
deterministic, so repeated timing rounds add nothing but wall time.
"""

import pytest


@pytest.fixture
def show():
    """Print a block with a separator, visible under -s."""

    def _show(text: str) -> None:
        print()
        print(text)

    return _show
