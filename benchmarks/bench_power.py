"""Extension bench: power breakdown of NTT-PIM runs (the physical
context behind Table III's energy rows)."""

from repro.experiments import run_power_analysis


def test_power_breakdown(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_power_analysis(ns=(256, 1024, 4096), nb=2),
        rounds=1, iterations=1)
    show(result.table())
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())
