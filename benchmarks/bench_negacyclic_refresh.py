"""Extension benches: native merged negacyclic NTT vs the paper's
host-scaled cyclic protocol, and the refresh-overhead the evaluation
(like the paper) ignores."""

from repro.api import NegacyclicRequest, NttRequest, Simulator
from repro.arith import NttParams, find_ntt_prime
from repro.dram import refresh_overhead
from repro.experiments.report import format_table
from repro.ntt import NegacyclicParams
from repro.pim import PimParams
from repro.sim import SimConfig


def test_native_negacyclic_vs_cyclic(benchmark, show):
    """The native mapping should cost within ~10% of the cyclic NTT
    while eliminating the host's psi-scaling and bit-reversal passes."""

    def sweep():
        rows = []
        sim = Simulator(SimConfig(pim=PimParams(nb_buffers=4),
                                  functional=False, verify=False))
        for n in (256, 1024, 4096):
            q = find_ntt_prime(n, 32, negacyclic=True)
            nega = sim.run(NegacyclicRequest(ring=NegacyclicParams(n, q)))
            cyc = sim.run(NttRequest(params=NttParams(n, q)))
            rows.append([n, cyc.latency_us, nega.latency_us,
                         nega.cycles / cyc.cycles])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(format_table(
        ["N", "cyclic (us)", "native negacyclic (us)", "ratio"],
        rows, title="Extension — native merged negacyclic NTT on PIM"))
    for _, _, _, ratio in rows:
        assert 0.9 <= ratio <= 1.2


def test_refresh_overhead(benchmark, show):
    """Refresh (tREFI 3.9us / tRFC 260ns) costs an NTT run under 9%,
    justifying the paper's omission."""

    def sweep():
        rows = []
        config = SimConfig(functional=False, verify=False)
        sim = Simulator(config)
        q = find_ntt_prime(8192, 32)
        for n in (256, 1024, 4096, 8192):
            run = sim.run(NttRequest(params=NttParams(n, q)))
            o = refresh_overhead(run.cycles, config.timing)
            rows.append([n, run.cycles, o.refresh_windows,
                         100.0 * o.overhead_fraction])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(format_table(
        ["N", "base cycles", "refresh windows", "overhead %"],
        rows, title="Extension — DRAM refresh overhead on NTT runs"))
    for _, _, _, pct in rows:
        assert pct < 9.0
