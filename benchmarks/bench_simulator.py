"""Simulator-throughput benches: how fast the reproduction itself runs
one full PIM NTT (mapping + timing + functional + verify).  Useful for
tracking regressions in the simulator, not a paper figure."""

import random

from repro.api import NttRequest, Simulator
from repro.arith import NttParams, find_ntt_prime
from repro.pim import PimParams
from repro.sim import SimConfig

Q = find_ntt_prime(4096, 32)


def _run(n, nb, functional):
    rng = random.Random(n)
    x = [rng.randrange(Q) for _ in range(n)]
    config = SimConfig(pim=PimParams(nb_buffers=nb),
                       functional=functional, verify=functional)
    return Simulator(config).run(NttRequest(params=NttParams(n, Q), values=x))


def test_sim_full_n1024_nb2(benchmark):
    result = benchmark.pedantic(lambda: _run(1024, 2, True),
                                rounds=2, iterations=1)
    assert result.verified


def test_sim_timing_only_n4096_nb6(benchmark):
    result = benchmark.pedantic(lambda: _run(4096, 6, False),
                                rounds=2, iterations=1)
    assert result.cycles > 0


def test_sim_single_buffer_n512(benchmark):
    result = benchmark.pedantic(lambda: _run(512, 1, True),
                                rounds=1, iterations=1)
    assert result.verified
