"""Ablations: in-place update and same-row grouping in isolation, plus
bank-level parallelism scaling (the paper's future-work claim)."""

from repro.experiments import run_ablations, run_bank_scaling


def test_design_choice_ablations(benchmark, show):
    result = benchmark.pedantic(lambda: run_ablations(ns=(1024, 4096), nb=6),
                                rounds=1, iterations=1)
    show(result.table())
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())


def test_bank_scaling(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_bank_scaling(n=1024, banks=(1, 2, 4, 8)),
        rounds=1, iterations=1)
    show(result.table())
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())
