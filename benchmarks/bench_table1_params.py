"""Table I: the architecture parameters the whole evaluation runs on.

Asserts our defaults are exactly the published configuration and times
the construction of a full simulation stack on those parameters.
"""

from repro.dram import HBM2E_ARCH, HBM2E_TIMING, TimingEngine
from repro.experiments.report import format_table
from repro.pim import PimParams


def test_table1_parameters(benchmark, show):
    def build():
        engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH,
                              compute=PimParams().compute_timing())
        return engine

    engine = benchmark(build)
    a, t = engine.arch, engine.timing
    assert a.atom_bytes == 32
    assert a.columns_per_row == 32
    assert a.rows_per_bank == 32768
    assert (a.ranks, a.banks) == (1, 1)
    assert (t.cl, t.tccd, t.trp, t.tras, t.trcd, t.twr) == (
        14, 2, 14, 34, 14, 16)
    show(format_table(
        ["parameter", "value"],
        [["DRAM atom size", f"{a.atom_bytes} B"],
         ["# columns per row", a.columns_per_row],
         ["# rows per bank", a.rows_per_bank],
         ["CL", t.cl], ["tCCD", t.tccd], ["tRP", t.trp],
         ["tRAS", t.tras], ["tRCD", t.trcd], ["tWR", t.twr],
         ["clock", f"{t.freq_mhz:.0f} MHz"]],
        title="Table I — architecture parameters (reproduced defaults)"))
