"""Serving-layer benchmark: naive sequential submission vs the batching
scheduler, on the skewed same-shape mix, at three offered arrival rates
(below, near and far past the sequential server's saturation point).

Per rate and scheduler it records simulated throughput (req/s) and
p50/p99 latency, plus the host-side wall clock of the functional
simulation; a ``pipeline`` section measures the inline vs thread worker
backends (how much compile/execute overlap buys under the GIL — see
:mod:`repro.serve.workers`).  Results land in ``BENCH_serve.json`` at
the repo root.

Non-gating when run directly —

    PYTHONPATH=src python benchmarks/bench_serve.py

and a CI smoke target (the ``serve-smoke`` job) asserting that every
batched response is bit-identical to a standalone ``Simulator.run`` of
the same request and that batching sustains at least twice the naive
sequential throughput on the overloaded skewed mix:

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import Simulator
from repro.serve import LoadGenerator, SimServer, make_scenario
from repro.sim.driver import SimConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"

#: Offered load in requests per simulated second.  The sequential
#: server saturates near ~95k req/s on this mix (one N=512 transform
#: at a time); the three points sit below, above and far above it.
RATES = (60_000, 150_000, 400_000)
COUNT = 80
SCENARIO = "skewed"
SEED = 1
WINDOW_US = 50.0
MAX_BANKS = 8

#: Functional execution on, golden verification off: outputs are still
#: produced (and bit-checked against standalone runs below); skipping
#: the per-bank reference NTT keeps the bench fast.
CONFIG = SimConfig(verify=False)


def _load(rate: float) -> LoadGenerator:
    return LoadGenerator(make_scenario(SCENARIO), rate_rps=rate,
                         count=COUNT, seed=SEED)


def _serve(scheduler: str, rate: float, workers: str = "inline"):
    server = SimServer(CONFIG, scheduler=scheduler, window_us=WINDOW_US,
                       max_banks=MAX_BANKS, workers=workers)
    start = time.perf_counter()
    results = server.serve(_load(rate).requests())
    wall_s = time.perf_counter() - start
    return server, results, wall_s


def run(out_path: Path = DEFAULT_OUT) -> dict:
    section: dict = {
        "description": f"{SCENARIO} mix, {COUNT} requests, seed {SEED}; "
                       f"batching window {WINDOW_US:.0f}us, "
                       f"max_banks {MAX_BANKS}; times simulated unless "
                       f"suffixed wall",
        "rates": {},
    }
    for rate in RATES:
        entry: dict = {}
        for scheduler in ("sequential", "batching"):
            server, _, wall_s = _serve(scheduler, rate)
            snap = server.telemetry.snapshot()
            entry[scheduler] = {
                "throughput_rps": snap["throughput_rps"],
                "latency_p50_us": snap["latency_p50_us"],
                "latency_p99_us": snap["latency_p99_us"],
                "mean_batch_occupancy": snap["mean_batch_occupancy"],
                "wall_s": wall_s,
            }
        entry["throughput_speedup"] = (
            entry["batching"]["throughput_rps"]
            / entry["sequential"]["throughput_rps"])
        section["rates"][str(rate)] = entry

    # Host-side pipelining: thread backend overlaps group k+1's compile
    # with group k's execution; measured, not assumed (GIL).
    top = RATES[-1]
    _, _, inline_wall = _serve("batching", top, workers="inline")
    _, _, thread_wall = _serve("batching", top, workers="thread")
    section["pipeline"] = {
        "rate": top,
        "inline_wall_s": inline_wall,
        "thread_wall_s": thread_wall,
        "thread_over_inline": thread_wall / inline_wall,
    }

    out_path.write_text(json.dumps({"serve": section}, indent=2) + "\n")
    return {"serve": section}


def _format(results: dict) -> str:
    section = results["serve"]
    lines = ["serving: naive sequential vs batching scheduler "
             f"({SCENARIO} mix, {COUNT} requests):"]
    for rate, entry in section["rates"].items():
        seq, bat = entry["sequential"], entry["batching"]
        lines.append(
            f"  rate={int(rate):>7d}/s  "
            f"seq {seq['throughput_rps'] / 1e3:6.1f}k rps "
            f"p99={seq['latency_p99_us']:7.1f}us | "
            f"batch {bat['throughput_rps'] / 1e3:6.1f}k rps "
            f"p99={bat['latency_p99_us']:6.1f}us "
            f"occ={bat['mean_batch_occupancy']:.1f} | "
            f"x{entry['throughput_speedup']:.2f}")
    pipe = section["pipeline"]
    lines.append(
        f"  pipeline wall: inline {pipe['inline_wall_s'] * 1e3:.0f} ms, "
        f"thread {pipe['thread_wall_s'] * 1e3:.0f} ms "
        f"(thread/inline {pipe['thread_over_inline']:.2f})")
    return "\n".join(lines)


def test_serve_smoke(show):
    """CI gate: bit-identity of every batched response with a
    standalone facade run, and >= 2x batching throughput on the
    overloaded skewed mix (measured ~3.3x; the margin absorbs noise in
    the deterministic virtual-time model — there is none — and guards
    the scheduler's merge quality)."""
    rate = RATES[-1]
    load_requests = _load(rate).requests()
    batching, results, _ = _serve("batching", rate)
    solo = Simulator(CONFIG)
    for sreq, result in zip(load_requests, results):
        assert result.ok
        solo_response = solo.run(sreq.request)
        assert result.response.values == solo_response.values, (
            f"request {sreq.request_id}: batched response diverges from "
            f"standalone Simulator.run")
    sequential, _, _ = _serve("sequential", rate)
    b = batching.telemetry.snapshot()
    s = sequential.telemetry.snapshot()
    speedup = b["throughput_rps"] / s["throughput_rps"]
    show(f"serve smoke: batching {b['throughput_rps'] / 1e3:.1f}k rps vs "
         f"sequential {s['throughput_rps'] / 1e3:.1f}k rps "
         f"({speedup:.2f}x), p99 {b['latency_p99_us']:.1f}us vs "
         f"{s['latency_p99_us']:.1f}us")
    assert speedup >= 2.0
    assert b["mean_batch_occupancy"] > 2.0


def test_bench_serve_writes_json(show, tmp_path):
    out = tmp_path / "BENCH_serve.json"
    results = run(out_path=out)
    show(_format(results))
    written = json.loads(out.read_text())
    assert set(written["serve"]["rates"]) == {str(r) for r in RATES}
    top = written["serve"]["rates"][str(RATES[-1])]
    assert top["throughput_speedup"] >= 2.0


if __name__ == "__main__":
    print(_format(run()))
    print(f"wrote {DEFAULT_OUT}")
