"""Serving-layer benchmark: naive sequential submission vs the batching
scheduler, on the skewed same-shape mix, at three offered arrival rates
(below, near and far past the sequential server's saturation point).

Per rate and scheduler it records simulated throughput (req/s) and
p50/p99 latency, plus the host-side wall clock of the functional
simulation; a ``pipeline`` section measures the inline vs thread worker
backends (how much compile/execute overlap buys under the GIL — see
:mod:`repro.serve.workers`), and a ``shards`` section sweeps shard
counts under the shared-bus vs independent-channel contention models
(bus utilization included — the README's shard-scaling table), and a
``resilience`` section sweeps injected fault rates x {policies off,
policies on} and records the availability / true-goodput gap the
recovery stack buys back, and a ``dag`` section sweeps dependent
op-graph chains (depth x arrival rate) and records served makespan
against the dependency critical path — the stretch the dependency-
aware scheduler is judged on, and a ``cluster`` section sweeps the
:mod:`repro.cluster` front-end across replica counts (1/2/4, both bus
models) on an overloaded mixed mix — the replica-scaling goodput curve
the trajectory gate floors — and a ``replica_faults`` section sweeps
replica-scoped crash/hang/partition chaos through the self-healing
watchdog, static fleet vs heartbeat-driven autoscale (availability and
goodput-ratio floors).  Results land in ``BENCH_serve.json`` at the
repo root.

Non-gating when run directly —

    PYTHONPATH=src python benchmarks/bench_serve.py

and a CI smoke target (the ``serve-smoke`` / ``bench-trajectory``
jobs) asserting that every batched response — forward, inverse and
negacyclic transforms alike — is bit-identical to a standalone
``Simulator.run`` of the same request, that the live
``submit()/poll()/drain()`` surface reproduces the offline ``serve()``
results exactly, and that batching sustains at least twice the naive
sequential throughput on the overloaded skewed mix:

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import Simulator
from repro.dag import ntt_pipeline
from repro.serve import LoadGenerator, Scenario, SimServer, make_scenario
from repro.sim.driver import SimConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"

#: Offered load in requests per simulated second.  The sequential
#: server saturates near ~95k req/s on this mix (one N=512 transform
#: at a time); the three points sit below, above and far above it.
RATES = (60_000, 150_000, 400_000)
COUNT = 80
SCENARIO = "skewed"
SEED = 1
WINDOW_US = 50.0
MAX_BANKS = 8

#: Functional execution on, golden verification off: outputs are still
#: produced (and bit-checked against standalone runs below); skipping
#: the per-bank reference NTT keeps the bench fast.
CONFIG = SimConfig(verify=False)


#: Shard-scaling sweep: shard counts x bus models, on the shape-diverse
#: uniform mix far past saturation (so shards actually contend).
SHARD_COUNTS = (1, 2, 4)
SHARD_RATE = 3_000_000
SHARD_SCENARIO = "uniform"

#: Cluster sweep: replica counts x bus models through the
#: repro.cluster front-end, on the mixed mix far past one replica's
#: saturation with a tight deadline — goodput (deadline-met
#: completions per simulated second) must climb as replicas are added,
#: because consistent-hash routing spreads the four merge keys across
#: replicas while keeping each shape coalescible.
CLUSTER_REPLICAS = (1, 2, 4)
CLUSTER_RATE = 3_000_000
CLUSTER_SCENARIO = "mixed"
CLUSTER_DEADLINE_US = 300.0
CLUSTER_SHARDS = 2

#: Resilience sweep: fault rate x {policies off, policies on} on the
#: chaos mix.  "True goodput" only counts responses that completed,
#: made their deadline AND bit-match a standalone solo run — so
#: undetected corruption (policies off) is charged as badput.
FAULT_RATES = (0.0, 0.1, 0.25)
FAULT_SEED = 7
RES_SCENARIO = "chaos"
RES_RATE = 150_000
RES_COUNT = 50
RES_SEED = 3
RES_DEADLINE_US = 4000.0

#: DAG sweep: chain depth x arrival rate, pure linear NTT pipelines
#: over the hot N=512 ring.  Makespan can only approach the dependency
#: critical path from above (stretch >= 1.0); the gap is queueing,
#: windowing and bus time the dependency-aware scheduler could not
#: hide.  Deeper chains serialize more of each graph, so their stretch
#: under load is the headline the README's critical-path table quotes.
DAG_DEPTHS = (2, 4)
DAG_RATES = (30_000, 120_000)
DAG_COUNT = 16
DAG_N = 512

#: Replica-fault sweep: replica-scoped crash/hang/partition chaos
#: through the self-healing cluster tier, static 2-replica fleet vs a
#: 2:4 autoscale fleet under sustained overload (~1.4x the static
#: fleet's capacity).  Availability must hold (the watchdog's failover
#: + orphan recovery serves every admitted request exactly once) and
#: the autoscale fleet must buy goodput back at every profile.  The
#: bench profiles compress the stock 800us fault intervals to 60us so
#: chaos lands inside the overload window.
RF_RATE = 1_500_000
RF_COUNT = 500
RF_DEADLINE_US = 500.0
RF_SEED = 5
RF_STATIC_REPLICAS = 2


def _rf_profiles():
    from repro.serve.faults import ReplicaFaultProfile

    return {
        "none": None,
        "crashy": ReplicaFaultProfile(name="bench-crashy", crash_rate=0.3,
                                      interval_us=60.0),
        # Hang/partition windows shorter than the watchdog's down
        # detection (2 x 25us), so some dark links heal on their own —
        # the SUSPECT -> UP path — instead of always being restarted.
        "chaos": ReplicaFaultProfile(name="bench-chaos", crash_rate=0.15,
                                     hang_rate=0.2, partition_rate=0.1,
                                     interval_us=60.0, hang_us=40.0,
                                     partition_us=30.0),
    }


def _rf_policies():
    from repro.cluster import AutoscalePolicy, WatchdogPolicy

    watchdog = WatchdogPolicy(heartbeat_us=25.0, suspect_after=1,
                              down_after=2, restart_delay_us=60.0)
    autoscale = AutoscalePolicy(min_replicas=RF_STATIC_REPLICAS,
                                max_replicas=4, scale_out_load=6.0,
                                scale_in_load=0.0, sustain_ticks=2,
                                cooldown_us=50.0)
    return watchdog, autoscale


def _load(rate: float, scenario: str = SCENARIO,
          count: int = COUNT) -> LoadGenerator:
    return LoadGenerator(make_scenario(scenario), rate_rps=rate,
                         count=count, seed=SEED)


def _serve(scheduler: str, rate: float, workers: str = "inline",
           scenario: str = SCENARIO, num_shards: int = 1,
           bus: str = "shared"):
    server = SimServer(CONFIG, scheduler=scheduler, window_us=WINDOW_US,
                       max_banks=MAX_BANKS, workers=workers,
                       num_shards=num_shards, bus=bus, max_depth=4096)
    start = time.perf_counter()
    results = server.serve(_load(rate, scenario).requests())
    wall_s = time.perf_counter() - start
    return server, results, wall_s


def _cluster_run(replicas: int, bus: str) -> dict:
    from repro.cluster import ClusterFrontend

    load = LoadGenerator(make_scenario(CLUSTER_SCENARIO),
                         rate_rps=CLUSTER_RATE, count=COUNT, seed=SEED,
                         deadline_us=CLUSTER_DEADLINE_US)
    frontend = ClusterFrontend(replicas, CONFIG, router="hash",
                               window_us=WINDOW_US, max_banks=MAX_BANKS,
                               num_shards=CLUSTER_SHARDS, bus=bus,
                               max_depth=4096)
    frontend.serve(load.requests())
    snap = frontend.cluster_snapshot()
    return {
        "goodput_rps": snap["goodput_rps"],
        "throughput_rps": snap["throughput_rps"],
        "availability": snap["availability"],
        "deadline_missed": snap["deadline_missed"],
        "latency_p99_us": snap["latency_p99_us"],
        "mean_batch_occupancy": snap["mean_batch_occupancy"],
    }


def _resilience_run(fault_rate: float, policy: str) -> dict:
    load = LoadGenerator(make_scenario(RES_SCENARIO), rate_rps=RES_RATE,
                         count=RES_COUNT, seed=RES_SEED,
                         high_priority_fraction=0.2,
                         deadline_us=RES_DEADLINE_US)
    server = SimServer(CONFIG, window_us=WINDOW_US, max_banks=MAX_BANKS,
                       num_shards=2, max_depth=4096,
                       faults=(f"rate:{fault_rate}" if fault_rate else None),
                       fault_seed=FAULT_SEED, policy=policy)
    requests = load.requests()
    results = server.serve(requests)
    solo = Simulator(CONFIG)
    good = 0
    for sreq, result in zip(requests, results):
        if not result.ok or result.record.deadline_missed:
            continue
        if result.response.values == solo.run(sreq.request).values:
            good += 1
    snap = server.telemetry.snapshot()
    res = snap["resilience"]
    makespan_s = snap["makespan_us"] * 1e-6
    return {
        "availability": snap["availability"],
        "goodput_rps": snap["goodput_rps"],
        "true_goodput_rps": good / makespan_s if makespan_s > 0 else 0.0,
        "completed": snap["completed"],
        "failed": snap["failed"],
        "faults_injected": sum(res["faults_injected"].values()),
        "retries": res["retries"],
        "timeouts": res["timeouts"],
        "detected_mismatches": res["detected_mismatches"],
        "breaker_trips": res["breaker_trips"],
    }


def _dag_scenario(depth: int) -> Scenario:
    def make(rng):
        return ntt_pipeline(DAG_N, stages=depth, seed=rng.randrange(2 ** 31))
    return Scenario(name=f"dag-depth-{depth}",
                    description=f"{depth}-stage N={DAG_N} NTT pipelines",
                    mix=((1.0, make),))


def _dag_run(depth: int, rate: float) -> dict:
    load = LoadGenerator(_dag_scenario(depth), rate_rps=rate,
                         count=DAG_COUNT, seed=SEED)
    server = SimServer(CONFIG, window_us=WINDOW_US, max_banks=MAX_BANKS,
                       max_depth=4096)
    server.serve(load.requests())
    dag = server.telemetry.snapshot()["dag"]
    return {
        "makespan_mean_us": dag["makespan_mean_us"],
        "critical_path_mean_us": dag["critical_path_mean_us"],
        "stretch": dag["critical_path_stretch"],
        "stage_latency_p99_us": dag["stage_latency_p99_us"],
        "dags": dag["dags"],
        "completed": dag["completed"],
    }


def _replica_fault_run(profile, autoscale: bool) -> dict:
    from repro.cluster import ClusterFrontend

    watchdog, autoscale_policy = _rf_policies()
    load = LoadGenerator(make_scenario(CLUSTER_SCENARIO), rate_rps=RF_RATE,
                         count=RF_COUNT, seed=SEED,
                         deadline_us=RF_DEADLINE_US)
    frontend = ClusterFrontend(
        RF_STATIC_REPLICAS, CONFIG, router="hash", window_us=WINDOW_US,
        max_banks=MAX_BANKS, num_shards=CLUSTER_SHARDS, max_depth=4096,
        replica_faults=profile, replica_fault_seed=RF_SEED,
        watchdog=watchdog,
        autoscale=autoscale_policy if autoscale else None)
    frontend.serve(load.requests())
    snap = frontend.cluster_snapshot()
    health = frontend.health.snapshot()
    return {
        "goodput_rps": snap["goodput_rps"],
        "availability": snap["availability"],
        "deadline_missed": snap["deadline_missed"],
        "mttr_us": health["mttr_us"],
        "restarts": health["restarts"],
        "failovers": health["failovers"],
        "orphans_recovered": health["orphans_recovered"],
        "duplicates_dropped": health["duplicates_dropped"],
        "scale_out": health["scale_out"],
        "scale_in": health["scale_in"],
    }


def run(out_path: Path = DEFAULT_OUT) -> dict:
    section: dict = {
        "description": f"{SCENARIO} mix, {COUNT} requests, seed {SEED}; "
                       f"batching window {WINDOW_US:.0f}us, "
                       f"max_banks {MAX_BANKS}; times simulated unless "
                       f"suffixed wall",
        "rates": {},
    }
    for rate in RATES:
        entry: dict = {}
        for scheduler in ("sequential", "batching"):
            server, _, wall_s = _serve(scheduler, rate)
            snap = server.telemetry.snapshot()
            entry[scheduler] = {
                "throughput_rps": snap["throughput_rps"],
                "latency_p50_us": snap["latency_p50_us"],
                "latency_p99_us": snap["latency_p99_us"],
                "mean_batch_occupancy": snap["mean_batch_occupancy"],
                "wall_s": wall_s,
            }
        entry["throughput_speedup"] = (
            entry["batching"]["throughput_rps"]
            / entry["sequential"]["throughput_rps"])
        section["rates"][str(rate)] = entry

    # Host-side pipelining: thread backend overlaps group k+1's compile
    # with group k's execution; measured, not assumed (GIL).
    top = RATES[-1]
    _, _, inline_wall = _serve("batching", top, workers="inline")
    _, _, thread_wall = _serve("batching", top, workers="thread")
    section["pipeline"] = {
        "rate": top,
        "inline_wall_s": inline_wall,
        "thread_wall_s": thread_wall,
        "thread_over_inline": thread_wall / inline_wall,
    }

    # Shard scaling under the two cross-shard bus models: the shared
    # command bus charges every dispatch its compiled stream's command
    # count, so the curve bends as utilization climbs; the independent
    # model is the optimistic per-channel upper bound.
    shards_section: dict = {
        "description": f"{SHARD_SCENARIO} mix at {SHARD_RATE} req/s "
                       f"(overload), {COUNT} requests; throughput and "
                       f"bus utilization per shard count and bus model",
    }
    for bus in ("independent", "shared"):
        entry = {}
        for shards in SHARD_COUNTS:
            server, _, _ = _serve("batching", SHARD_RATE,
                                  scenario=SHARD_SCENARIO,
                                  num_shards=shards, bus=bus)
            snap = server.telemetry.snapshot()
            entry[str(shards)] = {
                "throughput_rps": snap["throughput_rps"],
                "latency_p99_us": snap["latency_p99_us"],
                "bus_utilization": snap["bus_utilization"],
                "bus_wait_p99_us": snap["bus_wait_p99_us"],
            }
        shards_section[bus] = entry
    section["shards"] = shards_section

    # Replica scaling through the cluster front-end: goodput per
    # replica count under both bus models.  The merge keys spread, the
    # batches survive, and goodput climbs — the cluster's reason to
    # exist, gated by check_trajectory.
    cluster_section: dict = {
        "description": f"{CLUSTER_SCENARIO} mix at {CLUSTER_RATE} req/s "
                       f"(overload), {COUNT} requests, deadline "
                       f"{CLUSTER_DEADLINE_US:.0f}us, hash router, "
                       f"{CLUSTER_SHARDS} shards per replica; goodput "
                       f"per replica count and bus model",
    }
    for bus in ("independent", "shared"):
        cluster_section[bus] = {
            str(replicas): _cluster_run(replicas, bus)
            for replicas in CLUSTER_REPLICAS}
    section["cluster"] = cluster_section

    # Resilience: fault rate x policy.  The recovery stack (retries,
    # timeouts, breakers, detection) must buy goodput back — strictly —
    # at every nonzero fault rate; at rate 0 the two policies serve the
    # same plan (timeouts/detection never fire without faults).
    resilience_section: dict = {
        "description": f"{RES_SCENARIO} mix at {RES_RATE} req/s, "
                       f"{RES_COUNT} requests, deadline "
                       f"{RES_DEADLINE_US:.0f}us, fault seed {FAULT_SEED}; "
                       f"true goodput counts deadline-met responses that "
                       f"bit-match a standalone solo run",
    }
    for fault_rate in FAULT_RATES:
        resilience_section[f"{fault_rate:g}"] = {
            policy: _resilience_run(fault_rate, policy)
            for policy in ("none", "standard")}
    section["resilience"] = resilience_section

    # DAG serving: chain depth x arrival rate.  The committed floors
    # (check_trajectory) are structural — stretch >= 1.0 and every
    # offered graph completes — while the measured stretch values are
    # the README's critical-path table.
    dag_section: dict = {
        "description": f"linear N={DAG_N} NTT pipelines, depth x arrival "
                       f"rate, {DAG_COUNT} graphs per cell, seed {SEED}; "
                       f"makespan vs dependency critical path "
                       f"(stretch >= 1.0 by construction)",
    }
    for depth in DAG_DEPTHS:
        dag_section[str(depth)] = {
            str(rate): _dag_run(depth, rate) for rate in DAG_RATES}
    section["dag"] = dag_section

    # Replica faults: self-healing under crash/hang/partition chaos,
    # static fleet vs autoscale.  Availability is the exactly-once
    # claim; the goodput ratio is what heartbeat-driven scale-out buys.
    replica_fault_section: dict = {
        "description": f"{CLUSTER_SCENARIO} mix at {RF_RATE} req/s "
                       f"(sustained overload), {RF_COUNT} requests, "
                       f"deadline {RF_DEADLINE_US:.0f}us, replica-fault "
                       f"seed {RF_SEED}; static {RF_STATIC_REPLICAS}-"
                       f"replica fleet vs {RF_STATIC_REPLICAS}:4 "
                       f"autoscale under the supervising watchdog",
    }
    for name, profile in _rf_profiles().items():
        static = _replica_fault_run(profile, autoscale=False)
        auto = _replica_fault_run(profile, autoscale=True)
        replica_fault_section[name] = {
            "static": static,
            "autoscale": auto,
            "goodput_ratio": (auto["goodput_rps"]
                              / max(static["goodput_rps"], 1e-9)),
        }
    section["replica_faults"] = replica_fault_section

    out_path.write_text(json.dumps({"serve": section}, indent=2) + "\n")
    return {"serve": section}


def _format(results: dict) -> str:
    section = results["serve"]
    lines = ["serving: naive sequential vs batching scheduler "
             f"({SCENARIO} mix, {COUNT} requests):"]
    for rate, entry in section["rates"].items():
        seq, bat = entry["sequential"], entry["batching"]
        lines.append(
            f"  rate={int(rate):>7d}/s  "
            f"seq {seq['throughput_rps'] / 1e3:6.1f}k rps "
            f"p99={seq['latency_p99_us']:7.1f}us | "
            f"batch {bat['throughput_rps'] / 1e3:6.1f}k rps "
            f"p99={bat['latency_p99_us']:6.1f}us "
            f"occ={bat['mean_batch_occupancy']:.1f} | "
            f"x{entry['throughput_speedup']:.2f}")
    pipe = section["pipeline"]
    lines.append(
        f"  pipeline wall: inline {pipe['inline_wall_s'] * 1e3:.0f} ms, "
        f"thread {pipe['thread_wall_s'] * 1e3:.0f} ms "
        f"(thread/inline {pipe['thread_over_inline']:.2f})")
    shards = section["shards"]
    lines.append(f"shard scaling ({SHARD_SCENARIO} mix, overload), "
                 f"independent vs shared bus:")
    for count in SHARD_COUNTS:
        ind = shards["independent"][str(count)]
        sha = shards["shared"][str(count)]
        lines.append(
            f"  shards={count}:  ind {ind['throughput_rps'] / 1e3:6.1f}k rps"
            f" | shared {sha['throughput_rps'] / 1e3:6.1f}k rps "
            f"bus={sha['bus_utilization'] * 100:4.1f}% "
            f"wait p99={sha['bus_wait_p99_us']:5.1f}us")
    cluster = section["cluster"]
    lines.append(f"cluster replica scaling ({CLUSTER_SCENARIO} mix, "
                 f"overload, {CLUSTER_DEADLINE_US:.0f}us deadline):")
    for count in CLUSTER_REPLICAS:
        ind = cluster["independent"][str(count)]
        sha = cluster["shared"][str(count)]
        lines.append(
            f"  replicas={count}:  "
            f"ind {ind['goodput_rps'] / 1e3:6.1f}k goodput | "
            f"shared {sha['goodput_rps'] / 1e3:6.1f}k goodput "
            f"p99={sha['latency_p99_us']:5.1f}us "
            f"occ={sha['mean_batch_occupancy']:.1f}")
    dag_sweep = section.get("dag", {})
    if dag_sweep:
        lines.append(f"dag serving (N={DAG_N} pipelines), makespan vs "
                     f"critical path:")
        for depth in DAG_DEPTHS:
            for rate in DAG_RATES:
                entry = dag_sweep[str(depth)][str(rate)]
                lines.append(
                    f"  depth={depth} rate={rate:>7d}/s:  "
                    f"critical {entry['critical_path_mean_us']:6.1f}us -> "
                    f"makespan {entry['makespan_mean_us']:6.1f}us "
                    f"(stretch x{entry['stretch']:.2f}) "
                    f"stage p99={entry['stage_latency_p99_us']:6.1f}us "
                    f"{entry['completed']}/{entry['dags']} done")
    lines.append(f"resilience ({RES_SCENARIO} mix), true goodput "
                 f"policies off vs on:")
    for fault_rate in FAULT_RATES:
        entry = section["resilience"][f"{fault_rate:g}"]
        off, on = entry["none"], entry["standard"]
        lines.append(
            f"  faults={fault_rate:4.2f}:  "
            f"off {off['true_goodput_rps'] / 1e3:6.1f}k rps "
            f"avail={off['availability'] * 100:5.1f}% | "
            f"on {on['true_goodput_rps'] / 1e3:6.1f}k rps "
            f"avail={on['availability'] * 100:5.1f}% "
            f"(retries={on['retries']} timeouts={on['timeouts']} "
            f"detected={on['detected_mismatches']})")
    replica_faults = section.get("replica_faults", {})
    if replica_faults:
        lines.append(f"replica faults ({CLUSTER_SCENARIO} mix, overload), "
                     f"static {RF_STATIC_REPLICAS} replicas vs autoscale:")
        for name in _rf_profiles():
            entry = replica_faults[name]
            static, auto = entry["static"], entry["autoscale"]
            lines.append(
                f"  {name:6s}:  static {static['goodput_rps'] / 1e3:6.1f}k "
                f"avail={static['availability'] * 100:5.1f}% | "
                f"auto {auto['goodput_rps'] / 1e3:6.1f}k "
                f"avail={auto['availability'] * 100:5.1f}% "
                f"x{entry['goodput_ratio']:.2f} "
                f"(failovers={auto['failovers']} restarts={auto['restarts']} "
                f"scale=+{auto['scale_out']} mttr={auto['mttr_us']:.0f}us)")
    return "\n".join(lines)


def test_serve_smoke(show):
    """CI gate: bit-identity of every batched response with a
    standalone facade run, and >= 2x batching throughput on the
    overloaded skewed mix (measured ~3.3x; the margin absorbs noise in
    the deterministic virtual-time model — there is none — and guards
    the scheduler's merge quality)."""
    rate = RATES[-1]
    load_requests = _load(rate).requests()
    batching, results, _ = _serve("batching", rate)
    solo = Simulator(CONFIG)
    for sreq, result in zip(load_requests, results):
        assert result.ok
        solo_response = solo.run(sreq.request)
        assert result.response.values == solo_response.values, (
            f"request {sreq.request_id}: batched response diverges from "
            f"standalone Simulator.run")
    sequential, _, _ = _serve("sequential", rate)
    b = batching.telemetry.snapshot()
    s = sequential.telemetry.snapshot()
    speedup = b["throughput_rps"] / s["throughput_rps"]
    show(f"serve smoke: batching {b['throughput_rps'] / 1e3:.1f}k rps vs "
         f"sequential {s['throughput_rps'] / 1e3:.1f}k rps "
         f"({speedup:.2f}x), p99 {b['latency_p99_us']:.1f}us vs "
         f"{s['latency_p99_us']:.1f}us")
    assert speedup >= 2.0
    assert b["mean_batch_occupancy"] > 2.0


def test_generalized_batching_bit_identical(show):
    """CI gate: the full batchable transform zoo — forward/inverse
    cyclic NTTs and forward/inverse negacyclic transforms — coalesces
    into multi-bank dispatches whose per-request responses are
    bit-identical to standalone facade runs."""
    load_requests = _load(rate=RATES[-1], scenario="mixed").requests()
    server = SimServer(CONFIG, window_us=WINDOW_US, max_banks=MAX_BANKS)
    results = server.serve(load_requests)
    solo = Simulator(CONFIG)
    grouped_by_kind = {}
    for sreq, result in zip(load_requests, results):
        assert result.ok
        assert result.response.values == solo.run(sreq.request).values, (
            f"request {sreq.request_id} ({sreq.request.workload}): merged "
            f"response diverges from standalone Simulator.run")
        if result.record.group_banks > 1:
            req = sreq.request
            kind = (req.workload, req.inverse)
            grouped_by_kind[kind] = grouped_by_kind.get(kind, 0) + 1
    # Every kind actually merged (not just passed through solo).
    assert set(grouped_by_kind) == {("ntt", False), ("ntt", True),
                                    ("negacyclic", False),
                                    ("negacyclic", True)}
    show("generalized batching: merged group members per kind: "
         + ", ".join(f"{w}{'-inv' if i else ''}={c}"
                     for (w, i), c in sorted(grouped_by_kind.items())))


def test_live_surface_bit_identical_to_offline(show):
    """CI gate: driving the server through submit()/poll()/drain()
    reproduces the offline serve() plan and results exactly — same
    values, same virtual-time records."""
    offline = SimServer(CONFIG, window_us=WINDOW_US, max_banks=MAX_BANKS)
    off_results = offline.serve(_load(RATES[-1], "mixed").requests())
    live = SimServer(CONFIG, window_us=WINDOW_US, max_banks=MAX_BANKS)
    outstanding = []
    polled = 0
    for sreq in _load(RATES[-1], "mixed").stream():
        outstanding.append(live.submit(sreq))
        if live.poll(outstanding[0]) is not None:
            outstanding.pop(0)
            polled += 1
    live_results = live.drain()
    assert len(live_results) == len(off_results)
    for off, lv in zip(off_results, live_results):
        assert lv.response.values == off.response.values
        assert lv.record.completion_us == off.record.completion_us
        assert lv.record.start_us == off.record.start_us
        assert lv.record.shard == off.record.shard
        assert lv.record.group_banks == off.record.group_banks
    assert polled > 0  # the live client really saw results mid-stream
    show(f"live surface: {len(live_results)} requests bit-identical to "
         f"offline serve(), {polled} observed via poll() mid-stream")


def test_resilience_policies_recover_goodput(show):
    """CI gate (the chaos-smoke claim): at every nonzero fault rate the
    resilience policies buy *true* goodput back — strictly above the
    policies-off run under the identical fault schedule — and at rate 0
    the two policies produce identical serving numbers (the policy
    knobs are inert without faults)."""
    zero = {policy: _resilience_run(0.0, policy)
            for policy in ("none", "standard")}
    assert zero["none"] == zero["standard"]
    assert zero["none"]["faults_injected"] == 0
    for fault_rate in [r for r in FAULT_RATES if r > 0]:
        off = _resilience_run(fault_rate, "none")
        on = _resilience_run(fault_rate, "standard")
        assert off["faults_injected"] > 0  # the sweep actually injected
        assert on["true_goodput_rps"] > off["true_goodput_rps"], (
            f"fault rate {fault_rate}: policies-on true goodput "
            f"{on['true_goodput_rps']:.0f} not above policies-off "
            f"{off['true_goodput_rps']:.0f}")
        assert on["availability"] >= off["availability"]
        show(f"resilience @ faults={fault_rate:g}: true goodput "
             f"off {off['true_goodput_rps'] / 1e3:.1f}k -> "
             f"on {on['true_goodput_rps'] / 1e3:.1f}k rps, availability "
             f"{off['availability'] * 100:.1f}% -> "
             f"{on['availability'] * 100:.1f}%")


def test_cluster_replica_scaling(show):
    """CI gate: adding replicas buys goodput on the overloaded mixed
    mix — strictly monotonic across the sweep for both bus models —
    and the shared bus (which arbitrates one channel across all shards
    of every replica) never beats independent channels."""
    runs = {bus: {replicas: _cluster_run(replicas, bus)
                  for replicas in CLUSTER_REPLICAS}
            for bus in ("independent", "shared")}
    for bus, by_count in runs.items():
        for lo, hi in zip(CLUSTER_REPLICAS, CLUSTER_REPLICAS[1:]):
            assert by_count[hi]["goodput_rps"] > by_count[lo]["goodput_rps"], (
                f"{bus} bus: {hi} replicas goodput "
                f"{by_count[hi]['goodput_rps']:.0f} not above {lo} replicas "
                f"{by_count[lo]['goodput_rps']:.0f}")
        show(f"cluster scaling ({bus} bus): " + " -> ".join(
            f"{r}x {by_count[r]['goodput_rps'] / 1e3:.1f}k rps"
            for r in CLUSTER_REPLICAS))
    for replicas in CLUSTER_REPLICAS:
        assert (runs["shared"][replicas]["goodput_rps"]
                <= runs["independent"][replicas]["goodput_rps"] + 1e-6)


def test_dag_serving_bit_identical(show):
    """CI gate (the dag-smoke claim): serving the mixed ``dag``
    scenario — CKKS multiply chains, Kyber KEM batches and plain NTTs
    interleaved — produces whole-graph results bit-identical to the
    golden ``"dag"`` workload's standalone run, stage by stage."""
    load_requests = _load(RATES[0], scenario="dag", count=30).requests()
    server = SimServer(CONFIG, window_us=WINDOW_US, max_banks=MAX_BANKS,
                       max_depth=4096)
    results = server.serve(load_requests)
    solo = Simulator(CONFIG)
    graphs = stages = 0
    for sreq, result in zip(load_requests, results):
        assert result.ok
        golden = solo.run(sreq.request)
        assert result.response.values == golden.values, (
            f"request {sreq.request_id} ({sreq.request.workload}): served "
            f"response diverges from standalone Simulator.run")
        if sreq.request.workload != "dag":
            continue
        graphs += 1
        for name, stage_result in result.stages.items():
            stages += 1
            assert (stage_result.response.values
                    == golden.raw["responses"][name].values), (
                f"request {sreq.request_id} stage {name!r}: served stage "
                f"diverges from the golden model's stage response")
    assert graphs > 0 and stages > graphs
    show(f"dag serving: {graphs} graphs ({stages} stages) bit-identical "
         f"to the golden dag workload, stage by stage")


def test_dag_sweep_floors(show):
    """CI gate: across the depth x rate sweep every offered graph
    completes and the served makespan never beats the dependency
    critical path (stretch >= 1.0 — the scheduler can hide queueing,
    not dependencies)."""
    for depth in DAG_DEPTHS:
        for rate in DAG_RATES:
            entry = _dag_run(depth, rate)
            assert entry["dags"] == entry["completed"] == DAG_COUNT
            assert entry["critical_path_mean_us"] > 0.0
            assert entry["stretch"] >= 1.0 - 1e-9, (
                f"depth={depth} rate={rate}: served makespan beat the "
                f"dependency critical path (stretch {entry['stretch']:.3f})")
            show(f"dag sweep depth={depth} rate={rate}: critical "
                 f"{entry['critical_path_mean_us']:.1f}us -> makespan "
                 f"{entry['makespan_mean_us']:.1f}us "
                 f"(x{entry['stretch']:.2f})")


def test_replica_fault_self_healing(show):
    """CI gate (the cluster-chaos claim): under replica-scoped
    crash/hang/partition chaos the supervised cluster keeps availability
    at 1.0 — every admitted request served exactly once, through
    failover and restart — and the heartbeat-driven autoscale fleet
    beats the static fleet's goodput at every fault profile."""
    for name, profile in _rf_profiles().items():
        static = _replica_fault_run(profile, autoscale=False)
        auto = _replica_fault_run(profile, autoscale=True)
        assert static["availability"] == 1.0, (
            f"{name}: static fleet lost requests "
            f"(availability {static['availability']:.3f})")
        assert auto["availability"] == 1.0, (
            f"{name}: autoscale fleet lost requests "
            f"(availability {auto['availability']:.3f})")
        assert auto["scale_out"] > 0  # the overload really tripped it
        if profile is not None:
            assert auto["failovers"] > 0  # chaos really bit
            assert auto["goodput_rps"] > static["goodput_rps"], (
                f"{name}: autoscale goodput {auto['goodput_rps']:.0f} "
                f"not above static {static['goodput_rps']:.0f}")
        show(f"replica faults ({name}): static "
             f"{static['goodput_rps'] / 1e3:.0f}k rps -> autoscale "
             f"{auto['goodput_rps'] / 1e3:.0f}k rps, "
             f"failovers={auto['failovers']} restarts={auto['restarts']} "
             f"orphans={auto['orphans_recovered']} "
             f"mttr={auto['mttr_us']:.0f}us")


def test_bench_serve_writes_json(show, tmp_path):
    out = tmp_path / "BENCH_serve.json"
    results = run(out_path=out)
    show(_format(results))
    written = json.loads(out.read_text())
    assert set(written["serve"]["rates"]) == {str(r) for r in RATES}
    top = written["serve"]["rates"][str(RATES[-1])]
    assert top["throughput_speedup"] >= 2.0
    shards = written["serve"]["shards"]
    # The shared bus reports real utilization and can only be slower
    # than (or equal to) independent channels at every shard count.
    for count in SHARD_COUNTS:
        assert shards["shared"][str(count)]["bus_utilization"] > 0.0
        assert (shards["shared"][str(count)]["throughput_rps"]
                <= shards["independent"][str(count)]["throughput_rps"] + 1e-6)
    cluster = written["serve"]["cluster"]
    for bus in ("independent", "shared"):
        goodputs = [cluster[bus][str(count)]["goodput_rps"]
                    for count in CLUSTER_REPLICAS]
        assert goodputs == sorted(goodputs)
    resilience = written["serve"]["resilience"]
    for fault_rate in FAULT_RATES:
        entry = resilience[f"{fault_rate:g}"]
        if fault_rate > 0:
            assert (entry["standard"]["true_goodput_rps"]
                    > entry["none"]["true_goodput_rps"])
        else:
            assert entry["standard"] == entry["none"]
    dag_sweep = written["serve"]["dag"]
    for depth in DAG_DEPTHS:
        for rate in DAG_RATES:
            entry = dag_sweep[str(depth)][str(rate)]
            assert entry["completed"] == entry["dags"] == DAG_COUNT
            assert entry["stretch"] >= 1.0 - 1e-9
    replica_faults = written["serve"]["replica_faults"]
    for name in _rf_profiles():
        entry = replica_faults[name]
        assert entry["static"]["availability"] == 1.0
        assert entry["autoscale"]["availability"] == 1.0
        if name != "none":
            assert entry["goodput_ratio"] > 1.0


if __name__ == "__main__":
    print(_format(run()))
    print(f"wrote {DEFAULT_OUT}")
