"""Fig. 8: sensitivity to clock frequency (Nb=2, 300-1200 MHz).

Shape requirements: a 4x clock drop costs well under 4x latency (the
paper reports 1.65x at the longest polynomial), large N is more robust
than small N, and the PIM still beats the CPU at 300 MHz.
"""

from repro.experiments import run_fig8


def test_fig8_frequency_sensitivity(benchmark, show):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    show(result.table())
    show(result.plot())
    slowdowns = [f"N={n}: 300MHz/1200MHz = x{result.slowdown(n, 300.0):.2f}"
                 for n in result.ns]
    show("\n".join(slowdowns))
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())
