"""Table II: PIM area overhead vs Newton (gate model + SRAM model)."""

from repro.experiments import PAPER_TABLE2, run_table2


def test_table2_area(benchmark, show):
    result = benchmark(run_table2)
    show(result.table())
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())
    # Shape vs paper: every row within 5%.
    for nb, ref in PAPER_TABLE2["ntt_pim"].items():
        assert abs(result.area(nb) - ref) / ref < 0.05
    assert abs(result.bank_mm2 - PAPER_TABLE2["bank"]) < 0.05
    assert abs(result.newton_mm2 - PAPER_TABLE2["newton"]) < 0.002
