"""Regression gate over the committed benchmark trajectory.

Reads the freshly (re)generated ``BENCH_kernels.json`` and
``BENCH_serve.json`` and fails if a headline number fell below its
committed floor:

* serving: batching must sustain >= 2x the naive sequential throughput
  at the overloaded top rate (measured ~3.3x);
* stream engine: the compiled-stream timing loop and the fused
  functional bank must not be slower than the legacy per-command loops
  (measured ~4x / ~7x; the floor is 1.0 with headroom for CI noise);
* compiler: the pass-based IR pipeline's cold compile must stay below
  the retired monolith's ~2.3 us/command rate, and the Nb=1 lane-fused
  run must not be slower than the per-command fallback it replaced;
* shared bus: the contention model must report real utilization and
  never beat the independent-channel upper bound;
* resilience: under injected faults the recovery policies must keep
  availability at least ``RESILIENCE_AVAILABILITY_FLOOR`` and hold
  true goodput strictly above the policies-off run at the same rates
  (goodput-under-faults floor);
* dag: across the chain-depth x arrival-rate sweep every offered graph
  must complete and the served makespan must never beat the dependency
  critical path (``stretch >= DAG_STRETCH_FLOOR`` — the scheduler can
  hide queueing, never dependencies);
* cluster: each step up the replica sweep (1 -> 2 -> 4) must buy at
  least ``CLUSTER_SCALING_FLOOR`` more goodput on both bus models, and
  the shared bus must never beat independent channels;
* replica faults: under replica-scoped crash/hang/partition chaos the
  self-healing cluster must keep availability at/above
  ``REPLICA_FAULT_AVAILABILITY_FLOOR`` on both fleets, and the
  autoscale fleet's goodput must hold
  ``AUTOSCALE_GOODPUT_RATIO_FLOOR`` over the static fleet at every
  profile.

Run by the ``bench-trajectory`` CI job after executing both benches::

    PYTHONPATH=src python benchmarks/bench_timing_engine.py
    PYTHONPATH=src python benchmarks/bench_serve.py
    python benchmarks/check_trajectory.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Committed floors (generous vs the measured values — they gate
#: regressions, not noise).
SERVE_SPEEDUP_FLOOR = 2.0
ENGINE_SPEEDUP_FLOOR = 1.0
BANK_SPEEDUP_FLOOR = 1.0
#: The retired monolithic ``compile_stream`` measured ~2.3 us/command
#: cold (39.8 ms on the 17k-command N=4096 program); the pass-based IR
#: pipeline measures ~1.2 us/command and must never creep back above
#: the monolith's rate.
COMPILE_US_PER_CMD_CEILING = 2.3
#: Nb=1 µ-op programs fuse through the lane-renaming pass; the fused
#: run must not be slower than the per-command fallback it replaced
#: (measured ~4x faster).
NB1_FUSED_SPEEDUP_FLOOR = 1.0
#: With the standard policy on, availability under every swept fault
#: rate must stay at/above this (measured 1.0 at rates 0.1 and 0.25).
RESILIENCE_AVAILABILITY_FLOOR = 0.9
#: And policies-on true goodput must exceed policies-off by at least
#: this ratio at every nonzero fault rate (measured ~2.2x / ~1.1x).
RESILIENCE_GOODPUT_RATIO_FLOOR = 1.0
#: Each doubling of the replica count must buy at least this goodput
#: ratio on both bus models (measured 1.08-1.19x per step; the floor
#: gates "replicas stopped helping", not the exact scaling curve).
CLUSTER_SCALING_FLOOR = 1.02
#: A served DAG's makespan can approach its dependency critical path
#: only from above: stretch below this (minus float slack) means the
#: telemetry is lying about one of the two.  Completeness is exact —
#: the dependency-aware scheduler must finish every offered graph.
DAG_STRETCH_FLOOR = 1.0
#: Under replica-scoped crash/hang/partition chaos the self-healing
#: cluster must keep availability at/above this on both fleets
#: (measured 1.0 — exactly-once through failover and restart).
REPLICA_FAULT_AVAILABILITY_FLOOR = 0.9
#: And the heartbeat-driven autoscale fleet must hold at least this
#: goodput ratio over the static fleet at every fault profile
#: (measured ~1.2x fault-free and ~2x under chaos).
AUTOSCALE_GOODPUT_RATIO_FLOOR = 1.0


def check(kernels_path: Path = REPO_ROOT / "BENCH_kernels.json",
          serve_path: Path = REPO_ROOT / "BENCH_serve.json") -> list:
    failures = []

    serve = json.loads(serve_path.read_text())["serve"]
    top_rate = max(serve["rates"], key=int)
    speedup = serve["rates"][top_rate]["throughput_speedup"]
    print(f"serve: batching speedup at {top_rate} req/s = {speedup:.2f}x "
          f"(floor {SERVE_SPEEDUP_FLOOR}x)")
    if speedup < SERVE_SPEEDUP_FLOOR:
        failures.append(
            f"batching speedup {speedup:.2f}x fell below the committed "
            f"{SERVE_SPEEDUP_FLOOR}x floor")

    shards = serve.get("shards", {})
    for count, entry in shards.get("shared", {}).items():
        if not isinstance(entry, dict):
            continue
        independent = shards["independent"][count]
        print(f"serve: shards={count} shared {entry['throughput_rps']:.0f} "
              f"rps (bus {entry['bus_utilization'] * 100:.1f}%) vs "
              f"independent {independent['throughput_rps']:.0f} rps")
        if entry["bus_utilization"] <= 0.0:
            failures.append(f"shards={count}: shared bus reports no "
                            f"utilization")
        if entry["throughput_rps"] > independent["throughput_rps"] + 1e-6:
            failures.append(f"shards={count}: shared-bus throughput beats "
                            f"the independent upper bound")

    cluster = serve.get("cluster", {})
    for bus in ("independent", "shared"):
        sweep = {int(count): entry
                 for count, entry in cluster.get(bus, {}).items()}
        counts = sorted(sweep)
        for lo, hi in zip(counts, counts[1:]):
            ratio = sweep[hi]["goodput_rps"] / sweep[lo]["goodput_rps"]
            print(f"serve: cluster {bus} bus {lo}->{hi} replicas goodput "
                  f"{sweep[lo]['goodput_rps']:.0f} -> "
                  f"{sweep[hi]['goodput_rps']:.0f} rps ({ratio:.2f}x, "
                  f"floor {CLUSTER_SCALING_FLOOR}x)")
            if ratio < CLUSTER_SCALING_FLOOR:
                failures.append(
                    f"cluster ({bus} bus): {lo}->{hi} replicas goodput "
                    f"ratio {ratio:.2f}x fell below the "
                    f"{CLUSTER_SCALING_FLOOR}x scaling floor")
        for count in counts:
            if bus != "shared":
                continue
            independent = cluster["independent"][str(count)]
            if (sweep[count]["goodput_rps"]
                    > independent["goodput_rps"] + 1e-6):
                failures.append(
                    f"cluster: replicas={count} shared-bus goodput beats "
                    f"the independent upper bound")

    dag_sweep = serve.get("dag", {})
    for depth, by_rate in sorted(dag_sweep.items()):
        if not isinstance(by_rate, dict):
            continue
        for rate, entry in sorted(by_rate.items(), key=lambda kv: int(kv[0])):
            print(f"serve: dag depth={depth} rate={rate} critical "
                  f"{entry['critical_path_mean_us']:.1f}us -> makespan "
                  f"{entry['makespan_mean_us']:.1f}us "
                  f"(stretch {entry['stretch']:.2f}x, floor "
                  f"{DAG_STRETCH_FLOOR}x), "
                  f"{entry['completed']}/{entry['dags']} graphs done")
            if entry["completed"] != entry["dags"]:
                failures.append(
                    f"dag depth={depth} rate={rate}: only "
                    f"{entry['completed']} of {entry['dags']} offered "
                    f"graphs completed")
            if entry["critical_path_mean_us"] <= 0.0:
                failures.append(
                    f"dag depth={depth} rate={rate}: no critical path "
                    f"recorded for completed graphs")
            if entry["stretch"] < DAG_STRETCH_FLOOR - 1e-9:
                failures.append(
                    f"dag depth={depth} rate={rate}: stretch "
                    f"{entry['stretch']:.3f}x fell below the "
                    f"{DAG_STRETCH_FLOOR}x dependency floor (makespan "
                    f"beat the critical path)")

    resilience = serve.get("resilience", {})
    for rate_key, entry in resilience.items():
        if not isinstance(entry, dict) or "standard" not in entry:
            continue
        off, on = entry["none"], entry["standard"]
        print(f"serve: faults={rate_key} true goodput off "
              f"{off['true_goodput_rps']:.0f} rps vs on "
              f"{on['true_goodput_rps']:.0f} rps, availability "
              f"{on['availability'] * 100:.1f}% "
              f"(floor {RESILIENCE_AVAILABILITY_FLOOR * 100:.0f}%)")
        if float(rate_key) == 0:
            continue
        if on["availability"] < RESILIENCE_AVAILABILITY_FLOOR:
            failures.append(
                f"faults={rate_key}: policies-on availability "
                f"{on['availability']:.3f} fell below the "
                f"{RESILIENCE_AVAILABILITY_FLOOR} floor")
        if (on["true_goodput_rps"]
                <= off["true_goodput_rps"] * RESILIENCE_GOODPUT_RATIO_FLOOR):
            failures.append(
                f"faults={rate_key}: policies-on true goodput "
                f"{on['true_goodput_rps']:.0f} rps does not clear the "
                f"policies-off run ({off['true_goodput_rps']:.0f} rps)")

    replica_faults = serve.get("replica_faults", {})
    for name, entry in replica_faults.items():
        if not isinstance(entry, dict) or "static" not in entry:
            continue
        static, auto = entry["static"], entry["autoscale"]
        print(f"serve: replica-faults={name} static "
              f"{static['goodput_rps']:.0f} rps "
              f"(avail {static['availability'] * 100:.1f}%) vs autoscale "
              f"{auto['goodput_rps']:.0f} rps "
              f"(avail {auto['availability'] * 100:.1f}%, "
              f"x{entry['goodput_ratio']:.2f}, floor "
              f"{AUTOSCALE_GOODPUT_RATIO_FLOOR}x)")
        for fleet, stats in (("static", static), ("autoscale", auto)):
            if stats["availability"] < REPLICA_FAULT_AVAILABILITY_FLOOR:
                failures.append(
                    f"replica-faults={name}: {fleet} availability "
                    f"{stats['availability']:.3f} fell below the "
                    f"{REPLICA_FAULT_AVAILABILITY_FLOOR} floor")
        if entry["goodput_ratio"] < AUTOSCALE_GOODPUT_RATIO_FLOOR:
            failures.append(
                f"replica-faults={name}: autoscale goodput ratio "
                f"{entry['goodput_ratio']:.2f}x fell below the "
                f"{AUTOSCALE_GOODPUT_RATIO_FLOOR}x static-fleet floor")

    kernels = json.loads(kernels_path.read_text())
    compiler = kernels.get("compiler", {})
    for n, entry in compiler.items():
        if n == "nb1":
            continue
        print(f"compiler: N={n} cold {entry['cold_compile_s'] * 1e3:.2f} ms "
              f"({entry['cold_us_per_cmd']:.2f} us/cmd, ceiling "
              f"{COMPILE_US_PER_CMD_CEILING}), warm "
              f"{entry['warm_hit_s'] * 1e6:.1f} us")
        if entry["cold_us_per_cmd"] > COMPILE_US_PER_CMD_CEILING:
            failures.append(
                f"compiler N={n}: cold compile {entry['cold_us_per_cmd']:.2f} "
                f"us/cmd exceeds the {COMPILE_US_PER_CMD_CEILING} us/cmd "
                f"monolith-rate ceiling")
    if "nb1" in compiler:
        nb1 = compiler["nb1"]
        print(f"compiler: Nb=1 N={nb1['n']} lane-fused speedup "
              f"{nb1['fused_speedup']:.2f}x over per-command "
              f"(floor {NB1_FUSED_SPEEDUP_FLOOR}x)")
        if nb1["fused_speedup"] < NB1_FUSED_SPEEDUP_FLOOR:
            failures.append(
                f"compiler Nb=1: lane-fused run slower than the "
                f"per-command fallback ({nb1['fused_speedup']:.2f}x)")

    engine = kernels["timing_engine"]
    for n, entry in engine.items():
        print(f"engine: N={n} stream {entry['engine_speedup']:.2f}x, "
              f"fused bank {entry['bank_speedup']:.2f}x (floors "
              f"{ENGINE_SPEEDUP_FLOOR}/{BANK_SPEEDUP_FLOOR})")
        if entry["engine_speedup"] < ENGINE_SPEEDUP_FLOOR:
            failures.append(f"N={n}: stream engine slower than the legacy "
                            f"loop ({entry['engine_speedup']:.2f}x)")
        if entry["bank_speedup"] < BANK_SPEEDUP_FLOOR:
            failures.append(f"N={n}: fused functional bank slower than the "
                            f"per-command bank ({entry['bank_speedup']:.2f}x)")
    return failures


def main() -> int:
    failures = check()
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench trajectory ok: every committed floor holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
