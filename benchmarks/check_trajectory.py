"""Regression gate over the committed benchmark trajectory.

Reads the freshly (re)generated ``BENCH_kernels.json`` and
``BENCH_serve.json`` and fails if a headline number fell below its
committed floor:

* serving: batching must sustain >= 2x the naive sequential throughput
  at the overloaded top rate (measured ~3.3x);
* stream engine: the compiled-stream timing loop and the fused
  functional bank must not be slower than the legacy per-command loops
  (measured ~4x / ~7x; the floor is 1.0 with headroom for CI noise);
* shared bus: the contention model must report real utilization and
  never beat the independent-channel upper bound.

Run by the ``bench-trajectory`` CI job after executing both benches::

    PYTHONPATH=src python benchmarks/bench_timing_engine.py
    PYTHONPATH=src python benchmarks/bench_serve.py
    python benchmarks/check_trajectory.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Committed floors (generous vs the measured values — they gate
#: regressions, not noise).
SERVE_SPEEDUP_FLOOR = 2.0
ENGINE_SPEEDUP_FLOOR = 1.0
BANK_SPEEDUP_FLOOR = 1.0


def check(kernels_path: Path = REPO_ROOT / "BENCH_kernels.json",
          serve_path: Path = REPO_ROOT / "BENCH_serve.json") -> list:
    failures = []

    serve = json.loads(serve_path.read_text())["serve"]
    top_rate = max(serve["rates"], key=int)
    speedup = serve["rates"][top_rate]["throughput_speedup"]
    print(f"serve: batching speedup at {top_rate} req/s = {speedup:.2f}x "
          f"(floor {SERVE_SPEEDUP_FLOOR}x)")
    if speedup < SERVE_SPEEDUP_FLOOR:
        failures.append(
            f"batching speedup {speedup:.2f}x fell below the committed "
            f"{SERVE_SPEEDUP_FLOOR}x floor")

    shards = serve.get("shards", {})
    for count, entry in shards.get("shared", {}).items():
        if not isinstance(entry, dict):
            continue
        independent = shards["independent"][count]
        print(f"serve: shards={count} shared {entry['throughput_rps']:.0f} "
              f"rps (bus {entry['bus_utilization'] * 100:.1f}%) vs "
              f"independent {independent['throughput_rps']:.0f} rps")
        if entry["bus_utilization"] <= 0.0:
            failures.append(f"shards={count}: shared bus reports no "
                            f"utilization")
        if entry["throughput_rps"] > independent["throughput_rps"] + 1e-6:
            failures.append(f"shards={count}: shared-bus throughput beats "
                            f"the independent upper bound")

    engine = json.loads(kernels_path.read_text())["timing_engine"]
    for n, entry in engine.items():
        print(f"engine: N={n} stream {entry['engine_speedup']:.2f}x, "
              f"fused bank {entry['bank_speedup']:.2f}x (floors "
              f"{ENGINE_SPEEDUP_FLOOR}/{BANK_SPEEDUP_FLOOR})")
        if entry["engine_speedup"] < ENGINE_SPEEDUP_FLOOR:
            failures.append(f"N={n}: stream engine slower than the legacy "
                            f"loop ({entry['engine_speedup']:.2f}x)")
        if entry["bank_speedup"] < BANK_SPEEDUP_FLOOR:
            failures.append(f"N={n}: fused functional bank slower than the "
                            f"per-command bank ({entry['bank_speedup']:.2f}x)")
    return failures


def main() -> int:
    failures = check()
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench trajectory ok: every committed floor holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
