"""Backend speedup harness: python vs numpy across the stack.

Times (a) the golden reference-NTT kernel, (b) an end-to-end functional
``run_ntt`` (mapping + timing engine + functional bank + golden verify)
at N in {1024, 4096} on both compute backends, and (c) the repro.api
facade vs the direct driver path (the envelope overhead budget is <5%),
and writes the measurements to ``BENCH_kernels.json`` at the repo root.

Non-gating: run directly —

    PYTHONPATH=src python benchmarks/bench_backend_speedup.py

or as a pytest smoke target (reduced sizes, no threshold asserts) —

    PYTHONPATH=src python -m pytest benchmarks/bench_backend_speedup.py -s
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from repro.api import NttRequest, Simulator
from repro.arith import NttParams, bit_reverse_permute, find_ntt_prime, use_backend
from repro.mapping import clear_program_cache
from repro.ntt.reference import ntt_dit_bitrev_input
from repro.sim.driver import NttPimDriver

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_kernels.json"


def _best_of(fn, repeats: int, warmup: int = 1) -> float:
    """Best wall time in seconds (warmup also primes the artifact caches,
    so the steady-state number reflects the cached pipeline)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def merge_sections(out_path: Path, results: dict) -> None:
    """Update this bench's sections of the shared benchmark file in
    place — other benches (e.g. bench_timing_engine) own their own
    sections of ``BENCH_kernels.json``."""
    merged = {}
    if out_path.exists():
        merged = json.loads(out_path.read_text())
    merged.update(results)
    out_path.write_text(json.dumps(merged, indent=2) + "\n")


def run(ns=(1024, 4096), kernel_repeats: int = 5, e2e_repeats: int = 3,
        out_path: Path = DEFAULT_OUT) -> dict:
    results = {
        "description": "python vs numpy backend, best-of wall times (s)",
        "kernel_reference_ntt": {},
        "end_to_end_run_ntt": {},
        "facade_overhead": {},
    }
    for n in ns:
        q = find_ntt_prime(n, 32)
        params = NttParams(n, q)
        rng = random.Random(n)
        data = [rng.randrange(q) for _ in range(n)]
        pre_reversed = bit_reverse_permute(list(data))

        entry = {}
        for backend in ("python", "numpy"):
            with use_backend(backend):
                entry[backend] = _best_of(
                    lambda: ntt_dit_bitrev_input(list(pre_reversed), params),
                    kernel_repeats)
        entry["speedup"] = entry["python"] / entry["numpy"]
        results["kernel_reference_ntt"][str(n)] = entry

        entry = {}
        for backend in ("python", "numpy"):
            clear_program_cache()  # same cold/warm treatment per backend
            with use_backend(backend):
                driver = NttPimDriver()
                entry[backend] = _best_of(lambda: driver._run_ntt(data, params),
                                          e2e_repeats)
        entry["speedup"] = entry["python"] / entry["numpy"]
        results["end_to_end_run_ntt"][str(n)] = entry

        # Facade overhead guard: the repro.api envelope (validation,
        # registry dispatch, cache provenance, response building) must
        # stay in the noise vs the direct driver path — budget < 5%.
        driver = NttPimDriver()
        simulator = Simulator(driver.config)
        request = NttRequest(params=params, values=tuple(data))
        # The two paths differ by well under 1 ms, and the stream-fused
        # runs are short enough that machine-state drift between two
        # separate best-of blocks spans several percent — so the guard
        # interleaves the samples (direct/facade back to back each
        # round) and takes best-of over many rounds.
        guard_repeats = max(e2e_repeats, 15)
        for _ in range(3):
            driver._run_ntt(data, params)
            simulator.run(request)
        direct_s = facade_s = float("inf")
        for _ in range(guard_repeats):
            start = time.perf_counter()
            driver._run_ntt(data, params)
            direct_s = min(direct_s, time.perf_counter() - start)
            start = time.perf_counter()
            simulator.run(request)
            facade_s = min(facade_s, time.perf_counter() - start)
        # Budget: the envelope is a fixed few-tens-of-µs cost (request
        # validation, cache provenance, response building), unchanged
        # since it was introduced — but the stream-fused runs it wraps
        # are now ~5x shorter, so the same absolute allowance is 5% of
        # a run instead of the original 2%.
        results["facade_overhead"][str(n)] = {
            "direct_s": direct_s,
            "facade_s": facade_s,
            "overhead_pct": 100.0 * (facade_s / direct_s - 1.0),
            "budget_pct": 5.0,
        }

    merge_sections(out_path, results)
    return results


def _format(results: dict) -> str:
    lines = ["backend speedups (python / numpy, best-of wall time):"]
    for section in ("kernel_reference_ntt", "end_to_end_run_ntt"):
        for n, entry in results[section].items():
            lines.append(
                f"  {section:24s} N={n:>5s}  python={entry['python'] * 1e3:9.3f} ms"
                f"  numpy={entry['numpy'] * 1e3:9.3f} ms"
                f"  speedup={entry['speedup']:7.1f}x")
    for n, entry in results.get("facade_overhead", {}).items():
        lines.append(
            f"  {'facade_overhead':24s} N={n:>5s}  direct={entry['direct_s'] * 1e3:9.3f} ms"
            f"  facade={entry['facade_s'] * 1e3:9.3f} ms"
            f"  overhead={entry['overhead_pct']:+6.2f}% (budget {entry['budget_pct']:.0f}%)")
    return "\n".join(lines)


def test_backend_speedup_smoke(show, tmp_path):
    """Smoke target: reduced sizes, sanity checks only (no perf gates)."""
    results = run(ns=(256,), kernel_repeats=2, e2e_repeats=1,
                  out_path=tmp_path / "BENCH_kernels.json")
    show(_format(results))
    assert (tmp_path / "BENCH_kernels.json").exists()
    for section in ("kernel_reference_ntt", "end_to_end_run_ntt"):
        assert results[section]["256"]["speedup"] > 0
    # Gross-regression tripwire: the 5% budget is judged at the full
    # bench sizes (N=256 wall times are ~ms, so allow generous timing
    # noise here) — a facade that got structurally slower still trips.
    assert results["facade_overhead"]["256"]["overhead_pct"] < 25.0


def main(argv=None) -> int:
    ns = tuple(int(a) for a in (argv or sys.argv[1:])) or (1024, 4096)
    results = run(ns=ns)
    print(_format(results))
    print(f"wrote {DEFAULT_OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
