"""Fig. 7: latency vs polynomial length for Nb in {1, 2, 4, 6} + x86.

Shape requirements: Nb=1 rides the software line; the first auxiliary
buffer is worth ~an order of magnitude; Nb 2->6 is worth 1.5-2.5x and
grows with N.
"""

from repro.experiments import run_fig7


def test_fig7_buffer_sensitivity(benchmark, show):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    show(result.table())
    show(result.plot())
    gains = [f"N={n}: aux x{result.aux_buffer_gain(n):.1f}, "
             f"pipe x{result.pipelining_gain(n):.2f}" for n in result.ns]
    show("\n".join(gains))
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())
