"""Extension bench: design-space exploration of the DRAM geometry the
paper fixes (row-buffer size, atom size)."""

from repro.experiments import run_atom_size_sweep, run_row_size_sweep


def test_row_size_sweep(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_row_size_sweep(n=2048, columns=(8, 16, 32, 64)),
        rounds=1, iterations=1)
    show(result.table())
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())


def test_atom_size_sweep(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_atom_size_sweep(n=2048, atom_bytes=(16, 32, 64)),
        rounds=1, iterations=1)
    show(result.table())
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())
