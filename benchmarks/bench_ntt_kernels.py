"""Microbenchmarks of the software NTT kernels themselves — the
simulator's functional substrate.  These are real wall-clock benches
(the one place pytest-benchmark's repetition earns its keep)."""

import random

from repro.arith import NttParams, bit_reverse_permute, find_ntt_prime
from repro.baselines import numpy_ntt
from repro.ntt import (
    ntt,
    ntt_dit_bitrev_input,
    pease_ntt,
    stockham_ntt,
)

N = 1024
Q = find_ntt_prime(N, 32)
PARAMS = NttParams(N, Q)
RNG = random.Random(0)
DATA = [RNG.randrange(Q) for _ in range(N)]
EXPECTED = ntt(DATA, PARAMS)


def test_kernel_reference_dit(benchmark):
    x = bit_reverse_permute(DATA)
    result = benchmark(lambda: ntt_dit_bitrev_input(list(x), PARAMS))
    assert result == EXPECTED


def test_kernel_numpy(benchmark):
    result = benchmark(lambda: numpy_ntt(DATA, PARAMS))
    assert result == EXPECTED


def test_kernel_pease(benchmark):
    result = benchmark(lambda: pease_ntt(DATA, PARAMS))
    assert result == EXPECTED


def test_kernel_stockham(benchmark):
    result = benchmark(lambda: stockham_ntt(DATA, PARAMS))
    assert result == EXPECTED
