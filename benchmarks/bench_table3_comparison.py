"""Table III: latency and energy vs MeNTT / CryptoPIM / x86 / FPGA.

Shape requirements (not absolute numbers — our substrate is a
simulator): NTT-PIM wins latency at every N; the speedup band over the
best prior PIM straddles the paper's 1.7-17x; energy sits far below
x86/CryptoPIM.
"""

from repro.experiments import PAPER_TABLE3_LATENCY, run_table3


def test_table3_comparison(benchmark, show):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    show(result.table())
    show(result.energy_table())
    speedups = []
    for n in result.ns:
        s = result.speedup_vs_best_prior(n, 6)
        if s is not None:
            speedups.append((n, s))
    show("speedup vs best prior PIM (Nb=6): "
         + ", ".join(f"N={n}: x{s:.1f}" for n, s in speedups))
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())
    # Absolute sanity: within 2x of every published NTT-PIM point.
    for key, ref in PAPER_TABLE3_LATENCY.items():
        assert 0.5 <= result.pim_us[key] / ref <= 2.0
