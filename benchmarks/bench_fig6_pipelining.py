"""Fig. 6: pipelining micro-study per mapping regime.

Shape requirements: pipelining shortens every regime's window, and in
the inter-row regime it also *reduces row activations* (Fig. 6c's
same-row grouping).
"""

from repro.experiments import run_fig6


def test_fig6_pipelining(benchmark, show):
    result = benchmark(run_fig6)
    show(result.table())
    claims = result.check_claims()
    show("\n".join(f"[{'ok' if v else 'FAIL'}] {k}"
                   for k, v in claims.items()))
    assert all(claims.values())
    # The activation cut in inter-row is the headline mechanism.
    assert (result.activations[("inter-row", "pipelined")]
            < result.activations[("inter-row", "baseline")])
