"""Legacy shim so editable installs work without the `wheel` package
(this environment is offline; setuptools' PEP-660 editable path needs
bdist_wheel).  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
