"""Tests for the refresh-overhead analysis."""

import pytest

from repro.arith import NttParams, find_ntt_prime
from repro.dram import HBM2E_TIMING, RefreshParams, refresh_overhead
from repro.sim import NttPimDriver, SimConfig

Q = find_ntt_prime(8192, 32)


class TestRefreshModel:
    def test_zero_run_zero_overhead(self):
        o = refresh_overhead(0, HBM2E_TIMING)
        assert o.refresh_windows == 0
        assert o.overhead_fraction == 0.0

    def test_short_run_no_refresh(self):
        # Well under one tREFI (3.9 us = 4680 cycles at 1200 MHz).
        o = refresh_overhead(1000, HBM2E_TIMING)
        assert o.refresh_windows == 0
        assert o.total_cycles == 1000

    def test_long_run_accumulates_windows(self):
        trefi = HBM2E_TIMING.ns_to_cycles(3900.0)
        o = refresh_overhead(10 * trefi, HBM2E_TIMING)
        assert o.refresh_windows >= 10
        assert o.stall_cycles == o.refresh_windows * HBM2E_TIMING.ns_to_cycles(260.0)

    def test_fixed_point_convergence(self):
        """Stall time itself can cross refresh boundaries."""
        trefi = HBM2E_TIMING.ns_to_cycles(3900.0)
        o = refresh_overhead(100 * trefi, HBM2E_TIMING)
        # Total with stalls must not require more windows than charged.
        import math
        assert math.floor(o.total_cycles / trefi) <= o.refresh_windows + 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RefreshParams(trefi_ns=100.0, trfc_ns=200.0)
        with pytest.raises(ValueError):
            refresh_overhead(-1, HBM2E_TIMING)

    def test_overhead_fraction_bounded(self):
        # tRFC/tREFI ~ 6.7%: overhead can never exceed ~8% incl. reopen.
        o = refresh_overhead(10_000_000, HBM2E_TIMING)
        assert 0.0 < o.overhead_fraction < 0.09


class TestRefreshOnNttRuns:
    """The paper ignores refresh; quantify that the omission is benign."""

    @pytest.mark.parametrize("n", [256, 2048, 8192])
    def test_ntt_refresh_overhead_small(self, n):
        config = SimConfig(functional=False, verify=False)
        run = NttPimDriver(config)._run_ntt([0] * n, NttParams(n, Q))
        o = refresh_overhead(run.cycles, config.timing)
        assert o.overhead_fraction < 0.09

    def test_large_n_still_under_ten_percent(self):
        config = SimConfig(functional=False, verify=False)
        run = NttPimDriver(config)._run_ntt([0] * 8192, NttParams(8192, Q))
        o = refresh_overhead(run.cycles, config.timing)
        assert o.refresh_windows > 0  # long enough to actually refresh
        assert o.overhead_fraction < 0.09
