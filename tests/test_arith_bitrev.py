"""Tests for the bit-reversal permutation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arith import (
    bit_reverse,
    bit_reverse_indices,
    bit_reverse_permute,
    is_power_of_two,
)


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(0, 3) == 0
        assert bit_reverse(0b1, 1) == 0b1

    def test_zero_bits(self):
        assert bit_reverse(0, 0) == 0

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            bit_reverse(8, 3)

    def test_negative_width(self):
        with pytest.raises(ValueError):
            bit_reverse(1, -1)

    def test_indices_n8(self):
        # The classic FFT input order of the paper's Fig. 3.
        assert bit_reverse_indices(8) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_permute_fig3_order(self):
        values = list(range(8))
        assert bit_reverse_permute(values) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_permute_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reverse_permute([1, 2, 3])

    def test_is_power_of_two(self):
        assert all(is_power_of_two(1 << k) for k in range(20))
        assert not any(is_power_of_two(v) for v in (0, -2, 3, 6, 12, 100))


@given(st.integers(min_value=0, max_value=11))
def test_property_involution(log_n):
    n = 1 << log_n
    values = list(range(n))
    assert bit_reverse_permute(bit_reverse_permute(values)) == values


@given(st.integers(min_value=1, max_value=14), st.data())
def test_property_reverse_twice_is_identity(bits, data):
    value = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    assert bit_reverse(bit_reverse(value, bits), bits) == value
