"""Tests for the timing-diagram renderer."""

import pytest

from repro.dram import (
    Command,
    CommandType,
    ComputeTiming,
    HBM2E_ARCH,
    HBM2E_TIMING,
    TimingEngine,
)
from repro.visual import render_timing_diagram


def _schedule():
    cmds = [
        Command(CommandType.ACT, row=0),
        Command(CommandType.CU_READ, row=0, col=0, buf=0),
        Command(CommandType.C1, buf=0, omega0=1, deps=(1,)),
        Command(CommandType.CU_WRITE, row=0, col=0, buf=0, deps=(2,)),
        Command(CommandType.PRE),
    ]
    engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH, compute=ComputeTiming())
    return cmds, engine.simulate(cmds)


class TestTimingDiagram:
    def test_two_lanes_present(self):
        cmds, result = _schedule()
        out = render_timing_diagram(cmds, result.timings)
        assert "I/O |" in out
        assert "C   |" in out

    def test_glyphs_on_correct_lanes(self):
        cmds, result = _schedule()
        out = render_timing_diagram(cmds, result.timings)
        io_line = next(l for l in out.splitlines() if l.startswith("I/O"))
        c_line = next(l for l in out.splitlines() if l.startswith("C  "))
        assert "A" in io_line and "r" in io_line and "w" in io_line
        assert "1" in c_line
        assert "1" not in io_line

    def test_window_clipping(self):
        cmds, result = _schedule()
        out = render_timing_diagram(cmds, result.timings, start_cycle=0,
                                    end_cycle=5)
        io_line = next(l for l in out.splitlines() if l.startswith("I/O"))
        assert "w" not in io_line  # the write happens much later

    def test_scale_compression(self):
        cmds, result = _schedule()
        out = render_timing_diagram(cmds, result.timings, max_width=10)
        assert "1 char =" in out.splitlines()[0]

    def test_length_mismatch_rejected(self):
        cmds, result = _schedule()
        with pytest.raises(ValueError):
            render_timing_diagram(cmds[:-1], result.timings)

    def test_legend_present(self):
        cmds, result = _schedule()
        assert "legend" in render_timing_diagram(cmds, result.timings)
