"""Property/fuzz tests of the timing engine on randomly generated but
protocol-legal command programs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (
    Command,
    CommandType,
    ComputeTiming,
    HBM2E_ARCH,
    HBM2E_TIMING,
    TimingEngine,
)


def _random_legal_program(seed: int, length: int):
    """Generate a random DRAM/PIM program that obeys open-row rules."""
    rng = random.Random(seed)
    cmds = []
    open_row = None
    cmds.append(Command(CommandType.PARAM_WRITE, payload_words=6))
    for _ in range(length):
        choices = []
        if open_row is None:
            choices = ["act"]
        else:
            choices = ["rd", "wr", "c1", "c2", "pre", "rd", "wr"]
        op = rng.choice(choices)
        if op == "act":
            open_row = rng.randrange(64)
            cmds.append(Command(CommandType.ACT, row=open_row))
        elif op == "pre":
            cmds.append(Command(CommandType.PRE))
            open_row = None
        elif op == "rd":
            cmds.append(Command(CommandType.CU_READ, row=open_row,
                                col=rng.randrange(32), buf=rng.randrange(2)))
        elif op == "wr":
            cmds.append(Command(CommandType.CU_WRITE, row=open_row,
                                col=rng.randrange(32), buf=rng.randrange(2)))
        elif op == "c1":
            cmds.append(Command(CommandType.C1, buf=rng.randrange(2),
                                omega0=3))
        elif op == "c2":
            cmds.append(Command(CommandType.C2, buf=0, buf2=1,
                                omega0=3, r_omega=5))
    if open_row is not None:
        cmds.append(Command(CommandType.PRE))
    return cmds


@given(seed=st.integers(min_value=0, max_value=2**31),
       length=st.integers(min_value=1, max_value=120))
@settings(max_examples=60, deadline=None)
def test_property_legal_programs_simulate(seed, length):
    """Every protocol-legal program must simulate without error, with
    strictly increasing issue times and completes >= issues."""
    cmds = _random_legal_program(seed, length)
    engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH, compute=ComputeTiming())
    result = engine.simulate(cmds)
    issues = [t.issue for t in result.timings]
    assert all(b > a for a, b in zip(issues, issues[1:]))
    assert all(t.complete >= t.issue for t in result.timings)
    assert result.total_cycles == max(t.complete for t in result.timings)
    assert result.stats.total_commands == len(cmds)
    assert result.energy_nj > 0


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_property_slower_timing_never_faster(seed):
    """Uniformly relaxing DRAM timing cannot shorten a schedule."""
    from dataclasses import replace
    cmds = _random_legal_program(seed, 60)
    fast = TimingEngine(HBM2E_TIMING, HBM2E_ARCH).simulate(cmds)
    slow_params = replace(HBM2E_TIMING, cl=20, trp=20, tras=44,
                          trcd=20, twr=22, tccd=4)
    slow = TimingEngine(slow_params, HBM2E_ARCH).simulate(cmds)
    assert slow.total_cycles >= fast.total_cycles


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_property_prefix_monotone(seed):
    """Simulating a prefix never takes longer than the whole program."""
    cmds = _random_legal_program(seed, 80)
    engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH)
    full = engine.simulate(cmds)
    # Choose a prefix that leaves no dangling open row: cut after a PRE.
    pre_positions = [i for i, c in enumerate(cmds)
                     if c.ctype is CommandType.PRE]
    if not pre_positions:
        return
    cut = pre_positions[len(pre_positions) // 2] + 1
    prefix = engine.simulate(cmds[:cut])
    assert prefix.total_cycles <= full.total_cycles
