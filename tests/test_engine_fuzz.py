"""Property/fuzz tests of the timing engine on randomly generated but
protocol-legal command programs, including bit-identity of the compiled
command-stream engine against the legacy per-command loop."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (
    Command,
    CommandType,
    ComputeTiming,
    HBM2E_ARCH,
    HBM2E_TIMING,
    TimingEngine,
    cached_stream,
    clear_stream_cache,
    compile_stream,
    stream_cache_info,
)
from repro.sim.driver import (
    cached_schedule,
    clear_schedule_cache,
    schedule_cache_info,
)


def _random_legal_program(seed: int, length: int, banks: int = 1,
                          with_deps: bool = False):
    """Generate a random DRAM/PIM program that obeys open-row rules.

    With ``banks > 1`` commands spread over several banks (each with its
    own open-row state); with ``with_deps`` commands carry random
    backward dependency edges, exercising the engines' stall logic.
    """
    rng = random.Random(seed)
    cmds = []
    open_row = [None] * banks
    cmds.append(Command(CommandType.PARAM_WRITE, payload_words=6))

    def deps():
        if not with_deps or len(cmds) < 2 or rng.random() < 0.5:
            return ()
        count = rng.randrange(1, 3)
        return tuple(sorted({rng.randrange(len(cmds))
                             for _ in range(count)}))

    for _ in range(length):
        bank = rng.randrange(banks)
        if open_row[bank] is None:
            op = "act"
        else:
            op = rng.choice(["rd", "wr", "c1", "c2", "c1n", "pre",
                             "rd", "wr"])
        row = open_row[bank]
        if op == "act":
            open_row[bank] = rng.randrange(64)
            cmds.append(Command(CommandType.ACT, bank=bank,
                                row=open_row[bank], deps=deps()))
        elif op == "pre":
            cmds.append(Command(CommandType.PRE, bank=bank, deps=deps()))
            open_row[bank] = None
        elif op == "rd":
            cmds.append(Command(CommandType.CU_READ, bank=bank, row=row,
                                col=rng.randrange(32), buf=rng.randrange(2),
                                deps=deps()))
        elif op == "wr":
            cmds.append(Command(CommandType.CU_WRITE, bank=bank, row=row,
                                col=rng.randrange(32), buf=rng.randrange(2),
                                deps=deps()))
        elif op == "c1":
            cmds.append(Command(CommandType.C1, bank=bank,
                                buf=rng.randrange(2), omega0=3, deps=deps()))
        elif op == "c1n":
            cmds.append(Command(CommandType.C1N, bank=bank,
                                buf=rng.randrange(2),
                                zetas=tuple(rng.randrange(1, 97)
                                            for _ in range(7)),
                                gs=rng.random() < 0.5, deps=deps()))
        elif op == "c2":
            cmds.append(Command(CommandType.C2, bank=bank, buf=0, buf2=1,
                                omega0=3, r_omega=5, deps=deps()))
    for bank in range(banks):
        if open_row[bank] is not None:
            cmds.append(Command(CommandType.PRE, bank=bank))
    return cmds


@given(seed=st.integers(min_value=0, max_value=2**31),
       length=st.integers(min_value=1, max_value=120))
@settings(max_examples=60, deadline=None)
def test_property_legal_programs_simulate(seed, length):
    """Every protocol-legal program must simulate without error, with
    strictly increasing issue times and completes >= issues."""
    cmds = _random_legal_program(seed, length)
    engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH, compute=ComputeTiming())
    result = engine.simulate(cmds)
    issues = [t.issue for t in result.timings]
    assert all(b > a for a, b in zip(issues, issues[1:]))
    assert all(t.complete >= t.issue for t in result.timings)
    assert result.total_cycles == max(t.complete for t in result.timings)
    assert result.stats.total_commands == len(cmds)
    assert result.energy_nj > 0


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_property_slower_timing_never_faster(seed):
    """Uniformly relaxing DRAM timing cannot shorten a schedule."""
    from dataclasses import replace
    cmds = _random_legal_program(seed, 60)
    fast = TimingEngine(HBM2E_TIMING, HBM2E_ARCH).simulate(cmds)
    slow_params = replace(HBM2E_TIMING, cl=20, trp=20, tras=44,
                          trcd=20, twr=22, tccd=4)
    slow = TimingEngine(slow_params, HBM2E_ARCH).simulate(cmds)
    assert slow.total_cycles >= fast.total_cycles


@given(seed=st.integers(min_value=0, max_value=2**31),
       length=st.integers(min_value=1, max_value=150),
       banks=st.integers(min_value=1, max_value=4),
       with_deps=st.booleans())
@settings(max_examples=80, deadline=None)
def test_property_stream_engine_bit_identical(seed, length, banks, with_deps):
    """The compiled-stream engine reproduces the legacy per-command loop
    bit for bit: per-command issue/complete timings, stats counters and
    energy_nj — across banks, dependency edges and every command type
    the generator emits."""
    cmds = _random_legal_program(seed, length, banks=banks,
                                 with_deps=with_deps)
    engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH, compute=ComputeTiming())
    legacy = engine.simulate(cmds)
    stream = compile_stream(cmds, HBM2E_ARCH)
    streamed = engine.simulate_stream(stream)
    assert streamed.timings == legacy.timings
    assert streamed.stats == legacy.stats
    assert streamed.energy_nj == legacy.energy_nj
    assert streamed.total_cycles == legacy.total_cycles


def test_stream_engine_negative_row_parity():
    """Negative ACT rows are pathological but constructible; both
    engines must treat them identically (no sentinel collisions)."""
    engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH, compute=ComputeTiming())
    ok = [Command(CommandType.ACT, row=-1), Command(CommandType.PRE)]
    legacy = engine.simulate(ok)
    streamed = engine.simulate_stream(compile_stream(ok, HBM2E_ARCH))
    assert streamed.timings == legacy.timings
    bad = [Command(CommandType.ACT, row=-1), Command(CommandType.ACT, row=5)]
    import pytest
    from repro.errors import MappingError
    with pytest.raises(MappingError, match="while row -1 is open"):
        engine.simulate(bad)
    with pytest.raises(MappingError, match="while row -1 is open"):
        engine.simulate_stream(compile_stream(bad, HBM2E_ARCH))


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None)
def test_property_stream_roundtrips_through_schedule_cache(seed):
    """Stream compilation shares the schedule cache's structural keys:
    the same program hits both caches on replay, and the cached schedule
    equals a direct legacy simulation."""
    cmds = _random_legal_program(seed, 90, banks=2, with_deps=True)
    clear_schedule_cache()
    clear_stream_cache()
    compute = ComputeTiming()
    from repro.dram.energy import HBM2E_ENERGY
    first = cached_schedule(cmds, HBM2E_TIMING, HBM2E_ARCH, compute,
                            HBM2E_ENERGY)
    assert stream_cache_info()["misses"] == 1
    assert schedule_cache_info()["misses"] == 1
    again = cached_schedule(cmds, HBM2E_TIMING, HBM2E_ARCH, compute,
                            HBM2E_ENERGY)
    assert again is first  # schedule cache hit, no recompute
    assert schedule_cache_info()["hits"] == 1
    # A fresh schedule under a different timing recompiles nothing: the
    # stream comes back from its own cache.
    clear_schedule_cache()
    cached_schedule(cmds, HBM2E_TIMING, HBM2E_ARCH, compute, HBM2E_ENERGY)
    assert stream_cache_info()["hits"] >= 1
    stream = cached_stream(cmds, HBM2E_ARCH)
    assert stream.commands == tuple(cmds)
    legacy = TimingEngine(HBM2E_TIMING, HBM2E_ARCH,
                          compute=compute).simulate(cmds)
    assert first.timings == legacy.timings
    assert first.stats == legacy.stats
    assert first.energy_nj == legacy.energy_nj


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_property_prefix_monotone(seed):
    """Simulating a prefix never takes longer than the whole program."""
    cmds = _random_legal_program(seed, 80)
    engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH)
    full = engine.simulate(cmds)
    # Choose a prefix that leaves no dangling open row: cut after a PRE.
    pre_positions = [i for i, c in enumerate(cmds)
                     if c.ctype is CommandType.PRE]
    if not pre_positions:
        return
    cut = pre_positions[len(pre_positions) // 2] + 1
    prefix = engine.simulate(cmds[:cut])
    assert prefix.total_cycles <= full.total_cycles
