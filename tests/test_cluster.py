"""Tests for the repro.cluster subsystem: typed replica supervision,
routing, tenant quotas, failure handling and the operator console.

The two load-bearing properties: a one-replica cluster is bit-identical
to a bare ``SimServer`` (ids, records, telemetry — the front-end adds
nothing to the serving model), and every multi-replica run — chaos
included — replays bit-for-bit from its seeds.
"""

import dataclasses

import pytest

from repro.cluster import (
    ClusterFrontend,
    ConsistentHashRouter,
    LeastLoadedRouter,
    QuotaManager,
    Replica,
    TenantQuota,
    WatchdogPolicy,
    derive_fault_plans,
    make_router,
    render_plain,
    watch,
)
from repro.cluster.messages import BreakerQuery, Heartbeat, Submit
from repro.errors import ClusterError
from repro.serve import LoadGenerator, SimServer, make_scenario
from repro.serve.faults import make_fault_plan
from repro.serve.queueing import ServeRequest
from repro.serve.telemetry import STATUS_OK, STATUS_THROTTLED
from repro.sim.driver import SimConfig

NOVERIFY = SimConfig(verify=False)


def _records(results):
    return [dataclasses.asdict(r.record) for r in results]


def _snap(telemetry):
    """Snapshot minus compile-cache keys: the process-wide caches warm
    up across comparison runs, everything else must match exactly."""
    return {k: v for k, v in telemetry.snapshot().items()
            if "cache" not in k}


def _stream(count=40, seed=7, scenario="mixed", rate=30000,
            deadline_us=5000.0, tenants=None):
    gen = LoadGenerator(make_scenario(scenario), rate_rps=rate,
                        count=count, seed=seed, deadline_us=deadline_us,
                        tenants=tenants)
    return gen.requests()


class TestBitIdentity:
    """A one-replica cluster == a bare server, bit for bit."""

    def test_offline_serve_matches_bare_server(self):
        reqs = _stream()
        bare = SimServer(NOVERIFY, num_shards=2)
        cluster = ClusterFrontend(1, NOVERIFY, num_shards=2)
        a = bare.serve(list(reqs))
        b = cluster.serve(list(reqs))
        assert _records(a) == _records(b)
        assert all((x.response.values if x.ok else None)
                   == (y.response.values if y.ok else None)
                   for x, y in zip(a, b))
        assert _snap(bare.telemetry) == _snap(cluster.cluster_telemetry())

    def test_offline_serve_matches_under_chaos(self):
        reqs = _stream(count=50, scenario="chaos")
        bare = SimServer(NOVERIFY, num_shards=2, faults="chaos",
                         fault_seed=5, policy="standard")
        cluster = ClusterFrontend(1, NOVERIFY, num_shards=2,
                                  faults="chaos", fault_seed=5,
                                  policy="standard")
        assert _records(bare.serve(list(reqs))) == \
            _records(cluster.serve(list(reqs)))
        assert _snap(bare.telemetry) == _snap(cluster.cluster_telemetry())

    def test_live_submit_poll_drain_matches_offline(self):
        reqs = _stream()
        offline = ClusterFrontend(1, NOVERIFY, num_shards=2) \
            .serve(list(reqs))
        live = ClusterFrontend(1, NOVERIFY, num_shards=2)
        ids = [live.submit(sreq) for sreq in reqs]
        assert ids == [sreq.request_id for sreq in reqs]
        assert _records(live.drain()) == _records(offline)

    def test_second_session_continues_the_clock(self):
        # The cluster folds its virtual clock forward across sessions
        # exactly like a bare server's monotonic _clock_us.
        reqs = _stream(count=12)
        bare = SimServer(NOVERIFY)
        cluster = ClusterFrontend(1, NOVERIFY)
        first = (_records(bare.serve(list(reqs))),
                 _records(cluster.serve(list(reqs))))
        assert first[0] == first[1]
        again = (_records(bare.serve(list(reqs))),
                 _records(cluster.serve(list(reqs))))
        assert again[0] == again[1]
        # Arrivals really were offset, not restarted.
        assert again[0][0]["arrival_us"] > first[0][0]["arrival_us"]


class TestChaosReplay:
    def test_four_replica_chaos_replays_bit_identical(self):
        reqs = _stream(count=50, scenario="chaos", deadline_us=8000.0)

        def run():
            fe = ClusterFrontend(4, NOVERIFY, num_shards=2,
                                 faults="chaos", fault_seed=5,
                                 policy="standard")
            return _records(fe.serve(list(reqs)))

        first, second = run(), run()
        assert first == second
        assert len({r["replica"] for r in first}) > 1

    def test_fault_plans_derive_per_replica(self):
        base = make_fault_plan("chaos", 11)
        plans = derive_fault_plans(base, 3)
        assert plans[0].seed == 11  # replica 0 keeps the base seed
        assert len({p.seed for p in plans}) == 3
        assert all(p.profile is base.profile for p in plans)
        assert derive_fault_plans(None, 3) == [None, None, None]

    def test_explicit_fault_plans_length_checked(self):
        with pytest.raises(ClusterError):
            ClusterFrontend(2, NOVERIFY, fault_plans=[None])


class TestRouting:
    def test_hash_same_key_same_replica(self):
        router = ConsistentHashRouter(4)
        candidates = [0, 1, 2, 3]
        key = ("ntt", 256, 12289, 3, False)
        picks = {router.route(key, i, now_us=0.0, candidates=candidates,
                              loads={}) for i in range(20)}
        assert len(picks) == 1

    def test_hash_stability_under_membership_change(self):
        router = ConsistentHashRouter(4)
        keys = [("k", i) for i in range(200)]
        before = {k: router.route(k, 0, now_us=0.0,
                                  candidates=[0, 1, 2, 3], loads={})
                  for k in keys}
        router.remove_replica(3)
        after = {k: router.route(k, 0, now_us=0.0,
                                 candidates=[0, 1, 2], loads={})
                 for k in keys}
        # Only keys replica 3 owned may move; everyone else stays put.
        assert all(after[k] == owner for k, owner in before.items()
                   if owner != 3)
        router.add_replica(3)
        restored = {k: router.route(k, 0, now_us=0.0,
                                    candidates=[0, 1, 2, 3], loads={})
                    for k in keys}
        assert restored == before

    def test_hash_routes_around_down_replicas(self):
        router = ConsistentHashRouter(2)
        key = ("ntt", 512, 12289, 3, False)
        home = router.route(key, 0, now_us=0.0, candidates=[0, 1],
                            loads={})
        other = 1 - home
        assert router.route(key, 0, now_us=0.0, candidates=[other],
                            loads={}) == other

    def test_least_loaded_deterministic_tie_break(self):
        router = LeastLoadedRouter()
        # Equal loads: lowest replica id wins, every time.
        assert router.route(None, 1, now_us=0.0, candidates=[2, 0, 1],
                            loads={0: 3, 1: 3, 2: 3}) == 0
        assert router.route(None, 2, now_us=0.0, candidates=[2, 1],
                            loads={1: 5, 2: 5}) == 1

    def test_least_loaded_affinity_epoch(self):
        router = LeastLoadedRouter(epoch_us=1000.0)
        key = ("ntt", 256, 12289, 3, False)
        first = router.route(key, 1, now_us=0.0, candidates=[0, 1],
                             loads={0: 0, 1: 5})
        assert first == 0
        # Load flips, but the lease pins the shape until the epoch ends.
        assert router.route(key, 2, now_us=500.0, candidates=[0, 1],
                            loads={0: 50, 1: 0}) == 0
        # Epoch over: re-evaluate.
        assert router.route(key, 3, now_us=1500.0, candidates=[0, 1],
                            loads={0: 50, 1: 0}) == 1

    def test_least_loaded_lease_skips_down_replica(self):
        router = LeastLoadedRouter(epoch_us=1000.0)
        key = ("k",)
        assert router.route(key, 1, now_us=0.0, candidates=[0, 1],
                            loads={0: 0, 1: 1}) == 0
        assert router.route(key, 2, now_us=10.0, candidates=[1],
                            loads={0: 0, 1: 1}) == 1

    def test_batching_affinity_preserved_across_replicas(self):
        # One hot shape through 4 replicas must coalesce exactly as it
        # does through 1: routing by merge key keeps the whole shape on
        # one replica, so batch occupancy survives the scale-out.
        reqs = _stream(count=30, scenario="skewed", rate=100000,
                       deadline_us=None)
        solo = ClusterFrontend(1, NOVERIFY, max_banks=8)
        solo.serve(list(reqs))
        spread = ClusterFrontend(4, NOVERIFY, max_banks=8)
        spread.serve(list(reqs))
        assert (spread.cluster_snapshot()["mean_batch_occupancy"]
                >= solo.cluster_snapshot()["mean_batch_occupancy"] - 1e-9)

    def test_make_router(self):
        assert isinstance(make_router("hash", 2), ConsistentHashRouter)
        assert isinstance(make_router("least-loaded", 2),
                          LeastLoadedRouter)
        router = LeastLoadedRouter()
        assert make_router(router, 2) is router
        with pytest.raises(ClusterError):
            make_router("random", 2)

    def test_no_candidates_raises(self):
        with pytest.raises(ClusterError):
            ConsistentHashRouter(2).route(("k",), 1, now_us=0.0,
                                          candidates=[], loads={})
        with pytest.raises(ClusterError):
            LeastLoadedRouter().route(("k",), 1, now_us=0.0,
                                      candidates=[], loads={})

    # -- membership churn battery (autoscale / failover remaps) --------

    def test_scale_out_moves_only_new_owner_keys(self):
        router = ConsistentHashRouter(4)
        keys = [("k", i) for i in range(300)]
        before = {k: router.route(k, 0, now_us=0.0,
                                  candidates=[0, 1, 2, 3], loads={})
                  for k in keys}
        router.add_replica(4)
        after = {k: router.route(k, 0, now_us=0.0,
                                 candidates=[0, 1, 2, 3, 4], loads={})
                 for k in keys}
        moved = {k for k in keys if after[k] != before[k]}
        # Minimal remap: every moved key landed on the new replica, and
        # the new replica picked up a non-trivial share.
        assert moved and all(after[k] == 4 for k in moved)
        assert len(moved) < len(keys)

    def test_churn_sequence_keeps_unaffected_keys_pinned(self):
        router = ConsistentHashRouter(4)
        keys = [("shape", i, 12289) for i in range(200)]
        members = [0, 1, 2, 3]

        def table():
            return {k: router.route(k, 0, now_us=0.0,
                                    candidates=list(members), loads={})
                    for k in keys}

        snapshot = table()
        for step, (op, replica) in enumerate(
                [("rm", 1), ("add", 4), ("rm", 0), ("add", 1)]):
            if op == "rm":
                router.remove_replica(replica)
                members.remove(replica)
                gone, came = replica, None
            else:
                router.add_replica(replica)
                members.append(replica)
                gone, came = None, replica
            fresh = table()
            for k in keys:
                if fresh[k] == snapshot[k]:
                    continue
                # A key may move only off the removed replica or onto
                # the added one — never between two surviving replicas.
                assert snapshot[k] == gone or fresh[k] == came, (
                    step, k, snapshot[k], fresh[k])
            snapshot = fresh

    def test_least_loaded_remove_purges_leases(self):
        router = LeastLoadedRouter(epoch_us=1e6)
        key = ("hot",)
        assert router.route(key, 1, now_us=0.0, candidates=[0, 1],
                            loads={0: 5, 1: 0}) == 1
        router.remove_replica(1)
        router.add_replica(1)
        # The lease died with the membership change: the reborn replica
        # must win on load, not on a stale pin.
        assert router.route(key, 2, now_us=10.0, candidates=[0, 1],
                            loads={0: 0, 1: 50}) == 0

    def test_supervised_least_loaded_skips_dark_replicas(self):
        # Under crash chaos the frontend only offers UP replicas with a
        # clean link as candidates; leases onto dark replicas are
        # re-evaluated, so every request still lands exactly once.
        fe = ClusterFrontend(
            3, NOVERIFY, router="least-loaded",
            replica_faults="crashy", replica_fault_seed=7,
            watchdog=WatchdogPolicy(heartbeat_us=100.0, suspect_after=1,
                                    down_after=2, restart_delay_us=300.0))
        results = fe.serve(_stream(count=120, scenario="skewed",
                                   rate=20000, deadline_us=None))
        ids = [r.record.request_id for r in results]
        assert len(ids) == len(set(ids)) == 120
        assert all(r.ok for r in results)
        assert fe.health.failovers > 0


class TestQuotas:
    def test_token_bucket_throttles_and_refills(self):
        quotas = QuotaManager({"t": TenantQuota(rate_rps=1000.0,
                                                burst=2.0)})
        assert quotas.admit("t", 0.0) == (True, None)
        assert quotas.admit("t", 0.0) == (True, None)
        ok, retry = quotas.admit("t", 0.0)
        assert not ok
        assert retry == pytest.approx(1000.0)  # one token @ 1000 rps
        # One virtual millisecond later, exactly one token refilled.
        assert quotas.admit("t", 1000.0) == (True, None)
        assert quotas.admit("t", 1000.0)[0] is False

    def test_priority_overdraft(self):
        quotas = QuotaManager({"t": TenantQuota(
            rate_rps=1000.0, burst=1.0, overdraft=2.0, min_priority=1)})
        assert quotas.admit("t", 0.0, priority=0) == (True, None)
        assert quotas.admit("t", 0.0, priority=0)[0] is False
        # Urgent traffic may overdraw by two tokens...
        assert quotas.admit("t", 0.0, priority=1) == (True, None)
        assert quotas.admit("t", 0.0, priority=1) == (True, None)
        # ...then it too sheds.
        assert quotas.admit("t", 0.0, priority=1)[0] is False

    def test_unmetered_without_quota(self):
        quotas = QuotaManager()
        assert all(quotas.admit("anyone", 0.0) == (True, None)
                   for _ in range(100))

    def test_default_quota_applies_to_unnamed_tenants(self):
        quotas = QuotaManager({"*": TenantQuota(rate_rps=1000.0,
                                                burst=1.0)})
        assert quotas.admit("a", 0.0) == (True, None)
        assert quotas.admit("a", 0.0)[0] is False
        assert quotas.admit("b", 0.0) == (True, None)  # own bucket

    def test_invalid_quota_raises(self):
        with pytest.raises(ClusterError):
            TenantQuota(rate_rps=0.0, burst=2.0)
        with pytest.raises(ClusterError):
            TenantQuota(rate_rps=100.0, burst=0.5)
        with pytest.raises(ClusterError):
            TenantQuota(rate_rps=100.0, burst=2.0, overdraft=-1.0)

    def test_noisy_neighbor_shed_at_the_front_door(self):
        reqs = _stream(count=120, scenario="skewed", rate=50000,
                       deadline_us=None,
                       tenants=LoadGenerator.noisy_neighbor())
        fe = ClusterFrontend(2, NOVERIFY, router="least-loaded",
                             quotas={"hog": TenantQuota(rate_rps=5000.0,
                                                        burst=5.0)})
        results = fe.serve(list(reqs))
        assert len(results) == len(reqs)
        throttled = [r for r in results
                     if r.record.status == STATUS_THROTTLED]
        assert throttled and all(r.record.tenant == "hog"
                                 for r in throttled)
        assert all(not r.ok for r in throttled)
        # The neighbors ride through untouched.
        stats = fe.quota_stats()
        assert stats["hog"]["throttled"] == len(throttled)
        for tenant, s in stats.items():
            if tenant != "hog":
                assert s["throttled"] == 0
        # Front-door drops are attributed to no replica (-1).
        assert all(r.record.replica == -1 for r in throttled)
        snap = fe.cluster_snapshot()
        assert snap["throttled"] == len(throttled)

    def test_throttled_result_pollable_before_drain(self):
        fe = ClusterFrontend(1, NOVERIFY,
                             quotas={"*": TenantQuota(rate_rps=100.0,
                                                      burst=1.0)})
        reqs = _stream(count=3, rate=1000000, deadline_us=None)
        ids = [fe.submit(sreq) for sreq in reqs]
        polled = [fe.poll(i) for i in ids]
        assert polled[1] is not None
        assert polled[1].record.status == STATUS_THROTTLED
        drained = fe.drain()
        assert [r.record.request_id for r in drained] == ids


class TestFailureHandling:
    def test_route_around_poisoned_replica(self):
        reqs = _stream(count=30, scenario="skewed", rate=20000,
                       deadline_us=None)
        # Find where the ring sends the hot shape, and poison exactly
        # that replica so traffic *must* route around it.
        from repro.api import merge_key
        probe = ConsistentHashRouter(2)
        home = probe.route(merge_key(reqs[0].request), 0, now_us=0.0,
                           candidates=[0, 1], loads={})
        plans = [None, None]
        plans[home] = make_fault_plan("rate:1.0", 3)
        fe = ClusterFrontend(2, NOVERIFY, router="hash",
                             fault_plans=plans, policy="standard")
        saw_down = False
        for sreq in reqs:
            fe.submit(sreq)
            fe.advance(sreq.arrival_us + 3000.0)
            saw_down = saw_down or not \
                fe.replicas[home].send(BreakerQuery(fe.now_us)).up
        results = fe.drain()
        assert saw_down  # the breaker lift took the replica dark
        done = [r for r in results if r.record.status == STATUS_OK]
        assert done  # the cluster stayed available throughout
        # Nothing the poisoned replica touched ever completed; route-
        # around delivered every completion from the healthy one.
        assert {r.record.replica for r in done} == {1 - home}
        assert any(r.record.replica == home for r in results
                   if r.record.status != STATUS_OK)

    def test_unknown_message_raises(self):
        replica = Replica(0, NOVERIFY)
        with pytest.raises(ClusterError):
            replica.send(object())

    def test_replica_translates_cluster_time(self):
        replica = Replica(0, NOVERIFY)
        reply = replica.send(Submit(sreq=ServeRequest(
            request=_stream(count=1)[0].request, arrival_us=123.0,
            request_id=9)))
        assert reply.request_id == 9
        hb = replica.send(Heartbeat(now_us=123.0))
        assert hb.replica == 0 and hb.outstanding == 1

    def test_poll_unknown_id_returns_none(self):
        fe = ClusterFrontend(2, NOVERIFY)
        assert fe.poll(999) is None
        fe.submit(_stream(count=1)[0])
        assert fe.poll(999) is None

    def test_replica_count_validated(self):
        with pytest.raises(ClusterError):
            ClusterFrontend(0, NOVERIFY)


class TestConsole:
    def test_render_plain_one_row_per_replica(self):
        fe = ClusterFrontend(3, NOVERIFY)
        fe.serve(_stream(count=10))
        frame = render_plain(fe)
        lines = frame.splitlines()
        assert "replica" in lines[1]
        assert [ln.split()[0] for ln in lines[3:6]] == ["r0", "r1", "r2"]
        assert all("up" in ln for ln in lines[3:6])

    def test_render_plain_shows_tenant_counters(self):
        fe = ClusterFrontend(1, NOVERIFY,
                             quotas={"*": TenantQuota(rate_rps=100.0,
                                                      burst=1.0)})
        for sreq in _stream(count=4, rate=1000000, deadline_us=None,
                            tenants=(("solo", 1.0),)):
            fe.submit(sreq)
        assert "tenants: solo:" in render_plain(fe)

    def test_watch_emits_frames_and_matches_offline(self):
        reqs = _stream()
        offline = ClusterFrontend(2, NOVERIFY, num_shards=2) \
            .serve(list(reqs))
        frames = []
        fe = ClusterFrontend(2, NOVERIFY, num_shards=2)
        results = watch(fe, list(reqs), every_us=400.0,
                        emit=frames.append, max_frames=2)
        # Watching the run does not change it.
        assert _records(results) == _records(offline)
        # max_frames caps the stream (plus the one post-drain frame).
        assert len(frames) == 3
        assert all("replica" in f for f in frames)

    def test_watch_textual_falls_back_when_missing(self, monkeypatch):
        import repro.cluster.console as console
        monkeypatch.setattr(console, "have_textual", lambda: False)
        notices = []
        fe = ClusterFrontend(1, NOVERIFY)
        results = watch(fe, _stream(count=5), every_us=500.0,
                        mode="textual", emit=notices.append,
                        max_frames=0)
        assert len(results) == 5
        assert "textual is not installed" in notices[0]

    def test_watch_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            watch(ClusterFrontend(1, NOVERIFY), [], mode="curses")


class TestClusterTelemetry:
    def test_merged_records_keep_replica_attribution(self):
        fe = ClusterFrontend(3, NOVERIFY, num_shards=2)
        fe.serve(_stream(count=30))
        merged = fe.cluster_telemetry()
        by_replica = {r.replica for r in merged.records}
        assert by_replica <= {0, 1, 2}
        assert len(by_replica) > 1
        assert len(merged.records) == 30

    def test_snapshot_counts_replicas(self):
        fe = ClusterFrontend(2, NOVERIFY)
        fe.serve(_stream(count=10))
        snap = fe.cluster_snapshot()
        # Front-door telemetry + two replicas contribute parts.
        assert snap["replicas"] == 3
        assert snap["requests"] == 10

    def test_heartbeats_cover_every_replica(self):
        fe = ClusterFrontend(3, NOVERIFY)
        fe.serve(_stream(count=6))
        replies = fe.heartbeats(want_snapshot=True)
        assert [hb.replica for hb in replies] == [0, 1, 2]
        assert all(hb.snapshot is not None for hb in replies)
        assert sum(hb.snapshot["completed"] for hb in replies) <= 6
