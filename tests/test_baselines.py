"""Tests for the x86 software baseline and the comparator models."""

import random

import pytest

from repro.arith import NttParams, find_ntt_prime
from repro.baselines import (
    CpuNttModel,
    CryptoPimModel,
    FpgaNttModel,
    MeNttModel,
    numpy_ntt,
)
from repro.ntt import ntt

Q = find_ntt_prime(4096, 32)


class TestNumpyNtt:
    @pytest.mark.parametrize("n", [8, 64, 256, 1024])
    def test_matches_reference(self, n):
        rng = random.Random(n)
        params = NttParams(n, Q)
        x = [rng.randrange(Q) for _ in range(n)]
        assert numpy_ntt(x, params) == ntt(x, params)

    def test_rejects_wide_modulus(self):
        q = find_ntt_prime(8, 40)
        with pytest.raises(ValueError):
            numpy_ntt([0] * 8, NttParams(8, q))

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            numpy_ntt([1, 2, 3], NttParams(8, 12289))


class TestCpuModel:
    PAPER = {256: 84.81, 512: 168.96, 1024: 349.41,
             2048: 736.92, 4096: 1503.31}
    PAPER_E = {256: 570.60, 512: 1179.52, 1024: 2483.77,
               2048: 5273.07, 4096: 10864.64}

    def test_latency_within_10pct_of_paper(self):
        model = CpuNttModel()
        for n, ref in self.PAPER.items():
            assert abs(model.latency_us(n) - ref) / ref < 0.10

    def test_energy_within_10pct_of_paper(self):
        model = CpuNttModel()
        for n, ref in self.PAPER_E.items():
            assert abs(model.energy_nj(n) - ref) / ref < 0.10

    def test_monotone_in_n(self):
        model = CpuNttModel()
        lats = [model.latency_us(n) for n in (256, 512, 1024, 2048, 4096, 8192)]
        assert lats == sorted(lats)

    def test_butterfly_count(self):
        assert CpuNttModel().butterflies(1024) == 512 * 10

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            CpuNttModel().latency_us(100)


class TestComparators:
    def test_published_points_returned_exactly(self):
        mentt = MeNttModel()
        assert mentt.latency_us(256) == 23.0
        assert mentt.energy_nj(1024) == 0.868
        cpim = CryptoPimModel()
        assert cpim.latency_us(2048) == 363.90
        fpga = FpgaNttModel()
        assert fpga.latency_us(512) == 47.64

    def test_mentt_max_n_restriction(self):
        mentt = MeNttModel()
        assert not mentt.supports(2048)
        assert mentt.latency_us(2048) is None
        assert mentt.energy_nj(4096) is None

    def test_cryptopim_fixed_modulus_flag(self):
        assert CryptoPimModel().fixed_modulus
        assert not MeNttModel().fixed_modulus

    def test_fpga_extrapolation_scales_nlogn(self):
        fpga = FpgaNttModel()
        t2048 = fpga.latency_us(2048)
        t4096 = fpga.latency_us(4096)
        assert t2048 is not None and t4096 is not None
        assert 1.8 < t4096 / t2048 < 2.4

    def test_mentt_extrapolation_within_range(self):
        # 128 is unpublished but within capability.
        t = MeNttModel().latency_us(128)
        assert t is not None and 0 < t < 23.0 * 2

    def test_cryptopim_capacity_jump(self):
        """The published 1024 -> 2048 latency jump (crossbar refills)."""
        cpim = CryptoPimModel()
        assert cpim.latency_us(2048) > 3 * cpim.latency_us(1024)

    def test_energy_extrapolation_follows_latency(self):
        fpga = FpgaNttModel()
        e = fpga.energy_nj(2048)
        assert e is not None and e > fpga.energy_nj(1024)

    def test_bitwidths(self):
        assert MeNttModel().bitwidth == 14
        assert CryptoPimModel().bitwidth == 16
        assert FpgaNttModel().bitwidth == 16
