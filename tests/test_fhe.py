"""Tests for the RLWE/BFV layer and the PIM-backed FHE accelerator."""

import random

import pytest

from repro.arith import find_ntt_prime
from repro.fhe import PimFheAccelerator, RlweParams, RlweScheme
from repro.ntt import NegacyclicParams, naive_negacyclic_convolution
from repro.pim import PimParams
from repro.sim import SimConfig

N = 64
Q = find_ntt_prime(N, 32, negacyclic=True)
T = 257


def scheme(seed=0):
    return RlweScheme(RlweParams(N, Q, T), random.Random(seed))


class TestRlweParams:
    def test_delta(self):
        p = RlweParams(N, Q, T)
        assert p.delta == Q // T

    def test_bad_plaintext_modulus(self):
        with pytest.raises(ValueError):
            RlweParams(N, Q, 1)
        with pytest.raises(ValueError):
            RlweParams(N, Q, Q + 1)

    def test_even_q_rejected(self):
        with pytest.raises(ValueError):
            RlweParams(N, 65536, 257)


class TestEncryptDecrypt:
    def test_roundtrip(self):
        s = scheme(1)
        keys = s.keygen()
        msg = [random.Random(2).randrange(T) for _ in range(N)]
        ct = s.encrypt(msg, keys)
        assert s.decrypt(ct, keys) == msg

    def test_zero_message(self):
        s = scheme(3)
        keys = s.keygen()
        ct = s.encrypt([0] * N, keys)
        assert s.decrypt(ct, keys) == [0] * N

    def test_short_message_padded(self):
        s = scheme(4)
        keys = s.keygen()
        ct = s.encrypt([5, 6], keys)
        out = s.decrypt(ct, keys)
        assert out[:2] == [5, 6]
        assert all(v == 0 for v in out[2:])

    def test_message_too_long(self):
        s = scheme(5)
        keys = s.keygen()
        with pytest.raises(ValueError):
            s.encrypt([0] * (N + 1), keys)

    def test_ciphertexts_randomized(self):
        s = scheme(6)
        keys = s.keygen()
        msg = [1] * N
        a = s.encrypt(msg, keys)
        b = s.encrypt(msg, keys)
        assert a.c0.coefficients != b.c0.coefficients

    def test_noise_budget_positive_fresh(self):
        s = scheme(7)
        keys = s.keygen()
        msg = [9] * N
        ct = s.encrypt(msg, keys)
        assert s.noise_budget_bits(ct, keys, msg) > 1.0


class TestHomomorphicOps:
    def test_addition(self):
        s = scheme(8)
        keys = s.keygen()
        rng = random.Random(9)
        m1 = [rng.randrange(T) for _ in range(N)]
        m2 = [rng.randrange(T) for _ in range(N)]
        ct = s.add(s.encrypt(m1, keys), s.encrypt(m2, keys))
        assert s.decrypt(ct, keys) == [(a + b) % T for a, b in zip(m1, m2)]

    def test_subtraction(self):
        s = scheme(10)
        keys = s.keygen()
        m1 = [5] * N
        m2 = [3] * N
        ct = s.encrypt(m1, keys) - s.encrypt(m2, keys)
        assert s.decrypt(ct, keys) == [2] * N

    def test_plain_multiplication_by_monomial(self):
        """ct * X rotates coefficients with negacyclic wraparound."""
        s = scheme(11)
        keys = s.keygen()
        msg = [1, 2] + [0] * (N - 2)
        plain = [0, 1] + [0] * (N - 2)  # the polynomial X
        ct = s.multiply_plain(s.encrypt(msg, keys), plain)
        out = s.decrypt(ct, keys)
        assert out[1] == 1 and out[2] == 2

    def test_plain_multiplication_by_constant(self):
        s = scheme(12)
        keys = s.keygen()
        msg = [7] + [0] * (N - 1)
        ct = s.multiply_plain(s.encrypt(msg, keys), [3])
        assert s.decrypt(ct, keys)[0] == 21 % T


class TestPimFheAccelerator:
    def _ring(self):
        return NegacyclicParams(256, find_ntt_prime(256, 32, negacyclic=True))

    def test_multiply_matches_schoolbook(self):
        ring = self._ring()
        acc = PimFheAccelerator(ring, SimConfig(pim=PimParams(nb_buffers=2)))
        rng = random.Random(13)
        a = [rng.randrange(ring.q) for _ in range(ring.n)]
        b = [rng.randrange(ring.q) for _ in range(ring.n)]
        assert acc.multiply(a, b) == naive_negacyclic_convolution(a, b, ring.q)

    def test_stats_accumulate(self):
        ring = self._ring()
        acc = PimFheAccelerator(ring, SimConfig(pim=PimParams(nb_buffers=4)))
        a = [1] * ring.n
        b = [2] * ring.n
        acc.multiply(a, b)
        assert acc.stats.transforms == 3  # 2 forward + 1 inverse
        assert acc.stats.total_latency_us > 0
        assert acc.stats.total_energy_nj > 0
        assert len(acc.stats.per_call_us) == 3

    def test_forward_inverse_roundtrip(self):
        ring = self._ring()
        acc = PimFheAccelerator(ring)
        rng = random.Random(14)
        a = [rng.randrange(ring.q) for _ in range(ring.n)]
        assert acc.inverse(acc.forward(a)) == a
