"""Unit and property tests for Barrett reduction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arith import BarrettContext, barrett_reduce


class TestBarrett:
    def test_reduce_basic(self):
        assert barrett_reduce(45, 7) == 45 % 7  # 45 <= q^2 = 49

    def test_reduce_zero(self):
        assert barrett_reduce(0, 7) == 0

    def test_reduce_at_q_squared(self):
        q = 12289
        assert BarrettContext(q).reduce(q * q) == 0

    def test_modulus_one_rejected(self):
        with pytest.raises(ValueError):
            BarrettContext(1)

    def test_out_of_range_rejected(self):
        ctx = BarrettContext(7)
        with pytest.raises(ValueError):
            ctx.reduce(50)  # > q^2 = 49
        with pytest.raises(ValueError):
            ctx.reduce(-1)

    def test_mul(self):
        ctx = BarrettContext(12289)
        assert ctx.mul(12345, 67890) == (12345 * 67890) % 12289

    def test_even_modulus_works(self):
        # Unlike Montgomery, Barrett has no parity restriction.
        ctx = BarrettContext(100)
        assert ctx.mul(73, 91) == (73 * 91) % 100


@given(
    q=st.integers(min_value=2, max_value=2**32),
    a=st.integers(min_value=0, max_value=2**32),
    b=st.integers(min_value=0, max_value=2**32),
)
def test_property_barrett_mul(q, a, b):
    assert BarrettContext(q).mul(a, b) == (a * b) % q
