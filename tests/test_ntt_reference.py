"""Tests for the golden-model NTT kernels."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import NttParams, bit_reverse_permute
from repro.ntt import (
    cyclic_convolution,
    direct_ntt,
    intt,
    naive_cyclic_convolution,
    ntt,
    ntt_dif_natural_input,
    ntt_dit_bitrev_input,
    recursive_ntt,
)

Q = 12289  # supports cyclic NTT up to N = 4096


def params(n, q=Q):
    return NttParams(n, q)


class TestAgainstDirectDFT:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_ntt_matches_direct(self, n):
        rng = random.Random(n)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert ntt(x, p) == direct_ntt(x, p)

    @pytest.mark.parametrize("n", [2, 4, 8, 32])
    def test_dit_bitrev_input_semantics(self, n):
        """DIT on bit-reversed input == natural-order DFT."""
        rng = random.Random(n + 1)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert ntt_dit_bitrev_input(bit_reverse_permute(x), p) == direct_ntt(x, p)

    @pytest.mark.parametrize("n", [2, 4, 8, 32])
    def test_dif_transpose_relation(self, n):
        """DIF(natural) followed by bit reversal == DFT."""
        rng = random.Random(n + 2)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert bit_reverse_permute(ntt_dif_natural_input(x, p)) == direct_ntt(x, p)

    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_recursive_matches_iterative(self, n):
        rng = random.Random(n + 3)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert recursive_ntt(bit_reverse_permute(x), p) == ntt(x, p)


class TestInverse:
    @pytest.mark.parametrize("n", [2, 16, 256, 1024])
    def test_roundtrip(self, n):
        rng = random.Random(n)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert intt(ntt(x, p), p) == x

    def test_ntt_of_delta_is_all_ones(self):
        p = params(16)
        delta = [1] + [0] * 15
        assert ntt(delta, p) == [1] * 16

    def test_ntt_of_ones_is_scaled_delta(self):
        n = 16
        p = params(n)
        out = ntt([1] * n, p)
        assert out[0] == n % Q
        assert all(v == 0 for v in out[1:])

    def test_linearity(self):
        n = 64
        rng = random.Random(7)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        y = [rng.randrange(Q) for _ in range(n)]
        fx, fy = ntt(x, p), ntt(y, p)
        fsum = ntt([(a + b) % Q for a, b in zip(x, y)], p)
        assert fsum == [(a + b) % Q for a, b in zip(fx, fy)]


class TestConvolution:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_matches_naive(self, n):
        rng = random.Random(n)
        p = params(n)
        a = [rng.randrange(Q) for _ in range(n)]
        b = [rng.randrange(Q) for _ in range(n)]
        assert cyclic_convolution(a, b, p) == naive_cyclic_convolution(a, b, Q)

    def test_convolution_with_delta_is_identity(self):
        n = 32
        p = params(n)
        rng = random.Random(9)
        a = [rng.randrange(Q) for _ in range(n)]
        delta = [1] + [0] * (n - 1)
        assert cyclic_convolution(a, delta, p) == a

    def test_convolution_with_shifted_delta_rotates(self):
        n = 16
        p = params(n)
        a = list(range(n))
        shift = [0] * n
        shift[3] = 1
        expected = [(a[(i - 3) % n]) % Q for i in range(n)]
        assert cyclic_convolution(a, shift, p) == expected

    def test_naive_length_mismatch(self):
        with pytest.raises(ValueError):
            naive_cyclic_convolution([1, 2], [1], Q)


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ntt([1, 2, 3], params(4))

    def test_inputs_reduced_mod_q(self):
        p = params(8)
        x = list(range(8))
        shifted = [v + 3 * Q for v in x]
        assert ntt(shifted, p) == ntt(x, p)


@given(
    log_n=st.integers(min_value=1, max_value=7),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_property_roundtrip(log_n, seed):
    n = 1 << log_n
    p = params(n)
    rng = random.Random(seed)
    x = [rng.randrange(Q) for _ in range(n)]
    assert intt(ntt(x, p), p) == x


@given(
    log_n=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_property_convolution_theorem(log_n, seed):
    n = 1 << log_n
    p = params(n)
    rng = random.Random(seed)
    a = [rng.randrange(Q) for _ in range(n)]
    b = [rng.randrange(Q) for _ in range(n)]
    assert cyclic_convolution(a, b, p) == naive_cyclic_convolution(a, b, Q)
