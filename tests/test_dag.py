"""Tests for DAG workloads: :class:`repro.api.DagRequest` construction
and golden model, the ``kyber_kem`` workload, the builders in
:mod:`repro.dag`, and dependency-aware serving in :mod:`repro.serve`.

The load-bearing properties:

* a served DAG never executes a stage before every parent has settled,
  yet ready stages from concurrent graphs coalesce into shared
  multi-bank dispatches;
* ``drain()`` returns whole graphs in submission order, each
  bit-identical (sink values, per-node outputs, per-stage responses) to
  a standalone golden ``Simulator.run`` of the same ``DagRequest``;
* everything replays deterministically — same seed, same chaos, same
  records — and a cluster failover recovers an in-flight graph exactly
  once.
"""

import random

import pytest

from repro.api import DagEdge, DagRequest, KyberKemRequest, NttRequest, \
    Simulator, workload_names
from repro.arith import NttParams, find_ntt_prime
from repro.dag import ckks_mul_chain, kem_batch, ntt_pipeline
from repro.errors import RequestValidationError
from repro.ntt import naive_negacyclic_convolution
from repro.serve import ServeRequest, SimServer
from repro.sim.driver import SimConfig

N = 256
Q = find_ntt_prime(N, 32)
PARAMS = NttParams(N, Q)
CONFIG = SimConfig()


def _poly(seed: int, n: int = N, q: int = Q):
    rng = random.Random(seed)
    return tuple(rng.randrange(q) for _ in range(n))


def _chain(*, seed: int = 0, stages: int = 3, n: int = N) -> DagRequest:
    return ntt_pipeline(n, stages=stages, seed=seed)


class TestDagRequestConstruction:
    def test_registered_workload(self):
        assert "dag" in workload_names()
        assert "kyber_kem" in workload_names()

    def test_cycle_rejected(self):
        nodes = (("a", NttRequest(params=PARAMS, values=_poly(1))),
                 ("b", NttRequest(params=PARAMS, values=None)))
        with pytest.raises(RequestValidationError, match="cycle"):
            DagRequest(nodes=nodes,
                       edges=(DagEdge("a", "b", "values"),
                              DagEdge("b", "a", "values")))

    def test_self_edge_rejected(self):
        nodes = (("a", NttRequest(params=PARAMS, values=_poly(1))),)
        with pytest.raises(RequestValidationError):
            DagRequest(nodes=nodes, edges=(DagEdge("a", "a", "values"),))

    def test_unknown_node_reference_rejected(self):
        nodes = (("a", NttRequest(params=PARAMS, values=_poly(1))),)
        with pytest.raises(RequestValidationError, match="unknown"):
            DagRequest(nodes=nodes, edges=(DagEdge("a", "ghost", "values"),))

    def test_duplicate_node_name_rejected(self):
        nodes = (("a", NttRequest(params=PARAMS, values=_poly(1))),
                 ("a", NttRequest(params=PARAMS, values=_poly(2))))
        with pytest.raises(RequestValidationError, match="duplicate"):
            DagRequest(nodes=nodes)

    def test_nested_dag_rejected(self):
        inner = _chain(seed=1, stages=2)
        with pytest.raises(RequestValidationError, match="nests"):
            DagRequest(nodes=(("inner", inner),))

    def test_bad_edge_field_rejected_by_validate(self):
        nodes = (("a", NttRequest(params=PARAMS, values=_poly(1))),
                 ("b", NttRequest(params=PARAMS, values=None)))
        dag = DagRequest(nodes=nodes,
                         edges=(DagEdge("a", "b", "no_such_field"),))
        with pytest.raises(RequestValidationError, match="no_such_field"):
            dag.validate()

    def test_topological_order_and_parents(self):
        dag = _chain(seed=2, stages=4)
        order = dag.topological_order()
        assert order == ["stage0", "stage1", "stage2", "stage3"]
        assert dag.parents("stage0") == ()
        assert dag.parents("stage2") == ("stage1",)
        assert dag.sink_name == "stage3"


class TestGoldenModel:
    def test_pipeline_matches_manual_stage_run(self):
        """The golden "dag" run equals running each stage by hand and
        feeding parent outputs forward."""
        dag = _chain(seed=3, stages=3)
        sim = Simulator(CONFIG)
        response = sim.run(dag)
        values = None
        for name, node in dag.nodes:
            bound = dag.bound_request(
                name, {p: values for p in dag.parents(name)})
            stage = sim.run(bound)
            values = tuple(stage.values)
        assert list(response.values) == list(values)
        assert response.workload == "dag"
        assert response.metrics["stages"] == 3
        assert response.metrics["critical_path_us"] > 0
        assert response.verified == all(
            r.verified for r in response.raw["responses"].values())

    def test_parallel_graph_critical_path(self):
        """Independent chains: critical path is one chain, total
        latency of the golden (sequential host) run is all of them."""
        dag = kem_batch(4, seed=1)
        response = Simulator(CONFIG).run(dag)
        assert response.metrics["parallelism"] == pytest.approx(4.0)

    def test_forward_inverse_roundtrip(self):
        values = _poly(7)
        dag = DagRequest(nodes=(
            ("fwd", NttRequest(params=PARAMS, values=values)),
            ("inv", NttRequest(params=PARAMS, values=None, inverse=True))),
            edges=(DagEdge("fwd", "inv", "values"),))
        response = Simulator(CONFIG).run(dag)
        assert list(response.values) == list(values)


class TestKyberKemWorkload:
    def test_matches_schoolbook_ring_product(self):
        n, q, depth = 256, 3329, 2
        a, b = _poly(11, n, q), _poly(12, n, q)
        response = Simulator(CONFIG).run(
            KyberKemRequest(a=a, b=b, n=n, q=q, depth=depth))
        assert list(response.values) == \
            naive_negacyclic_convolution(list(a), list(b), q)
        assert response.verified
        assert response.metrics["sub_transforms"] == 3 * depth
        assert response.cycles > 0 and response.latency_us > 0

    def test_invalid_ring_rejected(self):
        with pytest.raises(RequestValidationError):
            KyberKemRequest(a=(0,) * 256, b=(0,) * 256,
                            n=256, q=3329, depth=1).validate()
        with pytest.raises(RequestValidationError):
            KyberKemRequest(a=(0,) * 10, b=(0,) * 10,
                            n=256, q=3329, depth=2).validate()


class TestBuilders:
    def test_builders_are_deterministic(self):
        assert ckks_mul_chain(64, limbs=2, depth=2, seed=5) == \
            ckks_mul_chain(64, limbs=2, depth=2, seed=5)
        assert ntt_pipeline(256, stages=3, seed=5) != \
            ntt_pipeline(256, stages=3, seed=6)

    def test_ckks_chain_shape(self):
        dag = ckks_mul_chain(64, limbs=2, depth=2, seed=0)
        assert len(dag.nodes) == 12  # limbs * depth * (mul, relin, rescale)
        response = Simulator(CONFIG).run(dag)
        assert response.metrics["parallelism"] == pytest.approx(2.0)


class TestServedDags:
    def test_served_bit_identical_to_golden(self):
        """Sink values, per-node outputs AND per-stage responses of a
        served DAG equal the standalone golden run."""
        dag = _chain(seed=21, stages=4)
        golden = Simulator(CONFIG).run(dag)
        server = SimServer(CONFIG, num_shards=2, max_banks=4)
        result = server.serve([dag])[0]
        assert result.ok
        assert list(result.response.values) == list(golden.values)
        assert [list(o) for o in result.response.outputs] == \
            [list(o) for o in golden.outputs]
        for name, _node in dag.nodes:
            assert list(result.stages[name].response.values) == \
                list(golden.raw["responses"][name].values)

    def test_no_stage_starts_before_parents_settle(self):
        dags = [ckks_mul_chain(64, limbs=2, depth=2, seed=s)
                for s in (1, 2)]
        server = SimServer(CONFIG, window_us=20.0, max_banks=8)
        for result, dag in zip(server.serve(dags), dags):
            assert result.ok
            for name, _ in dag.nodes:
                record = result.stages[name].record
                for parent in dag.parents(name):
                    done = result.stages[parent].record.completion_us
                    assert record.start_us >= done - 1e-9
                    assert record.arrival_us >= done - 1e-9

    def test_ready_stages_coalesce_across_dags(self):
        """Same-shape stages of concurrent graphs merge into shared
        multi-bank dispatches — the whole point of serving graphs
        through the batching window instead of running them solo."""
        dags = [_chain(seed=s, stages=3) for s in (31, 32)]
        server = SimServer(CONFIG, window_us=50.0, max_banks=8)
        results = server.serve(dags)
        banks = [res.stages[name].record.group_banks
                 for res, dag in zip(results, dags) for name, _ in dag.nodes]
        assert max(banks) >= 2
        golden = Simulator(CONFIG)
        for res, dag in zip(results, dags):
            assert list(res.response.values) == \
                list(golden.run(dag).values)

    def test_drain_returns_submission_order(self):
        dags = [_chain(seed=s, stages=2) for s in (41, 42, 43)]
        plain = NttRequest(params=PARAMS, values=_poly(44))
        server = SimServer(CONFIG)
        ids = [server.submit(item, arrival_us=float(i))
               for i, item in enumerate(dags + [plain])]
        results = server.drain()
        assert len(results) == 4
        assert [r.record.request_id for r in results] == ids
        assert [r.record.workload for r in results] == \
            ["dag", "dag", "dag", "ntt"]

    def test_submit_drain_equals_offline_serve(self):
        dags = [_chain(seed=s, stages=3) for s in (51, 52)]
        sreqs = [ServeRequest(request=d, arrival_us=10.0 * i,
                              request_id=i + 1)
                 for i, d in enumerate(dags)]
        offline = SimServer(CONFIG).serve(sreqs)
        live = SimServer(CONFIG)
        for sreq in sreqs:
            live.submit(sreq)
        online = live.drain()
        assert [r.record for r in online] == [r.record for r in offline]
        assert [list(r.response.values) for r in online] == \
            [list(r.response.values) for r in offline]

    def test_dag_record_and_telemetry(self):
        dag = _chain(seed=61, stages=3)
        server = SimServer(CONFIG)
        result = server.serve([dag])[0]
        record = result.record
        assert record.workload == "dag"
        assert record.critical_path_us > 0
        assert record.latency_us >= record.critical_path_us - 1e-9
        stage_records = [result.stages[name].record for name, _ in dag.nodes]
        assert record.cycles == sum(r.cycles for r in stage_records)
        snap = server.telemetry.snapshot()
        # Stages never inflate the headline counts.
        assert snap["requests"] == 1 and snap["completed"] == 1
        dag_rollup = snap["dag"]
        assert dag_rollup["dags"] == 1 and dag_rollup["stages"] == 3
        assert dag_rollup["critical_path_stretch"] >= 1.0 - 1e-9
        assert "dag workloads" in server.telemetry.summary()

    def test_deadline_judged_on_whole_graph(self):
        dag = _chain(seed=71, stages=3)
        server = SimServer(CONFIG)
        result = server.serve([ServeRequest(request=dag,
                                            deadline_us=1.0)])[0]
        assert result.ok  # stages carry no deadline; the graph's is a miss
        assert result.record.deadline_missed


class TestServedDagDeterminism:
    def _chaos_run(self, seed: int = 9):
        dags = [ckks_mul_chain(64, limbs=2, depth=1, seed=s)
                for s in (1, 2, 3)]
        server = SimServer(CONFIG, num_shards=2, faults="chaos",
                           fault_seed=seed, policy="standard")
        results = server.serve([
            ServeRequest(request=d, arrival_us=25.0 * i, request_id=i + 1)
            for i, d in enumerate(dags)])
        return [(r.record.request_id, r.record.status,
                 r.record.completion_us, r.record.attempts,
                 tuple(r.response.values) if r.ok else None)
                for r in results]

    def test_same_seed_chaos_replays_bit_identical(self):
        assert self._chaos_run(seed=9) == self._chaos_run(seed=9)

    def test_failed_stage_cascades_to_descendants(self):
        """A stage failure fails every descendant (they can never run)
        and the whole graph, with the culprit named — while completed
        sibling stages keep their results."""
        dag = _chain(seed=81, stages=3)
        # A breaker-free policy with zero retries and a 100% failure
        # plan: the root stage fails, everything downstream cascades.
        server = SimServer(CONFIG, faults="rate:1.0", fault_seed=3,
                           policy="none")
        result = server.serve([dag])[0]
        assert not result.ok
        assert result.record.status == "failed"
        assert "stage" in result.record.error
        statuses = [result.stages[name].record.status
                    for name, _ in dag.nodes]
        assert statuses == ["failed"] * 3
        assert "upstream stage" in result.stages["stage1"].record.error


class TestClusterDags:
    def test_cluster_dag_values_match_golden(self):
        from repro.cluster import ClusterFrontend
        dags = [_chain(seed=s, stages=3) for s in (91, 92, 93, 94)]
        cluster = ClusterFrontend(replicas=2)
        results = cluster.serve([
            ServeRequest(request=d, arrival_us=20.0 * i)
            for i, d in enumerate(dags)])
        golden = Simulator(CONFIG)
        for res, dag in zip(results, dags):
            assert res.ok
            assert list(res.response.values) == list(golden.run(dag).values)
        # A graph executes whole on one replica: every stage record of
        # one dag carries the same replica stamp.
        snap = cluster.cluster_telemetry().snapshot()
        assert snap["dag"]["dags"] == 4 and snap["dag"]["completed"] == 4

    def test_supervised_failover_recovers_inflight_dags_exactly_once(self):
        """Replica crashes mid-stream: orphaned in-flight graphs are
        re-submitted to healthy replicas exactly once — every graph
        completes once with golden values, none is double-served."""
        from repro.cluster import ClusterFrontend
        dags = [_chain(seed=s, stages=2) for s in range(100, 112)]
        cluster = ClusterFrontend(replicas=3, replica_faults="crashy",
                                  replica_fault_seed=3)
        results = cluster.serve([
            ServeRequest(request=d, arrival_us=1000.0 * i)
            for i, d in enumerate(dags)])
        assert len(results) == len(dags)
        golden = Simulator(CONFIG)
        for res, dag in zip(results, dags):
            assert res.ok
            assert list(res.response.values) == list(golden.run(dag).values)
        assert cluster.health.failovers >= 1
        # Exactly once: pooled records contain one live (non-orphaned)
        # whole-graph record per submitted graph.
        records = cluster.cluster_telemetry().records
        live = [r for r in records
                if r.workload == "dag" and r.status == "ok"]
        assert len(live) == len(dags)

    def test_supervised_replay_is_deterministic(self):
        from repro.cluster import ClusterFrontend

        def run():
            dags = [_chain(seed=s, stages=2) for s in range(100, 108)]
            cluster = ClusterFrontend(replicas=3, replica_faults="crashy",
                                      replica_fault_seed=3)
            results = cluster.serve([
                ServeRequest(request=d, arrival_us=1000.0 * i)
                for i, d in enumerate(dags)])
            return [(r.record.status, r.record.completion_us,
                     tuple(r.response.values) if r.ok else None)
                    for r in results]

        assert run() == run()
