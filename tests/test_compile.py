"""The pass-based IR compiler: per-pass bit-identity against the legacy
per-command engine, the merge passes against the legacy mergers, Nb=1
lane fusion, and the public ``repro.compile`` API surface."""

import itertools
import random

import numpy as np
import pytest

from repro.api import (
    BankSpec,
    BatchRequest,
    CompiledProgram,
    FheOpRequest,
    MultiBankRequest,
    NegacyclicRequest,
    NttRequest,
    Simulator,
    compile_request,
)
from repro.arith import NttParams, find_ntt_prime
from repro.arith.bitrev import bit_reverse_permute
from repro.compile import DEFAULT_PASSES, PASS_NAMES, normalize_passes
from repro.compile.ir import StreamIR
from repro.compile.lower import concat_irs, interleave_irs
from repro.dram import HBM2E_ARCH, HBM2E_TIMING, TimingEngine, compile_stream
from repro.errors import RequestValidationError
from repro.mapping.program_cache import cyclic_program
from repro.ntt import NegacyclicParams
from repro.pim.bank_pim import PimBank
from repro.pim.params import PimParams
from repro.sim.batch import concat_programs
from repro.sim.driver import NttPimDriver, SimConfig
from repro.sim.multibank import (
    TransformSpec,
    interleave_programs,
    normalize_specs,
)


def _bank_state(bank, base_row, n):
    cu = bank.cu
    return {
        "result": bank.read_polynomial(base_row, n),
        "buffers": [bank.buffers.read(b)
                    for b in range(bank.buffers.count)],
        "counters": (cu.bu_ops, cu.load_uops, cu.store_uops,
                     cu.twiddles_generated),
        "reg_a": cu.reg_a,
    }


def _run_legacy(config, q, commands, data, base_row, n):
    bank = PimBank(config.arch, config.pim)
    bank.set_parameters(q)
    bank.load_polynomial(0, list(data))
    bank.run(commands)
    return _bank_state(bank, base_row, n)


def _run_stream(config, q, stream, data, base_row, n):
    bank = PimBank(config.arch, config.pim)
    bank.set_parameters(q)
    bank.load_polynomial(0, list(data))
    bank.run_stream(stream)
    return _bank_state(bank, base_row, n)


class TestPassNormalization:
    def test_default_is_every_pass(self):
        assert normalize_passes(None) == set(PASS_NAMES)
        assert DEFAULT_PASSES == frozenset(PASS_NAMES)

    def test_string_means_singleton(self):
        assert normalize_passes("rename") == {"rename"}

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown compiler pass"):
            normalize_passes({"rename", "bogus"})


class TestPerPassBitIdentity:
    """Every subset of the optimization pipeline must execute and time
    bit-identically to the legacy per-command engine."""

    @pytest.mark.parametrize("off", [()] + [(p,) for p in PASS_NAMES])
    def test_each_pass_toggled_off(self, off):
        n = 256
        q = find_ntt_prime(n, 32)
        config = SimConfig()
        program = cyclic_program(NttParams(n, q), config.arch, config.pim)
        passes = set(PASS_NAMES) - set(off)
        stream = compile_stream(program.commands, config.arch, passes=passes)
        data = bit_reverse_permute([(7 * i + 3) % q for i in range(n)])
        legacy = _run_legacy(config, q, program.commands, data,
                             program.result_base_row, n)
        fused = _run_stream(config, q, stream, data,
                            program.result_base_row, n)
        assert fused == legacy
        # ... and the timing engine sees the same schedule either way.
        engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH,
                              compute=config.pim.compute_timing())
        by_cmd = engine.simulate(program.commands)
        by_stream = engine.simulate_stream(stream)
        assert by_stream.total_cycles == by_cmd.total_cycles
        assert by_stream.energy_nj == by_cmd.energy_nj
        assert by_stream.stats == by_cmd.stats

    def test_all_subsets_on_a_small_program(self):
        n = 64
        q = find_ntt_prime(n, 32)
        config = SimConfig()
        program = cyclic_program(NttParams(n, q), config.arch, config.pim)
        data = bit_reverse_permute([(5 * i + 1) % q for i in range(n)])
        legacy = _run_legacy(config, q, program.commands, data,
                             program.result_base_row, n)
        for r in range(len(PASS_NAMES) + 1):
            for subset in itertools.combinations(PASS_NAMES, r):
                stream = compile_stream(program.commands, config.arch,
                                        passes=set(subset))
                fused = _run_stream(config, q, stream, data,
                                    program.result_base_row, n)
                assert fused == legacy, f"passes={subset}"


class TestLaneFusion:
    """Nb=1 µ-op programs fuse through the lane-granular renaming pass."""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_fuzzed_nb1_equivalence(self, n):
        q = find_ntt_prime(n, 32)
        config = SimConfig(pim=PimParams(nb_buffers=1))
        program = cyclic_program(NttParams(n, q), config.arch, config.pim)
        stream = compile_stream(program.commands, config.arch)
        assert stream.plan is not None, stream.fallback_reason
        assert stream.plan.mode == "lane"
        rng = random.Random(n)
        for _ in range(3):
            data = bit_reverse_permute([rng.randrange(q) for _ in range(n)])
            legacy = _run_legacy(config, q, program.commands, data,
                                 program.result_base_row, n)
            fused = _run_stream(config, q, stream, data,
                                program.result_base_row, n)
            assert fused == legacy

    def test_lane_pass_off_falls_back(self):
        n = 64
        q = find_ntt_prime(n, 32)
        config = SimConfig(pim=PimParams(nb_buffers=1))
        cmds = NttPimDriver(config).map_commands(NttParams(n, q))
        off = compile_stream(cmds, HBM2E_ARCH,
                             passes=set(PASS_NAMES) - {"lane_fuse"})
        assert off.plan is None


class TestMergePasses:
    """interleave/concat on the SoA IR reproduce the legacy command-level
    mergers command for command."""

    def test_interleave_matches_legacy(self):
        n = 256
        config = SimConfig()
        specs = normalize_specs(
            [TransformSpec(kind="ntt",
                           params=NttParams(n, find_ntt_prime(n, 32))),
             TransformSpec(kind="negacyclic",
                           ring=NegacyclicParams(
                               n, find_ntt_prime(n, 32, negacyclic=True)))],
            banks=2)
        programs = [s.program(config, k) for k, s in enumerate(specs)]
        merged_legacy = interleave_programs([p.commands for p in programs])
        ir = interleave_irs([StreamIR.from_commands(p.commands)
                             for p in programs])
        assert ir.materialize_commands() == tuple(merged_legacy)

    def test_concat_matches_legacy(self):
        n = 128
        q = find_ntt_prime(n, 32)
        config = SimConfig()
        program = cyclic_program(NttParams(n, q), config.arch, config.pim)
        merged_legacy = concat_programs([program.commands] * 3)
        ir = concat_irs([StreamIR.from_commands(program.commands)] * 3)
        assert ir.materialize_commands() == tuple(merged_legacy)

    def test_mixed_kind_interleave_matches_two_separate_runs(self):
        n = 256
        q_c = find_ntt_prime(n, 32)
        ring = NegacyclicParams(n, find_ntt_prime(n, 32, negacyclic=True))
        rng = random.Random(42)
        rows = [[rng.randrange(q_c) for _ in range(n)],
                [rng.randrange(ring.q) for _ in range(n)]]
        mixed = MultiBankRequest(
            specs=(BankSpec(params=NttParams(n, q_c)),
                   BankSpec(ring=ring)),
            inputs=tuple(tuple(r) for r in rows))
        merged = Simulator().run(mixed)
        assert merged.verified
        cyc = Simulator().run(NttRequest(params=NttParams(n, q_c),
                                         values=tuple(rows[0])))
        neg = Simulator().run(NegacyclicRequest(ring=ring,
                                                values=tuple(rows[1])))
        assert list(merged.outputs[0]) == list(cyc.values)
        assert list(merged.outputs[1]) == list(neg.values)


class TestCompileRequestApi:
    def test_ntt_request_compiles_fused(self):
        n = 256
        req = NttRequest(params=NttParams(n, find_ntt_prime(n, 32)))
        cp = compile_request(req)
        assert isinstance(cp, CompiledProgram)
        assert cp.fused
        assert cp.ir.n == len(cp.stream.commands)
        assert cp.key is not None
        assert set(cp.passes) == set(PASS_NAMES)
        assert "StreamIR" in cp.describe()

    def test_pass_subset_round_trips(self):
        n = 256
        req = NttRequest(params=NttParams(n, find_ntt_prime(n, 32)))
        cp = compile_request(req, passes={"rename"})
        assert cp.passes == ("rename",)
        assert cp.pass_stats["passes"] == ("rename",)
        # Without the grouping pass every op is its own group.
        assert cp.pass_stats["groups"] == cp.pass_stats["depth"]
        with pytest.raises(ValueError, match="unknown compiler pass"):
            compile_request(req, passes={"bogus"})

    def test_compiled_stream_is_the_one_the_simulator_runs(self):
        Simulator.clear_caches()
        n = 256
        req = NttRequest(params=NttParams(n, find_ntt_prime(n, 32)),
                         values=tuple(range(1, n + 1)))
        compile_request(req)
        response = Simulator().run(req)
        assert response.verified
        assert response.cache["stream"]["misses"] == 0  # compile warmed it

    def test_multibank_request_carries_parts(self):
        n = 256
        q = find_ntt_prime(n, 32)
        req = MultiBankRequest(params=NttParams(n, q),
                               inputs=((1,) * n, (2,) * n))
        cp = compile_request(req)
        assert len(cp.parts) == 2
        assert cp.ir.meta.get("merge") == "interleave"
        assert cp.ir.n == sum(len(part.commands) for part in cp.parts)

    def test_batch_request_concatenates(self):
        n = 128
        q = find_ntt_prime(n, 32)
        req = BatchRequest(params=NttParams(n, q),
                           inputs=((1,) * n, (2,) * n, (3,) * n))
        cp = compile_request(req)
        assert len(cp.parts) == 3
        assert cp.ir.meta.get("merge") == "concat"

    def test_non_stream_request_rejected(self):
        n = 256
        ring = NegacyclicParams(n, find_ntt_prime(n, 32, negacyclic=True))
        req = FheOpRequest(ring=ring, op="forward", a=(1,) * n)
        with pytest.raises(RequestValidationError, match="no stream"):
            compile_request(req)


class TestBankSpec:
    def test_homogeneous_requests_still_work(self):
        n = 256
        q = find_ntt_prime(n, 32)
        req = MultiBankRequest(params=NttParams(n, q),
                               inputs=((1,) * n, (2,) * n))
        req.validate()
        specs = req.bank_specs()
        assert len(specs) == 2
        assert all(s.params.n == n and s.params.q == q for s in specs)

    def test_specs_and_params_are_exclusive(self):
        n = 256
        q = find_ntt_prime(n, 32)
        req = MultiBankRequest(params=NttParams(n, q),
                               specs=(BankSpec(params=NttParams(n, q)),),
                               inputs=((1,) * n,))
        with pytest.raises(RequestValidationError, match="specs"):
            req.validate()

    def test_spec_count_must_match_inputs(self):
        n = 256
        q = find_ntt_prime(n, 32)
        req = MultiBankRequest(specs=(BankSpec(params=NttParams(n, q)),),
                               inputs=((1,) * n, (2,) * n))
        with pytest.raises(RequestValidationError, match="specs"):
            req.validate()

    def test_per_bank_length_checked_against_its_spec(self):
        n = 256
        q = find_ntt_prime(n, 32)
        ring = NegacyclicParams(128, find_ntt_prime(128, 32, negacyclic=True))
        req = MultiBankRequest(specs=(BankSpec(params=NttParams(n, q)),
                                      BankSpec(ring=ring)),
                               inputs=((1,) * n, (2,) * n))  # bank 1 != 128
        with pytest.raises(RequestValidationError, match="bank 1"):
            req.validate()

    def test_bank_spec_needs_exactly_one_kind(self):
        with pytest.raises(RequestValidationError, match="exactly one"):
            BankSpec().validate()

    def test_per_bank_inverse_round_trips(self):
        n = 256
        q = find_ntt_prime(n, 32)
        rng = random.Random(9)
        data = [rng.randrange(q) for _ in range(n)]
        fwd = Simulator().run(NttRequest(params=NttParams(n, q),
                                         values=tuple(data)))
        req = MultiBankRequest(
            specs=(BankSpec(params=NttParams(n, q)),
                   BankSpec(params=NttParams(n, q), inverse=True)),
            inputs=(tuple(data), tuple(fwd.values)))
        response = Simulator().run(req)
        assert response.verified
        assert list(response.outputs[1]) == list(data)


class TestIrConstruction:
    def test_ir_row_matches_columns(self):
        n = 128
        q = find_ntt_prime(n, 32)
        cmds = NttPimDriver().map_commands(NttParams(n, q))
        ir = StreamIR.from_commands(cmds)
        assert ir.n == len(cmds)
        for i in (0, 1, len(cmds) // 2, len(cmds) - 1):
            cmd = cmds[i]
            assert ir.rows[i] == (-1 if cmd.row is None else cmd.row)
            assert ir.bufs[i] == (-1 if cmd.buf is None else cmd.buf)
            assert bool(ir.gs[i]) == cmd.gs
            assert bool(ir.has_omega0[i]) == (cmd.omega0 is not None)
        assert int(ir.zeta_lens.sum()) == sum(len(c.zetas) for c in cmds)
        assert np.array_equal(ir.dep_end - ir.dep_start,
                              np.array([len(c.deps) for c in cmds]))
