"""Tests for regime classification and the command-count forecasts."""

import pytest

from repro.arith import NttParams, find_ntt_prime
from repro.dram import HBM2E_ARCH
from repro.mapping import (
    Regime,
    forecast_multi_buffer,
    forecast_single_buffer,
    profile_regimes,
    regime_of_stage,
)
from repro.pim import PimParams
from repro.sim import NttPimDriver, SimConfig

Q = find_ntt_prime(8192, 32)


class TestRegimeOfStage:
    def test_boundaries(self):
        # Na = 8 -> stages 1..3 intra-atom; R = 256 -> stages 4..8 intra-row.
        assert regime_of_stage(1, HBM2E_ARCH) is Regime.INTRA_ATOM
        assert regime_of_stage(3, HBM2E_ARCH) is Regime.INTRA_ATOM
        assert regime_of_stage(4, HBM2E_ARCH) is Regime.INTRA_ROW
        assert regime_of_stage(8, HBM2E_ARCH) is Regime.INTRA_ROW
        assert regime_of_stage(9, HBM2E_ARCH) is Regime.INTER_ROW

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            regime_of_stage(0, HBM2E_ARCH)


class TestProfile:
    def test_small_n_all_in_row(self):
        p = profile_regimes(256, HBM2E_ARCH)
        assert (p.intra_atom_stages, p.intra_row_stages, p.inter_row_stages) \
            == (3, 5, 0)

    def test_large_n(self):
        p = profile_regimes(8192, HBM2E_ARCH)
        assert (p.intra_atom_stages, p.intra_row_stages, p.inter_row_stages) \
            == (3, 5, 5)
        assert p.total_stages == 13

    def test_inter_row_fraction_grows(self):
        fracs = [profile_regimes(n, HBM2E_ARCH).inter_row_fraction
                 for n in (256, 512, 2048, 8192)]
        assert fracs == sorted(fracs)

    def test_tiny_n(self):
        p = profile_regimes(8, HBM2E_ARCH)
        assert (p.intra_atom_stages, p.intra_row_stages, p.inter_row_stages) \
            == (3, 0, 0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            profile_regimes(100, HBM2E_ARCH)
        with pytest.raises(ValueError):
            profile_regimes(4, HBM2E_ARCH)


@pytest.mark.parametrize("n", [256, 512, 1024, 2048])
@pytest.mark.parametrize("nb", [2, 4, 6])
class TestMultiBufferForecast:
    """The closed-form command mix must match the simulation exactly."""

    def test_forecast_matches_simulation(self, n, nb):
        pim = PimParams(nb_buffers=nb)
        forecast = forecast_multi_buffer(n, HBM2E_ARCH, pim)
        config = SimConfig(pim=pim, functional=False, verify=False)
        run = NttPimDriver(config)._run_ntt([0] * n, NttParams(n, Q))
        counts = run.schedule.stats.command_counts
        assert counts.get("ACT", 0) == forecast.activations
        assert counts.get("CU_READ", 0) == forecast.cu_reads
        assert counts.get("CU_WRITE", 0) == forecast.cu_writes
        assert counts.get("C1", 0) == forecast.c1_ops
        assert counts.get("C2", 0) == forecast.c2_ops


@pytest.mark.parametrize("n", [256, 512, 1024])
class TestSingleBufferForecast:
    def test_forecast_matches_simulation(self, n):
        forecast = forecast_single_buffer(n, HBM2E_ARCH)
        config = SimConfig(pim=PimParams(nb_buffers=1),
                           functional=False, verify=False)
        run = NttPimDriver(config)._run_ntt([0] * n, NttParams(n, Q))
        counts = run.schedule.stats.command_counts
        scalar = sum(counts.get(k, 0) for k in
                     ("LOAD_SCALAR", "BU_SCALAR", "STORE_SCALAR"))
        assert counts.get("ACT", 0) == forecast.activations
        assert counts.get("CU_READ", 0) == forecast.cu_reads
        assert counts.get("CU_WRITE", 0) == forecast.cu_writes
        assert counts.get("C1", 0) == forecast.c1_ops
        assert scalar == forecast.scalar_ops


class TestActivationScaling:
    """Sec. III.C / V arithmetic: grouping divides inter-row ACTs."""

    def test_one_activation_when_fits_in_row(self):
        f = forecast_multi_buffer(256, HBM2E_ARCH, PimParams(nb_buffers=2))
        assert f.activations == 1

    def test_grouping_halves_inter_row_activations(self):
        f2 = forecast_multi_buffer(4096, HBM2E_ARCH, PimParams(nb_buffers=2))
        f4 = forecast_multi_buffer(4096, HBM2E_ARCH, PimParams(nb_buffers=4))
        # Phase A is identical (16 rows); the inter-row part halves.
        inter2 = f2.activations - 16
        inter4 = f4.activations - 16
        assert inter4 < 0.6 * inter2

    def test_single_buffer_is_activation_catastrophe(self):
        f1 = forecast_single_buffer(2048, HBM2E_ARCH)
        f2 = forecast_multi_buffer(2048, HBM2E_ARCH, PimParams(nb_buffers=2))
        assert f1.activations > 5 * f2.activations

    def test_column_traffic_ratio(self):
        """Nb=1 moves ~Na/2 x more atoms per inter-atom stage."""
        f1 = forecast_single_buffer(1024, HBM2E_ARCH)
        f2 = forecast_multi_buffer(1024, HBM2E_ARCH, PimParams(nb_buffers=2))
        assert f1.column_accesses > 3 * f2.column_accesses
