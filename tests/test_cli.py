"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_run_subcommand(self, capsys):
        assert main(["run", "-n", "256", "--nb", "2"]) == 0
        out = capsys.readouterr().out
        assert "N=  256" in out and "verified=yes" in out

    def test_run_with_frequency(self, capsys):
        assert main(["run", "-n", "256", "--freq", "600"]) == 0
        assert "verified=yes" in capsys.readouterr().out

    def test_trace_subcommand(self, capsys):
        assert main(["trace", "-n", "256", "--head", "10"]) == 0
        out = capsys.readouterr().out
        assert "commands:" in out
        assert "bank0" in out
        assert "more)" in out

    def test_table2_subcommand(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Newton" in out
        assert "FAIL" not in out

    def test_fig6_subcommand(self, capsys):
        assert main(["fig6"]) == 0
        assert "inter-row" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestCliFacade:
    """The generic ``run <workload>`` subcommand and its facade flags."""

    def test_run_explicit_ntt_workload(self, capsys):
        assert main(["run", "ntt", "-n", "256"]) == 0
        out = capsys.readouterr().out
        assert "[ntt]" in out and "verified=yes" in out

    def test_run_with_backend_flag(self, capsys):
        assert main(["run", "ntt", "-n", "256", "--backend", "python"]) == 0
        assert "verified=yes" in capsys.readouterr().out

    def test_run_with_cache_info(self, capsys):
        assert main(["run", "ntt", "-n", "256", "--cache-info"]) == 0
        out = capsys.readouterr().out
        assert "program cache" in out
        assert "schedule cache" in out
        assert "backend" in out

    def test_run_batch_workload(self, capsys):
        assert main(["run", "batch", "-n", "256", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "[batch]" in out and "amortization" in out

    def test_run_multibank_workload(self, capsys):
        assert main(["run", "multibank", "-n", "256", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "[multibank]" in out and "speedup" in out

    def test_run_negacyclic_workload(self, capsys):
        assert main(["run", "negacyclic", "-n", "256"]) == 0
        assert "[negacyclic]" in capsys.readouterr().out

    def test_run_fhe_workload(self, capsys):
        assert main(["run", "fhe", "-n", "256", "--native"]) == 0
        out = capsys.readouterr().out
        assert "[fhe]" in out and "transforms" in out

    def test_run_unknown_workload_errors(self, capsys):
        assert main(["run", "not-a-workload", "-n", "256"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "ntt" in err


class TestCliCompile:
    """The ``compile`` subcommand: IR dump + pass toggles, no execution."""

    def test_compile_default_workload(self, capsys):
        assert main(["compile", "-n", "256"]) == 0
        out = capsys.readouterr().out
        assert "StreamIR" in out and "passes:" in out and "plan:" in out

    def test_compile_dump_ir(self, capsys):
        assert main(["compile", "ntt", "-n", "256", "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "CU_READ" in out and "deps (flat)" in out

    def test_compile_pass_subset_falls_back_on_nb1(self, capsys):
        assert main(["compile", "ntt", "-n", "64", "--nb", "1",
                     "--passes", "rename,group,pool"]) == 0
        out = capsys.readouterr().out
        assert "fallback:" in out and "per-command" in out

    def test_compile_multibank(self, capsys):
        assert main(["compile", "multibank", "-n", "256",
                     "--count", "3", "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "3 bank(s)" in out and "merge" in out

    def test_compile_unknown_pass_errors(self, capsys):
        assert main(["compile", "ntt", "-n", "256",
                     "--passes", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown passes" in err and "rename" in err

    def test_compile_unknown_workload_errors(self, capsys):
        assert main(["compile", "fhe", "-n", "256"]) == 2
        assert "unknown compile workload" in capsys.readouterr().err


class TestCliServe:
    def test_serve_single_server(self, capsys):
        assert main(["serve", "--requests", "15", "--rate", "30000",
                     "--no-verify", "--scenario", "mixed"]) == 0
        out = capsys.readouterr().out
        assert "requests       : 15" in out
        assert "latency" in out

    def test_serve_cluster(self, capsys):
        assert main(["serve", "--cluster", "2", "--requests", "15",
                     "--rate", "30000", "--no-verify",
                     "--scenario", "mixed", "--shards", "2",
                     "--router", "least-loaded"]) == 0
        out = capsys.readouterr().out
        assert "cluster        : 2 replicas, router=least-loaded" in out
        assert "requests       : 15" in out

    def test_serve_cluster_watch_plain(self, capsys):
        assert main(["serve", "--cluster", "2", "--requests", "12",
                     "--rate", "30000", "--no-verify", "--watch",
                     "--watch-mode", "plain", "--watch-every-us", "300",
                     "--watch-frames", "2"]) == 0
        out = capsys.readouterr().out
        assert "[watch]" in out
        assert "replica state queue" in out.replace("  ", " ") or \
            "replica" in out  # frame header rendered
        assert "r0" in out and "r1" in out

    def test_serve_cluster_noisy_tenants_quota(self, capsys):
        assert main(["serve", "--cluster", "2", "--requests", "30",
                     "--rate", "50000", "--no-verify",
                     "--tenants", "noisy", "--quota-rps", "8000",
                     "--quota-burst", "4"]) == 0
        out = capsys.readouterr().out
        assert "tenants        : " in out and "hog=" in out
        assert "thr" in out

    def test_serve_cluster_rejects_bad_config(self, capsys):
        assert main(["serve", "--cluster", "2", "--requests", "5",
                     "--quota-rps", "-1"]) == 2
        assert "quota" in capsys.readouterr().err
