"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_run_subcommand(self, capsys):
        assert main(["run", "-n", "256", "--nb", "2"]) == 0
        out = capsys.readouterr().out
        assert "N=  256" in out and "verified=yes" in out

    def test_run_with_frequency(self, capsys):
        assert main(["run", "-n", "256", "--freq", "600"]) == 0
        assert "verified=yes" in capsys.readouterr().out

    def test_trace_subcommand(self, capsys):
        assert main(["trace", "-n", "256", "--head", "10"]) == 0
        out = capsys.readouterr().out
        assert "commands:" in out
        assert "bank0" in out
        assert "more)" in out

    def test_table2_subcommand(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Newton" in out
        assert "FAIL" not in out

    def test_fig6_subcommand(self, capsys):
        assert main(["fig6"]) == 0
        assert "inter-row" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
