"""Tests for the repro.api facade: registry round-trip, request
validation, response-envelope equality with the engine-room entry
points, shared schedule caching and run_many grouping."""

import random
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.api import (
    BatchRequest,
    FheOpRequest,
    MultiBankRequest,
    NegacyclicRequest,
    NttRequest,
    ProgramRequest,
    SimRequest,
    SimResponse,
    Simulator,
    UnknownWorkloadError,
    get_workload,
    register_workload,
    unregister_workload,
    workload_names,
)
from repro.arith import NttParams, find_ntt_prime
from repro.errors import RequestValidationError
from repro.ntt import NegacyclicParams
from repro.pim import PimParams
from repro.sim import NttPimDriver, SimConfig, schedule_cache_info
from repro.sim.batch import _run_batch
from repro.sim.multibank import _run_multibank

N = 256
Q = find_ntt_prime(N, 32)
QN = find_ntt_prime(N, 32, negacyclic=True)
PARAMS = NttParams(N, Q)
RING = NegacyclicParams(N, QN)


def _data(seed=0, q=Q, n=N):
    rng = random.Random(seed)
    return [rng.randrange(q) for _ in range(n)]


def _legacy(call, *args, **kwargs):
    """Run an engine-room entry point directly."""
    return call(*args, **kwargs)


class TestRegistry:
    def test_builtins_registered(self):
        names = workload_names()
        for name in ("ntt", "negacyclic", "batch", "multibank", "fhe",
                     "program"):
            assert name in names

    def test_round_trip_custom_workload(self):
        @dataclass(frozen=True)
        class EchoRequest(SimRequest):
            workload: ClassVar[str] = "echo-test"
            payload: int = 0

        @register_workload("echo-test")
        def run_echo(config, request):
            return SimResponse(workload="echo-test",
                               values=[request.payload])

        try:
            assert "echo-test" in workload_names()
            response = Simulator().run(EchoRequest(payload=42))
            assert response.values == [42]
            assert response.workload == "echo-test"
            # The envelope is stamped even for third-party workloads.
            assert response.backend in ("python", "numpy")
            assert "schedule" in response.cache
        finally:
            unregister_workload("echo-test")
        assert "echo-test" not in workload_names()

    def test_duplicate_registration_rejected(self):
        @register_workload("dup-test")
        def first(config, request):  # pragma: no cover - never run
            return None

        try:
            with pytest.raises(ValueError, match="already registered"):
                @register_workload("dup-test")
                def second(config, request):  # pragma: no cover
                    return None

            # replace=True is the explicit override.
            @register_workload("dup-test", replace=True)
            def third(config, request):  # pragma: no cover
                return None

            assert get_workload("dup-test") is third
        finally:
            unregister_workload("dup-test")

    def test_unknown_workload(self):
        with pytest.raises(UnknownWorkloadError, match="no-such-workload"):
            get_workload("no-such-workload")

    def test_unknown_workload_message_unmangled(self):
        try:
            get_workload("no-such-workload")
        except UnknownWorkloadError as exc:
            # Must not inherit KeyError's repr-quoting __str__.
            assert str(exc).startswith("unknown workload")


class TestValidation:
    def test_ntt_wrong_length(self):
        with pytest.raises(RequestValidationError, match="expected 256"):
            Simulator().run(NttRequest(params=PARAMS, values=[1, 2, 3]))

    def test_negacyclic_wrong_length(self):
        with pytest.raises(RequestValidationError):
            Simulator().run(NegacyclicRequest(ring=RING, values=[0] * 7))

    def test_batch_empty(self):
        with pytest.raises(RequestValidationError, match="at least one"):
            Simulator().run(BatchRequest(params=PARAMS, inputs=[]))

    def test_multibank_ragged(self):
        with pytest.raises(RequestValidationError, match="bank 1"):
            Simulator().run(MultiBankRequest(
                params=PARAMS, inputs=[[0] * N, [0] * (N - 1)]))

    def test_fhe_unknown_op(self):
        with pytest.raises(RequestValidationError, match="unknown FHE op"):
            Simulator().run(FheOpRequest(ring=RING, op="divide", a=[0] * N))

    def test_fhe_wrong_ring_type(self):
        with pytest.raises(RequestValidationError, match="NegacyclicParams"):
            Simulator().run(FheOpRequest(ring=PARAMS, op="forward",
                                         a=[0] * N))

    def test_fhe_multiply_needs_b(self):
        with pytest.raises(RequestValidationError, match="second operand"):
            Simulator().run(FheOpRequest(ring=RING, op="multiply", a=[0] * N))

    def test_program_empty(self):
        with pytest.raises(RequestValidationError):
            Simulator().run(ProgramRequest(commands=()))

    def test_requests_are_frozen(self):
        request = NttRequest(params=PARAMS, values=_data())
        with pytest.raises(AttributeError):
            request.inverse = True
        assert isinstance(request.values, tuple)


class TestLegacyEquivalence:
    """The facade and the engine-room entry points are bit-identical."""

    def test_ntt_matches_driver(self):
        x = _data(1)
        legacy = _legacy(NttPimDriver()._run_ntt, x, PARAMS)
        response = Simulator().run(NttRequest(params=PARAMS, values=x))
        assert response.values == legacy.output
        assert response.cycles == legacy.cycles
        assert response.energy_nj == legacy.energy_nj
        assert response.command_count == legacy.command_count
        assert response.counters["bu_ops"] == legacy.bu_ops
        assert response.activations == legacy.activations
        assert response.verified and legacy.verified

    def test_intt_matches_driver(self):
        x = _data(2)
        legacy = _legacy(NttPimDriver()._run_intt, x, PARAMS)
        response = Simulator().run(NttRequest(params=PARAMS, values=x,
                                              inverse=True))
        assert response.values == legacy.output
        assert response.cycles == legacy.cycles

    def test_negacyclic_matches_driver(self):
        x = _data(3, q=QN)
        legacy = _legacy(NttPimDriver()._run_negacyclic_ntt, x, RING)
        response = Simulator().run(NegacyclicRequest(ring=RING, values=x))
        assert response.values == legacy.output
        assert response.cycles == legacy.cycles
        assert response.energy_nj == legacy.energy_nj
        assert response.verified

    def test_batch_matches_run_batch(self):
        inputs = [_data(4), _data(5)]
        legacy = _legacy(_run_batch, inputs, PARAMS)
        response = Simulator().run(BatchRequest(params=PARAMS, inputs=inputs))
        assert response.cycles == legacy.cycles
        assert response.metrics["amortization"] == legacy.amortization
        assert response.outputs == legacy.outputs
        assert response.verified and legacy.verified

    def test_multibank_matches_run_multibank(self):
        inputs = [_data(6), _data(7), _data(8)]
        legacy = _legacy(_run_multibank, inputs, PARAMS)
        response = Simulator().run(MultiBankRequest(params=PARAMS,
                                                    inputs=inputs))
        assert response.cycles == legacy.cycles
        assert response.metrics["speedup"] == legacy.speedup
        assert response.metrics["efficiency"] == legacy.efficiency
        assert response.outputs == legacy.outputs
        # Per-bank outputs match individual driver runs.
        for values, out in zip(inputs, response.outputs):
            single = _legacy(NttPimDriver()._run_ntt, values, PARAMS)
            assert out == single.output


class TestScheduleCache:
    def test_batch_hits_schedule_cache_on_repeat(self):
        simulator = Simulator()
        inputs = [_data(10), _data(11)]
        simulator.run(BatchRequest(params=PARAMS, inputs=inputs))
        again = simulator.run(BatchRequest(params=PARAMS, inputs=inputs))
        # Both the merged and the single-shot schedules hit.
        assert again.cache["schedule"]["hits"] >= 2
        assert again.cache["schedule"]["misses"] == 0
        assert again.cache["program"]["misses"] == 0

    def test_multibank_hits_schedule_cache_on_repeat(self):
        simulator = Simulator()
        inputs = [_data(12), _data(13)]
        simulator.run(MultiBankRequest(params=PARAMS, inputs=inputs))
        again = simulator.run(MultiBankRequest(params=PARAMS, inputs=inputs))
        assert again.cache["schedule"]["hits"] >= 2
        assert again.cache["schedule"]["misses"] == 0

    def test_structural_key_shared_across_paths(self):
        """A single-bank NTT and a batch's first slot share one schedule."""
        simulator = Simulator()
        x = _data(14)
        simulator.run(NttRequest(params=PARAMS, values=x))
        batch = simulator.run(BatchRequest(params=PARAMS, inputs=[x]))
        # The batch's single-shot reference schedule is the same program
        # the plain run cached — a structural (not identity) hit.
        assert batch.cache["schedule"]["hits"] >= 1

    def test_cache_info_shape(self):
        info = Simulator().cache_info()
        assert info["backend"] in ("python", "numpy")
        for cache in ("program", "schedule"):
            assert set(info[cache]) == {"entries", "hits", "misses"}
        assert schedule_cache_info()["entries"] >= 0


class TestRunMany:
    def test_grouped_outputs_match_individual_runs(self):
        simulator = Simulator()
        inputs = [_data(i) for i in range(20, 23)]
        requests = [NttRequest(params=PARAMS, values=x) for x in inputs]
        responses = simulator.run_many(requests)
        assert len(responses) == 3
        for x, response in zip(inputs, responses):
            single = simulator.run(NttRequest(params=PARAMS, values=x))
            assert response.values == single.values
            assert response.metrics["group_banks"] == 3
        assert [r.metrics["bank"] for r in responses] == [0, 1, 2]

    def test_grouped_energy_and_counters_split_per_bank(self):
        """Summing run_many responses must not overcount the group."""
        simulator = Simulator()
        inputs = [_data(i) for i in range(24, 27)]
        requests = [NttRequest(params=PARAMS, values=x) for x in inputs]
        responses = simulator.run_many(requests)
        group = responses[0].raw  # shared MultiBankResult
        total_nj = sum(r.energy_nj for r in responses)
        assert total_nj == pytest.approx(group.schedule.energy_nj)
        assert (sum(r.command_count for r in responses)
                == len(group.schedule.timings))
        assert (sum(r.counters["ACT"] for r in responses)
                == group.schedule.stats.activations)

    def test_mixed_requests_keep_order(self):
        simulator = Simulator()
        x = _data(30)
        requests = [
            NttRequest(params=PARAMS, values=x),
            NegacyclicRequest(ring=RING, values=_data(31, q=QN)),
            NttRequest(params=PARAMS, values=x),
        ]
        responses = simulator.run_many(requests)
        assert [r.workload for r in responses] == ["ntt", "negacyclic", "ntt"]
        assert responses[0].values == responses[2].values

    def test_max_banks_chunking(self):
        simulator = Simulator(SimConfig(functional=False, verify=False))
        requests = [NttRequest(params=PARAMS) for _ in range(5)]
        responses = simulator.run_many(requests, max_banks=2)
        banks = [r.metrics.get("group_banks") for r in responses]
        # 5 = 2 + 2 + 1: two pairs grouped, the leftover runs alone.
        assert banks.count(2) == 4 and banks.count(None) == 1

    def test_group_disabled(self):
        simulator = Simulator(SimConfig(functional=False, verify=False))
        responses = simulator.run_many(
            [NttRequest(params=PARAMS)] * 3, group=False)
        assert all("group_banks" not in r.metrics for r in responses)

    def test_inverse_and_negacyclic_group_bit_identically(self):
        simulator = Simulator()
        requests = (
            [NttRequest(params=PARAMS, values=_data(40 + i), inverse=True)
             for i in range(2)]
            + [NegacyclicRequest(ring=RING, values=_data(50 + i, q=QN))
               for i in range(2)]
            + [NegacyclicRequest(ring=RING, values=_data(60 + i, q=QN),
                                 inverse=True) for i in range(2)])
        responses = simulator.run_many(requests)
        for request, response in zip(requests, responses):
            assert response.metrics["group_banks"] == 2
            assert response.values == simulator.run(request).values

    def test_forward_and_inverse_never_share_a_group(self):
        simulator = Simulator(SimConfig(functional=False, verify=False))
        responses = simulator.run_many(
            [NttRequest(params=PARAMS),
             NttRequest(params=PARAMS, inverse=True)])
        assert all("group_banks" not in r.metrics for r in responses)


class TestMultiBankKinds:
    """The generalized MultiBankRequest: per-bank inverse cyclic and
    negacyclic transforms, bit-identical to single-request runs."""

    def test_inverse_cyclic_banks_match_single_runs(self):
        simulator = Simulator()
        inputs = [_data(70 + i) for i in range(3)]
        merged = simulator.run(MultiBankRequest(params=PARAMS, inputs=inputs,
                                                inverse=True))
        assert merged.verified
        for values, out in zip(inputs, merged.outputs):
            solo = simulator.run(NttRequest(params=PARAMS, values=values,
                                            inverse=True))
            assert out == solo.values

    @pytest.mark.parametrize("inverse", [False, True])
    def test_negacyclic_banks_match_single_runs(self, inverse):
        simulator = Simulator()
        inputs = [_data(80 + i, q=QN) for i in range(3)]
        merged = simulator.run(MultiBankRequest(ring=RING, inputs=inputs,
                                                inverse=inverse))
        assert merged.verified
        for values, out in zip(inputs, merged.outputs):
            solo = simulator.run(NegacyclicRequest(ring=RING, values=values,
                                                   inverse=inverse))
            assert out == solo.values

    def test_exactly_one_kind_required(self):
        with pytest.raises(RequestValidationError, match="exactly one"):
            MultiBankRequest(inputs=[[0] * N]).validate()
        with pytest.raises(RequestValidationError, match="exactly one"):
            MultiBankRequest(params=PARAMS, ring=RING,
                             inputs=[[0] * N]).validate()

    def test_negacyclic_multibank_precompiles(self):
        from repro.api.workloads import precompile_request
        request = MultiBankRequest(ring=RING,
                                   inputs=[_data(90, q=QN)] * 2,
                                   inverse=True)
        config = SimConfig()
        Simulator.clear_caches()
        assert precompile_request(config, request)
        before = Simulator(config).cache_info()
        Simulator(config).run(request)
        after = Simulator(config).cache_info()
        # The real run's compile side was pure cache hits.
        assert after["program"]["misses"] == before["program"]["misses"]
        assert after["stream"]["misses"] == before["stream"]["misses"]


class TestFheWorkload:
    def test_multiply_verified_against_software(self):
        a, b = _data(40, q=QN), _data(41, q=QN)
        response = Simulator().run(FheOpRequest(ring=RING, op="multiply",
                                                a=a, b=b))
        from repro.ntt import naive_negacyclic_convolution
        assert response.values == naive_negacyclic_convolution(a, b, QN)
        assert response.verified
        assert response.metrics["transforms"] == 3
        assert response.cycles > 0 and response.energy_nj > 0

    def test_native_equals_hosted(self):
        a, b = _data(42, q=QN), _data(43, q=QN)
        hosted = Simulator().run(FheOpRequest(ring=RING, op="multiply",
                                              a=a, b=b, native=False))
        native = Simulator().run(FheOpRequest(ring=RING, op="multiply",
                                              a=a, b=b, native=True))
        assert hosted.values == native.values


class TestResponseEnvelope:
    def test_metadata_fields(self):
        response = Simulator().run(NttRequest(params=PARAMS, values=_data()))
        assert response.backend in ("python", "numpy")
        assert response.wall_time_s > 0
        assert response.request.params is PARAMS
        assert response.latency_ns == pytest.approx(
            response.latency_us * 1000.0)
        assert response.schedule is not None
        assert "ACT" in response.counters

    def test_summary_mentions_shape_and_workload(self):
        response = Simulator().run(NttRequest(params=PARAMS, values=_data()))
        line = response.summary()
        assert f"N={N:>5}" in line
        assert "[ntt]" in line
        assert "verified=yes" in line


class TestStreamingRunMany:
    def _requests(self, count=5):
        return [NttRequest(params=PARAMS, values=_data(60 + i))
                for i in range(count)]

    def test_iter_yields_every_index_once(self):
        simulator = Simulator(SimConfig(verify=False))
        requests = self._requests()
        pairs = list(simulator.run_many_iter(requests, max_banks=2))
        assert sorted(i for i, _ in pairs) == list(range(len(requests)))

    def test_iter_matches_run_many(self):
        simulator = Simulator(SimConfig(verify=False))
        requests = self._requests()
        collected = {}
        for i, response in simulator.run_many_iter(requests, max_banks=2):
            collected[i] = response
        barriered = simulator.run_many(requests, max_banks=2)
        for i, expected in enumerate(barriered):
            assert collected[i].values == expected.values
            assert collected[i].cycles == expected.cycles
            assert collected[i].metrics.get("group_banks") == \
                expected.metrics.get("group_banks")

    def test_pipeline_off_is_equivalent(self):
        simulator = Simulator(SimConfig(verify=False))
        requests = self._requests(4)
        plain = simulator.run_many(requests, pipeline=False)
        piped = simulator.run_many(requests, pipeline=True)
        assert [r.values for r in plain] == [r.values for r in piped]

    def test_groups_stream_before_later_units_run(self):
        """The first dispatch unit's responses arrive from the iterator
        before later units execute — no whole-list barrier."""
        simulator = Simulator(SimConfig(verify=False))
        requests = self._requests(4) + [
            NegacyclicRequest(ring=RING, values=_data(70, q=QN))]
        iterator = simulator.run_many_iter(requests, max_banks=4)
        first_indices = [next(iterator)[0] for _ in range(4)]
        assert sorted(first_indices) == [0, 1, 2, 3]  # the bank group
        index, response = next(iterator)
        assert index == 4 and response.workload == "negacyclic"

    def test_iter_validates_everything_up_front(self):
        simulator = Simulator(SimConfig(verify=False))
        requests = self._requests(2) + [
            NttRequest(params=PARAMS, values=(1, 2, 3))]
        with pytest.raises(RequestValidationError):
            # Error surfaces at the first next(), before any run.
            next(simulator.run_many_iter(requests))


class TestProgramFunctional:
    def _program(self):
        return NttPimDriver()._program(PARAMS)

    def test_functional_program_transforms_bank_data(self):
        from repro.arith import bit_reverse_permute
        from repro.ntt import ntt as reference_ntt
        prog = self._program()
        values = _data(80)
        request = ProgramRequest(
            commands=prog.commands, functional=True, modulus=Q,
            memory=((0, tuple(bit_reverse_permute(values))),),
            read_rows=(prog.result_base_row, N), label="fn-window")
        response = Simulator().run(request)
        assert response.values == reference_ntt(values, PARAMS)
        assert response.counters.get("bu_ops", 0) > 0
        assert response.metrics["label"] == "fn-window"
        assert response.cycles > 0  # timing still reported

    def test_timing_only_default_unchanged(self):
        response = Simulator().run(
            ProgramRequest(commands=self._program().commands))
        assert response.values == []
        assert "bu_ops" not in response.counters

    def test_functional_fields_require_functional_flag(self):
        commands = self._program().commands
        for bad in (dict(modulus=Q), dict(read_rows=(0, N)),
                    dict(memory=((0, (1, 2)),))):
            with pytest.raises(RequestValidationError,
                               match="functional=True"):
                Simulator().run(ProgramRequest(commands=commands, **bad))

    def test_functional_validation(self):
        commands = self._program().commands
        with pytest.raises(RequestValidationError, match="modulus"):
            Simulator().run(ProgramRequest(commands=commands,
                                           functional=True, modulus=1))
        with pytest.raises(RequestValidationError, match="read_rows"):
            Simulator().run(ProgramRequest(commands=commands,
                                           functional=True,
                                           read_rows=(0, 0)))
        with pytest.raises(RequestValidationError, match="base_row"):
            Simulator().run(ProgramRequest(commands=commands,
                                           functional=True,
                                           memory=((-1, (1,)),)))

    def test_config_functional_switch_gates_execution(self):
        """SimConfig(functional=False) keeps a functional request
        timing-only (the sweep idiom wins)."""
        prog = self._program()
        request = ProgramRequest(
            commands=prog.commands, functional=True, modulus=Q,
            memory=((0, tuple(_data(81))),), read_rows=(prog.result_base_row, N))
        response = Simulator(SimConfig(functional=False,
                                       verify=False)).run(request)
        assert response.values == []
