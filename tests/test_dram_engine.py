"""Tests for the command-stepped timing engine."""

import pytest

from repro.dram import (
    Command,
    CommandType,
    ComputeTiming,
    HBM2E_ARCH,
    HBM2E_TIMING,
    TimingEngine,
)
from repro.errors import MappingError

ACT = CommandType.ACT
PRE = CommandType.PRE
CU_READ = CommandType.CU_READ
CU_WRITE = CommandType.CU_WRITE
C1 = CommandType.C1
C2 = CommandType.C2


def engine():
    return TimingEngine(HBM2E_TIMING, HBM2E_ARCH, compute=ComputeTiming())


def act(row, **kw):
    return Command(ACT, row=row, **kw)


def rd(row, col, buf, **kw):
    return Command(CU_READ, row=row, col=col, buf=buf, **kw)


def wr(row, col, buf, **kw):
    return Command(CU_WRITE, row=row, col=col, buf=buf, **kw)


class TestBasicConstraints:
    def test_act_to_column_trcd(self):
        res = engine().simulate([act(0), rd(0, 0, 0)])
        assert res.timings[1].issue - res.timings[0].issue >= HBM2E_TIMING.trcd

    def test_read_completion_cl_plus_burst(self):
        res = engine().simulate([act(0), rd(0, 0, 0)])
        t = res.timings[1]
        assert t.complete - t.issue == HBM2E_TIMING.cl + HBM2E_TIMING.burst

    def test_tccd_between_columns(self):
        res = engine().simulate([act(0), rd(0, 0, 0), rd(0, 1, 1)])
        assert (res.timings[2].issue - res.timings[1].issue
                >= HBM2E_TIMING.tccd)

    def test_tras_before_precharge(self):
        res = engine().simulate([act(0), Command(PRE)])
        assert (res.timings[1].issue - res.timings[0].issue
                >= HBM2E_TIMING.tras)

    def test_twr_after_write(self):
        res = engine().simulate([act(0), wr(0, 0, 0), Command(PRE)])
        write_data_end = res.timings[1].complete
        assert res.timings[2].issue >= write_data_end + HBM2E_TIMING.twr

    def test_trp_between_pre_and_act(self):
        res = engine().simulate([act(0), Command(PRE), act(1)])
        assert res.timings[2].issue - res.timings[1].issue >= HBM2E_TIMING.trp

    def test_bus_one_command_per_cycle(self):
        res = engine().simulate([act(0), rd(0, 0, 0), rd(0, 1, 1)])
        issues = [t.issue for t in res.timings]
        assert all(b > a for a, b in zip(issues, issues[1:]))


class TestComputeCommands:
    def test_c1_latency(self):
        res = engine().simulate(
            [Command(C1, buf=0, omega0=1)])
        t = res.timings[0]
        assert t.complete - t.issue == 15

    def test_c2_latency(self):
        res = engine().simulate([Command(C2, buf=0, buf2=1, omega0=1, r_omega=1)])
        t = res.timings[0]
        assert t.complete - t.issue == 10

    def test_cu_serializes_compute(self):
        res = engine().simulate([
            Command(C1, buf=0, omega0=1),
            Command(C1, buf=1, omega0=1),
        ])
        assert res.timings[1].issue >= res.timings[0].complete

    def test_compute_overlaps_column_access(self):
        """The pipelining premise: C1 on one buffer runs while the next
        read streams into another buffer."""
        res = engine().simulate([
            act(0),
            rd(0, 0, 0),
            Command(C1, buf=0, omega0=1, deps=(1,)),
            rd(0, 1, 1),
        ])
        c1_t, rd2_t = res.timings[2], res.timings[3]
        assert rd2_t.issue < c1_t.complete  # overlap happened

    def test_dependency_stalls_compute(self):
        res = engine().simulate([
            act(0),
            rd(0, 0, 0),
            Command(C1, buf=0, omega0=1, deps=(1,)),
        ])
        assert res.timings[2].issue >= res.timings[1].complete

    def test_scalar_uop_latencies(self):
        res = engine().simulate([
            Command(CommandType.LOAD_SCALAR, buf=0, lane=0),
            Command(CommandType.BU_SCALAR, buf=0, lane=0, omega0=1),
            Command(CommandType.STORE_SCALAR, buf=0, lane=0),
        ])
        durations = [t.complete - t.issue for t in res.timings]
        assert durations == [2, 10, 2]


class TestValidation:
    def test_column_without_act(self):
        with pytest.raises(MappingError):
            engine().simulate([rd(0, 0, 0)])

    def test_column_wrong_row(self):
        with pytest.raises(MappingError):
            engine().simulate([act(0), rd(1, 0, 0)])

    def test_double_act(self):
        with pytest.raises(MappingError):
            engine().simulate([act(0), act(1)])

    def test_pre_without_act(self):
        with pytest.raises(MappingError):
            engine().simulate([Command(PRE)])

    def test_forward_dependency_rejected(self):
        with pytest.raises(MappingError):
            engine().simulate([Command(C1, buf=0, omega0=1, deps=(5,))])


class TestStatsAndEnergy:
    def test_command_counts(self):
        res = engine().simulate([act(0), rd(0, 0, 0), wr(0, 0, 0),
                                 Command(PRE)])
        c = res.stats.command_counts
        assert c == {"ACT": 1, "CU_READ": 1, "CU_WRITE": 1, "PRE": 1}
        assert res.stats.activations == 1
        assert res.stats.column_accesses == 2

    def test_energy_positive_and_monotone(self):
        short = engine().simulate([act(0), rd(0, 0, 0)])
        long = engine().simulate([act(0), rd(0, 0, 0), rd(0, 1, 1),
                                  rd(0, 2, 2)])
        assert 0 < short.energy_nj < long.energy_nj

    def test_latency_unit_conversions(self):
        res = engine().simulate([act(0), rd(0, 0, 0)])
        assert res.latency_ns == pytest.approx(res.total_cycles * 1000 / 1200)
        assert res.latency_us == pytest.approx(res.latency_ns / 1000)

    def test_multibank_independent_rows(self):
        """Two banks can hold different open rows concurrently."""
        res = engine().simulate([
            act(0, bank=0),
            act(5, bank=1),
            rd(0, 0, 0, bank=0),
            rd(5, 0, 0, bank=1),
        ])
        assert res.stats.activations == 2

    def test_multibank_shares_command_bus(self):
        res = engine().simulate([act(0, bank=0), act(5, bank=1)])
        assert res.timings[1].issue > res.timings[0].issue
