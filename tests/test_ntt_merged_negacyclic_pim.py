"""Tests for the merged negacyclic kernels and their native PIM mapping
(the C1N / constant-zeta extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import bit_reverse, find_ntt_prime
from repro.dram import CommandType, HBM2E_ARCH
from repro.errors import MappingError
from repro.fhe import PimFheAccelerator
from repro.mapping import NegacyclicNttMapper
from repro.ntt import (
    NegacyclicParams,
    block_zeta_exponent,
    merged_negacyclic_intt,
    merged_negacyclic_ntt,
    merged_pointwise_multiply,
    naive_negacyclic_convolution,
    negacyclic_ntt,
)
from repro.pim import ComputeUnit, PimParams
from repro.sim import NttPimDriver, SimConfig


def ring(n):
    return NegacyclicParams(n, find_ntt_prime(n, 30, negacyclic=True))


class TestMergedKernels:
    @pytest.mark.parametrize("n", [8, 32, 256])
    def test_roundtrip(self, n):
        p = ring(n)
        rng = random.Random(n)
        x = [rng.randrange(p.q) for _ in range(n)]
        assert merged_negacyclic_intt(merged_negacyclic_ntt(x, p), p) == x

    @pytest.mark.parametrize("n", [8, 64, 128])
    def test_convolution_theorem(self, n):
        p = ring(n)
        rng = random.Random(n + 1)
        a = [rng.randrange(p.q) for _ in range(n)]
        b = [rng.randrange(p.q) for _ in range(n)]
        prod = merged_pointwise_multiply(
            merged_negacyclic_ntt(a, p), merged_negacyclic_ntt(b, p), p)
        assert (merged_negacyclic_intt(prod, p)
                == naive_negacyclic_convolution(a, b, p.q))

    def test_same_multiset_as_scaled_form(self):
        """Merged output is a permutation of the psi-prescaled cyclic
        NTT's output (same evaluation points, different order)."""
        n = 32
        p = ring(n)
        rng = random.Random(7)
        x = [rng.randrange(p.q) for _ in range(n)]
        assert sorted(merged_negacyclic_ntt(x, p)) == sorted(
            negacyclic_ntt(x, p))

    def test_block_zeta_exponent_values(self):
        # N=8, first stage (length 4, start 0): node 1 -> brev3(1) = 4.
        assert block_zeta_exponent(8, 4, 0) == bit_reverse(1, 3)
        # length 2: nodes 2, 3.
        assert block_zeta_exponent(8, 2, 0) == bit_reverse(2, 3)
        assert block_zeta_exponent(8, 2, 4) == bit_reverse(3, 3)

    def test_block_zeta_validation(self):
        with pytest.raises(ValueError):
            block_zeta_exponent(8, 3, 0)
        with pytest.raises(ValueError):
            block_zeta_exponent(8, 2, 1)

    def test_wrong_length_rejected(self):
        p = ring(16)
        with pytest.raises(ValueError):
            merged_negacyclic_ntt([1, 2, 3], p)


class TestC1N:
    def test_c1n_equals_last_stages_of_merged(self):
        """C1N on one atom == a size-8 merged transform with that atom's
        subtree zetas."""
        n = 8
        p = ring(n)
        cu = ComputeUnit(8)
        cu.set_modulus(p.q)
        mapper = NegacyclicNttMapper(p, HBM2E_ARCH, PimParams(nb_buffers=2))
        zetas = mapper._atom_zetas(0)
        rng = random.Random(3)
        x = [rng.randrange(p.q) for _ in range(8)]
        assert cu.execute_c1n(x, zetas) == merged_negacyclic_ntt(x, p)

    def test_c1n_zeta_count_enforced(self):
        cu = ComputeUnit(8)
        cu.set_modulus(12289)
        with pytest.raises(MappingError):
            cu.execute_c1n([0] * 8, (1, 2, 3))

    def test_c1n_command_requires_zetas(self):
        from repro.dram import Command
        with pytest.raises(ValueError):
            Command(CommandType.C1N, buf=0)

    def test_gs_inverse_of_ct(self):
        """C1N(gs, inverse zetas) undoes C1N up to the 1/Na scale."""
        n = 8
        p = ring(n)
        cu = ComputeUnit(8)
        cu.set_modulus(p.q)
        fwd_mapper = NegacyclicNttMapper(p, HBM2E_ARCH, PimParams(nb_buffers=2))
        inv_mapper = NegacyclicNttMapper(p, HBM2E_ARCH, PimParams(nb_buffers=2),
                                         inverse=True)
        rng = random.Random(4)
        x = [rng.randrange(p.q) for _ in range(8)]
        fwd = cu.execute_c1n(x, fwd_mapper._atom_zetas(0))
        back = cu.execute_c1n(fwd, inv_mapper._atom_zetas(0), gs=True)
        from repro.arith import mod_inverse
        n_inv = mod_inverse(8, p.q)
        assert [(v * n_inv) % p.q for v in back] == x


class TestNegacyclicMapping:
    @pytest.mark.parametrize("n", [8, 64, 256, 512, 1024])
    @pytest.mark.parametrize("nb", [2, 4, 6])
    def test_forward_verified(self, n, nb):
        p = ring(n)
        rng = random.Random(n + nb)
        x = [rng.randrange(p.q) for _ in range(n)]
        drv = NttPimDriver(SimConfig(pim=PimParams(nb_buffers=nb)))
        assert drv._run_negacyclic_ntt(x, p).verified

    @pytest.mark.parametrize("n", [64, 512])
    def test_inverse_roundtrip_on_pim(self, n):
        p = ring(n)
        rng = random.Random(n)
        x = [rng.randrange(p.q) for _ in range(n)]
        drv = NttPimDriver(SimConfig())
        fwd = drv._run_negacyclic_ntt(x, p)
        back = drv._run_negacyclic_intt(fwd.output, p)
        assert back.verified
        assert back.output == x

    def test_full_ring_product_on_pim(self):
        n = 256
        p = ring(n)
        rng = random.Random(9)
        a = [rng.randrange(p.q) for _ in range(n)]
        b = [rng.randrange(p.q) for _ in range(n)]
        drv = NttPimDriver(SimConfig(pim=PimParams(nb_buffers=4)))
        fa = drv._run_negacyclic_ntt(a, p).output
        fb = drv._run_negacyclic_ntt(b, p).output
        prod = [(x * y) % p.q for x, y in zip(fa, fb)]
        got = drv._run_negacyclic_intt(prod, p).output
        assert got == naive_negacyclic_convolution(a, b, p.q)

    def test_uses_c1n_and_constant_zeta_c2(self):
        p = ring(512)
        mapper = NegacyclicNttMapper(p, HBM2E_ARCH, PimParams(nb_buffers=2))
        cmds = mapper.generate()
        kinds = {c.ctype for c in cmds}
        assert CommandType.C1N in kinds
        assert CommandType.C1 not in kinds
        for c in cmds:
            if c.ctype is CommandType.C2:
                assert c.r_omega == 1  # degenerate TFG sequence

    def test_inverse_uses_gs(self):
        p = ring(512)
        mapper = NegacyclicNttMapper(p, HBM2E_ARCH, PimParams(nb_buffers=2),
                                     inverse=True)
        assert all(c.gs for c in mapper.generate()
                   if c.ctype in (CommandType.C2, CommandType.C1N))

    def test_single_buffer_rejected(self):
        with pytest.raises(MappingError):
            NegacyclicNttMapper(ring(64), HBM2E_ARCH, PimParams(nb_buffers=1))

    def test_latency_close_to_cyclic(self):
        """Native mapping costs about the same as the cyclic one (the
        C1N zeta loads are the only addition)."""
        n = 1024
        p = ring(n)
        from repro.arith import NttParams
        drv = NttPimDriver(SimConfig(functional=False, verify=False))
        nega = drv._run_negacyclic_ntt([0] * n, p)
        cyc = drv._run_ntt([0] * n, NttParams(n, p.q))
        assert 0.9 <= nega.cycles / cyc.cycles <= 1.2


class TestNativeAccelerator:
    def test_native_matches_schoolbook(self):
        n = 256
        p = ring(n)
        acc = PimFheAccelerator(p, SimConfig(pim=PimParams(nb_buffers=4)),
                                native=True)
        rng = random.Random(11)
        a = [rng.randrange(p.q) for _ in range(n)]
        b = [rng.randrange(p.q) for _ in range(n)]
        assert acc.multiply(a, b) == naive_negacyclic_convolution(a, b, p.q)
        assert acc.stats.transforms == 3

    def test_native_and_hosted_agree(self):
        n = 128
        p = ring(n)
        rng = random.Random(12)
        a = [rng.randrange(p.q) for _ in range(n)]
        b = [rng.randrange(p.q) for _ in range(n)]
        hosted = PimFheAccelerator(p, native=False).multiply(a, b)
        native = PimFheAccelerator(p, native=True).multiply(a, b)
        assert hosted == native


@given(log_n=st.integers(min_value=3, max_value=9),
       seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None)
def test_property_native_negacyclic_verified(log_n, seed):
    n = 1 << log_n
    p = ring(n)
    rng = random.Random(seed)
    x = [rng.randrange(p.q) for _ in range(n)]
    drv = NttPimDriver(SimConfig(pim=PimParams(nb_buffers=4)))
    assert drv._run_negacyclic_ntt(x, p).verified
