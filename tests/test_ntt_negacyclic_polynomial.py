"""Tests for the negacyclic transform and the R_q polynomial type."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import DEFAULT_PRIME_32
from repro.ntt import (
    NegacyclicParams,
    Polynomial,
    naive_negacyclic_convolution,
    negacyclic_convolution,
    negacyclic_intt,
    negacyclic_ntt,
)

Q = 12289  # (q-1) divisible by 2N for N <= 2048


def params(n, q=Q):
    return NegacyclicParams(n, q)


class TestNegacyclicTransform:
    @pytest.mark.parametrize("n", [2, 8, 64, 256])
    def test_roundtrip(self, n):
        rng = random.Random(n)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert negacyclic_intt(negacyclic_ntt(x, p), p) == x

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_convolution_matches_naive(self, n):
        rng = random.Random(n + 1)
        p = params(n)
        a = [rng.randrange(Q) for _ in range(n)]
        b = [rng.randrange(Q) for _ in range(n)]
        assert negacyclic_convolution(a, b, p) == naive_negacyclic_convolution(a, b, Q)

    def test_x_to_n_wraps_negative(self):
        """X^(N-1) * X == -1 in Z_q[X]/(X^N+1)."""
        n = 16
        p = params(n)
        xn1 = [0] * n
        xn1[n - 1] = 1
        x1 = [0] * n
        x1[1] = 1
        result = negacyclic_convolution(xn1, x1, p)
        expected = [Q - 1] + [0] * (n - 1)
        assert result == expected

    def test_unsupported_modulus(self):
        with pytest.raises(ValueError):
            NegacyclicParams(4096, Q)  # 2*4096 does not divide Q-1

    def test_bad_psi_rejected(self):
        with pytest.raises(ValueError):
            NegacyclicParams(16, Q, psi=1)

    def test_32bit_modulus(self):
        n = 64
        p = params(n, DEFAULT_PRIME_32)
        rng = random.Random(3)
        a = [rng.randrange(DEFAULT_PRIME_32) for _ in range(n)]
        b = [rng.randrange(DEFAULT_PRIME_32) for _ in range(n)]
        assert (negacyclic_convolution(a, b, p)
                == naive_negacyclic_convolution(a, b, DEFAULT_PRIME_32))


class TestPolynomial:
    def test_add_sub_roundtrip(self):
        p = params(32)
        rng = random.Random(1)
        a = Polynomial.random_uniform(p, rng)
        b = Polynomial.random_uniform(p, rng)
        assert (a + b) - b == a

    def test_neg(self):
        p = params(32)
        a = Polynomial.random_uniform(p, random.Random(2))
        assert a + (-a) == Polynomial.zero(p)

    def test_mul_matches_schoolbook(self):
        p = params(64)
        rng = random.Random(3)
        a = Polynomial.random_uniform(p, rng)
        b = Polynomial.random_uniform(p, rng)
        assert a * b == a.mul_schoolbook(b)

    def test_one_is_identity(self):
        p = params(32)
        a = Polynomial.random_uniform(p, random.Random(4))
        assert a * Polynomial.one(p) == a

    def test_monomial_multiplication_shifts(self):
        p = params(16)
        a = Polynomial.monomial(3, p)
        b = Polynomial.monomial(5, p)
        assert a * b == Polynomial.monomial(8, p)

    def test_monomial_wraps_with_sign(self):
        p = params(16)
        a = Polynomial.monomial(10, p)
        b = Polynomial.monomial(9, p)
        # X^19 = X^3 * X^16 = -X^3
        expected = Polynomial.monomial(3, p, coefficient=-1)
        assert a * b == expected

    def test_scalar_mul(self):
        p = params(16)
        a = Polynomial(list(range(16)), p)
        assert 3 * a == Polynomial([3 * c for c in range(16)], p)

    def test_cross_ring_rejected(self):
        a = Polynomial.zero(params(16))
        b = Polynomial.zero(params(32))
        with pytest.raises(ValueError):
            _ = a + b

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Polynomial([1, 2, 3], params(16))

    def test_centered_lift(self):
        p = params(4, q=17)
        poly = Polynomial([0, 1, 16, 9], p)
        assert poly.centered() == [0, 1, -1, -8]

    def test_infinity_norm(self):
        p = params(4, q=17)
        assert Polynomial([0, 1, 16, 9], p).infinity_norm() == 8

    def test_ternary_coefficients(self):
        p = params(64)
        poly = Polynomial.random_ternary(p, random.Random(5))
        assert all(c in (0, 1, Q - 1) for c in poly.coefficients)


@given(
    log_n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_property_negacyclic_convolution(log_n, seed):
    n = 1 << log_n
    p = params(n)
    rng = random.Random(seed)
    a = [rng.randrange(Q) for _ in range(n)]
    b = [rng.randrange(Q) for _ in range(n)]
    assert negacyclic_convolution(a, b, p) == naive_negacyclic_convolution(a, b, Q)


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_property_ring_distributivity(seed):
    p = params(16)
    rng = random.Random(seed)
    a = Polynomial.random_uniform(p, rng)
    b = Polynomial.random_uniform(p, rng)
    c = Polynomial.random_uniform(p, rng)
    assert a * (b + c) == a * b + a * c
