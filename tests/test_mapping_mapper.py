"""Tests for command generation: protocol legality, regime structure,
ablation variants, and functional correctness through the driver."""

import random

import pytest

from repro.arith import NttParams, find_ntt_prime
from repro.dram import CommandType, HBM2E_ARCH
from repro.errors import MappingError
from repro.mapping import NttMapper, SingleBufferMapper, c1_root
from repro.mapping.mapper import MapperOptions
from repro.ntt import ntt as reference_ntt
from repro.pim import PimParams
from repro.sim import NttPimDriver, SimConfig

Q = find_ntt_prime(8192, 32)


def make_mapper(n, nb=2, **kw):
    return NttMapper(NttParams(n, Q), HBM2E_ARCH, PimParams(nb_buffers=nb), **kw)


class TestProgramStructure:
    def test_starts_with_param_write(self):
        cmds = make_mapper(256).generate()
        assert cmds[0].ctype is CommandType.PARAM_WRITE

    def test_ends_closed(self):
        cmds = make_mapper(512).generate()
        assert cmds[-1].ctype is CommandType.PRE

    def test_act_pre_balanced(self):
        cmds = make_mapper(1024).generate()
        acts = sum(1 for c in cmds if c.ctype is CommandType.ACT)
        pres = sum(1 for c in cmds if c.ctype is CommandType.PRE)
        assert acts == pres

    def test_c1_count_one_per_atom(self):
        cmds = make_mapper(2048).generate()
        c1s = [c for c in cmds if c.ctype is CommandType.C1]
        assert len(c1s) == 2048 // 8

    def test_c1_root_parameter(self):
        cmds = make_mapper(512).generate()
        root = c1_root(NttParams(512, Q), 8)
        for c in cmds:
            if c.ctype is CommandType.C1:
                assert c.omega0 == root

    def test_c2_count(self):
        n = 512
        cmds = make_mapper(n).generate()
        c2s = sum(1 for c in cmds if c.ctype is CommandType.C2)
        # stages 4..9 inclusive = 6 inter-atom stages, n/16 pairs each.
        assert c2s == 6 * n // 16

    def test_single_activation_when_n_fits_row(self):
        cmds = make_mapper(256).generate()
        acts = sum(1 for c in cmds if c.ctype is CommandType.ACT)
        assert acts == 1

    def test_buffer_indices_within_pool(self):
        for nb in (2, 3, 4, 6):
            cmds = make_mapper(512, nb=nb).generate()
            for c in cmds:
                for b in (c.buf, c.buf2):
                    if b is not None:
                        assert 0 <= b < nb

    def test_rejects_single_buffer(self):
        with pytest.raises(MappingError):
            make_mapper(256, nb=1)

    def test_rejects_tiny_n(self):
        with pytest.raises(MappingError):
            NttMapper(NttParams(4, 13), HBM2E_ARCH, PimParams(nb_buffers=2))

    def test_rejects_overflow(self):
        with pytest.raises(MappingError):
            make_mapper(8192, base_row=32766)


class TestProtocolLegality:
    """Every generated program must execute without MappingError on both
    the functional bank and the timing engine — run via the driver."""

    @pytest.mark.parametrize("n", [8, 16, 64, 256, 512, 2048])
    @pytest.mark.parametrize("nb", [2, 3, 4, 6])
    def test_functional_correctness(self, n, nb):
        rng = random.Random(n * 100 + nb)
        x = [rng.randrange(Q) for _ in range(n)]
        config = SimConfig(pim=PimParams(nb_buffers=nb))
        result = NttPimDriver(config)._run_ntt(x, NttParams(n, Q))
        assert result.verified
        assert result.output == reference_ntt(x, NttParams(n, Q))

    @pytest.mark.parametrize("n", [8, 64, 256, 512])
    def test_single_buffer_functional(self, n):
        rng = random.Random(n)
        x = [rng.randrange(Q) for _ in range(n)]
        config = SimConfig(pim=PimParams(nb_buffers=1))
        result = NttPimDriver(config)._run_ntt(x, NttParams(n, Q))
        assert result.verified

    def test_nonzero_base_row(self):
        rng = random.Random(5)
        n = 512
        x = [rng.randrange(Q) for _ in range(n)]
        config = SimConfig(pim=PimParams(nb_buffers=2), base_row=100)
        result = NttPimDriver(config)._run_ntt(x, NttParams(n, Q))
        assert result.verified


class TestAblationVariants:
    def test_out_of_place_still_correct(self):
        rng = random.Random(6)
        n = 1024
        x = [rng.randrange(Q) for _ in range(n)]
        config = SimConfig(pim=PimParams(nb_buffers=2),
                           mapper_options=MapperOptions(in_place_update=False))
        result = NttPimDriver(config)._run_ntt(x, NttParams(n, Q))
        assert result.verified

    def test_out_of_place_result_row_parity(self):
        # 3 inter-row stages at N=2048 -> odd -> result in mirror region.
        m = make_mapper(2048, options=MapperOptions(in_place_update=False))
        assert m.result_base_row == m.base_row + m.rows_used
        # 2 inter-row stages at N=1024 -> even -> result back home.
        m = make_mapper(1024, options=MapperOptions(in_place_update=False))
        assert m.result_base_row == m.base_row

    def test_out_of_place_needs_more_activations(self):
        base = make_mapper(2048).generate()
        noip = make_mapper(
            2048, options=MapperOptions(in_place_update=False)).generate()
        acts = lambda cmds: sum(
            1 for c in cmds if c.ctype is CommandType.ACT)
        assert acts(noip) > 1.3 * acts(base)

    def test_no_grouping_correct_and_slower(self):
        rng = random.Random(7)
        n = 1024
        x = [rng.randrange(Q) for _ in range(n)]
        config = SimConfig(pim=PimParams(nb_buffers=6),
                           mapper_options=MapperOptions(group_same_row=False))
        result = NttPimDriver(config)._run_ntt(x, NttParams(n, Q))
        assert result.verified

    def test_out_of_place_requires_space(self):
        with pytest.raises(MappingError):
            make_mapper(8192, base_row=32768 - 40,
                        options=MapperOptions(in_place_update=False))


class TestSingleBufferStructure:
    def test_only_buffer_zero(self):
        m = SingleBufferMapper(NttParams(256, Q), HBM2E_ARCH,
                               PimParams(nb_buffers=1))
        for c in m.generate():
            if c.buf is not None:
                assert c.buf == 0

    def test_scalar_uops_present(self):
        m = SingleBufferMapper(NttParams(256, Q), HBM2E_ARCH,
                               PimParams(nb_buffers=1))
        kinds = {c.ctype for c in m.generate()}
        assert CommandType.LOAD_SCALAR in kinds
        assert CommandType.BU_SCALAR in kinds
        assert CommandType.STORE_SCALAR in kinds

    def test_rejects_multi_buffer_config(self):
        with pytest.raises(MappingError):
            SingleBufferMapper(NttParams(256, Q), HBM2E_ARCH,
                               PimParams(nb_buffers=2))


class TestLatencyShape:
    """Relative performance facts the paper's figures rest on."""

    def test_more_buffers_never_slower(self):
        latencies = []
        for nb in (2, 4, 6):
            config = SimConfig(pim=PimParams(nb_buffers=nb),
                               functional=False, verify=False)
            run = NttPimDriver(config)._run_ntt([0] * 2048, NttParams(2048, Q))
            latencies.append(run.cycles)
        assert latencies == sorted(latencies, reverse=True)

    def test_single_buffer_order_of_magnitude_worse(self):
        runs = {}
        for nb in (1, 2):
            config = SimConfig(pim=PimParams(nb_buffers=nb),
                               functional=False, verify=False)
            runs[nb] = NttPimDriver(config)._run_ntt(
                [0] * 512, NttParams(512, Q)).cycles
        assert runs[1] > 7 * runs[2]

    def test_latency_grows_superlinearly_past_row(self):
        """The Fig. 7 kink: N=512 costs >2x N=256 (inter-row onset)."""
        config = SimConfig(pim=PimParams(nb_buffers=2),
                           functional=False, verify=False)
        t256 = NttPimDriver(config)._run_ntt([0] * 256, NttParams(256, Q)).cycles
        t512 = NttPimDriver(config)._run_ntt([0] * 512, NttParams(512, Q)).cycles
        assert t512 > 2.2 * t256
