"""Tests for NTT-friendly prime search and roots of unity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arith import (
    DEFAULT_PRIME_14,
    DEFAULT_PRIME_16,
    DEFAULT_PRIME_32,
    NttParams,
    factorize,
    find_ntt_prime,
    inverse_root_of_unity,
    is_prime,
    is_primitive_root_of_unity,
    mod_pow,
    ntt_prime_candidates,
    primitive_root,
    root_of_unity,
)


class TestIsPrime:
    def test_small_values(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31}
        for n in range(32):
            assert is_prime(n) == (n in primes)

    def test_known_ntt_primes(self):
        assert is_prime(DEFAULT_PRIME_14)
        assert is_prime(DEFAULT_PRIME_16)
        assert is_prime(DEFAULT_PRIME_32)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601, 41041, 825265):
            assert not is_prime(n)

    def test_large_composite(self):
        assert not is_prime(DEFAULT_PRIME_32 * DEFAULT_PRIME_14)


class TestFindNttPrime:
    @pytest.mark.parametrize("n", [256, 1024, 4096])
    def test_cyclic_congruence(self, n):
        q = find_ntt_prime(n, 32)
        assert is_prime(q)
        assert (q - 1) % n == 0
        assert q < 2**32

    def test_negacyclic_congruence(self):
        q = find_ntt_prime(1024, 32, negacyclic=True)
        assert (q - 1) % 2048 == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            find_ntt_prime(100, 32)

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            find_ntt_prime(1024, 8)

    def test_candidates_distinct_and_valid(self):
        primes = ntt_prime_candidates(256, 30, 5)
        assert len(set(primes)) == 5
        for q in primes:
            assert is_prime(q) and (q - 1) % 256 == 0

    def test_default_prime_32_supports_deep_negacyclic(self):
        # q - 1 = 2^20 * 4095: negacyclic transforms up to N = 2^19.
        assert (DEFAULT_PRIME_32 - 1) % (1 << 20) == 0


class TestRoots:
    def test_factorize_roundtrip(self):
        for n in [2, 12, 97, 360, 12288]:
            product = 1
            for p, e in factorize(n).items():
                assert is_prime(p)
                product *= p**e
            assert product == n

    def test_primitive_root_generates(self):
        q = 12289
        g = primitive_root(q)
        assert is_primitive_root_of_unity(g, q - 1, q)

    def test_root_of_unity_order(self):
        q = 12289
        for order in (2, 4, 256, 4096):
            w = root_of_unity(order, q)
            assert mod_pow(w, order, q) == 1
            assert mod_pow(w, order // 2, q) == q - 1  # primitive => w^(n/2) = -1

    def test_root_of_unity_unsupported_order(self):
        with pytest.raises(ValueError):
            root_of_unity(5, 12289)  # 5 does not divide 12288

    def test_inverse_root(self):
        q = 12289
        w = root_of_unity(256, q)
        wi = inverse_root_of_unity(256, q)
        assert (w * wi) % q == 1


class TestNttParams:
    def test_derivations(self):
        p = NttParams(256, 12289)
        assert (p.omega * p.omega_inv) % p.q == 1
        assert (p.n * p.n_inv) % p.q == 1
        assert p.log_n == 8

    def test_inverse_params_swap_omega(self):
        p = NttParams(256, 12289)
        assert p.inverse().omega == p.omega_inv

    def test_bad_length(self):
        with pytest.raises(ValueError):
            NttParams(100, 12289)

    def test_unsupported_modulus(self):
        with pytest.raises(ValueError):
            NttParams(256, 17)

    def test_non_primitive_omega_rejected(self):
        with pytest.raises(ValueError):
            NttParams(256, 12289, omega=1)


@given(st.integers(min_value=2, max_value=10_000))
def test_property_is_prime_matches_trial_division(n):
    def trial(n):
        if n < 2:
            return False
        d = 2
        while d * d <= n:
            if n % d == 0:
                return False
            d += 1
        return True

    assert is_prime(n) == trial(n)
