"""Concurrent-access regression tests for the shared artifact caches.

The serving layer's worker pool and the facade's pipelined-compile
thread hit the program/stream/schedule caches from multiple threads.
These tests hammer each cache from a thread pool and assert that (a)
statistics stay consistent (hits + misses == lookups, no lost updates),
(b) every thread observes one canonical object per key, and (c) results
are bit-identical to a single-threaded pass.
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.arith import NttParams, bit_reverse_permute, find_ntt_prime
from repro.dram import HBM2E_ARCH, HBM2E_ENERGY, HBM2E_TIMING
from repro.dram.stream import (
    cached_stream,
    clear_stream_cache,
    stream_cache_info,
)
from repro.mapping.program_cache import (
    clear_program_cache,
    cyclic_program,
    program_cache_info,
)
from repro.ntt import ntt as reference_ntt
from repro.pim.bank_pim import PimBank
from repro.pim.params import PimParams
from repro.sim.driver import (
    cached_schedule,
    clear_schedule_cache,
    schedule_cache_info,
)

THREADS = 8
ROUNDS = 12

PIM = PimParams()
SHAPES = [NttParams(n, find_ntt_prime(n, 32)) for n in (64, 128, 256)]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_program_cache()
    clear_stream_cache()
    clear_schedule_cache()
    yield
    clear_program_cache()
    clear_stream_cache()
    clear_schedule_cache()


def _hammer(fn):
    """Run ``fn(shape)`` from THREADS threads, ROUNDS times per shape,
    all released at once; returns results grouped per shape index."""
    barrier = threading.Barrier(THREADS)
    per_thread = []

    def worker(seed):
        barrier.wait()
        rng = random.Random(seed)
        order = [s for s in range(len(SHAPES)) for _ in range(ROUNDS)]
        rng.shuffle(order)
        out = {}
        for s in order:
            out.setdefault(s, []).append(fn(SHAPES[s]))
        return out

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        per_thread = list(pool.map(worker, range(THREADS)))
    return per_thread


class TestProgramCacheConcurrency:
    def test_counters_and_canonical_objects(self):
        per_thread = _hammer(
            lambda p: cyclic_program(p, HBM2E_ARCH, PIM))
        info = program_cache_info()
        lookups = THREADS * ROUNDS * len(SHAPES)
        assert info["hits"] + info["misses"] == lookups
        assert info["entries"] == len(SHAPES)
        # Duplicate generation on a racing cold miss is allowed, but the
        # published entry must be one canonical object per key.
        for s in range(len(SHAPES)):
            canonical = cyclic_program(SHAPES[s], HBM2E_ARCH, PIM)
            for result in per_thread:
                assert all(p is canonical for p in result[s])


class TestStreamCacheConcurrency:
    def test_counters_and_canonical_objects(self):
        programs = [cyclic_program(p, HBM2E_ARCH, PIM) for p in SHAPES]
        clear_stream_cache()

        def compile_one(params):
            prog = programs[SHAPES.index(params)]
            return cached_stream(prog.commands, HBM2E_ARCH, key=prog.key)

        per_thread = _hammer(compile_one)
        info = stream_cache_info()
        lookups = THREADS * ROUNDS * len(SHAPES)
        assert info["hits"] + info["misses"] == lookups
        assert info["entries"] == len(SHAPES)
        for s, prog in enumerate(programs):
            canonical = cached_stream(prog.commands, HBM2E_ARCH, key=prog.key)
            for result in per_thread:
                assert all(st is canonical for st in result[s])


class TestScheduleCacheConcurrency:
    def test_counters_and_bit_identical_schedules(self):
        programs = [cyclic_program(p, HBM2E_ARCH, PIM) for p in SHAPES]
        compute = PIM.compute_timing()
        clear_schedule_cache()

        def schedule_one(params):
            prog = programs[SHAPES.index(params)]
            return cached_schedule(prog.commands, HBM2E_TIMING, HBM2E_ARCH,
                                   compute, HBM2E_ENERGY, key=prog.key)

        per_thread = _hammer(schedule_one)
        info = schedule_cache_info()
        lookups = THREADS * ROUNDS * len(SHAPES)
        assert info["hits"] + info["misses"] == lookups
        assert info["entries"] == len(SHAPES)
        # Same totals as a fresh single-threaded simulation.
        clear_schedule_cache()
        for s, prog in enumerate(programs):
            reference = cached_schedule(prog.commands, HBM2E_TIMING,
                                        HBM2E_ARCH, compute, HBM2E_ENERGY,
                                        key=prog.key)
            for result in per_thread:
                for sched in result[s]:
                    assert sched.total_cycles == reference.total_cycles
                    assert sched.energy_nj == reference.energy_nj


class TestArtifactCacheBounds:
    def test_tiny_cache_still_evicts(self):
        from repro._cache import ArtifactCache
        cache = ArtifactCache(2)
        for key in range(10):
            cache.get_or_create(key, lambda k=key: f"artifact-{k}")
        assert cache.info()["entries"] <= 2

    def test_capacity_respected_at_scale(self):
        from repro._cache import ArtifactCache
        cache = ArtifactCache(16)
        for key in range(100):
            cache.get_or_create(key, lambda k=key: k)
        assert cache.info()["entries"] <= 16
        # The most recent key survived the eviction sweeps.
        assert cache.lookup(99) == 99


class TestConcurrentFunctionalExecution:
    def test_shared_stream_concurrent_run_stream(self):
        """Two banks replaying one shared cached stream concurrently
        (the stream's fuse cache is get-or-compute with immutable
        values) produce the single-threaded transform, bit for bit."""
        params = SHAPES[1]
        prog = cyclic_program(params, HBM2E_ARCH, PIM)
        stream = cached_stream(prog.commands, HBM2E_ARCH, key=prog.key)
        rng = random.Random(7)
        inputs = [[rng.randrange(params.q) for _ in range(params.n)]
                  for _ in range(THREADS)]
        expected = [reference_ntt(v, params) for v in inputs]

        def run_one(values):
            bank = PimBank(HBM2E_ARCH, PIM)
            bank.set_parameters(params.q)
            bank.load_polynomial(0, bit_reverse_permute(list(values)))
            bank.run_stream(stream)
            return bank.read_polynomial(prog.result_base_row, params.n)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outputs = list(pool.map(run_one, inputs))
        assert outputs == expected
