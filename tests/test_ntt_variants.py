"""Tests for Pease / Stockham / four-step NTT variants."""

import random

import pytest

from repro.arith import NttParams
from repro.ntt import (
    four_step_ntt,
    ntt,
    pease_ntt,
    shuffle_stage_count,
    stockham_ntt,
)

Q = 12289


def params(n):
    return NttParams(n, Q)


@pytest.mark.parametrize("n", [2, 4, 8, 64, 256])
class TestFunctionalEquivalence:
    def test_pease(self, n):
        rng = random.Random(n)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert pease_ntt(x, p) == ntt(x, p)

    def test_stockham(self, n):
        rng = random.Random(n + 1)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert stockham_ntt(x, p) == ntt(x, p)

    def test_four_step(self, n):
        rng = random.Random(n + 2)
        p = params(n)
        x = [rng.randrange(Q) for _ in range(n)]
        assert four_step_ntt(x, p) == ntt(x, p)


class TestFourStepShapes:
    def test_explicit_n1_values(self):
        n = 64
        p = params(n)
        rng = random.Random(5)
        x = [rng.randrange(Q) for _ in range(n)]
        expected = ntt(x, p)
        for n1 in (2, 4, 8, 16, 32):
            assert four_step_ntt(x, p, n1=n1) == expected

    def test_degenerate_n1(self):
        n = 16
        p = params(n)
        x = list(range(n))
        assert four_step_ntt(x, p, n1=1) == ntt(x, p)

    def test_invalid_n1(self):
        with pytest.raises(ValueError):
            four_step_ntt(list(range(16)), params(16), n1=3)


class TestInputValidation:
    def test_pease_wrong_length(self):
        with pytest.raises(ValueError):
            pease_ntt([1, 2, 3], params(4))

    def test_stockham_wrong_length(self):
        with pytest.raises(ValueError):
            stockham_ntt([1, 2, 3], params(4))


class TestShuffleStageCounts:
    """The structural argument of Sec. II.B: CT needs one host-side
    shuffle; Pease/Stockham need one per stage."""

    def test_cooley_tukey_is_constant(self):
        assert shuffle_stage_count("cooley-tukey", 4096) == 1

    def test_pease_scales_with_log_n(self):
        assert shuffle_stage_count("pease", 4096) == 12

    def test_stockham_scales_with_log_n(self):
        assert shuffle_stage_count("stockham", 1024) == 10

    def test_four_step(self):
        assert shuffle_stage_count("four-step", 4096) == 3

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            shuffle_stage_count("bluestein", 64)

    def test_non_power_of_two(self):
        with pytest.raises(ValueError):
            shuffle_stage_count("pease", 100)
