"""Tests for the repro.serve subsystem: queue, scheduler, workers,
telemetry, load generation and the end-to-end server.

The load-bearing property throughout: scheduling changes *when* work
runs, never *what it computes* — every served response must be bit-
identical to a standalone ``Simulator.run`` of the same request.
"""

import random

import pytest

from repro.api import FheOpRequest, NegacyclicRequest, NttRequest, Simulator
from repro.arith import NttParams, find_ntt_prime
from repro.errors import ServeError
from repro.ntt.negacyclic import NegacyclicParams
from repro.serve import (
    BatchingScheduler,
    LoadGenerator,
    RequestQueue,
    ServeRequest,
    SimServer,
    Telemetry,
    make_scenario,
    merge_snapshots,
    percentile,
    sequential_policy,
    shape_key,
)
from repro.serve.telemetry import RequestRecord
from repro.sim.driver import SimConfig

N = 256
Q = find_ntt_prime(N, 32)
PARAMS = NttParams(N, Q)
NOVERIFY = SimConfig(verify=False)


def ntt_request(seed: int, params: NttParams = PARAMS) -> NttRequest:
    rng = random.Random(seed)
    return NttRequest(params=params,
                      values=tuple(rng.randrange(params.q)
                                   for _ in range(params.n)))


RING = NegacyclicParams(N, find_ntt_prime(N, 32, negacyclic=True))


def nega_request(seed: int, inverse: bool = False) -> NegacyclicRequest:
    rng = random.Random(seed)
    return NegacyclicRequest(ring=RING,
                             values=tuple(rng.randrange(RING.q)
                                          for _ in range(RING.n)),
                             inverse=inverse)


def fhe_request(seed: int) -> FheOpRequest:
    """A genuinely unbatchable request (FHE ops span several programs)."""
    rng = random.Random(seed)
    return FheOpRequest(ring=RING, op="forward",
                        a=tuple(rng.randrange(RING.q)
                                for _ in range(RING.n)))


class TestRequestQueue:
    def test_admission_control_rejects_when_full(self):
        queue = RequestQueue(max_depth=2)
        a = ServeRequest(request=ntt_request(0), request_id=1)
        b = ServeRequest(request=ntt_request(1), request_id=2)
        c = ServeRequest(request=ntt_request(2), request_id=3)
        assert queue.offer(a) and queue.offer(b)
        assert not queue.offer(c)
        stats = queue.stats()
        assert stats == {"depth": 2, "admitted": 2, "rejected": 1,
                         "removed": 0, "max_depth": 2}
        queue.remove(a)
        assert queue.offer(c)

    def test_waiting_orders_by_priority_then_fifo(self):
        queue = RequestQueue()
        low = ServeRequest(request=ntt_request(0), arrival_us=0.0,
                           priority=0, request_id=1)
        high = ServeRequest(request=ntt_request(1), arrival_us=5.0,
                            priority=3, request_id=2)
        low2 = ServeRequest(request=ntt_request(2), arrival_us=1.0,
                            priority=0, request_id=3)
        for s in (low, high, low2):
            queue.offer(s)
        assert [s.request_id for s in queue.waiting()] == [2, 1, 3]

    def test_max_depth_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(max_depth=0)


class TestShapeKey:
    def test_forward_ntts_of_same_shape_share_a_key(self):
        a = ServeRequest(request=ntt_request(0))
        b = ServeRequest(request=ntt_request(1))
        assert shape_key(a, NOVERIFY) == shape_key(b, NOVERIFY)

    def test_inverse_and_negacyclic_batch_under_their_own_keys(self):
        fwd = ServeRequest(request=ntt_request(0))
        inv = ServeRequest(request=NttRequest(params=PARAMS, inverse=True))
        neg = ServeRequest(request=nega_request(0))
        neg_inv = ServeRequest(request=nega_request(1, inverse=True))
        keys = [shape_key(s, NOVERIFY) for s in (fwd, inv, neg, neg_inv)]
        assert all(k is not None for k in keys)
        assert len(set(keys)) == 4  # four distinct dispatch groups

    def test_fhe_ops_do_not_batch(self):
        assert shape_key(ServeRequest(request=fhe_request(0)),
                         NOVERIFY) is None

    def test_config_override_separates_groups(self):
        plain = ServeRequest(request=ntt_request(0))
        override = ServeRequest(request=ntt_request(1),
                                config=SimConfig(verify=True))
        assert shape_key(plain, NOVERIFY) != shape_key(override, NOVERIFY)


def _plan(scheduler, sreqs, max_depth=256, telemetry=None):
    queue = RequestQueue(max_depth=max_depth)
    return scheduler.plan(sorted(sreqs, key=lambda s: (s.arrival_us,
                                                       s.request_id)),
                          queue, NOVERIFY, telemetry)


class TestBatchingSchedulerPlan:
    def test_same_shape_within_window_coalesces(self):
        sched = BatchingScheduler(window_us=50.0, max_banks=8)
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(5)]
        units, dropped = _plan(sched, sreqs)
        assert not dropped
        assert len(units) == 1
        assert units[0].banks == 5
        # The group closed when the head's window elapsed.
        assert units[0].ready_us == pytest.approx(0.0 + 50.0)

    def test_full_group_dispatches_before_window(self):
        sched = BatchingScheduler(window_us=1000.0, max_banks=4)
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(6)]
        units, _ = _plan(sched, sreqs)
        assert [u.banks for u in units] == [4, 2]
        assert units[0].ready_us == pytest.approx(3.0)  # filled at 4th arrival

    def test_window_closure_starts_a_fresh_group(self):
        sched = BatchingScheduler(window_us=10.0, max_banks=8)
        sreqs = [ServeRequest(request=ntt_request(0), arrival_us=0.0,
                              request_id=1),
                 ServeRequest(request=ntt_request(1), arrival_us=100.0,
                              request_id=2)]
        units, _ = _plan(sched, sreqs)
        assert [u.banks for u in units] == [1, 1]
        assert units[0].ready_us == pytest.approx(10.0)
        assert units[1].ready_us == pytest.approx(110.0)

    def test_unbatchable_requests_dispatch_immediately(self):
        sched = BatchingScheduler(window_us=50.0, max_banks=8)
        sreqs = [ServeRequest(request=fhe_request(0), arrival_us=3.0,
                              request_id=1)]
        units, _ = _plan(sched, sreqs)
        assert len(units) == 1 and units[0].ready_us == pytest.approx(3.0)

    def test_sequential_policy_never_groups(self):
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(4)]
        units, _ = _plan(sequential_policy(), sreqs)
        assert [u.banks for u in units] == [1, 1, 1, 1]
        assert [u.ready_us for u in units] == [0.0, 1.0, 2.0, 3.0]

    def test_deadline_expiry_while_queued(self):
        sched = BatchingScheduler(window_us=100.0, max_banks=8)
        sreqs = [ServeRequest(request=ntt_request(0), arrival_us=0.0,
                              request_id=1),
                 ServeRequest(request=ntt_request(1), arrival_us=1.0,
                              deadline_us=20.0, request_id=2)]
        units, dropped = _plan(sched, sreqs)
        assert len(units) == 1 and units[0].banks == 1
        assert [r.request_id for r in dropped] == [2]
        assert dropped[0].status == "expired"

    def test_admission_rejection_recorded(self):
        sched = BatchingScheduler(window_us=1000.0, max_banks=8)
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(4)]
        units, dropped = _plan(sched, sreqs, max_depth=2)
        assert [r.request_id for r in dropped] == [3, 4]
        assert all(r.status == "rejected" for r in dropped)
        assert len(units) == 1 and units[0].banks == 2

    def test_distinct_shapes_shard_round_robin(self):
        sched = BatchingScheduler(window_us=10.0, max_banks=8, num_shards=2)
        big = NttParams(512, find_ntt_prime(512, 32))
        sreqs = [ServeRequest(request=ntt_request(0), arrival_us=0.0,
                              request_id=1),
                 ServeRequest(request=ntt_request(1, big), arrival_us=1.0,
                              request_id=2)]
        units, _ = _plan(sched, sreqs)
        assert sorted(u.shard for u in units) == [0, 1]


class TestSimServer:
    def _load(self, count=40, rate=300_000, seed=2):
        return LoadGenerator(make_scenario("skewed"), rate_rps=rate,
                             count=count, seed=seed).requests()

    def test_batching_responses_bit_identical_to_standalone(self):
        sreqs = self._load()
        server = SimServer(NOVERIFY, max_banks=8, window_us=50.0)
        results = server.serve(sreqs)
        solo = Simulator(NOVERIFY)
        grouped = 0
        for sreq, result in zip(sreqs, results):
            assert result.ok
            assert result.response.values == solo.run(sreq.request).values
            if result.record.group_banks > 1:
                grouped += 1
                assert result.response.metrics["group_banks"] == \
                    result.record.group_banks
        assert grouped > len(sreqs) // 2  # the skewed mix really batches

    def test_sequential_responses_bit_identical_to_standalone(self):
        sreqs = self._load(count=20)
        server = SimServer(NOVERIFY, scheduler="sequential")
        results = server.serve(sreqs)
        solo = Simulator(NOVERIFY)
        for sreq, result in zip(sreqs, results):
            assert result.response.values == solo.run(sreq.request).values
            assert result.record.group_banks == 1

    def test_batching_beats_sequential_under_overload(self):
        sreqs = self._load(count=60, rate=400_000)
        batching = SimServer(NOVERIFY, max_banks=8, window_us=50.0)
        batching.serve(sreqs)
        sequential = SimServer(NOVERIFY, scheduler="sequential")
        sequential.serve(self._load(count=60, rate=400_000))
        b = batching.telemetry.snapshot()
        s = sequential.telemetry.snapshot()
        assert b["throughput_rps"] >= 2.0 * s["throughput_rps"]
        assert b["latency_p99_us"] < s["latency_p99_us"]

    def test_thread_workers_match_inline(self):
        sreqs = self._load(count=30)
        inline = SimServer(NOVERIFY, workers="inline")
        threaded = SimServer(NOVERIFY, workers="thread")
        res_i = inline.serve(sreqs)
        res_t = threaded.serve(self._load(count=30))
        for a, b in zip(res_i, res_t):
            assert a.response.values == b.response.values
            assert a.record.completion_us == b.record.completion_us
            assert a.record.start_us == b.record.start_us

    def test_priority_served_first_under_backlog(self):
        # Three unbatchable requests on one shard: the shard is busy
        # with the first when #2 (prio 0) and #3 (prio 5) are ready, so
        # the urgent one overtakes.
        sreqs = [ServeRequest(request=fhe_request(i), arrival_us=float(i),
                              priority=p, request_id=i + 1)
                 for i, p in ((0, 0), (1, 0), (2, 5))]
        server = SimServer(NOVERIFY)
        results = server.serve(sreqs)
        by_id = {r.record.request_id: r.record for r in results}
        assert by_id[3].completion_us < by_id[2].completion_us
        assert by_id[2].queue_wait_us > by_id[3].queue_wait_us

    def test_deadline_missed_flag_and_expiry(self):
        sreqs = [ServeRequest(request=ntt_request(0), arrival_us=0.0,
                              deadline_us=1.0, request_id=1),
                 ServeRequest(request=ntt_request(1), arrival_us=0.5,
                              deadline_us=10_000.0, request_id=2)]
        server = SimServer(NOVERIFY, window_us=5.0)
        results = server.serve(sreqs)
        # #1's deadline passed before its window closed -> expired.
        assert not results[0].ok
        assert results[0].record.status == "expired"
        # #2 made it, comfortably.
        assert results[1].ok and not results[1].record.deadline_missed

    def test_rejected_requests_get_record_without_response(self):
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(5)]
        server = SimServer(NOVERIFY, max_depth=2, window_us=1000.0)
        results = server.serve(sreqs)
        statuses = [r.record.status for r in results]
        assert statuses.count("rejected") == 3
        assert all(r.response is None
                   for r in results if r.record.status == "rejected")
        assert server.telemetry.snapshot()["rejected"] == 3

    def test_call_matches_facade_run(self):
        request = ntt_request(9)
        server = SimServer()  # default config: verify on
        response = server.call(request)
        assert response.verified
        assert response.values == Simulator().run(request).values
        assert server.telemetry.snapshot()["completed"] == 1

    def test_energy_rollup_stays_physical(self):
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=0.0,
                              request_id=i + 1) for i in range(4)]
        server = SimServer(NOVERIFY, window_us=10.0, max_banks=4)
        results = server.serve(sreqs)
        group = results[0].response.raw  # the MultiBankResult
        total = server.telemetry.snapshot()["total_energy_nj"]
        assert total == pytest.approx(group.schedule.energy_nj)

    def test_cache_rollup_accumulates_across_calls(self):
        """telemetry.cache holds session-wide deltas, not just the last
        call's: the first call misses, the warm second call hits, and
        both show up."""
        server = SimServer(NOVERIFY)
        Simulator.clear_caches()
        server.call(ntt_request(20))
        server.call(ntt_request(21))  # same shape: pure cache hits
        cache = server.telemetry.cache
        assert cache["program"]["misses"] >= 1   # first call compiled
        assert cache["program"]["hits"] >= 1     # second call reused
        assert server.telemetry.snapshot()["cache_hit_rate"] > 0

    def test_single_routing_does_not_grow_scheduler_state(self):
        sreqs = [ServeRequest(request=fhe_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(6)]
        server = SimServer(NOVERIFY, num_shards=2)
        server.serve(sreqs)
        # Unbatchable singles take round-robin shards without leaving
        # per-request residue in the placement map.
        assert len(server.scheduler._shard_of) == 0

    def test_duplicate_request_ids_reassigned(self):
        """Two concatenated LoadGenerator streams both number 1..count;
        serve() must keep results positional and ids unique instead of
        silently cross-wiring responses."""
        first = self._load(count=8, seed=11)
        second = self._load(count=8, seed=12)
        combined = first + second
        server = SimServer(NOVERIFY)
        results = server.serve(combined)
        assert len(results) == 16
        ids = [r.record.request_id for r in results]
        assert len(set(ids)) == 16
        solo = Simulator(NOVERIFY)
        for sreq, result in zip(combined, results):
            assert result.response.values == solo.run(sreq.request).values
        # The caller's own objects were not renumbered (copy-on-write).
        assert [s.request_id for s in second] == list(range(1, 9))

    def test_virtual_clock_monotonic_across_calls(self):
        """Sequential call()s (the host-controller route) must read as
        serial traffic: completions advance, makespan spans the whole
        session, throughput is not inflated."""
        server = SimServer(NOVERIFY)
        completions = []
        for seed in range(3):
            server.call(ntt_request(seed))
            completions.append(server.telemetry.records[-1].completion_us)
        assert completions == sorted(completions)
        assert len(set(completions)) == 3
        snapshot = server.telemetry.snapshot()
        single = server.telemetry.records[0].latency_us
        assert snapshot["makespan_us"] >= 2.5 * single
        assert snapshot["throughput_rps"] < 1.5e6 / single

    def test_sharding_overlaps_distinct_shapes(self):
        big = NttParams(512, find_ntt_prime(512, 32))
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=0.0,
                              request_id=i + 1) for i in range(2)]
        sreqs += [ServeRequest(request=ntt_request(i, big), arrival_us=0.0,
                               request_id=i + 3) for i in range(2)]
        one = SimServer(NOVERIFY, num_shards=1, window_us=5.0)
        two = SimServer(NOVERIFY, num_shards=2, window_us=5.0)
        m1 = max(r.record.completion_us for r in one.serve(sreqs))
        m2 = max(r.record.completion_us for r in two.serve(sreqs))
        assert m2 < m1  # the second channel absorbed one shape


class TestGeneralizedBatching:
    """Negacyclic and inverse transforms coalesce exactly like forward
    cyclic NTTs — bit-identical to standalone runs — and mixed-kind
    windows split into one dispatch group per kind."""

    def _serve_and_check(self, requests, **server_kwargs):
        sreqs = [ServeRequest(request=r, arrival_us=0.0, request_id=i + 1)
                 for i, r in enumerate(requests)]
        server = SimServer(NOVERIFY, window_us=10.0, max_banks=8,
                           **server_kwargs)
        results = server.serve(sreqs)
        solo = Simulator(NOVERIFY)
        for sreq, result in zip(sreqs, results):
            assert result.ok
            assert result.response.values == solo.run(sreq.request).values
        return results

    def test_inverse_ntts_merge_bit_identically(self):
        results = self._serve_and_check(
            [NttRequest(params=PARAMS, values=ntt_request(i).values,
                        inverse=True) for i in range(4)])
        assert all(r.record.group_banks == 4 for r in results)

    def test_negacyclic_merges_bit_identically(self):
        results = self._serve_and_check(
            [nega_request(i) for i in range(3)])
        assert all(r.record.group_banks == 3 for r in results)

    def test_inverse_negacyclic_merges_bit_identically(self):
        results = self._serve_and_check(
            [nega_request(i, inverse=True) for i in range(3)])
        assert all(r.record.group_banks == 3 for r in results)

    def test_mixed_kind_window_splits_into_per_kind_groups(self):
        requests = ([ntt_request(i) for i in range(2)]
                    + [NttRequest(params=PARAMS,
                                  values=ntt_request(i + 10).values,
                                  inverse=True) for i in range(2)]
                    + [nega_request(i) for i in range(2)]
                    + [nega_request(i + 10, inverse=True) for i in range(2)]
                    + [fhe_request(0)])
        results = self._serve_and_check(requests)
        # Four two-member groups (one per transform kind) and the FHE
        # op alone: 8 grouped requests, 1 unbatched.
        banks = [r.record.group_banks for r in results]
        assert banks == [2] * 8 + [1]

    def test_grouped_negacyclic_counters_split_per_bank(self):
        results = self._serve_and_check([nega_request(i) for i in range(4)])
        group = results[0].response.raw  # the MultiBankResult
        assert group.banks == 4
        per_bank = results[0].response.counters
        assert all(v * 4 == group.schedule.stats.command_counts.get(k, 0)
                   for k, v in per_bank.items() if k != "bu_ops")


class TestLiveSurface:
    """submit()/poll()/drain(): the online form of serve()."""

    def _load(self, count=30, rate=300_000, seed=7, scenario="mixed"):
        return LoadGenerator(make_scenario(scenario), rate_rps=rate,
                             count=count, seed=seed)

    def test_drain_matches_offline_serve_bit_for_bit(self):
        offline = SimServer(NOVERIFY, window_us=50.0)
        off = offline.serve(self._load().requests())
        live = SimServer(NOVERIFY, window_us=50.0)
        for sreq in self._load().stream():
            live.submit(sreq)
        drained = live.drain()
        assert len(drained) == len(off)
        for a, b in zip(off, drained):
            assert b.response.values == a.response.values
            assert b.record.completion_us == a.record.completion_us
            assert b.record.start_us == a.record.start_us
            assert b.record.dispatch_us == a.record.dispatch_us
            assert b.record.shard == a.record.shard
            assert b.record.group_banks == a.record.group_banks

    def test_poll_progression(self):
        """A request is invisible while queued/windowed, then appears
        with a response once later arrivals push virtual time past its
        dispatch and service."""
        server = SimServer(NOVERIFY, window_us=10.0)
        first = server.submit(ntt_request(0), arrival_us=0.0)
        assert server.poll(first) is None          # window still open
        server.submit(ntt_request(1), arrival_us=5.0)
        assert server.poll(first) is None          # still open (5 < 10)
        server.submit(ntt_request(2), arrival_us=5_000.0)
        result = server.poll(first)                # window long closed
        assert result is not None and result.ok
        assert result.record.group_banks == 2      # batched with #2
        drained = server.drain()
        assert len(drained) == 3
        assert server.poll(first) is None          # session closed

    def test_poll_unknown_and_empty_drain(self):
        server = SimServer(NOVERIFY)
        assert server.poll(1) is None
        assert server.drain() == []

    def test_submit_rejected_request_polls_failed_result(self):
        server = SimServer(NOVERIFY, max_depth=1, window_us=1000.0)
        ids = [server.submit(ntt_request(i), arrival_us=float(i))
               for i in range(3)]
        rejected = [server.poll(i) for i in ids[1:]]
        assert all(r is not None and not r.ok for r in rejected)
        assert all(r.record.status == "rejected" for r in rejected)
        results = server.drain()
        assert results[0].ok

    def test_submit_clamps_past_arrivals(self):
        server = SimServer(NOVERIFY, window_us=5.0)
        server.submit(ntt_request(0), arrival_us=100.0)
        late = server.submit(ntt_request(1), arrival_us=1.0)  # in the past
        results = server.drain()
        by_id = {r.record.request_id: r.record for r in results}
        assert by_id[late].arrival_us >= 100.0

    def test_submit_rejects_kwargs_alongside_serve_request(self):
        server = SimServer(NOVERIFY)
        with pytest.raises(ValueError, match="ServeRequest"):
            server.submit(ServeRequest(request=ntt_request(0)), priority=3)
        assert server.drain() == []  # nothing was admitted

    def test_drain_survives_execution_error_and_retries(self, monkeypatch):
        server = SimServer(NOVERIFY, window_us=5.0)
        request_id = server.submit(ntt_request(0))
        real_execute = SimServer._execute
        failures = {"left": 1}

        def flaky(self, unit):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient execution failure")
            return real_execute(self, unit)

        monkeypatch.setattr(SimServer, "_execute", flaky)
        # Pool leaks surface as the serving hierarchy, original attached.
        with pytest.raises(ServeError, match="transient") as excinfo:
            server.drain()
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        # The session survived: the retry serves the re-queued unit.
        results = server.drain()
        assert len(results) == 1 and results[0].ok
        assert results[0].record.request_id == request_id
        assert server.drain() == []  # now closed

    def test_serve_guard_while_live_session_open(self):
        server = SimServer(NOVERIFY)
        server.submit(ntt_request(0))
        with pytest.raises(RuntimeError, match="drain"):
            server.serve([ServeRequest(request=ntt_request(1))])
        server.drain()
        assert server.serve([ServeRequest(request=ntt_request(1))])[0].ok

    def test_advance_settles_without_new_traffic(self):
        """The idle tick: virtual time passes, the window closes, and
        the result becomes pollable with no further arrivals — what a
        console loop (or any quiet client) relies on."""
        server = SimServer(NOVERIFY, window_us=10.0)
        request_id = server.submit(ntt_request(0), arrival_us=0.0)
        assert server.poll(request_id) is None      # window still open
        server.advance(5.0)
        assert server.poll(request_id) is None      # still open (5 < 10)
        server.advance(5_000.0)
        result = server.poll(request_id)            # closed by the tick
        assert result is not None and result.ok
        # The tick changed *when* the answer appeared, never *what* the
        # session computes: the drain matches an untouched twin.
        twin = SimServer(NOVERIFY, window_us=10.0)
        twin.submit(ntt_request(0), arrival_us=0.0)
        a, b = server.drain(), twin.drain()
        assert a[0].response.values == b[0].response.values
        assert a[0].record.completion_us == b[0].record.completion_us

    def test_advance_is_monotonic_and_opens_a_session(self):
        server = SimServer(NOVERIFY, window_us=10.0)
        server.advance(100.0)                       # opens an empty live session
        assert server.session_offset_us() == 0.0
        request_id = server.submit(ntt_request(0))  # arrives at "now" = 100
        server.advance(50.0)                        # backwards: no-op
        server.advance(5_000.0)
        record = server.poll(request_id).record
        assert record.arrival_us >= 100.0
        server.drain()

    def test_live_stats_gauges(self):
        server = SimServer(NOVERIFY, window_us=50.0, num_shards=2)
        empty = server.live_stats()
        assert empty["submitted"] == 0 and empty["breakers"] == {}
        server.submit(ntt_request(0), arrival_us=0.0)
        stats = server.live_stats()
        assert stats["submitted"] == 1
        assert stats["settled"] == 0
        assert stats["num_shards"] == 2
        server.drain()

    def test_clock_monotonic_across_live_and_offline_sessions(self):
        server = SimServer(NOVERIFY)
        server.call(ntt_request(0))
        first_completion = server.telemetry.records[-1].completion_us
        server.submit(ntt_request(1))
        server.drain()
        second_completion = server.telemetry.records[-1].completion_us
        assert second_completion > first_completion


class TestSharedBus:
    def test_unknown_bus_model_rejected(self):
        with pytest.raises(ValueError, match="bus model"):
            SimServer(NOVERIFY, bus="turbo")

    def _two_shape_load(self, per_shape=4):
        big = NttParams(512, find_ntt_prime(512, 32))
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=0.0,
                              request_id=i + 1) for i in range(per_shape)]
        sreqs += [ServeRequest(request=ntt_request(i, big), arrival_us=0.0,
                               request_id=i + 1 + per_shape)
                  for i in range(per_shape)]
        return sreqs

    def test_shared_bus_delays_concurrent_shards(self):
        independent = SimServer(NOVERIFY, num_shards=2, window_us=5.0,
                                bus="independent")
        shared = SimServer(NOVERIFY, num_shards=2, window_us=5.0,
                           bus="shared")
        m_ind = max(r.record.completion_us
                    for r in independent.serve(self._two_shape_load()))
        m_sha = max(r.record.completion_us
                    for r in shared.serve(self._two_shape_load()))
        assert m_sha > m_ind  # the second shard stalled for bus slots
        snap = shared.telemetry.snapshot()
        assert snap["bus_utilization"] > 0.0
        assert snap["bus_wait_p99_us"] > 0.0
        assert independent.telemetry.snapshot()["bus_utilization"] == 0.0

    def test_shared_bus_single_shard_matches_independent(self):
        """With one shard the bus occupancy always fits under the
        dispatch latency, so the shared model changes nothing — the
        PR 4 single-shard numbers are preserved exactly."""
        a = SimServer(NOVERIFY, num_shards=1, bus="independent")
        b = SimServer(NOVERIFY, num_shards=1, bus="shared")
        ra = a.serve(self._two_shape_load())
        rb = b.serve(self._two_shape_load())
        for x, y in zip(ra, rb):
            assert x.record.completion_us == y.record.completion_us
        assert b.telemetry.snapshot()["bus_utilization"] > 0.0

    def test_fhe_dispatches_charge_the_bus(self):
        """Multi-program workloads (FHE ops) report their summed command
        count, so the shared bus sees their traffic too."""
        server = SimServer(NOVERIFY, bus="shared")
        result = server.serve([ServeRequest(request=fhe_request(0),
                                            request_id=1)])[0]
        assert result.response.command_count > 0
        assert server.telemetry.snapshot()["bus_utilization"] > 0.0

    def test_shared_bus_responses_stay_bit_identical(self):
        server = SimServer(NOVERIFY, num_shards=2, window_us=5.0,
                           bus="shared")
        sreqs = self._two_shape_load()
        solo = Simulator(NOVERIFY)
        for sreq, result in zip(sreqs, server.serve(sreqs)):
            assert result.response.values == solo.run(sreq.request).values


class TestPlanSession:
    def test_incremental_plan_matches_offline_plan(self):
        def arrivals():
            return [ServeRequest(request=ntt_request(i),
                                 arrival_us=float(i * 7), request_id=i + 1)
                    for i in range(10)]
        offline = BatchingScheduler(window_us=20.0, max_banks=3)
        units, dropped = _plan(offline, arrivals())
        online = BatchingScheduler(window_us=20.0, max_banks=3)
        session = online.begin(RequestQueue(), NOVERIFY)
        for sreq in arrivals():
            session.offer(sreq)
        session.flush()
        assert not dropped and not session.dropped
        assert [(u.ready_us, [m.request_id for m in u.members], u.shard)
                for u in units] == \
               [(u.ready_us, [m.request_id for m in u.members], u.shard)
                for u in session.units]

    def test_out_of_order_arrival_rejected(self):
        scheduler = BatchingScheduler(window_us=10.0)
        session = scheduler.begin(RequestQueue(), NOVERIFY)
        session.offer(ServeRequest(request=ntt_request(0), arrival_us=50.0,
                                   request_id=1))
        with pytest.raises(ValueError, match="precedes"):
            session.offer(ServeRequest(request=ntt_request(1),
                                       arrival_us=10.0, request_id=2))


class TestLoadGenerator:
    def test_deterministic_given_seed(self):
        gen = lambda: LoadGenerator(make_scenario("uniform"),  # noqa: E731
                                    rate_rps=10_000, count=20, seed=5)
        a, b = gen().requests(), gen().requests()
        assert [s.arrival_us for s in a] == [s.arrival_us for s in b]
        assert [s.request for s in a] == [s.request for s in b]

    def test_mean_arrival_gap_tracks_rate(self):
        load = LoadGenerator(make_scenario("uniform"), rate_rps=1000.0,
                             count=400, seed=0)
        sreqs = load.requests()
        mean_gap = sreqs[-1].arrival_us / len(sreqs)
        assert mean_gap == pytest.approx(1000.0, rel=0.2)  # 1/rate = 1ms

    def test_skewed_mix_is_skewed(self):
        sreqs = LoadGenerator(make_scenario("skewed"), rate_rps=1000.0,
                              count=100, seed=1).requests()
        n512 = sum(s.request.params.n == 512 for s in sreqs)
        assert n512 > 75

    def test_priorities_and_deadlines_stamped(self):
        sreqs = LoadGenerator(make_scenario("uniform"), rate_rps=1000.0,
                              count=50, seed=3, high_priority_fraction=0.5,
                              deadline_us=123.0).requests()
        assert 0 < sum(s.priority for s in sreqs) < 50
        assert all(s.deadline_us == pytest.approx(s.arrival_us + 123.0)
                   for s in sreqs)

    def test_stream_equals_requests(self):
        load = LoadGenerator(make_scenario("mixed"), rate_rps=5_000,
                             count=25, seed=9)
        assert list(load.stream()) == load.requests()

    def test_mixed_scenario_covers_every_batchable_kind(self):
        sreqs = LoadGenerator(make_scenario("mixed"), rate_rps=1000.0,
                              count=120, seed=4).requests()
        kinds = {(s.request.workload, s.request.inverse) for s in sreqs}
        assert kinds == {("ntt", False), ("ntt", True),
                         ("negacyclic", False), ("negacyclic", True)}

    def test_unknown_scenario_raises(self):
        from repro.errors import ServeError
        with pytest.raises(ServeError, match="unknown scenario") as info:
            make_scenario("nope")
        # The error is contextful: every available scenario is listed.
        for name in ("uniform", "skewed", "fhe", "mixed", "chaos", "dag",
                     "pipeline"):
            assert name in str(info.value)

    def test_tenancy_labels_without_perturbing_the_stream(self):
        """The tenant draw uses a sibling RNG stream: a seeded stream
        yields bit-identical arrivals, shapes and values with or
        without tenancy."""
        plain = LoadGenerator(make_scenario("mixed"), rate_rps=10_000,
                              count=30, seed=5).requests()
        tagged = LoadGenerator(make_scenario("mixed"), rate_rps=10_000,
                               count=30, seed=5,
                               tenants=(("a", 1.0), ("b", 1.0))
                               ).requests()
        assert [s.arrival_us for s in plain] == \
            [s.arrival_us for s in tagged]
        assert [s.request for s in plain] == [s.request for s in tagged]
        assert all(s.tenant == "" for s in plain)
        assert set(s.tenant for s in tagged) == {"a", "b"}
        again = LoadGenerator(make_scenario("mixed"), rate_rps=10_000,
                              count=30, seed=5,
                              tenants=(("a", 1.0), ("b", 1.0))).requests()
        assert [s.tenant for s in tagged] == [s.tenant for s in again]

    def test_noisy_neighbor_preset(self):
        mix = LoadGenerator.noisy_neighbor(hog_share=0.8, neighbors=3)
        assert mix[0] == ("hog", 0.8)
        assert len(mix) == 4
        assert sum(w for _, w in mix) == pytest.approx(1.0)
        sreqs = LoadGenerator(make_scenario("skewed"), rate_rps=10_000,
                              count=200, seed=2, tenants=mix).requests()
        share = sum(s.tenant == "hog" for s in sreqs) / len(sreqs)
        assert share == pytest.approx(0.8, abs=0.1)
        with pytest.raises(ValueError, match="hog_share"):
            LoadGenerator.noisy_neighbor(hog_share=1.5)

    def test_tenant_weights_validated(self):
        with pytest.raises(ValueError, match="non-empty"):
            LoadGenerator(make_scenario("uniform"), rate_rps=1000,
                          count=5, tenants=())
        with pytest.raises(ValueError, match="weights"):
            LoadGenerator(make_scenario("uniform"), rate_rps=1000,
                          count=5, tenants=(("a", 0.0),))


class TestTelemetry:
    def test_percentile_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0) == pytest.approx(25.0)
        assert percentile(values, 99.0) == pytest.approx(39.7)
        assert percentile([], 50.0) == 0.0
        assert percentile([7.0], 99.0) == 7.0

    def test_snapshot_empty_session(self):
        snapshot = Telemetry().snapshot()
        assert snapshot["requests"] == 0
        assert snapshot["throughput_rps"] == 0.0

    @staticmethod
    def _part(replica, latencies, start_us=0.0):
        telemetry = Telemetry()
        telemetry.replica = replica
        for i, latency in enumerate(latencies):
            telemetry.add(RequestRecord(
                request_id=i + 1, arrival_us=start_us,
                start_us=start_us, completion_us=start_us + latency))
        telemetry.retries = 1
        telemetry.faults_injected = {"fail": 2}
        return telemetry

    def test_merge_single_part_is_identity(self):
        part = self._part(0, [10.0, 20.0])
        merged = Telemetry.merge([part])
        assert merged.records == part.records
        assert merged.retries == part.retries
        assert merged.faults_injected == part.faults_injected
        assert {k: v for k, v in merged.snapshot().items()} == \
            {k: v for k, v in part.snapshot().items()}

    def test_merge_pools_records_and_sums_counters(self):
        a = self._part(0, [10.0, 20.0])
        b = self._part(1, [30.0, 40.0])
        merged = Telemetry.merge([a, b])
        assert len(merged.records) == 4
        # Per-replica attribution survives the pooling.
        assert [r.replica for r in merged.records] == [0, 0, 1, 1]
        assert merged.retries == 2
        assert merged.faults_injected == {"fail": 4}
        # Exact pooled percentile over all four latencies.
        assert merged.snapshot()["latency_p50_us"] == pytest.approx(25.0)

    def test_merge_snapshots_weighted_combining(self):
        # Two replicas, equal completed counts: percentile means are
        # completed-weighted, counters add, and rates re-derive over
        # the *max* makespan (replicas serve concurrently).
        a = self._part(0, [10.0, 20.0]).snapshot()    # makespan 20us
        b = self._part(1, [30.0, 40.0]).snapshot()    # makespan 40us
        merged = merge_snapshots([a, b])
        assert merged["requests"] == 4
        assert merged["completed"] == 4
        assert merged["replicas"] == 2
        assert merged["availability"] == pytest.approx(1.0)
        assert merged["latency_p50_us"] == pytest.approx(
            (a["latency_p50_us"] + b["latency_p50_us"]) / 2.0)
        assert merged["makespan_us"] == pytest.approx(40.0)
        # 4 in-deadline completions re-rated over the widest makespan.
        assert merged["goodput_rps"] == pytest.approx(4 / 40e-6)
        assert merged["throughput_rps"] == pytest.approx(4 / 40e-6)
        assert merged["resilience"]["retries"] == 2
        assert merged["resilience"]["faults_injected"] == {"fail": 4}

    def test_merge_snapshots_unequal_weights_and_empty(self):
        empty = merge_snapshots([])
        assert empty["requests"] == 0 and empty["replicas"] == 0
        heavy = self._part(0, [10.0] * 9).snapshot()
        light = self._part(1, [100.0]).snapshot()
        merged = merge_snapshots([heavy, light])
        # 9:1 completed weighting pulls the mean toward the busy part.
        assert merged["latency_mean_us"] == pytest.approx(
            0.9 * heavy["latency_mean_us"] + 0.1 * light["latency_mean_us"])
