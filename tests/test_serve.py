"""Tests for the repro.serve subsystem: queue, scheduler, workers,
telemetry, load generation and the end-to-end server.

The load-bearing property throughout: scheduling changes *when* work
runs, never *what it computes* — every served response must be bit-
identical to a standalone ``Simulator.run`` of the same request.
"""

import random

import pytest

from repro.api import NegacyclicRequest, NttRequest, Simulator
from repro.arith import NttParams, find_ntt_prime
from repro.ntt.negacyclic import NegacyclicParams
from repro.serve import (
    BatchingScheduler,
    LoadGenerator,
    RequestQueue,
    ServeRequest,
    SimServer,
    Telemetry,
    make_scenario,
    percentile,
    sequential_policy,
    shape_key,
)
from repro.sim.driver import SimConfig

N = 256
Q = find_ntt_prime(N, 32)
PARAMS = NttParams(N, Q)
NOVERIFY = SimConfig(verify=False)


def ntt_request(seed: int, params: NttParams = PARAMS) -> NttRequest:
    rng = random.Random(seed)
    return NttRequest(params=params,
                      values=tuple(rng.randrange(params.q)
                                   for _ in range(params.n)))


def nega_request(seed: int) -> NegacyclicRequest:
    ring = NegacyclicParams(N, find_ntt_prime(N, 32, negacyclic=True))
    rng = random.Random(seed)
    return NegacyclicRequest(ring=ring,
                             values=tuple(rng.randrange(ring.q)
                                          for _ in range(ring.n)))


class TestRequestQueue:
    def test_admission_control_rejects_when_full(self):
        queue = RequestQueue(max_depth=2)
        a = ServeRequest(request=ntt_request(0), request_id=1)
        b = ServeRequest(request=ntt_request(1), request_id=2)
        c = ServeRequest(request=ntt_request(2), request_id=3)
        assert queue.offer(a) and queue.offer(b)
        assert not queue.offer(c)
        stats = queue.stats()
        assert stats == {"depth": 2, "admitted": 2, "rejected": 1,
                         "removed": 0, "max_depth": 2}
        queue.remove(a)
        assert queue.offer(c)

    def test_waiting_orders_by_priority_then_fifo(self):
        queue = RequestQueue()
        low = ServeRequest(request=ntt_request(0), arrival_us=0.0,
                           priority=0, request_id=1)
        high = ServeRequest(request=ntt_request(1), arrival_us=5.0,
                            priority=3, request_id=2)
        low2 = ServeRequest(request=ntt_request(2), arrival_us=1.0,
                            priority=0, request_id=3)
        for s in (low, high, low2):
            queue.offer(s)
        assert [s.request_id for s in queue.waiting()] == [2, 1, 3]

    def test_max_depth_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(max_depth=0)


class TestShapeKey:
    def test_forward_ntts_of_same_shape_share_a_key(self):
        a = ServeRequest(request=ntt_request(0))
        b = ServeRequest(request=ntt_request(1))
        assert shape_key(a, NOVERIFY) == shape_key(b, NOVERIFY)

    def test_inverse_and_negacyclic_do_not_batch(self):
        inv = ServeRequest(request=NttRequest(params=PARAMS, inverse=True))
        neg = ServeRequest(request=nega_request(0))
        assert shape_key(inv, NOVERIFY) is None
        assert shape_key(neg, NOVERIFY) is None

    def test_config_override_separates_groups(self):
        plain = ServeRequest(request=ntt_request(0))
        override = ServeRequest(request=ntt_request(1),
                                config=SimConfig(verify=True))
        assert shape_key(plain, NOVERIFY) != shape_key(override, NOVERIFY)


def _plan(scheduler, sreqs, max_depth=256, telemetry=None):
    queue = RequestQueue(max_depth=max_depth)
    return scheduler.plan(sorted(sreqs, key=lambda s: (s.arrival_us,
                                                       s.request_id)),
                          queue, NOVERIFY, telemetry)


class TestBatchingSchedulerPlan:
    def test_same_shape_within_window_coalesces(self):
        sched = BatchingScheduler(window_us=50.0, max_banks=8)
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(5)]
        units, dropped = _plan(sched, sreqs)
        assert not dropped
        assert len(units) == 1
        assert units[0].banks == 5
        # The group closed when the head's window elapsed.
        assert units[0].ready_us == pytest.approx(0.0 + 50.0)

    def test_full_group_dispatches_before_window(self):
        sched = BatchingScheduler(window_us=1000.0, max_banks=4)
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(6)]
        units, _ = _plan(sched, sreqs)
        assert [u.banks for u in units] == [4, 2]
        assert units[0].ready_us == pytest.approx(3.0)  # filled at 4th arrival

    def test_window_closure_starts_a_fresh_group(self):
        sched = BatchingScheduler(window_us=10.0, max_banks=8)
        sreqs = [ServeRequest(request=ntt_request(0), arrival_us=0.0,
                              request_id=1),
                 ServeRequest(request=ntt_request(1), arrival_us=100.0,
                              request_id=2)]
        units, _ = _plan(sched, sreqs)
        assert [u.banks for u in units] == [1, 1]
        assert units[0].ready_us == pytest.approx(10.0)
        assert units[1].ready_us == pytest.approx(110.0)

    def test_unbatchable_requests_dispatch_immediately(self):
        sched = BatchingScheduler(window_us=50.0, max_banks=8)
        sreqs = [ServeRequest(request=nega_request(0), arrival_us=3.0,
                              request_id=1)]
        units, _ = _plan(sched, sreqs)
        assert len(units) == 1 and units[0].ready_us == pytest.approx(3.0)

    def test_sequential_policy_never_groups(self):
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(4)]
        units, _ = _plan(sequential_policy(), sreqs)
        assert [u.banks for u in units] == [1, 1, 1, 1]
        assert [u.ready_us for u in units] == [0.0, 1.0, 2.0, 3.0]

    def test_deadline_expiry_while_queued(self):
        sched = BatchingScheduler(window_us=100.0, max_banks=8)
        sreqs = [ServeRequest(request=ntt_request(0), arrival_us=0.0,
                              request_id=1),
                 ServeRequest(request=ntt_request(1), arrival_us=1.0,
                              deadline_us=20.0, request_id=2)]
        units, dropped = _plan(sched, sreqs)
        assert len(units) == 1 and units[0].banks == 1
        assert [r.request_id for r in dropped] == [2]
        assert dropped[0].status == "expired"

    def test_admission_rejection_recorded(self):
        sched = BatchingScheduler(window_us=1000.0, max_banks=8)
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(4)]
        units, dropped = _plan(sched, sreqs, max_depth=2)
        assert [r.request_id for r in dropped] == [3, 4]
        assert all(r.status == "rejected" for r in dropped)
        assert len(units) == 1 and units[0].banks == 2

    def test_distinct_shapes_shard_round_robin(self):
        sched = BatchingScheduler(window_us=10.0, max_banks=8, num_shards=2)
        big = NttParams(512, find_ntt_prime(512, 32))
        sreqs = [ServeRequest(request=ntt_request(0), arrival_us=0.0,
                              request_id=1),
                 ServeRequest(request=ntt_request(1, big), arrival_us=1.0,
                              request_id=2)]
        units, _ = _plan(sched, sreqs)
        assert sorted(u.shard for u in units) == [0, 1]


class TestSimServer:
    def _load(self, count=40, rate=300_000, seed=2):
        return LoadGenerator(make_scenario("skewed"), rate_rps=rate,
                             count=count, seed=seed).requests()

    def test_batching_responses_bit_identical_to_standalone(self):
        sreqs = self._load()
        server = SimServer(NOVERIFY, max_banks=8, window_us=50.0)
        results = server.serve(sreqs)
        solo = Simulator(NOVERIFY)
        grouped = 0
        for sreq, result in zip(sreqs, results):
            assert result.ok
            assert result.response.values == solo.run(sreq.request).values
            if result.record.group_banks > 1:
                grouped += 1
                assert result.response.metrics["group_banks"] == \
                    result.record.group_banks
        assert grouped > len(sreqs) // 2  # the skewed mix really batches

    def test_sequential_responses_bit_identical_to_standalone(self):
        sreqs = self._load(count=20)
        server = SimServer(NOVERIFY, scheduler="sequential")
        results = server.serve(sreqs)
        solo = Simulator(NOVERIFY)
        for sreq, result in zip(sreqs, results):
            assert result.response.values == solo.run(sreq.request).values
            assert result.record.group_banks == 1

    def test_batching_beats_sequential_under_overload(self):
        sreqs = self._load(count=60, rate=400_000)
        batching = SimServer(NOVERIFY, max_banks=8, window_us=50.0)
        batching.serve(sreqs)
        sequential = SimServer(NOVERIFY, scheduler="sequential")
        sequential.serve(self._load(count=60, rate=400_000))
        b = batching.telemetry.snapshot()
        s = sequential.telemetry.snapshot()
        assert b["throughput_rps"] >= 2.0 * s["throughput_rps"]
        assert b["latency_p99_us"] < s["latency_p99_us"]

    def test_thread_workers_match_inline(self):
        sreqs = self._load(count=30)
        inline = SimServer(NOVERIFY, workers="inline")
        threaded = SimServer(NOVERIFY, workers="thread")
        res_i = inline.serve(sreqs)
        res_t = threaded.serve(self._load(count=30))
        for a, b in zip(res_i, res_t):
            assert a.response.values == b.response.values
            assert a.record.completion_us == b.record.completion_us
            assert a.record.start_us == b.record.start_us

    def test_priority_served_first_under_backlog(self):
        # Three unbatchable requests on one shard: the shard is busy
        # with the first when #2 (prio 0) and #3 (prio 5) are ready, so
        # the urgent one overtakes.
        sreqs = [ServeRequest(request=nega_request(i), arrival_us=float(i),
                              priority=p, request_id=i + 1)
                 for i, p in ((0, 0), (1, 0), (2, 5))]
        server = SimServer(NOVERIFY)
        results = server.serve(sreqs)
        by_id = {r.record.request_id: r.record for r in results}
        assert by_id[3].completion_us < by_id[2].completion_us
        assert by_id[2].queue_wait_us > by_id[3].queue_wait_us

    def test_deadline_missed_flag_and_expiry(self):
        sreqs = [ServeRequest(request=ntt_request(0), arrival_us=0.0,
                              deadline_us=1.0, request_id=1),
                 ServeRequest(request=ntt_request(1), arrival_us=0.5,
                              deadline_us=10_000.0, request_id=2)]
        server = SimServer(NOVERIFY, window_us=5.0)
        results = server.serve(sreqs)
        # #1's deadline passed before its window closed -> expired.
        assert not results[0].ok
        assert results[0].record.status == "expired"
        # #2 made it, comfortably.
        assert results[1].ok and not results[1].record.deadline_missed

    def test_rejected_requests_get_record_without_response(self):
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(5)]
        server = SimServer(NOVERIFY, max_depth=2, window_us=1000.0)
        results = server.serve(sreqs)
        statuses = [r.record.status for r in results]
        assert statuses.count("rejected") == 3
        assert all(r.response is None
                   for r in results if r.record.status == "rejected")
        assert server.telemetry.snapshot()["rejected"] == 3

    def test_call_matches_facade_run(self):
        request = ntt_request(9)
        server = SimServer()  # default config: verify on
        response = server.call(request)
        assert response.verified
        assert response.values == Simulator().run(request).values
        assert server.telemetry.snapshot()["completed"] == 1

    def test_energy_rollup_stays_physical(self):
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=0.0,
                              request_id=i + 1) for i in range(4)]
        server = SimServer(NOVERIFY, window_us=10.0, max_banks=4)
        results = server.serve(sreqs)
        group = results[0].response.raw  # the MultiBankResult
        total = server.telemetry.snapshot()["total_energy_nj"]
        assert total == pytest.approx(group.schedule.energy_nj)

    def test_cache_rollup_accumulates_across_calls(self):
        """telemetry.cache holds session-wide deltas, not just the last
        call's: the first call misses, the warm second call hits, and
        both show up."""
        server = SimServer(NOVERIFY)
        Simulator.clear_caches()
        server.call(ntt_request(20))
        server.call(ntt_request(21))  # same shape: pure cache hits
        cache = server.telemetry.cache
        assert cache["program"]["misses"] >= 1   # first call compiled
        assert cache["program"]["hits"] >= 1     # second call reused
        assert server.telemetry.snapshot()["cache_hit_rate"] > 0

    def test_single_routing_does_not_grow_scheduler_state(self):
        sreqs = [ServeRequest(request=nega_request(i), arrival_us=float(i),
                              request_id=i + 1) for i in range(6)]
        server = SimServer(NOVERIFY, num_shards=2)
        server.serve(sreqs)
        # Unbatchable singles take round-robin shards without leaving
        # per-request residue in the placement map.
        assert len(server.scheduler._shard_of) == 0

    def test_duplicate_request_ids_reassigned(self):
        """Two concatenated LoadGenerator streams both number 1..count;
        serve() must keep results positional and ids unique instead of
        silently cross-wiring responses."""
        first = self._load(count=8, seed=11)
        second = self._load(count=8, seed=12)
        combined = first + second
        server = SimServer(NOVERIFY)
        results = server.serve(combined)
        assert len(results) == 16
        ids = [r.record.request_id for r in results]
        assert len(set(ids)) == 16
        solo = Simulator(NOVERIFY)
        for sreq, result in zip(combined, results):
            assert result.response.values == solo.run(sreq.request).values
        # The caller's own objects were not renumbered (copy-on-write).
        assert [s.request_id for s in second] == list(range(1, 9))

    def test_virtual_clock_monotonic_across_calls(self):
        """Sequential call()s (the host-controller route) must read as
        serial traffic: completions advance, makespan spans the whole
        session, throughput is not inflated."""
        server = SimServer(NOVERIFY)
        completions = []
        for seed in range(3):
            server.call(ntt_request(seed))
            completions.append(server.telemetry.records[-1].completion_us)
        assert completions == sorted(completions)
        assert len(set(completions)) == 3
        snapshot = server.telemetry.snapshot()
        single = server.telemetry.records[0].latency_us
        assert snapshot["makespan_us"] >= 2.5 * single
        assert snapshot["throughput_rps"] < 1.5e6 / single

    def test_sharding_overlaps_distinct_shapes(self):
        big = NttParams(512, find_ntt_prime(512, 32))
        sreqs = [ServeRequest(request=ntt_request(i), arrival_us=0.0,
                              request_id=i + 1) for i in range(2)]
        sreqs += [ServeRequest(request=ntt_request(i, big), arrival_us=0.0,
                               request_id=i + 3) for i in range(2)]
        one = SimServer(NOVERIFY, num_shards=1, window_us=5.0)
        two = SimServer(NOVERIFY, num_shards=2, window_us=5.0)
        m1 = max(r.record.completion_us for r in one.serve(sreqs))
        m2 = max(r.record.completion_us for r in two.serve(sreqs))
        assert m2 < m1  # the second channel absorbed one shape


class TestLoadGenerator:
    def test_deterministic_given_seed(self):
        gen = lambda: LoadGenerator(make_scenario("uniform"),  # noqa: E731
                                    rate_rps=10_000, count=20, seed=5)
        a, b = gen().requests(), gen().requests()
        assert [s.arrival_us for s in a] == [s.arrival_us for s in b]
        assert [s.request for s in a] == [s.request for s in b]

    def test_mean_arrival_gap_tracks_rate(self):
        load = LoadGenerator(make_scenario("uniform"), rate_rps=1000.0,
                             count=400, seed=0)
        sreqs = load.requests()
        mean_gap = sreqs[-1].arrival_us / len(sreqs)
        assert mean_gap == pytest.approx(1000.0, rel=0.2)  # 1/rate = 1ms

    def test_skewed_mix_is_skewed(self):
        sreqs = LoadGenerator(make_scenario("skewed"), rate_rps=1000.0,
                              count=100, seed=1).requests()
        n512 = sum(s.request.params.n == 512 for s in sreqs)
        assert n512 > 75

    def test_priorities_and_deadlines_stamped(self):
        sreqs = LoadGenerator(make_scenario("uniform"), rate_rps=1000.0,
                              count=50, seed=3, high_priority_fraction=0.5,
                              deadline_us=123.0).requests()
        assert 0 < sum(s.priority for s in sreqs) < 50
        assert all(s.deadline_us == pytest.approx(s.arrival_us + 123.0)
                   for s in sreqs)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("nope")


class TestTelemetry:
    def test_percentile_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0) == pytest.approx(25.0)
        assert percentile(values, 99.0) == pytest.approx(39.7)
        assert percentile([], 50.0) == 0.0
        assert percentile([7.0], 99.0) == 7.0

    def test_snapshot_empty_session(self):
        snapshot = Telemetry().snapshot()
        assert snapshot["requests"] == 0
        assert snapshot["throughput_rps"] == 0.0
