"""Unit and property tests for the Montgomery datapath model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import DEFAULT_PRIME_32, MontgomeryContext, montgomery_reduce

ODD_MODULI = [3, 17, 12289, 65537, 8380417, DEFAULT_PRIME_32]


class TestContextConstruction:
    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryContext(16)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryContext(1)

    def test_radix_must_exceed_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryContext(257, rbits=8)

    def test_default_radix_at_least_32(self):
        assert MontgomeryContext(17).rbits == 32

    def test_qprime_identity(self):
        # q * q' ≡ -1 (mod R)
        for q in ODD_MODULI:
            ctx = MontgomeryContext(q)
            assert (q * ctx.q_neg_inv) % ctx.r == ctx.r - 1


class TestRoundTrip:
    @pytest.mark.parametrize("q", ODD_MODULI)
    def test_to_from_mont(self, q):
        ctx = MontgomeryContext(q)
        for a in [0, 1, 2, q - 1, q // 2, q // 3]:
            assert ctx.from_mont(ctx.to_mont(a)) == a % q

    def test_reduce_rejects_out_of_range(self):
        ctx = MontgomeryContext(17)
        with pytest.raises(ValueError):
            montgomery_reduce(17 << 32, 17, 32, ctx.q_neg_inv)
        with pytest.raises(ValueError):
            montgomery_reduce(-1, 17, 32, ctx.q_neg_inv)


class TestMultiplication:
    @pytest.mark.parametrize("q", ODD_MODULI)
    def test_mul_small_exhaustive_slice(self, q):
        ctx = MontgomeryContext(q)
        samples = [0, 1, 2, 3, q - 1, q - 2, q // 2]
        for a in samples:
            for b in samples:
                assert ctx.mul(a, b) == (a * b) % q

    def test_mont_domain_multiplication(self):
        q = 12289
        ctx = MontgomeryContext(q)
        a, b = 1234, 5678
        ab_bar = ctx.mont_mul(ctx.to_mont(a), ctx.to_mont(b))
        assert ctx.from_mont(ab_bar) == (a * b) % q

    def test_pow_matches_builtin(self):
        q = 12289
        ctx = MontgomeryContext(q)
        for base in [0, 1, 3, 11, q - 1]:
            for exp in [0, 1, 2, 17, 4096]:
                assert ctx.pow(base, exp) == pow(base, exp, q)

    def test_pow_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryContext(17).pow(3, -1)


@given(
    q=st.sampled_from(ODD_MODULI),
    a=st.integers(min_value=0, max_value=2**64),
    b=st.integers(min_value=0, max_value=2**64),
)
@settings(max_examples=200)
def test_property_mul_equals_modmul(q, a, b):
    """The Montgomery path is functionally a plain modular multiply."""
    ctx = MontgomeryContext(q)
    assert ctx.mul(a, b) == (a * b) % q


@given(q=st.sampled_from(ODD_MODULI), a=st.integers(min_value=0, max_value=2**40))
def test_property_roundtrip(q, a):
    ctx = MontgomeryContext(q)
    assert ctx.from_mont(ctx.to_mont(a)) == a % q
