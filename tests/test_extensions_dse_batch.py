"""Tests for the DSE sweeps, batched execution, BFV ciphertext
multiplication, and the rank-level activation throttles (tRRD/tFAW)."""

import random

import pytest

from repro.arith import NttParams, find_ntt_prime
from repro.dram import Command, CommandType, HBM2E_ARCH, HBM2E_TIMING, TimingEngine
from repro.experiments.dse import run_atom_size_sweep, run_row_size_sweep
from repro.fhe import RlweParams, RlweScheme
from repro.ntt import naive_negacyclic_convolution
from repro.pim import PimParams
from repro.sim import SimConfig
from repro.sim.batch import _run_batch, concat_programs

Q = find_ntt_prime(2048, 32)


class TestDse:
    @pytest.fixture(scope="class")
    def row_sweep(self):
        return run_row_size_sweep(n=1024, columns=(8, 16, 32, 64))

    @pytest.fixture(scope="class")
    def atom_sweep(self):
        return run_atom_size_sweep(n=1024)

    def test_row_size_claims(self, row_sweep):
        assert all(row_sweep.check_claims().values())

    def test_hbm_row_matches_main_results(self, row_sweep):
        # The 32-column point must equal the headline Fig. 7 number.
        assert row_sweep.latency_us[32] == pytest.approx(30.21, rel=0.02)

    def test_small_rows_cost_activations(self, row_sweep):
        assert row_sweep.activations[8] > 2 * row_sweep.activations[64]

    def test_atom_size_claims(self, atom_sweep):
        assert all(atom_sweep.check_claims().values())

    def test_wider_atom_halves_latency(self, atom_sweep):
        assert atom_sweep.latency_us[64] < 0.6 * atom_sweep.latency_us[32]

    def test_tables_render(self, row_sweep, atom_sweep):
        assert "columns_per_row" in row_sweep.table()
        assert "atom_bytes" in atom_sweep.table()


class TestBatch:
    def test_batch_verified(self):
        n = 512
        params = NttParams(n, Q)
        rng = random.Random(1)
        inputs = [[rng.randrange(Q) for _ in range(n)] for _ in range(3)]
        result = _run_batch(inputs, params)
        assert result.verified
        assert result.count == 3

    def test_no_throughput_loss(self):
        n = 512
        params = NttParams(n, Q)
        config = SimConfig(functional=False, verify=False)
        result = _run_batch([[0] * n] * 4, params, config)
        # Back-to-back transforms must not be slower per transform than
        # single-shot (and the PARAM amortization gives a sliver back).
        assert result.amortization >= 0.98

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            _run_batch([], NttParams(256, Q))

    def test_concat_skips_duplicate_params(self):
        prog = [Command(CommandType.PARAM_WRITE, payload_words=6),
                Command(CommandType.ACT, row=0),
                Command(CommandType.PRE, deps=(1,))]
        merged = concat_programs([prog, prog])
        kinds = [c.ctype for c in merged]
        assert kinds.count(CommandType.PARAM_WRITE) == 1
        # Second program's PRE dep re-indexed to its own ACT (index 3 —
        # the duplicate PARAM_WRITE was dropped, shifting it down).
        assert merged[-1].deps == (3,)

    def test_concat_keeps_params_when_asked(self):
        prog = [Command(CommandType.PARAM_WRITE, payload_words=6)]
        merged = concat_programs([prog, prog], skip_leading_param=False)
        assert len(merged) == 2


class TestBfvMultiply:
    def _scheme(self, seed=0):
        n = 32
        q = find_ntt_prime(n, 40, negacyclic=True)
        return RlweScheme(RlweParams(n, q, 17, noise_bound=2),
                          random.Random(seed)), n

    def test_ct_ct_product_decrypts(self):
        s, n = self._scheme(1)
        keys = s.keygen()
        rng = random.Random(2)
        m1 = [rng.randrange(17) for _ in range(n)]
        m2 = [rng.randrange(17) for _ in range(n)]
        ct = s.multiply(s.encrypt(m1, keys), s.encrypt(m2, keys))
        assert ct.c2 is not None
        assert s.decrypt(ct, keys) == naive_negacyclic_convolution(m1, m2, 17)

    def test_degree2_addition(self):
        s, n = self._scheme(3)
        keys = s.keygen()
        m = [1] * n
        ct = s.multiply(s.encrypt(m, keys), s.encrypt(m, keys))
        total = ct + ct
        expected = [(2 * v) % 17 for v in
                    naive_negacyclic_convolution(m, m, 17)]
        assert s.decrypt(total, keys) == expected

    def test_degree_mismatch_rejected(self):
        s, n = self._scheme(4)
        keys = s.keygen()
        deg1 = s.encrypt([1], keys)
        deg2 = s.multiply(deg1, deg1)
        with pytest.raises(ValueError):
            _ = deg1 + deg2
        with pytest.raises(ValueError):
            s.multiply(deg2, deg1)


class TestActivationThrottles:
    def _engine(self):
        return TimingEngine(HBM2E_TIMING, HBM2E_ARCH)

    def test_trrd_between_bank_acts(self):
        res = self._engine().simulate([
            Command(CommandType.ACT, bank=0, row=0),
            Command(CommandType.ACT, bank=1, row=0),
        ])
        gap = res.timings[1].issue - res.timings[0].issue
        assert gap >= HBM2E_TIMING.trrd

    def test_tfaw_over_five_acts(self):
        cmds = [Command(CommandType.ACT, bank=b, row=0) for b in range(5)]
        res = self._engine().simulate(cmds)
        window = res.timings[4].issue - res.timings[0].issue
        assert window >= HBM2E_TIMING.tfaw

    def test_same_bank_acts_unaffected(self):
        """tRAS+tRP dominate tRRD/tFAW for single-bank reuse — the paper's
        single-bank results do not change."""
        res = self._engine().simulate([
            Command(CommandType.ACT, bank=0, row=0),
            Command(CommandType.PRE, bank=0),
            Command(CommandType.ACT, bank=0, row=1),
        ])
        gap = res.timings[2].issue - res.timings[0].issue
        assert gap >= HBM2E_TIMING.tras + HBM2E_TIMING.trp

    def test_retimed_scales_throttles(self):
        t = HBM2E_TIMING.retimed(600.0)
        assert t.trrd == 2
        assert t.tfaw == 8
