"""Compiled command streams: SoA compilation, the fused functional
plan, and its bit-exact equivalence with the legacy per-command bank."""

import pytest

from repro.api import NttRequest, Simulator
from repro.arith import NttParams, find_ntt_prime, use_backend
from repro.arith.bitrev import bit_reverse_permute
from repro.dram import (
    Command,
    CommandType,
    HBM2E_ARCH,
    cached_stream,
    clear_stream_cache,
    compile_stream,
    stream_cache_info,
)
from repro.errors import MappingError
from repro.mapping.program_cache import cyclic_program, negacyclic_program
from repro.ntt import NegacyclicParams
from repro.pim.bank_pim import PimBank
from repro.pim.params import PimParams
from repro.sim.driver import NttPimDriver, SimConfig


def _fresh_banks(config, q):
    a = PimBank(config.arch, config.pim)
    b = PimBank(config.arch, config.pim)
    for bank in (a, b):
        bank.set_parameters(q)
    return a, b


def _counters(bank):
    cu = bank.cu
    return (cu.bu_ops, cu.load_uops, cu.store_uops, cu.twiddles_generated)


class TestCompilation:
    def test_soa_columns_mirror_commands(self):
        n = 256
        q = find_ntt_prime(n, 32)
        cmds = NttPimDriver().map_commands(NttParams(n, q))
        stream = compile_stream(cmds, HBM2E_ARCH)
        assert stream.n == len(cmds)
        assert stream.commands == tuple(cmds)
        for i in (0, 1, len(cmds) // 2, len(cmds) - 1):
            cmd = cmds[i]
            assert stream.codes_l[i] == list(CommandType).index(cmd.ctype)
            assert stream.rows[i] == (-1 if cmd.row is None else cmd.row)
            assert stream.cols[i] == (-1 if cmd.col is None else cmd.col)
            assert stream.deps_l[i] == cmd.deps
        # Flat dependency ranges reconstruct every command's deps.
        for i, cmd in enumerate(cmds):
            lo, hi = int(stream.dep_start[i]), int(stream.dep_end[i])
            assert tuple(stream.dep_flat[lo:hi]) == cmd.deps

    def test_mapper_program_gets_fused_plan(self):
        n = 1024
        q = find_ntt_prime(n, 32)
        cmds = NttPimDriver().map_commands(NttParams(n, q))
        stream = compile_stream(cmds, HBM2E_ARCH)
        assert stream.plan is not None, stream.fallback_reason
        # The whole point: thousands of commands collapse into a handful
        # of stacked macro-ops (one per butterfly-stage pass per type).
        assert len(stream.plan.ops) < len(cmds) // 50

    def test_scalar_programs_fuse_through_lane_renaming(self):
        # Nb=1 µ-op programs fuse via the lane-granular renaming pass;
        # with that pass toggled off they fall back per-command.
        n = 64
        q = find_ntt_prime(n, 32)
        config = SimConfig(pim=PimParams(nb_buffers=1))
        cmds = NttPimDriver(config).map_commands(NttParams(n, q))
        stream = compile_stream(cmds, HBM2E_ARCH)
        assert stream.plan is not None, stream.fallback_reason
        assert stream.plan.mode == "lane"
        assert len(stream.plan.ops) < len(cmds) // 2
        off = compile_stream(cmds, HBM2E_ARCH,
                             passes={"rename", "group", "pool"})
        assert off.plan is None
        assert "per-command" in off.fallback_reason

    def test_protocol_violations_fall_back(self):
        bad = [Command(CommandType.ACT, row=3),
               Command(CommandType.ACT, row=4)]
        stream = compile_stream(bad, HBM2E_ARCH)
        assert stream.plan is None
        # ... and the fallback raises exactly like the legacy loop.
        bank = PimBank(HBM2E_ARCH, PimParams())
        with pytest.raises(MappingError):
            bank.run_stream(stream)

    def test_wrong_zeta_count_falls_back_with_legacy_error(self):
        # The CU rejects a wrong-size C1N payload with MappingError; the
        # plan must not fuse such programs into broadcastable kernels.
        cmds = [Command(CommandType.ACT, row=0),
                Command(CommandType.CU_READ, row=0, col=0, buf=0),
                Command(CommandType.PRE),
                Command(CommandType.C1N, buf=0,
                        zetas=tuple(range(1, 9)))]  # 8 zetas, Na-1 = 7
        stream = compile_stream(cmds, HBM2E_ARCH)
        assert stream.plan is None
        assert "zetas" in stream.fallback_reason
        bank = PimBank(HBM2E_ARCH, PimParams())
        bank.set_parameters(find_ntt_prime(16, 32))
        with pytest.raises(MappingError):
            bank.run_stream(stream)

    def test_out_of_range_buffer_falls_back_without_side_effects(self):
        # legacy raises at the offending command with no data effect;
        # the fused path must not scatter into cells first.
        q = find_ntt_prime(16, 32)
        cmds = [Command(CommandType.ACT, row=0),
                Command(CommandType.CU_READ, row=0, col=0, buf=7),
                Command(CommandType.CU_WRITE, row=0, col=1, buf=7),
                Command(CommandType.PRE)]
        stream = compile_stream(cmds, HBM2E_ARCH)
        assert stream.plan is not None  # structurally fine for wider banks
        import numpy as np
        cells = {}
        for name, run in (("legacy", lambda b: b.run(cmds)),
                          ("fused", lambda b: b.run_stream(stream))):
            bank = PimBank(HBM2E_ARCH, PimParams(nb_buffers=2))
            bank.set_parameters(q)
            bank.load_polynomial(0, list(range(1, 257)))
            with pytest.raises(MappingError, match="out of range"):
                run(bank)
            bank.storage.precharge()  # close the row the error left open
            cells[name] = np.array(bank.storage.host_read_polynomial(0, 256))
        assert (cells["fused"] == cells["legacy"]).all()

    def test_compute_before_param_raises_mapping_error(self):
        # Legacy error parity: a compute command ahead of the program's
        # PARAM_WRITE must fail like the per-command loop does.
        cmds = [Command(CommandType.C1, buf=0, omega0=3),
                Command(CommandType.PARAM_WRITE, payload_words=6)]
        stream = compile_stream(cmds, HBM2E_ARCH)
        bank = PimBank(HBM2E_ARCH, PimParams())
        bank.set_parameters(find_ntt_prime(16, 32))
        with pytest.raises(MappingError, match="before PARAM_WRITE"):
            bank.run_stream(stream)

    def test_open_row_at_end_falls_back(self):
        stream = compile_stream([Command(CommandType.ACT, row=3)], HBM2E_ARCH)
        assert stream.plan is None
        assert "open" in stream.fallback_reason

    def test_stream_cache_shares_structural_keys(self):
        clear_stream_cache()
        n = 256
        q = find_ntt_prime(n, 32)
        config = SimConfig()
        program = cyclic_program(NttParams(n, q), config.arch, config.pim)
        first = cached_stream(program.commands, config.arch, key=program.key)
        # A fresh (content-identical) command list with the same key hits.
        again = cached_stream(list(program.commands), config.arch,
                              key=program.key)
        assert again is first
        info = stream_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1


class TestFusedExecutionEquivalence:
    @pytest.mark.parametrize("n,nb", [(256, 2), (1024, 2), (512, 4)])
    def test_cyclic_matches_legacy_bank(self, n, nb):
        q = find_ntt_prime(n, 32)
        config = SimConfig(pim=PimParams(nb_buffers=nb))
        program = cyclic_program(NttParams(n, q), config.arch, config.pim)
        stream = compile_stream(program.commands, config.arch)
        assert stream.plan is not None, stream.fallback_reason
        legacy, fused = _fresh_banks(config, q)
        data = bit_reverse_permute([(7 * i + 3) % q for i in range(n)])
        for bank in (legacy, fused):
            bank.load_polynomial(0, list(data))
        legacy.run(program.commands)
        fused.run_stream(stream)
        assert (fused.read_polynomial(program.result_base_row, n)
                == legacy.read_polynomial(program.result_base_row, n))
        assert _counters(fused) == _counters(legacy)
        # The physical buffer file is restored to its end-of-run state.
        for b in range(nb):
            assert fused.buffers.read(b) == legacy.buffers.read(b)

    @pytest.mark.parametrize("inverse", [False, True])
    def test_negacyclic_matches_legacy_bank(self, inverse):
        n = 256
        ring = NegacyclicParams(n, find_ntt_prime(n, 32, negacyclic=True))
        config = SimConfig()
        program = negacyclic_program(ring, config.arch, config.pim,
                                     inverse=inverse)
        stream = compile_stream(program.commands, config.arch)
        assert stream.plan is not None, stream.fallback_reason
        legacy, fused = _fresh_banks(config, ring.q)
        data = [(11 * i + 5) % ring.q for i in range(n)]
        for bank in (legacy, fused):
            bank.load_polynomial(0, list(data))
        legacy.run(program.commands)
        fused.run_stream(stream)
        assert (fused.read_polynomial(program.result_base_row, n)
                == legacy.read_polynomial(program.result_base_row, n))
        assert _counters(fused) == _counters(legacy)

    def test_python_backend_falls_back_to_ground_truth(self):
        n = 256
        q = find_ntt_prime(n, 32)
        config = SimConfig()
        program = cyclic_program(NttParams(n, q), config.arch, config.pim)
        stream = compile_stream(program.commands, config.arch)
        data = bit_reverse_permute([(5 * i + 1) % q for i in range(n)])
        outputs = {}
        for backend in ("python", "numpy"):
            with use_backend(backend):
                bank = PimBank(config.arch, config.pim)
                bank.set_parameters(q)
                bank.load_polynomial(0, list(data))
                bank.run_stream(stream)
                outputs[backend] = bank.read_polynomial(
                    program.result_base_row, n)
        assert outputs["python"] == outputs["numpy"]

    def test_unsupported_modulus_falls_back(self):
        # A modulus past every lane regime still runs (scalar path).
        n = 16
        q = find_ntt_prime(n, 64)
        assert q >= 1 << 63
        config = SimConfig()
        program = cyclic_program(NttParams(n, q), config.arch, config.pim)
        stream = compile_stream(program.commands, config.arch)
        bank = PimBank(config.arch, config.pim)
        bank.set_parameters(q)
        data = bit_reverse_permute([(3 * i + 2) % q for i in range(n)])
        bank.load_polynomial(0, list(data))
        bank.run_stream(stream)  # must not touch the stacked kernels
        legacy = PimBank(config.arch, config.pim)
        legacy.set_parameters(q)
        legacy.load_polynomial(0, list(data))
        legacy.run(program.commands)
        assert (bank.read_polynomial(program.result_base_row, n)
                == legacy.read_polynomial(program.result_base_row, n))


class TestFacadeIntegration:
    def test_stream_cache_surfaces_in_facade(self):
        Simulator.clear_caches()
        n = 256
        q = find_ntt_prime(n, 32)
        sim = Simulator()
        response = sim.run(NttRequest(params=NttParams(n, q)))
        assert response.verified
        assert response.cache["stream"]["misses"] >= 1
        again = sim.run(NttRequest(params=NttParams(n, q)))
        assert again.cache["stream"]["misses"] == 0
        info = sim.cache_info()
        assert info["stream"]["entries"] >= 1
        assert info["stream"]["hits"] >= 1
