"""Tests for the area (Table II) and power models."""

import pytest

from repro.cost import (
    AreaModel,
    GateLibrary,
    PowerModel,
    average_power_mw,
    crossbar_gates,
    cu_area_mm2,
    dram_bank_area_mm2,
    modadd_gates,
    montgomery_multiplier_gates,
    newton_area_mm2,
    sram_buffer_um2,
)
from repro.dram import HBM2E_ENERGY, HBM2E_TIMING, SimStats

PAPER = {1: 0.0213, 2: 0.0232, 4: 0.0263, 6: 0.0285}


class TestGateModel:
    def test_multiplier_scales_quadratically(self):
        g16 = montgomery_multiplier_gates(16)
        g32 = montgomery_multiplier_gates(32)
        assert 3.0 < g32 / g16 < 4.5

    def test_multiplier_rejects_tiny(self):
        with pytest.raises(ValueError):
            montgomery_multiplier_gates(2)

    def test_modadd_linear(self):
        assert modadd_gates(32) == pytest.approx(2 * modadd_gates(16), rel=0.1)

    def test_crossbar_superlinear(self):
        b = 32
        g3, g6 = crossbar_gates(3, b), crossbar_gates(6, b)
        assert g6 > 2 * g3

    def test_sram_dominated_by_periphery_at_atom_size(self):
        lib = GateLibrary()
        total = sram_buffer_um2(256, lib)
        cells = 256 * (8 / 6) * lib.sram_cell_um2
        assert total > 3 * cells


class TestTable2Calibration:
    def test_bank_area(self):
        assert dram_bank_area_mm2() == pytest.approx(4.2208, rel=0.01)

    def test_newton_area(self):
        assert newton_area_mm2() == pytest.approx(0.0474, rel=0.02)

    @pytest.mark.parametrize("nb,ref", sorted(PAPER.items()))
    def test_cu_area_matches_paper(self, nb, ref):
        assert cu_area_mm2(nb) == pytest.approx(ref, rel=0.05)

    def test_area_monotone_in_buffers(self):
        areas = [cu_area_mm2(nb) for nb in (1, 2, 3, 4, 5, 6, 8)]
        assert areas == sorted(areas)

    def test_less_than_half_of_newton_base(self):
        assert cu_area_mm2(1) < 0.55 * newton_area_mm2()

    def test_invalid_nb(self):
        with pytest.raises(ValueError):
            cu_area_mm2(0)

    def test_table_structure(self):
        table = AreaModel().table()
        assert {r["nb"] for r in table["ntt_pim"]} == {1, 2, 4, 6}
        assert all(r["percent_of_bank"] < 1.0 for r in table["ntt_pim"])


class TestPowerModel:
    def _stats(self):
        stats = SimStats(total_cycles=1200)  # 1 us at 1200 MHz
        stats.command_counts = {"ACT": 2, "CU_READ": 10, "CU_WRITE": 10,
                                "C1": 4, "C2": 8}
        return stats

    def test_breakdown_sums(self):
        model = PowerModel(HBM2E_ENERGY, HBM2E_TIMING)
        b = model.breakdown(self._stats())
        assert b["total_pj"] == pytest.approx(
            b["activation_pj"] + b["column_pj"] + b["compute_pj"]
            + b["static_pj"])

    def test_activation_energy_dominates_per_op(self):
        assert HBM2E_ENERGY.act_pj > 4 * HBM2E_ENERGY.rd_pj

    def test_internal_transfer_cheaper_than_io(self):
        assert HBM2E_ENERGY.cu_rd_pj < HBM2E_ENERGY.rd_pj

    def test_average_power(self):
        assert average_power_mw(100.0, 10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            average_power_mw(1.0, 0.0)

    def test_average_power_from_stats(self):
        model = PowerModel(HBM2E_ENERGY, HBM2E_TIMING)
        p = model.average_power_mw(self._stats())
        assert p > 0
