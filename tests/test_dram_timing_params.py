"""Tests for DRAM geometry/timing parameters (Table I)."""

import pytest

from repro.dram import HBM2E_ARCH, HBM2E_TIMING, ArchParams, TimingParams


class TestArchParams:
    def test_table1_geometry(self):
        assert HBM2E_ARCH.atom_bytes == 32
        assert HBM2E_ARCH.columns_per_row == 32
        assert HBM2E_ARCH.rows_per_bank == 32768
        assert HBM2E_ARCH.banks == 1
        assert HBM2E_ARCH.ranks == 1

    def test_derived_quantities(self):
        assert HBM2E_ARCH.words_per_atom == 8      # Na
        assert HBM2E_ARCH.words_per_row == 256     # R
        assert HBM2E_ARCH.row_bytes == 1024        # 1 KB row buffer
        assert HBM2E_ARCH.log_words_per_atom == 3
        assert HBM2E_ARCH.log_words_per_row == 8

    def test_bank_capacity(self):
        assert HBM2E_ARCH.bank_words == 32768 * 256

    def test_atom_must_be_whole_words(self):
        with pytest.raises(ValueError):
            ArchParams(atom_bytes=30)

    def test_positive_fields(self):
        with pytest.raises(ValueError):
            ArchParams(columns_per_row=0)


class TestTimingParams:
    def test_table1_timing(self):
        t = HBM2E_TIMING
        assert (t.cl, t.tccd, t.trp, t.tras, t.trcd, t.twr) == (
            14, 2, 14, 34, 14, 16)
        assert t.freq_mhz == 1200.0

    def test_cycle_ns(self):
        assert HBM2E_TIMING.cycle_ns == pytest.approx(1000.0 / 1200.0)

    def test_conversions_roundtrip(self):
        t = HBM2E_TIMING
        assert t.ns_to_cycles(t.cycles_to_ns(100)) == 100
        assert t.cycles_to_us(1200) == pytest.approx(1.0)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            TimingParams(cl=-1)
        with pytest.raises(ValueError):
            TimingParams(freq_mhz=0)


class TestRetiming:
    """Fig. 8's rule: DRAM ns constant, CU cycles constant."""

    def test_same_frequency_is_identity(self):
        assert HBM2E_TIMING.retimed(1200.0) == HBM2E_TIMING

    def test_half_frequency_halves_cycle_counts(self):
        t = HBM2E_TIMING.retimed(600.0)
        assert t.cl == 7
        assert t.trp == 7
        assert t.tras == 17
        assert t.trcd == 7
        assert t.twr == 8
        assert t.tccd == 1

    def test_ns_durations_preserved_within_rounding(self):
        for freq in (300.0, 600.0, 900.0):
            t = HBM2E_TIMING.retimed(freq)
            for name in ("cl", "trp", "tras", "trcd", "twr"):
                original_ns = HBM2E_TIMING.cycles_to_ns(
                    getattr(HBM2E_TIMING, name))
                new_ns = t.cycles_to_ns(getattr(t, name))
                # Rounded up to whole cycles: never shorter, at most one
                # cycle longer.
                assert new_ns >= original_ns - 1e-9
                assert new_ns <= original_ns + t.cycle_ns

    def test_minimum_one_cycle(self):
        t = HBM2E_TIMING.retimed(100.0)
        assert t.tccd >= 1

    def test_bad_frequency(self):
        with pytest.raises(ValueError):
            HBM2E_TIMING.retimed(-5)
