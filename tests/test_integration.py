"""Cross-module integration and property tests: the whole pipeline from
host values through mapping, timing, functional execution and back."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import NttParams, find_ntt_prime, ntt_prime_candidates
from repro.baselines import numpy_ntt
from repro.dram import CommandType
from repro.mapping.mapper import MapperOptions
from repro.ntt import cyclic_convolution, intt, ntt
from repro.pim import PimParams
from repro.sim import NttPimDriver, SimConfig

Q32 = find_ntt_prime(8192, 32)


class TestEndToEndAgreement:
    """PIM, numpy and pure-python golden models all agree."""

    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_three_way_agreement(self, n):
        rng = random.Random(n)
        params = NttParams(n, Q32)
        x = [rng.randrange(Q32) for _ in range(n)]
        golden = ntt(x, params)
        assert numpy_ntt(x, params) == golden
        result = NttPimDriver()._run_ntt(x, params)
        assert result.output == golden

    def test_pim_convolution_pipeline(self):
        """Polynomial product via two PIM NTTs + host pointwise + PIM INTT."""
        n = 256
        params = NttParams(n, Q32)
        rng = random.Random(42)
        a = [rng.randrange(Q32) for _ in range(n)]
        b = [rng.randrange(Q32) for _ in range(n)]
        driver = NttPimDriver()
        fa = driver._run_ntt(a, params).output
        fb = driver._run_ntt(b, params).output
        prod = [(x * y) % Q32 for x, y in zip(fa, fb)]
        got = driver._run_intt(prod, params).output
        assert got == cyclic_convolution(a, b, params)

    @pytest.mark.parametrize("bits", [14, 16, 30, 32])
    def test_different_modulus_widths(self, bits):
        """Sec. VI.E flexibility: arbitrary (NTT-friendly) moduli work."""
        n = 64
        q = find_ntt_prime(n, bits)
        params = NttParams(n, q)
        rng = random.Random(bits)
        x = [rng.randrange(q) for _ in range(n)]
        result = NttPimDriver()._run_ntt(x, params)
        assert result.verified

    def test_multiple_moduli_same_machine(self):
        """FHE runs many NTTs with different q (RNS limbs) — the PARAM
        mechanism must isolate them."""
        n = 128
        driver = NttPimDriver()
        for q in ntt_prime_candidates(n, 30, 3):
            params = NttParams(n, q)
            rng = random.Random(q)
            x = [rng.randrange(q) for _ in range(n)]
            assert driver._run_ntt(x, params).verified


class TestSchedulePropertiesAcrossConfigs:
    @pytest.mark.parametrize("nb", [2, 4, 6])
    def test_commands_and_cycles_consistent(self, nb):
        config = SimConfig(pim=PimParams(nb_buffers=nb),
                           functional=False, verify=False)
        run = NttPimDriver(config)._run_ntt([0] * 1024, NttParams(1024, Q32))
        # Bus occupies one cycle per command: makespan >= command count.
        assert run.cycles >= run.command_count
        # All issues strictly ordered (in-order bus).
        issues = [t.issue for t in run.schedule.timings]
        assert all(b > a for a, b in zip(issues, issues[1:]))

    def test_energy_scales_with_work(self):
        config = SimConfig(functional=False, verify=False)
        runs = [NttPimDriver(config)._run_ntt([0] * n, NttParams(n, Q32))
                for n in (256, 1024, 4096)]
        energies = [r.energy_nj for r in runs]
        assert energies == sorted(energies)

    def test_every_column_access_under_open_row(self):
        """Protocol invariant re-checked structurally on the command list."""
        config = SimConfig(functional=False, verify=False)
        driver = NttPimDriver(config)
        cmds = driver.map_commands(NttParams(2048, Q32))
        open_row = None
        for c in cmds:
            if c.ctype is CommandType.ACT:
                assert open_row is None
                open_row = c.row
            elif c.ctype is CommandType.PRE:
                assert open_row is not None
                open_row = None
            elif c.ctype.is_column:
                assert c.row == open_row


@given(
    log_n=st.integers(min_value=3, max_value=10),
    nb=st.sampled_from([2, 3, 4, 6]),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=15, deadline=None)
def test_property_pim_matches_golden(log_n, nb, seed):
    """For random sizes, buffer counts and data, the PIM equals the
    golden model (the paper's footnote-1 two-way check, fuzzed)."""
    n = 1 << log_n
    params = NttParams(n, Q32)
    rng = random.Random(seed)
    x = [rng.randrange(Q32) for _ in range(n)]
    config = SimConfig(pim=PimParams(nb_buffers=nb))
    result = NttPimDriver(config)._run_ntt(x, params)
    assert result.verified


@given(
    log_n=st.integers(min_value=3, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=8, deadline=None)
def test_property_pim_roundtrip(log_n, seed):
    """NTT then INTT on the PIM returns the input."""
    n = 1 << log_n
    params = NttParams(n, Q32)
    rng = random.Random(seed)
    x = [rng.randrange(Q32) for _ in range(n)]
    driver = NttPimDriver()
    fwd = driver._run_ntt(x, params)
    back = driver._run_intt(fwd.output, params)
    assert back.output == x


@given(nb=st.sampled_from([2, 4, 6]),
       options=st.sampled_from([
           MapperOptions(),
           MapperOptions(in_place_update=False),
           MapperOptions(group_same_row=False),
       ]))
@settings(max_examples=9, deadline=None)
def test_property_ablations_preserve_function(nb, options):
    """No scheduling variant may change the computed transform."""
    n = 512
    params = NttParams(n, Q32)
    rng = random.Random(nb)
    x = [rng.randrange(Q32) for _ in range(n)]
    config = SimConfig(pim=PimParams(nb_buffers=nb), mapper_options=options)
    assert NttPimDriver(config)._run_ntt(x, params).verified
