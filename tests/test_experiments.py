"""Tests for the experiment harnesses (reduced sweeps for speed) and
their paper-claim checks."""

import pytest

from repro.experiments import (
    PAPER_TABLE2,
    PAPER_TABLE3_LATENCY,
    run_ablations,
    run_bank_scaling,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table2,
    run_table3,
)
from repro.experiments.report import ascii_log_plot, format_table


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # header+sep+rows align

    def test_format_table_none_rendered_as_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_ascii_plot_contains_markers(self):
        out = ascii_log_plot({"s1": [(1, 1), (10, 10)],
                              "s2": [(1, 2), (10, 20)]})
        assert "o" in out and "x" in out

    def test_ascii_plot_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_log_plot({"s": []})


class TestTable2:
    def test_all_claims_hold(self):
        result = run_table2()
        assert all(result.check_claims().values())

    def test_matches_paper_values(self):
        result = run_table2()
        for nb, ref in PAPER_TABLE2["ntt_pim"].items():
            assert result.area(nb) == pytest.approx(ref, rel=0.05)

    def test_table_renders(self):
        assert "Newton" in run_table2().table()


class TestFig6:
    def test_all_claims_hold(self):
        result = run_fig6()
        assert all(result.check_claims().values())

    def test_speedups_bounded(self):
        result = run_fig6()
        for regime in ("intra-atom", "intra-row", "inter-row"):
            assert 1.0 < result.speedup(regime) < 5.0

    def test_table_renders(self):
        assert "inter-row" in run_fig6().table()


class TestFig7Small:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(ns=(256, 512, 1024), nbs=(1, 2, 4, 6))

    def test_claims(self, result):
        assert all(result.check_claims().values())

    def test_aux_buffer_gain(self, result):
        for n in (256, 512, 1024):
            assert result.aux_buffer_gain(n) >= 7.0

    def test_pipelining_gain_band(self, result):
        for n in (256, 512, 1024):
            assert 1.3 <= result.pipelining_gain(n) <= 3.0

    def test_rendering(self, result):
        assert "Nb=2" in result.table()
        assert "Fig. 7" in result.plot()


class TestFig8Small:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(ns=(256, 1024, 2048), freqs=(1200.0, 600.0, 300.0))

    def test_slowdown_below_clock_ratio(self, result):
        for n in (256, 1024, 2048):
            assert result.slowdown(n, 300.0) < 4.0

    def test_large_n_more_robust(self, result):
        assert result.slowdown(2048, 300.0) <= result.slowdown(256, 300.0)

    def test_rendering(self, result):
        assert "300MHz" in result.table()


class TestTable3Small:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(ns=(256, 512, 1024))

    def test_beats_prior_pim(self, result):
        for n in (256, 512, 1024):
            assert result.speedup_vs_best_prior(n, 6) > 1.0

    def test_latency_within_2x_of_paper(self, result):
        for (n, nb), ref in PAPER_TABLE3_LATENCY.items():
            if (n, nb) in result.pim_us:
                assert 0.4 <= result.pim_us[(n, nb)] / ref <= 2.0

    def test_energy_table_renders(self, result):
        assert "MeNTT" in result.energy_table()

    def test_mentt_absent_beyond_max_n(self):
        result = run_table3(ns=(2048,))
        assert result.comparators_us["MeNTT"][2048] is None


class TestAblationsSmall:
    def test_claims(self):
        result = run_ablations(ns=(1024,), nb=6)
        assert all(result.check_claims().values())

    def test_penalties_above_one(self):
        result = run_ablations(ns=(1024,), nb=6)
        assert result.penalty(1024, "no-in-place") > 1.0
        assert result.penalty(1024, "no-grouping") > 1.0


class TestBankScalingSmall:
    def test_claims(self):
        result = run_bank_scaling(n=512, banks=(1, 2, 4))
        assert all(result.check_claims().values())
