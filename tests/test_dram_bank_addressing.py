"""Tests for bank storage semantics and address mapping."""

import pytest

from repro.dram import AddressMap, BankStorage, HBM2E_ARCH
from repro.errors import MappingError


class TestAddressMap:
    def test_first_words(self):
        am = AddressMap(HBM2E_ARCH, base_row=0, length=1024)
        loc = am.locate(0)
        assert (loc.row, loc.atom, loc.lane) == (0, 0, 0)
        loc = am.locate(9)
        assert (loc.row, loc.atom, loc.lane) == (0, 1, 1)

    def test_row_crossing(self):
        am = AddressMap(HBM2E_ARCH, base_row=5, length=1024)
        loc = am.locate(256)  # first word of second row
        assert (loc.row, loc.atom, loc.lane) == (6, 0, 0)

    def test_roundtrip(self):
        am = AddressMap(HBM2E_ARCH, base_row=3, length=2048)
        for w in (0, 1, 7, 8, 255, 256, 2047):
            assert am.word_of(am.locate(w)) == w

    def test_atom_of(self):
        am = AddressMap(HBM2E_ARCH, length=512)
        assert am.atom_of(0) == 0
        assert am.atom_of(8) == 1
        assert am.atom_of(511) == 63

    def test_atom_location(self):
        am = AddressMap(HBM2E_ARCH, length=512)
        loc = am.atom_location(33)  # second row, atom 1
        assert (loc.row, loc.atom, loc.lane) == (1, 1, 0)
        assert loc.col == 1

    def test_rows_used(self):
        am = AddressMap(HBM2E_ARCH)
        assert am.rows_used(256) == 1
        assert am.rows_used(257) == 2
        assert am.rows_used(8192) == 32

    def test_out_of_range(self):
        am = AddressMap(HBM2E_ARCH, length=256)
        with pytest.raises(ValueError):
            am.locate(256)
        with pytest.raises(ValueError):
            am.locate(-1)

    def test_base_row_outside_bank(self):
        with pytest.raises(ValueError):
            AddressMap(HBM2E_ARCH, base_row=40000)

    def test_does_not_fit(self):
        with pytest.raises(ValueError):
            AddressMap(HBM2E_ARCH, base_row=32767, length=1024)


class TestBankStorage:
    def test_activate_read(self):
        bank = BankStorage(HBM2E_ARCH)
        bank.host_write_words(3, 0, list(range(16)))
        bank.activate(3)
        assert bank.read_atom(3, 0) == list(range(8))
        assert bank.read_atom(3, 1) == list(range(8, 16))
        bank.precharge()

    def test_write_visible_after_precharge(self):
        bank = BankStorage(HBM2E_ARCH)
        bank.activate(7)
        bank.write_atom(7, 2, [9] * 8)
        bank.precharge()
        assert bank.host_read_words(7, 16, 8) == [9] * 8

    def test_row_buffer_isolation_until_precharge(self):
        """Writes land in the row buffer; the array copy happens at PRE."""
        bank = BankStorage(HBM2E_ARCH)
        bank.activate(1)
        bank.write_atom(1, 0, [5] * 8)
        # Reading through the open row sees the new data immediately.
        assert bank.read_atom(1, 0) == [5] * 8
        bank.precharge()
        assert bank.host_read_words(1, 0, 8) == [5] * 8

    def test_double_activate_rejected(self):
        bank = BankStorage(HBM2E_ARCH)
        bank.activate(0)
        with pytest.raises(MappingError):
            bank.activate(1)

    def test_precharge_without_open_row(self):
        with pytest.raises(MappingError):
            BankStorage(HBM2E_ARCH).precharge()

    def test_column_access_wrong_row(self):
        bank = BankStorage(HBM2E_ARCH)
        bank.activate(0)
        with pytest.raises(MappingError):
            bank.read_atom(1, 0)

    def test_column_access_closed_bank(self):
        with pytest.raises(MappingError):
            BankStorage(HBM2E_ARCH).read_atom(0, 0)

    def test_column_out_of_range(self):
        bank = BankStorage(HBM2E_ARCH)
        bank.activate(0)
        with pytest.raises(MappingError):
            bank.read_atom(0, 32)

    def test_wrong_atom_size_write(self):
        bank = BankStorage(HBM2E_ARCH)
        bank.activate(0)
        with pytest.raises(MappingError):
            bank.write_atom(0, 0, [1, 2, 3])

    def test_host_access_requires_closed_bank(self):
        bank = BankStorage(HBM2E_ARCH)
        bank.activate(0)
        with pytest.raises(MappingError):
            bank.host_read_words(0, 0, 8)

    def test_polynomial_roundtrip(self):
        bank = BankStorage(HBM2E_ARCH)
        data = list(range(1000))
        bank.host_write_polynomial(10, data)
        assert bank.host_read_polynomial(10, 1000) == data

    def test_polynomial_spans_rows(self):
        bank = BankStorage(HBM2E_ARCH)
        data = list(range(512))
        bank.host_write_polynomial(0, data)
        assert bank.host_read_words(1, 0, 8) == list(range(256, 264))
