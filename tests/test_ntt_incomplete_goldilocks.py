"""Tests for the incomplete (Kyber-style) NTT and wide-modulus support."""

import random

import pytest

from repro.arith import NttParams, is_prime
from repro.ntt import naive_negacyclic_convolution
from repro.ntt.incomplete import (
    IncompleteNttParams,
    incomplete_basemul,
    incomplete_intt,
    incomplete_ntt,
)
from repro.pim import PimParams
from repro.sim import NttPimDriver, SimConfig

KYBER_Q = 3329  # q - 1 = 2^8 * 13: only 2-adicity 8


class TestIncompleteNtt:
    def test_kyber_parameters_supported(self):
        # Full negacyclic at N=256 would need a 512th root: impossible.
        with pytest.raises(ValueError):
            IncompleteNttParams(256, KYBER_Q, 1)
        # Depth 2 (Kyber's actual configuration) works.
        IncompleteNttParams(256, KYBER_Q, 2)

    @pytest.mark.parametrize("n,depth", [(256, 2), (256, 4), (128, 2),
                                         (64, 2), (32, 4)])
    def test_roundtrip(self, n, depth):
        p = IncompleteNttParams(n, KYBER_Q, depth)
        rng = random.Random(n + depth)
        x = [rng.randrange(KYBER_Q) for _ in range(n)]
        assert incomplete_intt(incomplete_ntt(x, p), p) == x

    @pytest.mark.parametrize("n,depth", [(256, 2), (128, 4), (64, 2)])
    def test_basemul_convolution_theorem(self, n, depth):
        p = IncompleteNttParams(n, KYBER_Q, depth)
        rng = random.Random(n * depth)
        a = [rng.randrange(KYBER_Q) for _ in range(n)]
        b = [rng.randrange(KYBER_Q) for _ in range(n)]
        prod = incomplete_basemul(incomplete_ntt(a, p),
                                  incomplete_ntt(b, p), p)
        assert (incomplete_intt(prod, p)
                == naive_negacyclic_convolution(a, b, KYBER_Q))

    def test_slot_zetas_alternate_sign(self):
        p = IncompleteNttParams(256, KYBER_Q, 2)
        for s in range(0, 16, 2):
            assert (p.slot_zeta(s) + p.slot_zeta(s + 1)) % KYBER_Q == 0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            IncompleteNttParams(256, KYBER_Q, 3)
        with pytest.raises(ValueError):
            IncompleteNttParams(256, KYBER_Q, 256)

    def test_wrong_lengths_rejected(self):
        p = IncompleteNttParams(64, KYBER_Q, 2)
        with pytest.raises(ValueError):
            incomplete_ntt([1, 2], p)
        with pytest.raises(ValueError):
            incomplete_basemul([0] * 64, [0] * 32, p)


class TestGoldilocksModulus:
    """64-bit modulus support end to end (the PIM datapath is modeled in
    exact integers, so width is a parameter, not a limit)."""

    GOLDILOCKS = (1 << 64) - (1 << 32) + 1

    def test_is_prime(self):
        assert is_prime(self.GOLDILOCKS)

    def test_supports_deep_ntt(self):
        # 2-adicity 32: any practical power-of-two length.
        assert (self.GOLDILOCKS - 1) % (1 << 32) == 0

    def test_pim_ntt_with_64bit_modulus(self):
        n = 64
        params = NttParams(n, self.GOLDILOCKS)
        rng = random.Random(0)
        x = [rng.randrange(self.GOLDILOCKS) for _ in range(n)]
        drv = NttPimDriver(SimConfig(pim=PimParams(nb_buffers=2)))
        result = drv._run_ntt(x, params)
        assert result.verified

    def test_montgomery_radix_widens(self):
        from repro.arith import MontgomeryContext
        ctx = MontgomeryContext(self.GOLDILOCKS)
        assert ctx.rbits == 64  # q < 2^64, so a 64-bit radix suffices
        a, b = 2**63 + 5, 2**62 + 11
        assert ctx.mul(a, b) == (a * b) % self.GOLDILOCKS
