"""Unit tests for repro.arith.modmath."""

import pytest

from repro.arith import (
    egcd,
    is_unit,
    mod_add,
    mod_add_vec,
    mod_inverse,
    mod_mul,
    mod_mul_vec,
    mod_neg,
    mod_pow,
    mod_sub,
    mod_sub_vec,
)


class TestScalarOps:
    def test_add_basic(self):
        assert mod_add(5, 9, 7) == 0

    def test_add_wraps(self):
        assert mod_add(6, 6, 7) == 5

    def test_sub_positive_result(self):
        assert mod_sub(5, 3, 7) == 2

    def test_sub_wraps_negative(self):
        assert mod_sub(3, 5, 7) == 5

    def test_mul_basic(self):
        assert mod_mul(3, 4, 7) == 5

    def test_neg(self):
        assert mod_neg(3, 7) == 4

    def test_neg_zero(self):
        assert mod_neg(0, 7) == 0

    def test_results_always_canonical(self):
        q = 13
        for a in range(-q, q):
            for b in range(-q, q):
                assert 0 <= mod_add(a, b, q) < q
                assert 0 <= mod_sub(a, b, q) < q
                assert 0 <= mod_mul(a, b, q) < q

    @pytest.mark.parametrize("fn", [mod_add, mod_sub, mod_mul])
    def test_nonpositive_modulus_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(1, 2, 0)
        with pytest.raises(ValueError):
            fn(1, 2, -5)


class TestPowInverse:
    def test_pow_matches_builtin(self):
        assert mod_pow(3, 20, 101) == pow(3, 20, 101)

    def test_pow_negative_exponent(self):
        q = 101
        inv = mod_pow(3, -1, q)
        assert (3 * inv) % q == 1

    def test_pow_negative_exponent_general(self):
        q = 97
        assert mod_pow(5, -3, q) == pow(mod_inverse(5, q), 3, q)

    def test_inverse_all_units_mod_prime(self):
        q = 31
        for a in range(1, q):
            assert (a * mod_inverse(a, q)) % q == 1

    def test_inverse_of_non_unit_raises(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 12)

    def test_inverse_negative_input(self):
        q = 17
        assert ((-3) * mod_inverse(-3, q)) % q == 1

    def test_egcd_identity(self):
        for a, b in [(12, 18), (35, 64), (0, 5), (7, 0), (270, 192)]:
            g, x, y = egcd(a, b)
            assert a * x + b * y == g

    def test_is_unit(self):
        assert is_unit(5, 12)
        assert not is_unit(6, 12)


class TestVectorOps:
    def test_add_vec(self):
        assert mod_add_vec([1, 2, 3], [6, 6, 6], 7) == [0, 1, 2]

    def test_sub_vec(self):
        assert mod_sub_vec([1, 2, 3], [6, 6, 6], 7) == [2, 3, 4]

    def test_mul_vec(self):
        assert mod_mul_vec([1, 2, 3], [6, 6, 6], 7) == [6, 5, 4]

    @pytest.mark.parametrize("fn", [mod_add_vec, mod_sub_vec, mod_mul_vec])
    def test_length_mismatch(self, fn):
        with pytest.raises(ValueError):
            fn([1, 2], [1], 7)
