"""Fault injection + resilience policies of the serving stack.

The contract under test, in order of importance:

1. *Inertness*: a zero-rate fault plan plus the neutral policy leave
   results, records and telemetry bit-identical to a server without
   them — offline and live.
2. *Determinism*: the same fault seed replays the same faults, records
   and counters regardless of entry style.
3. *Recovery*: each policy knob (retry/backoff/budget, timeout,
   breaker + reroute, detection, shedding, window shrinking) does what
   it says on a scripted or seeded fault schedule.
"""

import random

import pytest

from repro.api import NttRequest, Simulator
from repro.arith import NttParams, find_ntt_prime
from repro.errors import ServeError, ShardFailure
from repro.serve import (
    FAULT_PROFILES,
    POLICIES,
    STATUS_FAILED,
    STATUS_SHED,
    FaultDecision,
    FaultPlan,
    FaultProfile,
    LoadGenerator,
    RequestQueue,
    ResiliencePolicy,
    ServeRequest,
    SimServer,
    make_fault_plan,
    make_policy,
    make_scenario,
)
from repro.sim.driver import SimConfig

N = 256
Q = find_ntt_prime(N, 32)
PARAMS = NttParams(N, Q)
NOVERIFY = SimConfig(verify=False)


def ntt_request(seed: int) -> NttRequest:
    rng = random.Random(seed)
    return NttRequest(params=PARAMS,
                      values=tuple(rng.randrange(Q) for _ in range(N)))


def chaos_load(count: int = 40, seed: int = 3) -> LoadGenerator:
    return LoadGenerator(make_scenario("chaos"), rate_rps=150_000.0,
                         count=count, seed=seed,
                         high_priority_fraction=0.2, deadline_us=4000.0)


class ScriptedPlan(FaultPlan):
    """A fault plan whose decisions come from an explicit table —
    ``(seq, shard, attempt) -> FaultDecision`` — for tests that need
    one exact failure, not a seeded distribution."""

    def __init__(self, script, default=FaultDecision()):
        # Any nonzero rate keeps .active true; decide() is overridden.
        super().__init__(FaultProfile(name="scripted", fail_rate=0.5), 0)
        self.script = dict(script)
        self.default = default

    def decide(self, seq, shard, attempt):
        return self.script.get((seq, shard, attempt), self.default)


FAIL = FaultDecision(fail=True)


# ---------------------------------------------------------------------------
# The plan itself
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_decide_is_pure_and_seeded(self):
        plan = FaultPlan("chaos", seed=11)
        a = [plan.decide(seq, seq % 2, 1) for seq in range(50)]
        b = [plan.decide(seq, seq % 2, 1) for seq in range(50)]
        assert a == b
        assert a != [FaultPlan("chaos", seed=12).decide(seq, seq % 2, 1)
                     for seq in range(50)]
        assert any(d.any for d in a)

    def test_redispatch_draws_fresh_decision(self):
        plan = FaultPlan(FaultProfile(fail_rate=0.5), seed=0)
        draws = [plan.decide(7, 0, attempt).fail for attempt in range(1, 30)]
        assert True in draws and False in draws

    def test_zero_rate_plan_is_inert_and_never_draws(self, monkeypatch):
        plan = FaultPlan(FaultProfile(), seed=123)
        assert not plan.active

        def boom(*a, **k):
            raise AssertionError("zero-rate plan drew from its RNG")

        monkeypatch.setattr(FaultPlan, "_rng", boom)
        for seq in range(20):
            assert plan.decide(seq, 0, 1) == FaultDecision()

    def test_corrupt_index_deterministic_and_in_bounds(self):
        plan = FaultPlan("chaos", seed=5)
        for seq in range(20):
            slot, idx = plan.corrupt_index(seq, 1, 1, banks=4, length=N)
            assert (slot, idx) == plan.corrupt_index(seq, 1, 1, 4, N)
            assert 0 <= slot < 4 and 0 <= idx < N

    def test_profile_validation_and_weights(self):
        with pytest.raises(ValueError, match="fail_rate"):
            FaultProfile(fail_rate=1.5)
        profile = FAULT_PROFILES["degraded"]
        assert profile.shard_weight(0) == 4.0
        assert profile.shard_weight(1) == 1.0

    def test_make_fault_plan_specs(self):
        assert make_fault_plan(None) is None
        assert make_fault_plan("none") is None
        assert make_fault_plan(FaultProfile()) is None  # zero-rate
        plan = make_fault_plan("rate:0.25", seed=9)
        assert plan.profile.fail_rate == 0.25 and plan.seed == 9
        assert make_fault_plan(plan, seed=4) is plan  # keeps its seed
        with pytest.raises(ValueError, match="unknown fault profile"):
            make_fault_plan("catastrophic")

    def test_make_policy_specs_and_overrides(self):
        assert make_policy("none").neutral
        standard = make_policy("standard")
        assert standard.max_retries == 3 and standard.detect
        tweaked = make_policy("standard", shed_depth=8)
        assert tweaked.shed_depth == 8 and standard.shed_depth is None
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("heroic")

    def test_backoff_is_capped_exponential(self):
        policy = ResiliencePolicy(retry_backoff_us=25.0,
                                  retry_backoff_cap_us=80.0)
        assert [policy.backoff_us(a) for a in (1, 2, 3, 4)] == \
            [25.0, 50.0, 80.0, 80.0]


# ---------------------------------------------------------------------------
# Inertness: the acceptance bar
# ---------------------------------------------------------------------------
class TestZeroRateInertness:
    def _snapshot(self, server, results):
        snap = server.telemetry.snapshot()
        # Compile caches are process-global: their hit/miss deltas
        # depend on what ran before, not on this server's behavior.
        snap.pop("cache", None)
        snap.pop("cache_hit_rate", None)
        return ([r.record for r in results],
                [r.response.values if r.ok else None for r in results],
                snap)

    def test_offline_bit_identical(self):
        arrivals = chaos_load().requests()
        plain = SimServer(NOVERIFY, num_shards=2)
        guarded = SimServer(NOVERIFY, num_shards=2, faults="rate:0",
                            fault_seed=99, policy="none")
        assert guarded.fault_plan is None  # provably the plan-less path
        assert self._snapshot(plain, plain.serve(arrivals)) == \
            self._snapshot(guarded, guarded.serve(arrivals))

    def test_live_bit_identical(self):
        plain = SimServer(NOVERIFY, num_shards=2)
        guarded = SimServer(NOVERIFY, num_shards=2,
                            faults=FaultProfile(name="inert"),
                            policy=ResiliencePolicy())
        outcomes = []
        for server in (plain, guarded):
            for sreq in chaos_load().stream():
                server.submit(sreq)
                server.poll(1)
            outcomes.append(self._snapshot(server, server.drain()))
        assert outcomes[0] == outcomes[1]

    def test_zero_resilience_counters_without_faults(self):
        server = SimServer(NOVERIFY)
        server.serve(chaos_load(count=10).requests())
        res = server.telemetry.snapshot()["resilience"]
        assert res["faults_injected"] == {}
        assert all(res[k] == 0 for k in res if k != "faults_injected")


# ---------------------------------------------------------------------------
# Determinism under faults
# ---------------------------------------------------------------------------
class TestFaultDeterminism:
    def test_same_seed_same_everything(self):
        def run():
            server = SimServer(NOVERIFY, num_shards=2, faults="chaos",
                               fault_seed=7, policy="standard")
            results = server.serve(chaos_load().requests())
            return ([r.record for r in results],
                    server.telemetry.snapshot()["resilience"])

        first, second = run(), run()
        assert first == second
        assert sum(first[1]["faults_injected"].values()) > 0

    def test_different_seed_different_schedule(self):
        def injected(seed):
            server = SimServer(NOVERIFY, num_shards=2, faults="chaos",
                               fault_seed=seed, policy="standard")
            server.serve(chaos_load().requests())
            return server.telemetry.snapshot()["resilience"]

        assert injected(7) != injected(8)

    def test_live_matches_offline_under_faults(self):
        offline = SimServer(NOVERIFY, num_shards=2, faults="chaos",
                            fault_seed=7, policy="standard")
        offline_results = offline.serve(chaos_load().requests())
        live = SimServer(NOVERIFY, num_shards=2, faults="chaos",
                         fault_seed=7, policy="standard")
        ids = [live.submit(s) for s in chaos_load().stream()]
        live_results = live.drain()
        assert [r.record for r in offline_results] == \
            [r.record for r in live_results]
        assert ids == [r.record.request_id for r in live_results]
        assert offline.telemetry.snapshot()["resilience"] == \
            live.telemetry.snapshot()["resilience"]


# ---------------------------------------------------------------------------
# Recovery: retries, budget, timeout
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_transient_failure_retries_to_success(self):
        # Dispatch 0 fails on its first two attempts, then serves.
        plan = ScriptedPlan({(0, 0, 1): FAIL, (0, 0, 2): FAIL})
        server = SimServer(NOVERIFY, faults=plan,
                           policy=ResiliencePolicy(max_retries=3,
                                                   retry_backoff_us=25.0))
        result = server.serve([ServeRequest(request=ntt_request(0))])[0]
        assert result.ok
        assert result.record.attempts == 3
        assert server.telemetry.retries == 2
        assert server.telemetry.faults_injected["fail"] == 2
        # Two backoffs (25, 50) plus two failure costs pushed completion.
        solo = SimServer(NOVERIFY).serve(
            [ServeRequest(request=ntt_request(0))])[0]
        assert result.record.completion_us > solo.record.completion_us
        assert result.response.values == solo.response.values

    def test_retries_exhausted_fails_gracefully(self):
        plan = ScriptedPlan({}, default=FAIL)  # every attempt fails
        server = SimServer(NOVERIFY, faults=plan,
                           policy=ResiliencePolicy(max_retries=2))
        result = server.serve([ServeRequest(request=ntt_request(0))])[0]
        assert not result.ok
        assert result.record.status == STATUS_FAILED
        assert result.record.attempts == 3  # 1 try + 2 retries
        assert "injected transient failure" in result.record.error
        # The session survived a terminal failure: serve again, cleanly.
        assert server.telemetry.snapshot()["failed"] == 1

    def test_no_retries_without_policy(self):
        plan = ScriptedPlan({(0, 0, 1): FAIL})
        server = SimServer(NOVERIFY, faults=plan)  # policy "none"
        result = server.serve([ServeRequest(request=ntt_request(0))])[0]
        assert not result.ok and result.record.status == STATUS_FAILED
        assert server.telemetry.retries == 0

    def test_retry_budget_exhaustion_fails_fast(self):
        plan = ScriptedPlan({}, default=FAIL)
        server = SimServer(NOVERIFY, faults=plan,
                           policy=ResiliencePolicy(max_retries=5,
                                                   retry_budget=3))
        results = server.serve([ServeRequest(request=ntt_request(i),
                                             arrival_us=float(i))
                                for i in range(4)])
        assert server.telemetry.retries == 3  # the whole session's budget
        assert all(r.record.status == STATUS_FAILED for r in results)

    def test_timeout_aborts_and_redispatches(self):
        # Attempt 1 stalls far past the timeout; attempt 2 is clean.
        plan = ScriptedPlan({(0, 0, 1): FaultDecision(stall_us=5000.0)})
        server = SimServer(NOVERIFY, faults=plan,
                           policy=ResiliencePolicy(max_retries=1,
                                                   timeout_us=1000.0))
        result = server.serve([ServeRequest(request=ntt_request(0))])[0]
        assert result.ok and result.record.attempts == 2
        assert server.telemetry.timeouts == 1
        # The abort happened at the timeout, not after the full stall.
        assert result.record.completion_us < 5000.0


# ---------------------------------------------------------------------------
# Circuit breaker + routing around
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_breaker_opens_after_consecutive_failures(self):
        plan = ScriptedPlan({}, default=FAIL)
        server = SimServer(NOVERIFY, faults=plan,
                           policy=ResiliencePolicy(breaker_threshold=2,
                                                   breaker_cooldown_us=500.0))
        server.serve([ServeRequest(request=ntt_request(i),
                                   arrival_us=float(i * 200))
                      for i in range(4)])
        assert server.telemetry.breaker_trips >= 1

    def test_half_open_probe_closes_breaker(self):
        # Three failures trip shard 0; later dispatches are clean, so
        # the half-open probe succeeds and serving resumes normally.
        script = {(seq, 0, 1): FAIL for seq in range(3)}
        plan = ScriptedPlan(script)
        server = SimServer(NOVERIFY, faults=plan,
                           policy=ResiliencePolicy(
                               breaker_threshold=3,
                               breaker_cooldown_us=300.0))
        results = server.serve([ServeRequest(request=ntt_request(i),
                                             arrival_us=float(i * 100))
                                for i in range(6)])
        assert server.telemetry.breaker_trips == 1
        assert sum(r.ok for r in results) == 3
        probe = results[3]  # first dispatch after the trip
        assert probe.ok
        failures = [r for r in results if not r.ok]
        trip_us = max(r.record.completion_us for r in failures)
        # The probe waited out the cooldown before serving.
        assert probe.record.start_us >= trip_us + 300.0

    def test_reroute_around_open_shard(self):
        # Shard 0 fails every attempt; shard 1 is healthy.  With two
        # shapes routed round-robin, shard 0's retries detour to shard
        # 1 once the breaker opens — everything still serves.
        def fails_on_shard0(seq, shard, attempt):
            return FAIL if shard == 0 else FaultDecision()

        plan = ScriptedPlan({})
        plan.decide = fails_on_shard0
        other = NttParams(512, find_ntt_prime(512, 32))
        rng = random.Random(1)
        arrivals = []
        for i in range(6):
            params = PARAMS if i % 2 == 0 else other
            arrivals.append(ServeRequest(
                request=NttRequest(params=params,
                                   values=tuple(rng.randrange(params.q)
                                                for _ in range(params.n))),
                arrival_us=float(i * 30)))
        server = SimServer(NOVERIFY, num_shards=2, window_us=10.0,
                           faults=plan,
                           policy=ResiliencePolicy(
                               max_retries=4, breaker_threshold=1,
                               breaker_cooldown_us=5000.0))
        results = server.serve(arrivals)
        assert all(r.ok for r in results)
        assert server.telemetry.reroutes > 0
        # The detoured dispatches really served on the healthy shard.
        assert {r.record.shard for r in results} == {1}


# ---------------------------------------------------------------------------
# Corruption + online detection
# ---------------------------------------------------------------------------
class TestCorruptionDetection:
    def test_undetected_corruption_serves_wrong_values(self):
        plan = ScriptedPlan({(0, 0, 1): FaultDecision(corrupt=True)})
        server = SimServer(NOVERIFY, faults=plan)  # no detection
        request = ntt_request(0)
        result = server.serve([ServeRequest(request=request)])[0]
        golden = Simulator(NOVERIFY).run(request).values
        assert result.ok
        diff = [i for i, (a, b) in enumerate(zip(result.response.values,
                                                 golden)) if a != b]
        assert len(diff) == 1  # exactly one flipped word
        assert server.telemetry.faults_injected["corrupt"] == 1
        assert server.telemetry.detected_mismatches == 0

    def test_detection_catches_and_retry_recovers(self):
        plan = ScriptedPlan({(0, 0, 1): FaultDecision(corrupt=True)})
        server = SimServer(NOVERIFY, faults=plan,
                           policy=ResiliencePolicy(max_retries=2,
                                                   detect=True))
        request = ntt_request(0)
        result = server.serve([ServeRequest(request=request)])[0]
        assert result.ok and result.record.attempts == 2
        assert server.telemetry.detected_mismatches == 1
        assert result.response.values == Simulator(NOVERIFY).run(
            request).values

    def test_detection_without_retries_fails_loudly(self):
        plan = ScriptedPlan({}, default=FaultDecision(corrupt=True))
        server = SimServer(NOVERIFY, faults=plan,
                           policy=ResiliencePolicy(detect=True))
        result = server.serve([ServeRequest(request=ntt_request(0))])[0]
        assert not result.ok and result.record.status == STATUS_FAILED
        assert "golden-model" in result.record.error

    def test_grouped_corruption_detected(self):
        # Two same-shape requests coalesce; the flip lands in one bank
        # of the merged dispatch and detection still catches it.
        plan = ScriptedPlan({(0, 0, 1): FaultDecision(corrupt=True)})
        server = SimServer(NOVERIFY, window_us=50.0, faults=plan,
                           policy=ResiliencePolicy(max_retries=2,
                                                   detect=True))
        results = server.serve([
            ServeRequest(request=ntt_request(1), arrival_us=0.0),
            ServeRequest(request=ntt_request(2), arrival_us=10.0)])
        assert all(r.ok for r in results)
        assert server.telemetry.detected_mismatches == 1
        for seed, result in zip((1, 2), results):
            assert result.response.values == Simulator(NOVERIFY).run(
                ntt_request(seed)).values


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------
class TestDegradation:
    def test_priority_aware_load_shedding(self):
        policy = ResiliencePolicy(shed_depth=2, shed_min_priority=1)
        server = SimServer(NOVERIFY, window_us=500.0, policy=policy)
        arrivals = [ServeRequest(request=ntt_request(i), arrival_us=0.0,
                                 priority=(1 if i == 5 else 0))
                    for i in range(6)]
        results = server.serve(arrivals)
        shed = [r for r in results if r.record.status == STATUS_SHED]
        assert len(shed) == 3  # depth hits 2 after two admissions
        assert all(r.record.priority == 0 for r in shed)
        assert results[5].ok  # urgent traffic landed past the threshold
        assert server.telemetry.shed == 3

    def test_window_shrinking_under_depth(self):
        arrivals = [ServeRequest(request=ntt_request(i),
                                 arrival_us=float(i))
                    for i in range(4)]
        relaxed = SimServer(NOVERIFY, window_us=400.0)
        shrunk = SimServer(NOVERIFY, window_us=400.0,
                           policy=ResiliencePolicy(shrink_depth=1,
                                                   shrink_factor=0.25))
        slow = relaxed.serve(list(arrivals))
        fast = shrunk.serve(list(arrivals))
        assert shrunk.telemetry.shrunk_windows > 0
        assert fast[0].record.dispatch_us < slow[0].record.dispatch_us
        # Same responses, earlier service: degradation trades occupancy.
        assert [r.response.values for r in fast] == \
            [r.response.values for r in slow]


# ---------------------------------------------------------------------------
# Burst / ramp load profiles
# ---------------------------------------------------------------------------
class TestBurstLoad:
    def test_rate_profile_steps(self):
        load = LoadGenerator(
            make_scenario("uniform"), rate_rps=1000.0, count=10,
            rate_profile=LoadGenerator.burst_profile(
                1000.0, 8000.0, start_us=100.0, duration_us=50.0))
        assert load.rate_at(0.0) == 1000.0
        assert load.rate_at(100.0) == 8000.0
        assert load.rate_at(149.0) == 8000.0
        assert load.rate_at(150.0) == 1000.0

    def test_burst_is_deterministic_and_denser(self):
        base = LoadGenerator(make_scenario("uniform"), rate_rps=10_000.0,
                             count=60, seed=5)
        burst = LoadGenerator(
            make_scenario("uniform"), rate_rps=10_000.0, count=60, seed=5,
            rate_profile=LoadGenerator.burst_profile(
                10_000.0, 400_000.0, start_us=500.0, duration_us=2000.0))
        a, b = burst.requests(), burst.requests()
        assert [r.arrival_us for r in a] == [r.arrival_us for r in b]
        assert a[-1].arrival_us < base.requests()[-1].arrival_us

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="sorted"):
            LoadGenerator(make_scenario("uniform"), rate_rps=1.0, count=1,
                          rate_profile=((100.0, 1.0), (0.0, 2.0)))
        with pytest.raises(ValueError, match="> 0"):
            LoadGenerator(make_scenario("uniform"), rate_rps=1.0, count=1,
                          rate_profile=((0.0, -1.0),))

    def test_burst_drives_shedding(self):
        # A flat rate admits everything; the same stream with a burst
        # overload pushes queue depth past the shedding threshold.
        policy = ResiliencePolicy(shed_depth=6, shed_min_priority=1)
        profile = LoadGenerator.burst_profile(
            30_000.0, 2_000_000.0, start_us=200.0, duration_us=1500.0)
        flat = SimServer(NOVERIFY, window_us=100.0, policy=policy)
        flat.serve(LoadGenerator(make_scenario("skewed"), rate_rps=30_000.0,
                                 count=60, seed=2).requests())
        bursty = SimServer(NOVERIFY, window_us=100.0, policy=policy)
        bursty.serve(LoadGenerator(make_scenario("skewed"),
                                   rate_rps=30_000.0, count=60, seed=2,
                                   rate_profile=profile).requests())
        assert bursty.telemetry.shed > flat.telemetry.shed


# ---------------------------------------------------------------------------
# Satellites: queue errors, live drop accounting
# ---------------------------------------------------------------------------
class TestQueueErrors:
    def test_remove_missing_raises_contextful_serve_error(self):
        queue = RequestQueue(max_depth=4)
        stranger = ServeRequest(request=ntt_request(0), arrival_us=12.0,
                                request_id=77)
        with pytest.raises(ServeError, match=r"request 77 .*12\.0us.*"
                                             r"depth 0"):
            queue.remove(stranger)
        assert isinstance(ShardFailure(""), ServeError)  # hierarchy

    def test_discard_is_idempotent(self):
        queue = RequestQueue(max_depth=4)
        sreq = ServeRequest(request=ntt_request(0), request_id=1)
        queue.offer(sreq)
        assert queue.discard(sreq) is True
        assert queue.discard(sreq) is False
        assert queue.stats()["removed"] == 1
        queue.offer(sreq)
        queue.remove(sreq)  # remove still works on a waiting request
        assert queue.depth() == 0


class TestLiveDropAccounting:
    def test_drop_cursor_counts_each_drop_once_across_polls(self):
        server = SimServer(NOVERIFY, window_us=40.0)
        # Both requests expire in-queue: deadlines pass before their
        # window closes (closing happens when time advances past it).
        doomed = [server.submit(ntt_request(i), arrival_us=float(i * 5),
                                deadline_us=float(i * 5 + 10))
                  for i in range(2)]
        survivor = server.submit(ntt_request(9), arrival_us=500.0)
        # Poll repeatedly between/after: the drop cursor must not
        # double-count records already absorbed by an earlier poll.
        for _ in range(3):
            for rid in doomed:
                result = server.poll(rid)
                assert result is not None and not result.ok
                assert result.record.status == "expired"
                assert result.record.deadline_missed
        results = server.drain()
        assert len(results) == 3
        records = server.telemetry.records
        assert len(records) == 3  # one record per request, ever
        assert sum(r.status == "expired" for r in records) == 2
        snap = server.telemetry.snapshot()
        assert snap["expired"] == 2 and snap["completed"] == 1
        assert server.poll(survivor) is None  # session closed

    def test_interleaved_submit_poll_preserves_drop_records(self):
        server = SimServer(NOVERIFY, window_us=20.0, max_depth=2)
        ids = []
        statuses = {}
        for i in range(8):
            rid = server.submit(ntt_request(i), arrival_us=float(i * 4),
                                deadline_us=float(i * 4 + 8))
            ids.append(rid)
            for seen in ids:
                result = server.poll(seen)
                if result is not None and seen not in statuses:
                    statuses[seen] = result.record.status
        results = {r.record.request_id: r for r in server.drain()}
        assert set(results) == set(ids)
        # Whatever a mid-stream poll reported is what drain() reports.
        for rid, status in statuses.items():
            assert results[rid].record.status == status
        # Telemetry holds exactly one record per submission.
        assert len(server.telemetry.records) == len(ids)
        snap = server.telemetry.snapshot()
        assert (snap["completed"] + snap["rejected"] + snap["expired"]
                == len(ids))


# ---------------------------------------------------------------------------
# End to end: the headline resilience claim
# ---------------------------------------------------------------------------
class TestPoliciesRecoverGoodput:
    def test_policies_on_beats_policies_off_under_faults(self):
        arrivals = chaos_load(count=50, seed=3).requests()
        off = SimServer(NOVERIFY, num_shards=2, faults="chaos",
                        fault_seed=7, policy="none")
        off_results = off.serve(list(arrivals))
        on = SimServer(NOVERIFY, num_shards=2, faults="chaos",
                       fault_seed=7, policy="standard")
        on_results = on.serve(list(arrivals))
        assert sum(bool(r.ok) for r in on_results) > \
            sum(bool(r.ok) for r in off_results)
        assert on.telemetry.snapshot()["availability"] > \
            off.telemetry.snapshot()["availability"]
        assert sum(
            off.telemetry.snapshot()["resilience"]
            ["faults_injected"].values()) > 0

    def test_policy_names_registered(self):
        assert set(POLICIES) >= {"none", "standard"}
        assert POLICIES["none"].neutral
        assert not POLICIES["standard"].neutral
