"""Tests for the power-analysis experiment."""

import pytest

from repro.experiments.power_analysis import run_power_analysis


class TestPowerAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        return run_power_analysis(ns=(256, 1024, 4096), nb=2)

    def test_all_claims(self, result):
        assert all(result.check_claims().values())

    def test_shares_sum_to_one(self, result):
        for n in result.ns:
            assert sum(result.shares[n].values()) == pytest.approx(1.0)

    def test_activation_share_monotone(self, result):
        shares = [result.activation_share(n) for n in result.ns]
        assert shares == sorted(shares)

    def test_table_renders(self, result):
        text = result.table()
        assert "avg power (mW)" in text
        assert "ACT %" in text

    def test_small_n_dominated_by_columns_not_acts(self, result):
        # N=256 fits one row: a single activation, column traffic rules.
        s = result.shares[256]
        assert s["activation"] < 0.05
        assert s["column"] > 0.3
