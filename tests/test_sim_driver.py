"""Tests for the front-end driver and result records."""

import random

import pytest

from repro.arith import NttParams, find_ntt_prime
from repro.errors import FunctionalMismatch
from repro.ntt import intt, ntt
from repro.pim import PimParams
from repro.sim import NttPimDriver, SimConfig

Q = find_ntt_prime(4096, 32)


class TestRunNtt:
    def test_runs_and_verifies(self):
        rng = random.Random(1)
        n = 256
        x = [rng.randrange(Q) for _ in range(n)]
        result = NttPimDriver()._run_ntt(x, NttParams(n, Q))
        assert result.verified
        assert result.n == n
        assert result.output == ntt(x, NttParams(n, Q))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            NttPimDriver()._run_ntt([1, 2, 3], NttParams(256, Q))

    def test_result_metrics_consistent(self):
        result = NttPimDriver()._run_ntt([0] * 256, NttParams(256, Q))
        assert result.cycles > 0
        assert result.latency_us == pytest.approx(result.latency_ns / 1000)
        assert result.energy_nj > 0
        assert result.command_count > 0
        assert result.activations == 1
        assert "verified=yes" in result.summary()

    def test_functional_off_skips_data(self):
        config = SimConfig(functional=False, verify=False)
        result = NttPimDriver(config)._run_ntt([0] * 256, NttParams(256, Q))
        assert result.output == []
        assert not result.verified
        assert result.cycles > 0

    def test_timing_identical_with_and_without_functional(self):
        on = NttPimDriver(SimConfig())._run_ntt([0] * 512, NttParams(512, Q))
        off = NttPimDriver(SimConfig(functional=False, verify=False))._run_ntt(
            [0] * 512, NttParams(512, Q))
        assert on.cycles == off.cycles

    def test_bu_op_count_matches_theory(self):
        n = 512
        result = NttPimDriver()._run_ntt([0] * n, NttParams(n, Q))
        # N/2 * log N butterflies exactly — full data reuse, no recompute.
        assert result.bu_ops == (n // 2) * 9

    def test_verification_catches_corruption(self):
        """A wrong omega (mismatched verify target) must raise."""
        n = 256
        params = NttParams(n, Q)
        driver = NttPimDriver()
        with pytest.raises(FunctionalMismatch):
            driver._run_ntt_with_params([0] * n + [], params,
                                       verify_against=[1] * n)


class TestInverse:
    def test_intt_roundtrip_via_pim(self):
        rng = random.Random(2)
        n = 256
        params = NttParams(n, Q)
        x = [rng.randrange(Q) for _ in range(n)]
        driver = NttPimDriver()
        fwd = driver._run_ntt(x, params)
        inv = driver._run_intt(fwd.output, params)
        assert inv.output == x

    def test_intt_matches_reference(self):
        rng = random.Random(3)
        n = 512
        params = NttParams(n, Q)
        y = [rng.randrange(Q) for _ in range(n)]
        inv = NttPimDriver()._run_intt(y, params)
        assert inv.output == intt(y, params)


class TestFrequencyScaling:
    def test_lower_clock_slower_in_ns_but_tolerant(self):
        base = SimConfig(pim=PimParams(nb_buffers=2),
                         functional=False, verify=False)
        n, params = 2048, NttParams(2048, Q)
        t1200 = NttPimDriver(base)._run_ntt([0] * n, params)
        t300 = NttPimDriver(base.at_frequency(300.0))._run_ntt([0] * n, params)
        slowdown = t300.latency_ns / t1200.latency_ns
        assert 1.0 < slowdown < 2.5  # paper: ~1.65x for a 4x clock drop

    def test_config_frequency_propagates(self):
        config = SimConfig().at_frequency(600.0)
        assert config.timing.freq_mhz == 600.0
