"""Direct tests for the PimMemoryController request/response protocol
(paper Sec. IV.A / Fig. 1), including the serve-layer queued path and
its bit-equivalence with the legacy direct-facade route."""

import random

import pytest

from repro.arith import NttParams, bit_reverse_permute, find_ntt_prime
from repro.dram import HBM2E_ARCH
from repro.ntt import ntt as reference_ntt
from repro.serve import SimServer
from repro.sim import (
    MemoryRequest,
    MemoryResponse,
    PimMemoryController,
    RequestType,
    SimConfig,
)

N = 256
Q = find_ntt_prime(1024, 32)  # works for every power of two up to 1024
R = HBM2E_ARCH.words_per_row


def _values(seed: int, n: int = N):
    rng = random.Random(seed)
    return [rng.randrange(Q) for _ in range(n)]


class TestProtocolContract:
    """The raw request/response surface, independent of routing."""

    def test_write_response_carries_no_data(self):
        mc = PimMemoryController()
        resp = mc.submit(MemoryRequest(RequestType.WRITE, address=0,
                                       data=[1, 2, 3]))
        assert isinstance(resp, MemoryResponse)
        assert resp.ok and resp.data == [] and resp.run is None

    def test_read_is_a_pure_window(self):
        mc = PimMemoryController()
        mc.submit(MemoryRequest(RequestType.WRITE, address=10, data=[5, 6]))
        resp = mc.submit(MemoryRequest(RequestType.READ, address=8, length=6))
        assert resp.data == [0, 0, 5, 6, 0, 0]

    def test_ntt_invoke_returns_run_metadata(self):
        params = NttParams(N, Q)
        mc = PimMemoryController()
        mc.submit(MemoryRequest(RequestType.WRITE, address=0,
                                data=_values(0)))
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=0,
                                       ntt_params=params))
        assert resp.ok and resp.run is not None
        assert resp.run.verified
        assert resp.run.schedule.total_cycles > 0
        assert resp.run.command_count > 0

    def test_ntt_overwrites_input_in_place(self):
        """The protocol's defining rule: the result lands where the
        input lived, and only there."""
        params = NttParams(N, Q)
        values = _values(1)
        sentinel_addr = N + 64
        mc = PimMemoryController()
        mc.submit(MemoryRequest(RequestType.WRITE, address=0, data=values))
        mc.submit(MemoryRequest(RequestType.WRITE, address=sentinel_addr,
                                data=[77] * 4))
        mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=0,
                                ntt_params=params))
        after = mc.submit(MemoryRequest(RequestType.READ, address=0,
                                        length=N)).data
        assert after == reference_ntt(values, params)
        untouched = mc.submit(MemoryRequest(RequestType.READ,
                                            address=sentinel_addr,
                                            length=4)).data
        assert untouched == [77] * 4

    def test_back_to_back_invokes_at_distinct_addresses(self):
        params = NttParams(N, Q)
        mc = PimMemoryController()
        rows_each = max(1, N // R)
        blobs = [_values(s) for s in range(3)]
        for i, blob in enumerate(blobs):
            addr = i * rows_each * R
            mc.submit(MemoryRequest(RequestType.WRITE, address=addr,
                                    data=blob))
            resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE,
                                           address=addr, ntt_params=params))
            assert resp.ok
            assert resp.data == reference_ntt(blob, params)

    def test_failed_request_is_still_recorded(self):
        mc = PimMemoryController()
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=17,
                                       ntt_params=NttParams(N, Q)))
        assert not resp.ok
        assert mc.completed[-1] is resp

    def test_timing_only_config_returns_no_data(self):
        mc = PimMemoryController(SimConfig(functional=False, verify=False))
        mc.submit(MemoryRequest(RequestType.WRITE, address=0,
                                data=_values(2)))
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=0,
                                       ntt_params=NttParams(N, Q)))
        assert resp.ok and resp.data == []
        assert resp.run.schedule.total_cycles > 0


class TestQueuedPath:
    """NTT_INVOKE routed through the serving layer's queue/scheduler."""

    def test_queued_ntt_bit_identical_to_legacy(self):
        params = NttParams(N, Q)
        values = _values(3)
        legacy = PimMemoryController()
        queued = PimMemoryController(server=SimServer())
        for mc in (legacy, queued):
            mc.submit(MemoryRequest(RequestType.WRITE, address=0,
                                    data=values))
        resp_legacy = legacy.submit(
            MemoryRequest(RequestType.NTT_INVOKE, address=0,
                          ntt_params=params))
        resp_queued = queued.submit(
            MemoryRequest(RequestType.NTT_INVOKE, address=0,
                          ntt_params=params))
        assert resp_queued.ok
        assert resp_queued.data == resp_legacy.data
        assert resp_queued.run.verified
        assert resp_queued.run.schedule.total_cycles == \
            resp_legacy.run.schedule.total_cycles

    def test_queued_path_honours_base_row_override(self):
        """The request address becomes the per-request SimConfig the
        serve layer carries as a config override."""
        params = NttParams(N, Q)
        values = _values(4)
        server = SimServer()
        mc = PimMemoryController(server=server)
        addr = 16 * R
        mc.submit(MemoryRequest(RequestType.WRITE, address=addr, data=values))
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=addr,
                                       ntt_params=params))
        assert resp.ok
        assert resp.data == reference_ntt(values, params)
        readback = mc.submit(MemoryRequest(RequestType.READ, address=addr,
                                           length=N))
        assert readback.data == resp.data

    def test_queued_traffic_lands_in_server_telemetry(self):
        params = NttParams(N, Q)
        server = SimServer()
        mc = PimMemoryController(server=server)
        for seed in range(3):
            mc.submit(MemoryRequest(RequestType.WRITE, address=0,
                                    data=_values(seed)))
            assert mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=0,
                                           ntt_params=params)).ok
        snapshot = server.telemetry.snapshot()
        assert snapshot["completed"] == 3
        assert snapshot["total_cycles"] > 0

    def test_queued_pre_bit_reversed_input(self):
        params = NttParams(N, Q)
        values = _values(5)
        mc = PimMemoryController(server=SimServer())
        mc.submit(MemoryRequest(RequestType.WRITE, address=0,
                                data=bit_reverse_permute(values)))
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=0,
                                       ntt_params=params,
                                       pre_bit_reversed=True))
        assert resp.ok and resp.data == reference_ntt(values, params)

    def test_queued_unaligned_rejected_before_reaching_server(self):
        server = SimServer()
        mc = PimMemoryController(server=server)
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=5,
                                       ntt_params=NttParams(N, Q)))
        assert not resp.ok and "aligned" in resp.detail
        assert server.telemetry.snapshot()["requests"] == 0

    def test_shared_server_batches_controller_and_api_traffic(self):
        """One server can front both host-protocol controllers and
        direct facade callers; the controller's invoke goes through the
        same scheduler machinery (group of one here)."""
        params = NttParams(N, Q)
        server = SimServer(window_us=0.0)
        mc = PimMemoryController(server=server)
        mc.submit(MemoryRequest(RequestType.WRITE, address=0,
                                data=_values(6)))
        assert mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=0,
                                       ntt_params=params)).ok
        from repro.api import NttRequest
        response = server.call(NttRequest(params=params,
                                          values=tuple(_values(7))))
        assert response.verified
        assert server.telemetry.snapshot()["completed"] == 2
