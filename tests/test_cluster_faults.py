"""Tests for the self-healing cluster tier: replica-level fault
domains (crash/hang/partition), the virtual-time watchdog (lifecycle,
supervised restart, failover with in-flight orphan recovery), and
heartbeat-driven auto-scaling.

The load-bearing properties:

* a zero-rate replica-fault plan drops to ``None`` and leaves the
  cluster literally unsupervised — bit-identical to the plain tier;
* under crash chaos every acknowledged request is served **exactly
  once** (no loss, no duplicates, submission order), and the whole
  run — failovers, restarts, scale events, health counters — replays
  bit-for-bit from its seeds.
"""

import dataclasses

import pytest

from repro.cluster import (
    DOWN,
    RETIRED,
    SUSPECT,
    UP,
    AutoscalePolicy,
    ClusterFrontend,
    ReplicaSupervisor,
    TenantQuota,
    WatchdogPolicy,
)
from repro.cluster.messages import Drain, Heartbeat
from repro.errors import ClusterError, ShardFailure
from repro.serve import LoadGenerator, make_scenario
from repro.serve.faults import (
    CRASH,
    HANG,
    PARTITION,
    REPLICA_FAULT_PROFILES,
    ReplicaFaultPlan,
    ReplicaFaultProfile,
    make_replica_fault_plan,
)
from repro.serve.telemetry import (
    STATUS_OK,
    STATUS_ORPHANED,
    Telemetry,
    merge_snapshots,
)
from repro.sim.driver import SimConfig

NOVERIFY = SimConfig(verify=False)

#: Tight watchdog for tests: probe every 100us, suspect after one miss,
#: down after two, restart 300us later.
FAST_WATCHDOG = WatchdogPolicy(heartbeat_us=100.0, suspect_after=1,
                               down_after=2, restart_delay_us=300.0)


def _stream(count=40, seed=7, scenario="mixed", rate=20000):
    gen = LoadGenerator(make_scenario(scenario), rate_rps=rate,
                        count=count, seed=seed)
    return gen.requests()


def _records(results):
    return [dataclasses.asdict(r.record) for r in results]


def _chaos_run(profile="crashy", seed=7, count=120, replicas=4, **kw):
    fe = ClusterFrontend(replicas, NOVERIFY, replica_faults=profile,
                         replica_fault_seed=seed, watchdog=FAST_WATCHDOG,
                         **kw)
    results = fe.serve(_stream(count=count))
    return fe, results


class TestReplicaFaultPlan:
    def test_timeline_is_pure_and_seeded(self):
        a = ReplicaFaultPlan("chaos", 11)
        b = ReplicaFaultPlan("chaos", 11)
        c = ReplicaFaultPlan("chaos", 12)
        events = [(r, i, a.event(r, i)) for r in range(4)
                  for i in range(12)]
        assert events == [(r, i, b.event(r, i)) for r in range(4)
                          for i in range(12)]
        assert events != [(r, i, c.event(r, i)) for r in range(4)
                          for i in range(12)]

    def test_crash_is_sticky_windows_heal(self):
        profile = ReplicaFaultProfile(crash_rate=1.0, interval_us=100.0)
        plan = ReplicaFaultPlan(profile, 0)
        event = plan.event(0, 0)
        assert event.kind == CRASH and event.end_us == float("inf")
        assert plan.outage(0, event.onset_us + 1e6) is event

        windows = ReplicaFaultPlan(
            ReplicaFaultProfile(hang_rate=1.0, interval_us=1000.0,
                                hang_us=50.0), 0)
        hang = windows.event(0, 0)
        assert hang.kind == HANG
        assert windows.outage(0, hang.onset_us).kind == HANG
        assert windows.outage(0, hang.end_us + 1.0,
                              hang.end_us) is None

    def test_precedence_and_one_event_per_interval(self):
        plan = ReplicaFaultPlan(
            ReplicaFaultProfile(crash_rate=1.0, hang_rate=1.0,
                                partition_rate=1.0, interval_us=100.0), 3)
        for interval in range(8):
            assert plan.event(1, interval).kind == CRASH

    def test_incarnation_birth_filters_old_events(self):
        plan = ReplicaFaultPlan(
            ReplicaFaultProfile(crash_rate=1.0, interval_us=100.0), 0)
        onset = plan.event(0, 5).onset_us
        # Born after the onset: the event died with the old incarnation.
        assert plan.outage(0, onset + 1.0, alive_since_us=onset) is None
        # Born before it: the crash fires.
        assert plan.outage(0, onset + 1.0,
                           alive_since_us=onset - 50.0).kind == CRASH
        # alive == now: nothing can have fired yet.
        assert plan.outage(0, 5000.0, alive_since_us=5000.0) is None

    def test_make_replica_fault_plan_zero_rate_is_none(self):
        assert make_replica_fault_plan(None) is None
        assert make_replica_fault_plan("none") is None
        assert make_replica_fault_plan("rate:0") is None
        assert make_replica_fault_plan(
            ReplicaFaultProfile(name="idle")) is None
        plan = make_replica_fault_plan("rate:0.2", 9)
        assert plan.seed == 9 and plan.profile.crash_rate == 0.2
        assert make_replica_fault_plan(plan) is plan
        for name, profile in REPLICA_FAULT_PROFILES.items():
            made = make_replica_fault_plan(name, 1)
            assert (made is None) == (not profile.active)
        with pytest.raises(ValueError):
            make_replica_fault_plan("nope")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ReplicaFaultProfile(crash_rate=1.5)
        with pytest.raises(ValueError):
            ReplicaFaultProfile(interval_us=0.0)


class TestSupervisedIdentity:
    """Supervision must cost nothing when it has nothing to do."""

    def test_zero_rate_plan_is_bit_identical(self):
        reqs = list(_stream())
        plain = ClusterFrontend(4, NOVERIFY, num_shards=2)
        zeroed = ClusterFrontend(4, NOVERIFY, num_shards=2,
                                 replica_faults="rate:0",
                                 replica_fault_seed=99)
        assert not zeroed.supervised
        a, b = plain.serve(list(reqs)), zeroed.serve(list(reqs))
        assert _records(a) == _records(b)
        assert all((x.response.values if x.ok else None)
                   == (y.response.values if y.ok else None)
                   for x, y in zip(a, b))
        assert plain.cluster_snapshot() == zeroed.cluster_snapshot()

    def test_inert_supervision_is_bit_identical(self):
        # autoscale (N, N) engages the whole watchdog/probe machinery,
        # but probes are read-only and no scale event can fire: results
        # and records must match the unsupervised run exactly.
        reqs = list(_stream())
        plain = ClusterFrontend(4, NOVERIFY, num_shards=2)
        inert = ClusterFrontend(4, NOVERIFY, num_shards=2,
                                autoscale=(4, 4))
        assert inert.supervised
        a, b = plain.serve(list(reqs)), inert.serve(list(reqs))
        assert _records(a) == _records(b)
        plain_snap = plain.cluster_snapshot()
        inert_snap = inert.cluster_snapshot()
        health = inert_snap.pop("cluster")
        assert plain_snap == inert_snap
        assert health["failovers"] == health["restarts"] == 0
        assert health["scale_out"] == health["scale_in"] == 0


class TestCrashRecovery:
    def test_exactly_once_in_submission_order(self):
        fe, results = _chaos_run("crashy")
        assert fe.health.faults_seen.get(CRASH, 0) > 0
        assert fe.health.failovers > 0
        ids = [r.record.request_id for r in results]
        assert len(ids) == len(set(ids)) == 120
        assert all(r.record.status == STATUS_OK for r in results)

    def test_chaos_replays_bit_identical_twice(self):
        def key(fe, results):
            return (_records(results), fe.health.snapshot(),
                    fe.cluster_snapshot())

        first = key(*_chaos_run("chaos"))
        second = key(*_chaos_run("chaos"))
        assert first == second

    def test_hang_recovery_never_double_serves(self):
        fe, results = _chaos_run("flaky")
        assert (fe.health.faults_seen.get(HANG, 0)
                + fe.health.faults_seen.get(PARTITION, 0)) > 0
        ids = [r.record.request_id for r in results]
        assert len(ids) == len(set(ids)) == 120
        # A slow-then-recovered replica's extra copies are orphan-marked
        # in telemetry, never returned as results.
        assert all(r.record.status != STATUS_ORPHANED for r in results)

    def test_live_session_drain_order_and_health(self):
        fe = ClusterFrontend(3, NOVERIFY, replica_faults="crashy",
                             replica_fault_seed=3, watchdog=FAST_WATCHDOG)
        reqs = list(_stream(count=60, rate=15000))
        ids = [fe.submit(sreq) for sreq in reqs]
        fe.advance(max(s.arrival_us for s in reqs) + 2000.0)
        results = fe.drain()
        assert [r.record.request_id for r in results] == ids
        assert fe.health.restarts >= 0  # counters exist and are coherent
        assert len(fe.health.mttr_samples_us) == \
            fe.health.snapshot()["recoveries"]

    def test_failover_restamps_serving_replica(self):
        # Every returned record must be owned by the telemetry of the
        # replica id it claims — re-routed requests are re-stamped with
        # the actually-serving replica, not the one that crashed.
        fe, results = _chaos_run("crashy", seed=7, count=120)
        assert fe.health.orphans_recovered > 0
        by_replica = {}
        for sup in fe._supervisors:
            for telemetry in (sup.retired_telemetries
                              + [sup.replica.server.telemetry]):
                by_replica.setdefault(sup.slot, []).extend(
                    telemetry.records)
        for result in results:
            record = result.record
            assert any(record is candidate
                       for candidate in by_replica[record.replica])

    def test_cluster_rollup_counts_each_request_once(self):
        fe, results = _chaos_run("chaos", seed=13, count=120)
        snap = fe.cluster_snapshot()
        assert snap["requests"] == 120
        assert snap["completed"] == 120
        assert snap["availability"] == 1.0
        merged = fe.cluster_telemetry()
        by_status = {}
        for record in merged.records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        assert by_status.get(STATUS_OK, 0) == 120
        # Duplicate/lost copies are visible — as orphans, not requests.
        assert snap["orphaned"] == by_status.get(STATUS_ORPHANED, 0)


class TestWatchdogLifecycle:
    def test_missed_heartbeat_state_machine(self):
        class _Dark:
            def send(self, message):
                raise AssertionError("dark replica must not be reached")

        plan = ReplicaFaultPlan(
            ReplicaFaultProfile(hang_rate=1.0, interval_us=100.0,
                                hang_us=1e9), 0)
        sup = ReplicaSupervisor(0, _Dark(), plan=plan)
        policy = WatchdogPolicy(heartbeat_us=100.0, suspect_after=2,
                                down_after=3, restart_delay_us=500.0)
        onset = plan.event(0, 0).onset_us
        t = onset + 1.0
        assert sup.deliver(Heartbeat(now_us=t), t) is None
        assert sup.on_missed(t, policy) is None and sup.state == UP
        assert sup.on_missed(t, policy) == SUSPECT
        assert sup.on_missed(t, policy) == DOWN
        assert sup.restart_at_us == t + 500.0
        # Slow-then-recovered: an ack takes it straight back to UP.
        mttr = sup.on_ack(t + 200.0)
        assert sup.state == UP and mttr == 200.0
        assert sup.restart_at_us is None

    def test_reborn_swaps_incarnation_and_retires_telemetry(self):
        class _Server:
            telemetry = Telemetry()

        class _Replica:
            server = _Server()

        sup = ReplicaSupervisor(2, _Replica())
        sup.mark_down(1000.0, FAST_WATCHDOG)
        fresh = _Replica()
        fresh.server = _Server()
        mttr = sup.reborn(fresh, 1300.0)
        assert mttr == 300.0
        assert sup.incarnation == 1 and sup.state == UP
        assert sup.alive_since_us == 1300.0
        assert len(sup.retired_telemetries) == 1
        sup.retire()
        assert sup.state == RETIRED
        assert sup.deliver(Heartbeat(now_us=2000.0), 2000.0) is None

    def test_policy_validation(self):
        with pytest.raises(ClusterError):
            WatchdogPolicy(heartbeat_us=0.0)
        with pytest.raises(ClusterError):
            WatchdogPolicy(suspect_after=3, down_after=2)
        with pytest.raises(ClusterError):
            AutoscalePolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ClusterError):
            AutoscalePolicy(scale_in_load=5.0, scale_out_load=1.0)

    def test_cluster_error_keeps_cause_and_context(self):
        class _Boom:
            def send(self, message):
                raise ShardFailure("shard 1 exploded", shard=1, kind="transient")

        sup = ReplicaSupervisor(3, _Boom())
        with pytest.raises(ClusterError) as info:
            sup.deliver(Drain(), 0.0)
        assert info.value.replica == 3
        assert info.value.state == UP
        assert isinstance(info.value.__cause__, ShardFailure)
        assert info.value.__cause__.kind == "transient"

    def test_drain_is_retryable_after_watchdog_wrap(self):
        fe = ClusterFrontend(2, NOVERIFY, autoscale=(2, 2))
        for sreq in _stream(count=20, rate=40000):
            fe.submit(sreq)

        victim = fe._supervisors[1].replica
        original = victim.send
        fuse = {"armed": True}

        def flaky_send(message):
            if fuse["armed"] and isinstance(message, Drain):
                fuse["armed"] = False
                raise ShardFailure("transient drain hiccup")
            return original(message)

        victim.send = flaky_send
        with pytest.raises(ClusterError) as info:
            fe.drain()
        assert isinstance(info.value.__cause__, ShardFailure)
        assert info.value.replica == 1
        results = fe.drain()  # the session survived; retry completes
        assert len(results) == 20
        assert all(r.record.status == STATUS_OK for r in results)


class TestAutoscale:
    POLICY = AutoscalePolicy(min_replicas=2, max_replicas=4,
                             scale_out_load=3.0, scale_in_load=0.0,
                             sustain_ticks=2, cooldown_us=300.0)

    def test_scale_out_on_sustained_load_and_in_on_idle(self):
        fe = ClusterFrontend(2, NOVERIFY, watchdog=FAST_WATCHDOG,
                             autoscale=self.POLICY)
        for sreq in _stream(count=80, rate=60000, scenario="skewed"):
            fe.submit(sreq)
        fe.advance(fe.now_us + 500.0)
        assert fe.health.scale_out > 0
        assert len(fe.replicas) > 2
        # Let everything settle, then idle long enough to shrink back.
        for _ in range(60):
            fe.advance(fe.now_us + 200.0)
        assert fe.health.scale_in > 0
        retired = [sup for sup in fe._supervisors
                   if sup.state == RETIRED]
        assert retired and all(sup.slot >= 2 for sup in retired)
        results = fe.drain()
        ids = [r.record.request_id for r in results]
        assert len(ids) == len(set(ids)) == 80
        assert all(r.record.status == STATUS_OK for r in results)

    def test_cooldown_prevents_flapping(self):
        calm = AutoscalePolicy(min_replicas=2, max_replicas=4,
                               scale_out_load=3.0, scale_in_load=0.0,
                               sustain_ticks=2, cooldown_us=1e9)
        fe = ClusterFrontend(2, NOVERIFY, watchdog=FAST_WATCHDOG,
                             autoscale=calm)
        for sreq in _stream(count=80, rate=60000, scenario="skewed"):
            fe.submit(sreq)
        for _ in range(30):
            fe.advance(fe.now_us + 200.0)
        fe.drain()
        assert fe.health.scale_out + fe.health.scale_in <= 1

    def test_never_scales_past_bounds(self):
        fe = ClusterFrontend(2, NOVERIFY, watchdog=FAST_WATCHDOG,
                             autoscale=self.POLICY)
        for sreq in _stream(count=120, rate=100000, scenario="skewed"):
            fe.submit(sreq)
        for _ in range(80):
            fe.advance(fe.now_us + 150.0)
        fe.drain()
        active = sum(1 for sup in fe._supervisors
                     if sup.state != RETIRED)
        assert 2 <= active <= 4
        assert len(fe._supervisors) <= 4

    def test_autoscale_spec_forms(self):
        by_pair = ClusterFrontend(2, NOVERIFY, autoscale=(2, 6))
        by_str = ClusterFrontend(2, NOVERIFY, autoscale="2:6")
        assert by_pair._autoscale == by_str._autoscale
        assert by_pair._autoscale.max_replicas == 6

    def test_scale_out_replay_is_deterministic(self):
        def run():
            fe = ClusterFrontend(2, NOVERIFY, watchdog=FAST_WATCHDOG,
                                 autoscale=self.POLICY,
                                 replica_faults="rate:0.1",
                                 replica_fault_seed=21)
            results = fe.serve(_stream(count=100, rate=60000,
                                       scenario="skewed"))
            return (_records(results), fe.health.snapshot())

        assert run() == run()


class TestQuotasSurviveMembership:
    def test_throttle_decisions_ignore_failovers(self):
        quotas = {"*": TenantQuota(rate_rps=20000.0, burst=4.0)}

        def throttle_set(**kw):
            fe = ClusterFrontend(3, NOVERIFY, quotas=quotas, **kw)
            results = fe.serve(_stream(count=80, rate=60000))
            return ([r.record.request_id for r in results
                     if r.record.status == "throttled"],
                    fe.quota_stats())

        calm = throttle_set()
        chaotic = throttle_set(replica_faults="crashy",
                               replica_fault_seed=7,
                               watchdog=FAST_WATCHDOG)
        assert calm == chaotic
        assert len(calm[0]) > 0  # quota actually bit

    def test_failover_resubmit_never_double_charges(self):
        quotas = {"*": TenantQuota(rate_rps=30000.0, burst=6.0)}
        fe = ClusterFrontend(3, NOVERIFY, quotas=quotas,
                             replica_faults="crashy",
                             replica_fault_seed=7,
                             watchdog=FAST_WATCHDOG)
        results = fe.serve(_stream(count=160, rate=20000))
        assert fe.health.orphans_recovered > 0
        stats = fe.quota_stats()[""]
        admitted = sum(1 for r in results
                       if r.record.status != "throttled")
        assert int(stats["admitted"]) == admitted
