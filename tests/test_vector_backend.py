"""Backend equivalence: the NumPy lane kernels must match the pure-Python
ground truth bit for bit, across the whole stack (element-wise ops, golden
NTTs, merged negacyclic transforms, the PIM compute unit, the driver)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import (
    NttParams,
    find_ntt_prime,
    mod_add,
    mod_add_vec,
    mod_mul,
    mod_mul_vec,
    mod_scale_vec,
    mod_sub,
    mod_sub_vec,
    set_backend,
    use_backend,
    vector,
)
from repro.ntt import (
    NegacyclicParams,
    intt,
    merged_negacyclic_intt,
    merged_negacyclic_ntt,
    ntt,
    ntt_dif_natural_input,
    ntt_dit_bitrev_input,
)
from repro.pim import ComputeUnit
from repro.sim.driver import NttPimDriver, VERIFY_DEFAULT

# Moduli spanning the four lane regimes: direct uint64 products,
# Montgomery splitting (products overflow 64 bits), near the 63-bit
# Montgomery ceiling, and the even/large moduli of the Barrett regime.
Q_SMALL = 12289                       # 14-bit
Q_32 = find_ntt_prime(64, 32)         # near 2^32: products graze 2^64
Q_WIDE = find_ntt_prime(64, 60)       # 60-bit: Montgomery lane regime
Q_EDGE = find_ntt_prime(64, 63)       # just under the 2^63 lane ceiling
Q_EVEN = (1 << 40) + 2                # wide and even: Barrett regime
Q_EVEN_EDGE = (1 << 61) - 2           # just under the 2^61 Barrett ceiling


def both_backends(fn):
    """Run ``fn`` under each backend and return the two results."""
    with use_backend("python"):
        py = fn()
    with use_backend("numpy"):
        np_ = fn()
    return py, np_


class TestBackendSelector:
    def test_default_is_numpy_when_available(self):
        assert vector.HAS_NUMPY
        assert vector.get_backend() in ("python", "numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("fortran")

    def test_use_backend_restores(self):
        before = vector.get_backend()
        with use_backend("python"):
            assert vector.get_backend() == "python"
        assert vector.get_backend() == before

    def test_lane_support_matrix(self):
        assert vector.lanes_supported(Q_SMALL)
        assert vector.lanes_supported(Q_32)
        assert vector.lanes_supported(Q_WIDE)
        assert vector.lanes_supported(Q_EDGE)
        assert not vector.lanes_supported(1 << 63)     # too wide
        assert vector.lanes_supported(Q_EVEN)          # even: Barrett regime
        assert vector.lanes_supported(Q_EVEN_EDGE)
        assert not vector.lanes_supported((1 << 61) + 2)  # even past Barrett
        assert vector.lanes_supported((1 << 20) + 2)   # even but direct regime


@given(seed=st.integers(min_value=0, max_value=2**31),
       q=st.sampled_from([3, 17, Q_SMALL, Q_32, Q_WIDE, Q_EDGE, Q_EVEN,
                          Q_EVEN_EDGE, (1 << 32) - 5, (1 << 32) - 4,
                          (1 << 62) + 57]))
@settings(max_examples=60, deadline=None)
def test_property_elementwise_ops_match(seed, q):
    """mod_{add,sub,mul}_vec agree lane for lane on random operands,
    including operands near the modulus (worst-case overflow)."""
    rng = random.Random(seed)
    xs = [rng.randrange(q) for _ in range(32)] + [q - 1, 0, 1][: 3 if q > 2 else 1]
    ys = [rng.randrange(q) for _ in range(len(xs))]
    for op, ref in ((mod_add_vec, mod_add), (mod_sub_vec, mod_sub),
                    (mod_mul_vec, mod_mul)):
        py, np_ = both_backends(lambda op=op: op(xs, ys, q))
        assert py == np_
        assert py == [ref(x, y, q) for x, y in zip(xs, ys)]


def test_elementwise_ops_accept_unreduced_inputs():
    """Negative and > 2^64 inputs take the Python pre-reduction path."""
    q = Q_WIDE
    xs = [-5, 2**70 + 3, q + 1, -(2**65)]
    ys = [7, -1, 2**64, 3]
    py, np_ = both_backends(lambda: mod_mul_vec(xs, ys, q))
    assert py == np_ == [mod_mul(x, y, q) for x, y in zip(xs, ys)]
    py, np_ = both_backends(lambda: mod_add_vec(xs, ys, q))
    assert py == np_ == [mod_add(x, y, q) for x, y in zip(xs, ys)]


def test_scale_vec_matches():
    q = Q_EDGE
    rng = random.Random(3)
    xs = [rng.randrange(q) for _ in range(64)]
    c = rng.randrange(q)
    py, np_ = both_backends(lambda: mod_scale_vec(xs, c, q))
    assert py == np_ == [(x * c) % q for x in xs]


@given(seed=st.integers(min_value=0, max_value=2**31),
       bits=st.integers(min_value=33, max_value=60))
@settings(max_examples=60, deadline=None)
def test_property_barrett_regime_matches(seed, bits):
    """The Barrett lane path (even/large moduli past the Montgomery
    regime) is bit-exact against the Python ground truth, including the
    worst-case operands ``q - 1``."""
    rng = random.Random(seed)
    q = rng.randrange(1 << (bits - 1), 1 << bits)
    if q % 2:
        q += 1  # force the even (Barrett-only) regime
    assert vector.lanes_supported(q)
    xs = [rng.randrange(q) for _ in range(29)] + [q - 1, q - 1, 0]
    ys = [rng.randrange(q) for _ in range(29)] + [q - 1, 1, q - 1]
    py, np_ = both_backends(lambda: mod_mul_vec(xs, ys, q))
    assert py == np_
    assert py == [x * y % q for x, y in zip(xs, ys)]


def test_barrett_edge_moduli():
    """Exhaustive corners at the Barrett ceiling and regime boundaries."""
    for q in (Q_EVEN, Q_EVEN_EDGE, (1 << 32) + 2, (1 << 33) - 2,
              (1 << 50) + 4, (1 << 60) + 6):
        assert vector.lanes_supported(q)
        xs = [q - 1, q - 1, q - 2, 1, 0, q // 2, q // 2 + 1]
        ys = [q - 1, 1, q - 2, q - 1, q - 1, q // 2, q // 2]
        py, np_ = both_backends(lambda q=q, xs=xs, ys=ys:
                                mod_mul_vec(xs, ys, q))
        assert py == np_ == [x * y % q for x, y in zip(xs, ys)]


class TestNttEquivalence:
    @pytest.mark.parametrize("q", [Q_SMALL, Q_32, Q_WIDE, Q_EDGE])
    @pytest.mark.parametrize("n", [8, 64])
    def test_dit_and_dif(self, n, q):
        if (q - 1) % n:
            q = find_ntt_prime(n, q.bit_length())
        params = NttParams(n, q)
        rng = random.Random(n * 31 + q % 1009)
        x = [rng.randrange(q) for _ in range(n)]
        for kernel in (ntt_dit_bitrev_input, ntt_dif_natural_input):
            py, np_ = both_backends(lambda k=kernel: k(list(x), params))
            assert py == np_, f"{kernel.__name__} diverges for n={n} q={q}"

    @pytest.mark.parametrize("q", [Q_SMALL, Q_WIDE])
    def test_forward_inverse_roundtrip(self, q):
        n = 64
        params = NttParams(n, q)
        rng = random.Random(7)
        x = [rng.randrange(q) for _ in range(n)]
        py, np_ = both_backends(lambda: intt(ntt(x, params), params))
        assert py == np_ == x

    def test_merged_negacyclic(self):
        for n, bits in ((64, 31), (64, 60)):
            q = find_ntt_prime(n, bits, negacyclic=True)
            ring = NegacyclicParams(n, q)
            rng = random.Random(bits)
            x = [rng.randrange(q) for _ in range(n)]
            fwd_py, fwd_np = both_backends(
                lambda: merged_negacyclic_ntt(x, ring))
            assert fwd_py == fwd_np
            inv_py, inv_np = both_backends(
                lambda: merged_negacyclic_intt(fwd_py, ring))
            assert inv_py == inv_np == x


class TestComputeUnitEquivalence:
    """Array atom execution must match the scalar path — data *and* the
    µ-op counters the area/power models consume."""

    @staticmethod
    def _counters(cu):
        return (cu.bu_ops, cu.load_uops, cu.store_uops, cu.twiddles_generated)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_c1_matches(self, seed):
        rng = random.Random(seed)
        q = rng.choice([Q_SMALL, Q_32, Q_WIDE])
        root = NttParams(8, q).omega
        x = [rng.randrange(q) for _ in range(8)]

        def run():
            cu = ComputeUnit(8)
            cu.set_modulus(q)
            out = cu.execute_c1(list(x), root, 0)
            return out, self._counters(cu)

        (out_py, ctr_py), (out_np, ctr_np) = both_backends(run)
        assert out_py == out_np
        assert ctr_py == ctr_np

    @pytest.mark.parametrize("gs", [False, True])
    @pytest.mark.parametrize("q", [Q_SMALL, Q_WIDE])
    def test_c2_matches(self, q, gs):
        rng = random.Random(q % 97 + gs)
        p = [rng.randrange(q) for _ in range(8)]
        s = [rng.randrange(q) for _ in range(8)]
        omega0, r_omega = rng.randrange(1, q), rng.randrange(1, q)

        def run():
            cu = ComputeUnit(8)
            cu.set_modulus(q)
            out = cu.execute_c2(list(p), list(s), omega0, r_omega, gs=gs)
            return out, self._counters(cu)

        (out_py, ctr_py), (out_np, ctr_np) = both_backends(run)
        assert out_py == out_np
        assert ctr_py == ctr_np

    @pytest.mark.parametrize("gs", [False, True])
    def test_c1n_matches(self, gs):
        q = Q_WIDE
        rng = random.Random(11 + gs)
        x = [rng.randrange(q) for _ in range(8)]
        zetas = tuple(rng.randrange(1, q) for _ in range(7))

        def run():
            cu = ComputeUnit(8)
            cu.set_modulus(q)
            out = cu.execute_c1n(list(x), zetas, gs=gs)
            return out, self._counters(cu)

        (out_py, ctr_py), (out_np, ctr_np) = both_backends(run)
        assert out_py == out_np
        assert ctr_py == ctr_np


class TestDriverBothBackends:
    """The full mapped-command verify path passes under either backend."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_run_ntt_verifies(self, backend):
        n = 512
        params = NttParams(n, Q_SMALL)
        rng = random.Random(5)
        x = [rng.randrange(Q_SMALL) for _ in range(n)]
        with use_backend(backend):
            result = NttPimDriver()._run_ntt(x, params)
        assert result.verified

    def test_run_ntt_outputs_identical(self):
        n = 512
        params = NttParams(n, Q_SMALL)
        rng = random.Random(6)
        x = [rng.randrange(Q_SMALL) for _ in range(n)]
        py, np_ = both_backends(lambda: NttPimDriver()._run_ntt(x, params))
        assert py.output == np_.output
        assert py.bu_ops == np_.bu_ops
        assert py.schedule.total_cycles == np_.schedule.total_cycles

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_negacyclic_driver_verifies(self, backend):
        n = 256
        q = find_ntt_prime(n, 31, negacyclic=True)
        ring = NegacyclicParams(n, q)
        rng = random.Random(8)
        x = [rng.randrange(q) for _ in range(n)]
        with use_backend(backend):
            result = NttPimDriver()._run_negacyclic_ntt(x, ring)
        assert result.verified

    def test_verify_default_sentinel(self):
        n = 256
        params = NttParams(n, Q_SMALL)
        rng = random.Random(9)
        x = [rng.randrange(Q_SMALL) for _ in range(n)]
        driver = NttPimDriver()
        implicit = driver._run_ntt_with_params(x, params)
        explicit = driver._run_ntt_with_params(x, params,
                                              verify_against=VERIFY_DEFAULT)
        unverified = driver._run_ntt_with_params(x, params, verify_against=None)
        assert implicit.verified and explicit.verified
        assert not unverified.verified
        assert implicit.output == explicit.output == unverified.output
