"""Tests for Bluestein arbitrary-length NTT."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import find_ntt_prime, mod_inverse, root_of_unity
from repro.ntt import bluestein_intt, bluestein_ntt, naive_dft

# A prime with a rich q-1: supports many transform orders.
# q - 1 = 2^20 * 3^2 * 5 * 7 * 13 must divide... pick via search below.
Q = find_ntt_prime(1 << 13, 32)  # q ≡ 1 mod 2^13


def _supported_lengths(q, max_m=50):
    """Lengths m with 2m | q-1 and helper-size | q-1."""
    out = []
    for m in range(2, max_m):
        if (q - 1) % (2 * m):
            continue
        size = 1
        while size < 2 * m - 1:
            size <<= 1
        if (q - 1) % size == 0:
            out.append(m)
    return out


LENGTHS = _supported_lengths(Q)


class TestBluestein:
    def test_some_non_power_of_two_lengths_supported(self):
        assert any(m & (m - 1) for m in LENGTHS), LENGTHS

    @pytest.mark.parametrize("m", LENGTHS[:8])
    def test_matches_naive_dft(self, m):
        rng = random.Random(m)
        x = [rng.randrange(Q) for _ in range(m)]
        omega = root_of_unity(m, Q)
        assert bluestein_ntt(x, Q, omega) == naive_dft(x, omega, Q)

    @pytest.mark.parametrize("m", LENGTHS[:6])
    def test_roundtrip(self, m):
        rng = random.Random(m + 1)
        x = [rng.randrange(Q) for _ in range(m)]
        assert bluestein_intt(bluestein_ntt(x, Q), Q) == x

    def test_length_one(self):
        assert bluestein_ntt([5], Q) == [5]

    def test_power_of_two_agrees_with_reference(self):
        from repro.arith import NttParams
        from repro.ntt import ntt
        m = 16
        rng = random.Random(3)
        x = [rng.randrange(Q) for _ in range(m)]
        params = NttParams(m, Q)
        assert bluestein_ntt(x, Q, params.omega) == ntt(x, params)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bluestein_ntt([], Q)

    def test_unsupported_modulus_rejected(self):
        # 17: q-1 = 16; m=5 needs a 10th root -> unsupported.
        with pytest.raises(ValueError):
            bluestein_ntt([1, 2, 3, 4, 5], 17)

    def test_linearity(self):
        m = LENGTHS[0]
        rng = random.Random(4)
        x = [rng.randrange(Q) for _ in range(m)]
        y = [rng.randrange(Q) for _ in range(m)]
        fx = bluestein_ntt(x, Q)
        fy = bluestein_ntt(y, Q)
        fsum = bluestein_ntt([(a + b) % Q for a, b in zip(x, y)], Q)
        assert fsum == [(a + b) % Q for a, b in zip(fx, fy)]


@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_property_bluestein_equals_naive(data):
    m = data.draw(st.sampled_from(LENGTHS))
    x = [data.draw(st.integers(min_value=0, max_value=Q - 1))
         for _ in range(m)]
    omega = root_of_unity(m, Q)
    assert bluestein_ntt(x, Q, omega) == naive_dft(x, omega, Q)
