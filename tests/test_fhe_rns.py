"""Tests for the RNS layer and its PIM-parallel multiplier."""

import random

import pytest

from repro.fhe import PimRnsMultiplier, RnsBasis, RnsPolynomial
from repro.ntt import naive_negacyclic_convolution
from repro.pim import PimParams
from repro.sim import SimConfig

N = 64


@pytest.fixture(scope="module")
def basis():
    return RnsBasis.generate(N, limbs=3, bits=30)


class TestRnsBasis:
    def test_generate_distinct_coprime(self, basis):
        assert len(set(basis.moduli)) == 3
        for q in basis.moduli:
            assert (q - 1) % (2 * N) == 0

    def test_big_q_is_product(self, basis):
        product = 1
        for q in basis.moduli:
            product *= q
        assert basis.big_q == product

    def test_crt_roundtrip(self, basis):
        rng = random.Random(1)
        coeffs = [rng.randrange(basis.big_q) for _ in range(N)]
        assert basis.from_rns(basis.to_rns(coeffs)) == coeffs

    def test_to_rns_wrong_length(self, basis):
        with pytest.raises(ValueError):
            basis.to_rns([1, 2, 3])

    def test_from_rns_wrong_limbs(self, basis):
        with pytest.raises(ValueError):
            basis.from_rns([[0] * N])

    def test_duplicate_moduli_rejected(self):
        q = RnsBasis.generate(N, 1).moduli[0]
        with pytest.raises(ValueError):
            RnsBasis(N, [q, q])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RnsBasis(N, [])


class TestRnsPolynomial:
    def test_add_matches_bigint(self, basis):
        rng = random.Random(2)
        a = [rng.randrange(basis.big_q) for _ in range(N)]
        b = [rng.randrange(basis.big_q) for _ in range(N)]
        pa = RnsPolynomial.from_coefficients(basis, a)
        pb = RnsPolynomial.from_coefficients(basis, b)
        got = (pa + pb).to_coefficients()
        assert got == [(x + y) % basis.big_q for x, y in zip(a, b)]

    def test_sub_matches_bigint(self, basis):
        rng = random.Random(3)
        a = [rng.randrange(basis.big_q) for _ in range(N)]
        b = [rng.randrange(basis.big_q) for _ in range(N)]
        pa = RnsPolynomial.from_coefficients(basis, a)
        pb = RnsPolynomial.from_coefficients(basis, b)
        got = (pa - pb).to_coefficients()
        assert got == [(x - y) % basis.big_q for x, y in zip(a, b)]

    def test_mul_matches_bigint_negacyclic(self, basis):
        rng = random.Random(4)
        a = [rng.randrange(basis.big_q) for _ in range(N)]
        b = [rng.randrange(basis.big_q) for _ in range(N)]
        pa = RnsPolynomial.from_coefficients(basis, a)
        pb = RnsPolynomial.from_coefficients(basis, b)
        got = (pa * pb).to_coefficients()
        assert got == naive_negacyclic_convolution(a, b, basis.big_q)

    def test_cross_basis_rejected(self, basis):
        other = RnsBasis.generate(N, limbs=2, bits=28)
        pa = RnsPolynomial.from_coefficients(basis, [0] * N)
        pb = RnsPolynomial.from_coefficients(other, [0] * N)
        with pytest.raises(ValueError):
            _ = pa + pb


class TestPimRnsMultiplier:
    def test_product_correct_and_timed(self, basis):
        rng = random.Random(5)
        a = [rng.randrange(basis.big_q) for _ in range(N)]
        b = [rng.randrange(basis.big_q) for _ in range(N)]
        mult = PimRnsMultiplier(
            basis, SimConfig(pim=PimParams(nb_buffers=2)))
        pa = RnsPolynomial.from_coefficients(basis, a)
        pb = RnsPolynomial.from_coefficients(basis, b)
        got = mult.multiply(pa, pb).to_coefficients()
        assert got == naive_negacyclic_convolution(a, b, basis.big_q)
        assert mult.rounds == 3
        assert mult.total_cycles > 0
        assert mult.total_latency_us > 0

    def test_limb_parallelism_cheaper_than_serial(self, basis):
        """3 limbs on 3 banks must take well under 3x one limb's time."""
        mult = PimRnsMultiplier(basis)
        zero = RnsPolynomial.from_coefficients(basis, [0] * N)
        mult.multiply(zero, zero)
        parallel = mult.total_cycles
        single_basis = RnsBasis(N, basis.moduli[:1])
        mult1 = PimRnsMultiplier(single_basis)
        zero1 = RnsPolynomial.from_coefficients(single_basis, [0] * N)
        mult1.multiply(zero1, zero1)
        assert parallel < 1.5 * mult1.total_cycles
