"""Tests for the request-level host interface and trace export."""

import random

import pytest

from repro.arith import NttParams, find_ntt_prime
from repro.dram import HBM2E_ARCH
from repro.ntt import ntt
from repro.sim import (
    MemoryRequest,
    NttPimDriver,
    PimMemoryController,
    RequestType,
    SimConfig,
    format_trace,
    parse_trace_line,
    trace_summary,
)

Q = find_ntt_prime(1024, 32)
R = HBM2E_ARCH.words_per_row


class TestHostProtocol:
    def test_write_read_roundtrip(self):
        mc = PimMemoryController()
        data = list(range(100))
        assert mc.submit(MemoryRequest(RequestType.WRITE, address=64,
                                       data=data)).ok
        resp = mc.submit(MemoryRequest(RequestType.READ, address=64,
                                       length=100))
        assert resp.ok and resp.data == data

    def test_unwritten_memory_reads_zero(self):
        mc = PimMemoryController()
        resp = mc.submit(MemoryRequest(RequestType.READ, address=0, length=4))
        assert resp.data == [0, 0, 0, 0]

    def test_ntt_invoke_full_protocol(self):
        """Fig. 1 flow: write input, invoke NTT as a write request, read
        the transformed data back from the same address."""
        n = 256
        params = NttParams(n, Q)
        rng = random.Random(0)
        values = [rng.randrange(Q) for _ in range(n)]
        mc = PimMemoryController()
        mc.submit(MemoryRequest(RequestType.WRITE, address=0, data=values))
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=0,
                                       ntt_params=params))
        assert resp.ok
        assert resp.run is not None and resp.run.verified
        readback = mc.submit(MemoryRequest(RequestType.READ, address=0,
                                           length=n))
        assert readback.data == ntt(values, params)

    def test_ntt_at_nonzero_row_aligned_address(self):
        n = 256
        params = NttParams(n, Q)
        mc = PimMemoryController()
        addr = 7 * R
        mc.submit(MemoryRequest(RequestType.WRITE, address=addr,
                                data=[1] * n))
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=addr,
                                       ntt_params=params))
        assert resp.ok

    def test_unaligned_ntt_rejected(self):
        mc = PimMemoryController()
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=17,
                                       ntt_params=NttParams(256, Q)))
        assert not resp.ok and "aligned" in resp.detail

    def test_ntt_without_params_rejected(self):
        mc = PimMemoryController()
        assert not mc.submit(MemoryRequest(RequestType.NTT_INVOKE)).ok

    def test_write_without_data_rejected(self):
        mc = PimMemoryController()
        assert not mc.submit(MemoryRequest(RequestType.WRITE, address=0)).ok

    def test_pre_bit_reversed_input(self):
        """A host that already stored the bit-reversed image gets the
        same transform."""
        from repro.arith import bit_reverse_permute
        n = 256
        params = NttParams(n, Q)
        rng = random.Random(1)
        values = [rng.randrange(Q) for _ in range(n)]
        mc = PimMemoryController()
        mc.submit(MemoryRequest(RequestType.WRITE, address=0,
                                data=bit_reverse_permute(values)))
        resp = mc.submit(MemoryRequest(RequestType.NTT_INVOKE, address=0,
                                       ntt_params=params,
                                       pre_bit_reversed=True))
        assert resp.ok and resp.data == ntt(values, params)

    def test_responses_recorded(self):
        mc = PimMemoryController()
        mc.submit(MemoryRequest(RequestType.READ, address=0, length=1))
        mc.submit(MemoryRequest(RequestType.WRITE, address=0, data=[1]))
        assert len(mc.completed) == 2


class TestTrace:
    def _program(self):
        driver = NttPimDriver(SimConfig(functional=False, verify=False))
        return driver.map_commands(NttParams(256, Q))

    def test_format_untimed(self):
        cmds = self._program()
        text = format_trace(cmds[:5])
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("bank0")

    def test_format_timed(self):
        from repro.dram import HBM2E_TIMING, TimingEngine
        from repro.pim import PimParams
        cmds = self._program()
        engine = TimingEngine(HBM2E_TIMING, HBM2E_ARCH,
                              compute=PimParams().compute_timing())
        result = engine.simulate(cmds)
        text = format_trace(cmds, result.timings)
        first = text.splitlines()[0].split()
        assert first[0].isdigit()

    def test_timed_length_mismatch(self):
        cmds = self._program()
        with pytest.raises(ValueError):
            format_trace(cmds, [])

    def test_parse_roundtrip(self):
        cmds = self._program()
        parsed = parse_trace_line(format_trace([cmds[1]]))  # the ACT
        assert parsed["bank"] == 0
        assert parsed["op"] == "ACT"
        assert "row" in parsed

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_trace_line("")
        with pytest.raises(ValueError):
            parse_trace_line("12 notabank ACT")

    def test_summary_counts(self):
        cmds = self._program()
        text = trace_summary(cmds)
        assert text.startswith(f"{len(cmds)} commands:")
        assert "C1=32" in text
