"""Tests for atom buffers and the compute unit (Algorithms 1-2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import NttParams, bit_reverse_permute, mod_pow
from repro.errors import MappingError
from repro.mapping.twiddle_params import c1_root, c2_twiddles
from repro.ntt import direct_ntt, ntt
from repro.pim import AtomBufferFile, ComputeUnit

Q = 12289


class TestAtomBufferFile:
    def test_roundtrip(self):
        bufs = AtomBufferFile(2, 8)
        bufs.write(1, list(range(8)))
        assert bufs.read(1) == list(range(8))

    def test_buffers_independent(self):
        bufs = AtomBufferFile(3, 8)
        bufs.write(0, [1] * 8)
        bufs.write(2, [2] * 8)
        assert bufs.read(0) == [1] * 8
        assert bufs.read(1) == [0] * 8
        assert bufs.read(2) == [2] * 8

    def test_read_returns_copy(self):
        bufs = AtomBufferFile(1, 8)
        out = bufs.read(0)
        out[0] = 99
        assert bufs.read(0)[0] == 0

    def test_lane_access(self):
        bufs = AtomBufferFile(1, 8)
        bufs.write_lane(0, 3, 42)
        assert bufs.read_lane(0, 3) == 42

    def test_index_out_of_range(self):
        bufs = AtomBufferFile(2, 8)
        with pytest.raises(MappingError):
            bufs.read(2)
        with pytest.raises(MappingError):
            bufs.read_lane(0, 8)

    def test_wrong_size_write(self):
        with pytest.raises(MappingError):
            AtomBufferFile(1, 8).write(0, [1, 2])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AtomBufferFile(0, 8)
        with pytest.raises(ValueError):
            AtomBufferFile(1, 0)


class TestC1:
    """C1 must be a size-Na NTT (bit-reversed in, natural out)."""

    @pytest.mark.parametrize("use_mont", [True, False])
    def test_c1_is_size8_ntt(self, use_mont):
        cu = ComputeUnit(8, use_montgomery=use_mont)
        cu.set_modulus(Q)
        p8 = NttParams(8, Q)
        rng = random.Random(1)
        x = [rng.randrange(Q) for _ in range(8)]
        got = cu.execute_c1(bit_reverse_permute(x), p8.omega, 0)
        assert got == direct_ntt(x, p8)

    def test_c1_with_derived_root(self):
        """The root the mapper sends (omega^(N/Na)) makes C1 compute the
        first log Na stages of the big transform."""
        n = 64
        big = NttParams(n, Q)
        root = c1_root(big, 8)
        sub = NttParams(8, Q, root)
        cu = ComputeUnit(8)
        cu.set_modulus(Q)
        rng = random.Random(2)
        x = [rng.randrange(Q) for _ in range(8)]
        assert cu.execute_c1(x, root, 0) == \
            ntt(bit_reverse_permute(x), sub)  # same sub-transform

    def test_c1_requires_modulus(self):
        cu = ComputeUnit(8)
        with pytest.raises(MappingError):
            cu.execute_c1([0] * 8, 1, 0)

    def test_c1_wrong_width(self):
        cu = ComputeUnit(8)
        cu.set_modulus(Q)
        with pytest.raises(MappingError):
            cu.execute_c1([0] * 4, 1, 0)

    def test_c1_counts_uops(self):
        cu = ComputeUnit(8)
        cu.set_modulus(Q)
        cu.execute_c1([0] * 8, 1, 0)
        # Na/2 * log Na = 12 butterflies, 2 loads + 2 stores each.
        assert cu.bu_ops == 12
        assert cu.load_uops == 24
        assert cu.store_uops == 24


class TestC2:
    def test_c2_butterfly_semantics(self):
        cu = ComputeUnit(8)
        cu.set_modulus(Q)
        p = [10] * 8
        s = [3] * 8
        omega0, r_omega = 5, 7
        p_out, s_out = cu.execute_c2(p, s, omega0, r_omega)
        w = omega0
        for j in range(8):
            t = (w * s[j]) % Q
            assert p_out[j] == (p[j] + t) % Q
            assert s_out[j] == (p[j] - t) % Q
            w = (w * r_omega) % Q

    def test_c2_lane_count(self):
        cu = ComputeUnit(8)
        cu.set_modulus(Q)
        cu.execute_c2([0] * 8, [0] * 8, 1, 1)
        assert cu.bu_ops == 8

    def test_c2_wrong_width(self):
        cu = ComputeUnit(8)
        cu.set_modulus(Q)
        with pytest.raises(MappingError):
            cu.execute_c2([0] * 8, [0] * 4, 1, 1)

    def test_c2_twiddle_params_helper(self):
        big = NttParams(64, Q)
        stage = 5  # m = 16
        omega0, r_omega = c2_twiddles(big, stage, 8)
        assert omega0 == mod_pow(big.omega, (64 >> stage) * 8, Q)
        assert r_omega == mod_pow(big.omega, 64 >> stage, Q)

    def test_c2_twiddles_rejects_minus_leg(self):
        big = NttParams(64, Q)
        with pytest.raises(ValueError):
            c2_twiddles(big, 5, 16)  # word 16 has bit 4 set -> '-' leg


class TestScalarPath:
    def test_scalar_butterfly(self):
        cu = ComputeUnit(8)
        cu.set_modulus(Q)
        cu.load_scalar(10)
        a_out, b_out = cu.bu_scalar(3, 5)
        t = (5 * 3) % Q
        assert a_out == (10 + t) % Q
        assert b_out == (10 - t) % Q
        assert cu.store_scalar() == a_out

    def test_scalar_requires_modulus(self):
        cu = ComputeUnit(8)
        with pytest.raises(MappingError):
            cu.load_scalar(1)


class TestConstruction:
    def test_non_power_of_two_width(self):
        with pytest.raises(ValueError):
            ComputeUnit(6)

    def test_bad_modulus(self):
        cu = ComputeUnit(8)
        with pytest.raises(MappingError):
            cu.set_modulus(2)


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_property_c1_montgomery_plain_agree(seed):
    """The Montgomery datapath and plain arithmetic give identical C1."""
    rng = random.Random(seed)
    x = [rng.randrange(Q) for _ in range(8)]
    root = NttParams(8, Q).omega
    cu_m = ComputeUnit(8, use_montgomery=True)
    cu_p = ComputeUnit(8, use_montgomery=False)
    cu_m.set_modulus(Q)
    cu_p.set_modulus(Q)
    assert cu_m.execute_c1(list(x), root, 0) == cu_p.execute_c1(list(x), root, 0)
