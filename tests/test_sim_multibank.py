"""Tests for bank-level parallelism."""

import random

import pytest

from repro.arith import NttParams, find_ntt_prime
from repro.dram import Command, CommandType
from repro.pim import PimParams
from repro.sim import NttPimDriver, SimConfig, interleave_programs
from repro.sim.multibank import _run_multibank

Q = find_ntt_prime(1024, 32)


class TestInterleave:
    def test_round_robin_order(self):
        a = [Command(CommandType.ACT, bank=0, row=0),
             Command(CommandType.PRE, bank=0)]
        b = [Command(CommandType.ACT, bank=1, row=5)]
        merged = interleave_programs([a, b])
        assert [c.bank for c in merged] == [0, 1, 0]

    def test_dependencies_remapped(self):
        prog = [
            Command(CommandType.ACT, bank=0, row=0),
            Command(CommandType.CU_READ, bank=0, row=0, col=0, buf=0,
                    deps=(0,)),
        ]
        other = [Command(CommandType.ACT, bank=1, row=1)]
        merged = interleave_programs([prog, other])
        # prog[1] lands at merged index 2 and must point at merged index 0.
        assert merged[2].deps == (0,)
        assert merged[2].bank == 0

    def test_unequal_lengths(self):
        a = [Command(CommandType.ACT, bank=0, row=0)] * 3
        b = [Command(CommandType.ACT, bank=1, row=0)]
        merged = interleave_programs([a, b])
        assert len(merged) == 4
        assert [c.bank for c in merged] == [0, 1, 0, 0]


class TestMultiBankRuns:
    def test_two_banks_verified(self):
        rng = random.Random(1)
        n = 256
        params = NttParams(n, Q)
        inputs = [[rng.randrange(Q) for _ in range(n)] for _ in range(2)]
        result = _run_multibank(inputs, params)
        assert result.verified
        assert result.banks == 2

    def test_near_linear_speedup(self):
        n = 512
        params = NttParams(n, Q)
        config = SimConfig(pim=PimParams(nb_buffers=2),
                           functional=False, verify=False)
        result = _run_multibank([[0] * n] * 4, params, config)
        assert result.speedup > 3.0
        assert 0.75 <= result.efficiency <= 1.01

    def test_single_bank_degenerate(self):
        n = 256
        params = NttParams(n, Q)
        config = SimConfig(functional=False, verify=False)
        result = _run_multibank([[0] * n], params, config)
        assert result.speedup == pytest.approx(1.0)

    def test_parallel_not_slower_than_serial(self):
        n = 256
        params = NttParams(n, Q)
        config = SimConfig(functional=False, verify=False)
        parallel = _run_multibank([[0] * n] * 8, params, config)
        assert parallel.cycles < 8 * parallel.single_bank_cycles

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            _run_multibank([], NttParams(256, Q))

    def test_different_data_per_bank(self):
        rng = random.Random(2)
        n = 256
        params = NttParams(n, Q)
        inputs = [[rng.randrange(Q) for _ in range(n)] for _ in range(3)]
        result = _run_multibank(inputs, params)
        assert result.verified  # each bank independently checked
