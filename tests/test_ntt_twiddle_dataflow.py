"""Tests for the twiddle generator and the butterfly dataflow graph."""

import pytest

from repro.arith import NttParams, mod_pow
from repro.ntt import (
    TwiddleGenerator,
    TwiddleTable,
    all_butterflies,
    independent_blocks,
    lane_twiddles,
    stage_butterflies,
    stage_step,
    twiddle_exponent,
)

Q = 12289


class TestTwiddleGenerator:
    def test_geometric_sequence(self):
        gen = TwiddleGenerator(3, 2, 1000)
        assert gen.take(4) == [3, 6, 12, 24]

    def test_peek_does_not_consume(self):
        gen = TwiddleGenerator(5, 7, Q)
        assert gen.peek() == 5
        assert gen.next() == 5
        assert gen.count == 1

    def test_reset_reloads(self):
        gen = TwiddleGenerator(5, 7, Q)
        gen.take(3)
        gen.reset(omega0=11, r_omega=13)
        assert gen.next() == 11
        assert gen.next() == (11 * 13) % Q

    def test_reset_keeps_unspecified_params(self):
        gen = TwiddleGenerator(5, 7, Q)
        gen.take(2)
        gen.reset()
        assert gen.next() == 5

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            TwiddleGenerator(1, 1, 1)


class TestStageTwiddles:
    def test_stage_step_values(self):
        p = NttParams(16, Q)
        for s in range(1, 5):
            assert stage_step(p, s) == mod_pow(p.omega, 16 >> s, Q)

    def test_stage_step_out_of_range(self):
        p = NttParams(16, Q)
        with pytest.raises(ValueError):
            stage_step(p, 0)
        with pytest.raises(ValueError):
            stage_step(p, 5)

    def test_lane_twiddles_match_exponents(self):
        p = NttParams(64, Q)
        for stage in (3, 5, 6):
            m = 1 << (stage - 1)
            tw = lane_twiddles(p, stage, 0, m)
            expected = [mod_pow(p.omega, twiddle_exponent(64, stage, j), Q)
                        for j in range(m)]
            assert tw == expected

    def test_lane_twiddles_offset_start(self):
        p = NttParams(64, Q)
        stage = 6
        full = lane_twiddles(p, stage, 0, 32)
        assert lane_twiddles(p, stage, 8, 8) == full[8:16]

    def test_twiddle_exponent_bounds(self):
        with pytest.raises(ValueError):
            twiddle_exponent(16, 2, 2)  # stage 2 has m=2 lanes: j in {0,1}

    def test_table_agrees_with_generator(self):
        p = NttParams(32, Q)
        table = TwiddleTable(p)
        for stage in range(1, 6):
            m = 1 << (stage - 1)
            gen = lane_twiddles(p, stage, 0, m)
            assert gen == [table.stage_lane(stage, j) for j in range(m)]

    def test_table_power_wraps(self):
        p = NttParams(32, Q)
        table = TwiddleTable(p)
        assert table.power(32) == 1
        assert table.power(33) == p.omega


class TestDataflow:
    def test_butterfly_count(self):
        n = 64
        flies = list(all_butterflies(n))
        assert len(flies) == (n // 2) * 6  # N/2 per stage, log N stages

    def test_stage_indices_partition(self):
        """Each stage touches every word exactly once."""
        n = 32
        for stage in range(1, 6):
            touched = []
            for bf in stage_butterflies(n, stage):
                touched.extend([bf.index_a, bf.index_b])
            assert sorted(touched) == list(range(n))

    def test_stride_is_power_of_two(self):
        for bf in all_butterflies(16):
            assert bf.stride == 1 << (bf.stage - 1)
            assert bf.index_a & bf.stride == 0
            assert bf.index_b == bf.index_a | bf.stride

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            list(stage_butterflies(16, 5))
        with pytest.raises(ValueError):
            list(stage_butterflies(16, 0))

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(stage_butterflies(12, 1))

    def test_independent_blocks_contain_early_stages(self):
        """Stages 1..log(block) never cross a block boundary (Sec. III.A)."""
        n, block = 256, 32
        blocks = independent_blocks(n, block)
        assert len(blocks) == n // block
        log_block = block.bit_length() - 1
        for stage in range(1, log_block + 1):
            for bf in stage_butterflies(n, stage):
                assert bf.index_a // block == bf.index_b // block

    def test_later_stages_cross_blocks(self):
        n, block = 256, 32
        stage = block.bit_length()  # first stage past log(block)
        crossing = [bf for bf in stage_butterflies(n, stage)
                    if bf.index_a // block != bf.index_b // block]
        assert crossing  # every butterfly in this stage crosses

    def test_block_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            independent_blocks(16, 32)
