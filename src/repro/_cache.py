"""The shared thread-safe keyed-artifact cache.

One implementation behind the three deterministic-artifact caches —
mapper programs (:mod:`repro.mapping.program_cache`), compiled command
streams (:mod:`repro.dram.stream`) and timing schedules
(:mod:`repro.sim.driver`) — so the concurrency-sensitive part lives in
exactly one place.

The contract every consumer relies on:

* Lookups, hit/miss counters, eviction and insertion run under the
  cache's lock; artifact *generation* runs outside it (generation is
  pure and may be slow — holding the lock would serialize the very
  parallelism the serving layer's worker pool exists for).
* Two threads missing on the same key may both generate, but the first
  published entry wins and every caller observes that one canonical
  object (``get_or_create`` returns it), so identity-based sharing
  holds.
* ``hits + misses`` equals the number of lookups — no lost counter
  updates.
* Past ``max_entries``, the oldest quarter (insertion order) is
  evicted: artifacts are cheap to regenerate; the cap only bounds
  memory during huge sweeps.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

__all__ = ["ArtifactCache"]


class ArtifactCache:
    """Bounded, thread-safe, statistics-keeping mapping of structural
    keys to immutable artifacts."""

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._data: dict = {}
        self._hits = 0
        self._misses = 0

    def lookup(self, key) -> Optional[object]:
        """One counted lookup: the cached artifact, or ``None`` on miss."""
        with self._lock:
            hit = self._data.get(key)
            if hit is not None:
                self._hits += 1
            else:
                self._misses += 1
            return hit

    def publish(self, key, value):
        """Insert ``value`` unless a concurrent generator beat us to it;
        returns the canonical entry either way."""
        with self._lock:
            existing = self._data.get(key)
            if existing is not None:
                return existing
            if len(self._data) >= self.max_entries:
                evict = max(1, self.max_entries // 4)
                for stale in list(self._data)[:evict]:
                    del self._data[stale]
            self._data[key] = value
            return value

    def get_or_create(self, key, factory: Callable[[], object]):
        """``lookup``, else generate outside the lock and ``publish``."""
        hit = self.lookup(key)
        if hit is not None:
            return hit
        return self.publish(key, factory())

    def info(self) -> Dict[str, int]:
        """Statistics in the shape every ``*_cache_info`` reports."""
        with self._lock:
            return {"entries": len(self._data), "hits": self._hits,
                    "misses": self._misses}

    def clear(self) -> None:
        """Empty the cache and reset statistics (test isolation)."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
