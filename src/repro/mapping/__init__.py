"""NTT-to-PIM mapping: regimes, twiddle parameters, command generation."""

from .analysis import (
    MappingForecast,
    forecast_multi_buffer,
    forecast_single_buffer,
)
from .mapper import MapperOptions, NttMapper
from .negacyclic_mapper import NegacyclicNttMapper
from .program import ProgramBuilder
from .program_cache import (
    CachedProgram,
    clear_program_cache,
    cyclic_program,
    negacyclic_program,
    program_cache_info,
)
from .regimes import Regime, RegimeProfile, profile_regimes, regime_of_stage
from .single_buffer import SingleBufferMapper
from .twiddle_params import c1_root, c2_twiddles

__all__ = [
    "MappingForecast",
    "forecast_multi_buffer",
    "forecast_single_buffer",
    "MapperOptions",
    "NttMapper",
    "NegacyclicNttMapper",
    "ProgramBuilder",
    "Regime",
    "RegimeProfile",
    "profile_regimes",
    "regime_of_stage",
    "SingleBufferMapper",
    "CachedProgram",
    "clear_program_cache",
    "cyclic_program",
    "negacyclic_program",
    "program_cache_info",
    "c1_root",
    "c2_twiddles",
]
