"""Software-side computation of the (omega0, r_omega) scalars each C1/C2
command encodes (Sec. IV.A: parameters travel with the command / global
buffer; the TFG expands them into per-lane twiddles).
"""

from __future__ import annotations

from typing import Tuple

from ..arith.modmath import mod_pow
from ..arith.roots import NttParams

__all__ = ["c1_root", "c2_twiddles"]


def c1_root(params: NttParams, atom_words: int) -> int:
    """The primitive ``Na``-th root seeding C1's intra-atom sub-NTT.

    The first ``log Na`` DIT stages of a size-N transform are ``N/Na``
    *identical* size-``Na`` NTTs with root ``omega^(N/Na)`` — block
    invariance is what makes a single scalar parameter sufficient.
    """
    if atom_words < 2 or atom_words & (atom_words - 1):
        raise ValueError("atom width must be a power of two >= 2")
    if params.n < atom_words:
        raise ValueError(f"N={params.n} smaller than an atom ({atom_words})")
    return mod_pow(params.omega, params.n // atom_words, params.q)


def c2_twiddles(params: NttParams, stage: int, word_a: int) -> Tuple[int, int]:
    """(omega0, r_omega) for the C2 covering the atom whose '+'-leg
    starts at global word index ``word_a``, at DIT stage ``stage``.

    Lane ``l`` of the command needs ``omega^((N >> stage) * (j + l))``
    with ``j = word_a mod m`` — a geometric run: first value
    ``omega^((N>>stage) * j)``, ratio ``omega^(N>>stage)``.
    """
    n, q = params.n, params.q
    m = 1 << (stage - 1)
    if word_a % (2 * m) >= m:
        raise ValueError(
            f"word {word_a} is not a '+'-leg operand at stage {stage}")
    j = word_a % m
    step_exp = n >> stage
    omega0 = mod_pow(params.omega, step_exp * j, q)
    r_omega = mod_pow(params.omega, step_exp, q)
    return omega0, r_omega
