"""Incremental builder for MC command programs, with buffer-hazard and
open-row bookkeeping shared by the mappers."""

from __future__ import annotations

from typing import List, Optional

from ..dram.commands import Command, CommandType
from ..errors import MappingError

__all__ = ["ProgramBuilder"]


class ProgramBuilder:
    """Appends commands, wires dependencies, tracks the open row and
    per-buffer producers so mappers stay readable."""

    def __init__(self, bank: int, nb_buffers: int):
        self.bank = bank
        self.nb_buffers = nb_buffers
        self.commands: List[Command] = []
        self.open_row: Optional[int] = None
        # Last command that produced the buffer's current contents.
        self._producer: List[Optional[int]] = [None] * nb_buffers
        # Last command still needing the buffer's contents (WAR hazard).
        self._busy: List[Optional[int]] = [None] * nb_buffers

    # -- raw emission ---------------------------------------------------------
    def emit(self, ctype: CommandType, deps=(), **kwargs) -> int:
        dep_tuple = tuple(sorted({d for d in deps if d is not None}))
        cmd = Command(ctype=ctype, bank=self.bank, deps=dep_tuple, **kwargs)
        self.commands.append(cmd)
        return len(self.commands) - 1

    # -- row management --------------------------------------------------------
    def goto_row(self, row: int) -> None:
        """Open ``row``, precharging first if another row is open."""
        if self.open_row == row:
            return
        if self.open_row is not None:
            self.emit(CommandType.PRE)
        self.emit(CommandType.ACT, row=row)
        self.open_row = row

    def close_row(self) -> None:
        """Final precharge (restores the row buffer into the array)."""
        if self.open_row is not None:
            self.emit(CommandType.PRE)
            self.open_row = None

    # -- buffer-aware helpers ----------------------------------------------------
    def _check_buf(self, buf: int) -> None:
        if not 0 <= buf < self.nb_buffers:
            raise MappingError(f"buffer {buf} out of range (Nb={self.nb_buffers})")

    def cu_read(self, row: int, col: int, buf: int) -> int:
        """Row-buffer atom -> atom buffer; waits out WAR on the buffer."""
        self._check_buf(buf)
        if self.open_row != row:
            raise MappingError(f"cu_read of row {row} while {self.open_row} open")
        idx = self.emit(CommandType.CU_READ, deps=(self._busy[buf],),
                        row=row, col=col, buf=buf)
        self._producer[buf] = idx
        self._busy[buf] = idx
        return idx

    def cu_write(self, row: int, col: int, buf: int) -> int:
        """Atom buffer -> row-buffer atom; waits for the producer."""
        self._check_buf(buf)
        if self.open_row != row:
            raise MappingError(f"cu_write to row {row} while {self.open_row} open")
        idx = self.emit(CommandType.CU_WRITE, deps=(self._producer[buf],),
                        row=row, col=col, buf=buf)
        self._busy[buf] = idx
        return idx

    def c1(self, buf: int, omega0: int) -> int:
        self._check_buf(buf)
        idx = self.emit(CommandType.C1, deps=(self._producer[buf],),
                        buf=buf, omega0=omega0, r_omega=omega0)
        self._producer[buf] = idx
        self._busy[buf] = idx
        return idx

    def c2(self, buf_p: int, buf_s: int, omega0: int, r_omega: int,
           gs: bool = False) -> int:
        self._check_buf(buf_p)
        self._check_buf(buf_s)
        idx = self.emit(CommandType.C2,
                        deps=(self._producer[buf_p], self._producer[buf_s]),
                        buf=buf_p, buf2=buf_s, omega0=omega0,
                        r_omega=r_omega, gs=gs)
        self._producer[buf_p] = idx
        self._producer[buf_s] = idx
        self._busy[buf_p] = idx
        self._busy[buf_s] = idx
        return idx

    def c1n(self, buf: int, zetas, gs: bool = False) -> int:
        """Merged negacyclic intra-atom command (extension)."""
        self._check_buf(buf)
        idx = self.emit(CommandType.C1N, deps=(self._producer[buf],),
                        buf=buf, zetas=tuple(zetas), gs=gs)
        self._producer[buf] = idx
        self._busy[buf] = idx
        return idx

    # -- scalar micro-ops (Nb=1 degenerate path) -----------------------------------
    def load_scalar(self, buf: int, lane: int) -> int:
        """reg_a <- buf[lane]; needs the buffer's current contents."""
        self._check_buf(buf)
        idx = self.emit(CommandType.LOAD_SCALAR, deps=(self._producer[buf],),
                        buf=buf, lane=lane)
        self._busy[buf] = idx
        return idx

    def bu_scalar(self, buf: int, lane: int, omega0: int) -> int:
        """BU(reg_a, buf[lane]); writes b' back into the lane."""
        self._check_buf(buf)
        idx = self.emit(CommandType.BU_SCALAR, deps=(self._producer[buf],),
                        buf=buf, lane=lane, omega0=omega0)
        self._producer[buf] = idx
        self._busy[buf] = idx
        return idx

    def store_scalar(self, buf: int, lane: int) -> int:
        """buf[lane] <- reg_a."""
        self._check_buf(buf)
        idx = self.emit(CommandType.STORE_SCALAR, deps=(self._producer[buf],),
                        buf=buf, lane=lane)
        self._producer[buf] = idx
        self._busy[buf] = idx
        return idx

    def build(self) -> List[Command]:
        return self.commands
