"""Closed-form predictions for command and activation counts.

These formulas mirror the mappers exactly; tests assert that simulated
statistics match them, which pins down the mapping's efficiency claims
(Sec. III.C's activation arithmetic, Fig. 6c's pipelining reduction)
independently of the timing engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arith.bitrev import is_power_of_two
from ..dram.timing import ArchParams
from ..pim.params import PimParams
from .regimes import profile_regimes

__all__ = ["MappingForecast", "forecast_multi_buffer", "forecast_single_buffer"]


@dataclass(frozen=True)
class MappingForecast:
    """Expected command-mix of one NTT program."""

    activations: int
    cu_reads: int
    cu_writes: int
    c1_ops: int
    c2_ops: int
    scalar_ops: int = 0

    @property
    def column_accesses(self) -> int:
        return self.cu_reads + self.cu_writes


def forecast_multi_buffer(n: int, arch: ArchParams, pim: PimParams) -> MappingForecast:
    """Command counts of :class:`repro.mapping.mapper.NttMapper`."""
    if not is_power_of_two(n):
        raise ValueError(f"N must be a power of two, got {n}")
    na = arch.words_per_atom
    r = arch.words_per_row
    profile = profile_regimes(n, arch)
    rows_used = max(1, n // r) if n >= r else 1
    atoms = n // na

    c1_ops = atoms
    reads = atoms          # intra-atom loads
    writes = atoms
    # Intra-row C2 stages: every stage reads and writes every atom once.
    intra_row_pairs_per_stage = atoms // 2
    c2_ops = profile.intra_row_stages * intra_row_pairs_per_stage
    reads += profile.intra_row_stages * atoms
    writes += profile.intra_row_stages * atoms
    # Phase-A activations: one per row-sized vertical block.
    activations = rows_used

    # Inter-row stages.
    group = max(1, pim.pair_slots)
    cols = arch.columns_per_row
    groups_per_row_pair = math.ceil(cols / group)
    for _ in range(profile.inter_row_stages):
        row_pairs = rows_used // 2
        c2_ops += row_pairs * cols
        reads += row_pairs * cols * 2
        writes += row_pairs * cols * 2
        activations += row_pairs * (1 + 2 * groups_per_row_pair)
    return MappingForecast(activations=activations, cu_reads=reads,
                           cu_writes=writes, c1_ops=c1_ops, c2_ops=c2_ops)


def forecast_single_buffer(n: int, arch: ArchParams) -> MappingForecast:
    """Command counts of the Nb=1 degenerate mapping.

    Each inter-atom butterfly costs one LOAD + BU + STORE triple, one
    read+write of each operand atom — except that the '+'-leg atom read
    is skipped while the buffer still holds it (``Na`` consecutive
    butterflies share it within a stage run).
    """
    if not is_power_of_two(n):
        raise ValueError(f"N must be a power of two, got {n}")
    na = arch.words_per_atom
    r = arch.words_per_row
    profile = profile_regimes(n, arch)
    atoms = n // na
    rows_used = max(1, n // r) if n >= r else 1

    c1_ops = atoms
    reads = atoms
    writes = atoms
    scalar_ops = 0
    activations = rows_used  # phase A (one per row of C1 sweeps)
    inter_atom_stages = profile.intra_row_stages + profile.inter_row_stages
    butterflies_per_stage = n // 2
    for idx in range(inter_atom_stages):
        stage = arch.log_words_per_atom + 1 + idx
        m = 1 << (stage - 1)
        scalar_ops += 3 * butterflies_per_stage
        # Per butterfly: read B, write B, re-read A, write A — plus one
        # initial read per distinct '+'-leg atom (the buffer holds A for
        # the Na consecutive butterflies that share it in scan order).
        reads += 2 * butterflies_per_stage + butterflies_per_stage // na
        writes += 2 * butterflies_per_stage
        if m >= r:
            # Inter-row: every visit to B and return to A flips the open
            # row (2 ACTs per butterfly), plus one ACT each time the scan
            # enters a new '+'-leg row (rows_used/2 of them per stage).
            activations += 2 * butterflies_per_stage + rows_used // 2
        elif rows_used > 1:
            # Intra-row: the scan sweeps each row once per stage.
            activations += rows_used
    return MappingForecast(activations=activations, cu_reads=reads,
                           cu_writes=writes, c1_ops=c1_ops, c2_ops=0,
                           scalar_ops=scalar_ops)
