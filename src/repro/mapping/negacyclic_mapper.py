"""Native negacyclic (merged-psi) NTT mapping — an extension beyond the
paper.

The paper computes the *cyclic* NTT on the PIM and leaves the negacyclic
pre/post psi-scaling (and bit reversal) to the host.  Production lattice
crypto instead merges the psi powers into the twiddles
(:mod:`repro.ntt.merged`), which turns out to fit this PIM even better:

* input arrives in **natural order** — the host bit-reversal pass
  disappears entirely;
* every butterfly block has a **constant** zeta, which the TFG realizes
  as the degenerate geometric sequence ``(omega0 = zeta, r_omega = 1)``;
* the forward network runs the same three regimes in *reverse* order
  (inter-row stages first, then per-row blocks), so the same
  row-activation arithmetic applies, including in-place update and
  same-row grouping;
* the intra-atom stages need per-block zetas that are not derivable by
  squaring, so they ride a new ``C1N`` command carrying its seven zetas
  as parameters (7 extra CU cycles — see ``ComputeTiming.c1n_cycles``).

The inverse transform is the mirror image with Gentleman-Sande
butterflies (an output-side mux on the BU multiplier) and inverse zetas;
the final 1/N scale stays on the host, absorbed by FHE's next
element-wise pass exactly as in the paper's protocol.
"""

from __future__ import annotations

from typing import List, Tuple

from ..arith.modmath import mod_pow
from ..dram.commands import Command, CommandType
from ..dram.timing import ArchParams
from ..errors import MappingError
from ..ntt.merged import block_zeta_exponent
from ..ntt.negacyclic import NegacyclicParams
from ..pim.params import PimParams
from .program import ProgramBuilder

__all__ = ["NegacyclicNttMapper"]


def _chunks(seq, size):
    for start in range(0, len(seq), size):
        yield seq[start:start + size]


class NegacyclicNttMapper:
    """Command generation for the merged negacyclic transform."""

    def __init__(self, ring: NegacyclicParams, arch: ArchParams,
                 pim: PimParams, base_row: int = 0, bank: int = 0,
                 inverse: bool = False):
        if pim.nb_buffers < 2:
            raise MappingError("negacyclic mapping needs an auxiliary buffer")
        na = arch.words_per_atom
        if ring.n < na:
            raise MappingError(f"N={ring.n} below one atom")
        rows_needed = (ring.n + arch.words_per_row - 1) // arch.words_per_row
        if base_row + rows_needed > arch.rows_per_bank:
            raise MappingError("polynomial does not fit in the bank")
        self.ring = ring
        self.arch = arch
        self.pim = pim
        self.base_row = base_row
        self.bank = bank
        self.inverse = inverse
        self.rows_used = rows_needed
        self.result_base_row = base_row
        # Twiddle base: psi forward, psi^-1 inverse.
        self._root = ring.psi_inv if inverse else ring.psi

    # -- twiddle helpers ---------------------------------------------------------
    def _zeta(self, length: int, start: int) -> int:
        exp = block_zeta_exponent(self.ring.n, length, start)
        return mod_pow(self._root, exp, self.ring.q)

    def _atom_zetas(self, atom_index: int) -> Tuple[int, ...]:
        """The Na-1 per-block zetas one C1N consumes, in consumption
        order (forward: strides Na/2 down; inverse: strides 1 up)."""
        na = self.arch.words_per_atom
        base = atom_index * na
        zetas: List[int] = []
        strides = ([na >> s for s in range(1, self.arch.log_words_per_atom + 1)]
                   if not self.inverse else
                   [1 << s for s in range(self.arch.log_words_per_atom)])
        for length in strides:
            for start in range(0, na, 2 * length):
                zetas.append(self._zeta(length, base + start))
        return tuple(zetas)

    # -- program generation ----------------------------------------------------------
    def generate(self) -> List[Command]:
        b = ProgramBuilder(self.bank, self.pim.nb_buffers)
        b.emit(CommandType.PARAM_WRITE, payload_words=6)
        n = self.ring.n
        log_n = n.bit_length() - 1
        log_r = self.arch.log_words_per_row
        inter_row_strides = [1 << (s - 1) for s in range(log_r + 1, log_n + 1)]
        if not self.inverse:
            # Forward: inter-row stages first (largest stride first), then
            # per-row blocks (intra-row strides + C1N).
            for length in reversed(inter_row_strides):
                self._inter_row_stage(b, length)
            for block in range(self.rows_used):
                self._row_block(b, block)
        else:
            # Inverse mirrors the forward exactly.
            for block in range(self.rows_used):
                self._row_block(b, block)
            for length in inter_row_strides:
                self._inter_row_stage(b, length)
        b.close_row()
        return b.build()

    # -- per-row processing ------------------------------------------------------------
    def _row_block(self, b: ProgramBuilder, block: int) -> None:
        arch = self.arch
        na = arch.words_per_atom
        row = self.base_row + block
        words_here = min(self.ring.n - block * arch.words_per_row,
                         arch.words_per_row)
        atoms_here = words_here // na
        b.goto_row(row)
        intra_row_strides = [1 << s for s in range(
            arch.log_words_per_atom,
            min(arch.log_words_per_row,
                self.ring.n.bit_length() - 1))]
        if not self.inverse:
            # Forward: intra-row stages from the largest stride down,
            # then the intra-atom C1N sweep.
            for length in reversed(intra_row_strides):
                self._intra_row_stage(b, row, block, atoms_here, length)
            self._c1n_sweep(b, row, block, atoms_here)
        else:
            self._c1n_sweep(b, row, block, atoms_here)
            for length in intra_row_strides:
                self._intra_row_stage(b, row, block, atoms_here, length)

    def _c1n_sweep(self, b: ProgramBuilder, row: int, block: int,
                   atoms_here: int) -> None:
        atoms_per_row = self.arch.columns_per_row
        for group in _chunks(range(atoms_here), self.pim.nb_buffers):
            for buf, col in enumerate(group):
                b.cu_read(row, col, buf)
            for buf, col in enumerate(group):
                atom_index = block * atoms_per_row + col
                b.c1n(buf, self._atom_zetas(atom_index), gs=self.inverse)
            for buf, col in enumerate(group):
                b.cu_write(row, col, buf)

    def _intra_row_stage(self, b: ProgramBuilder, row: int, block: int,
                         atoms_here: int, length: int) -> None:
        na = self.arch.words_per_atom
        stride_atoms = length // na
        pairs = []
        for start in range(0, atoms_here, 2 * stride_atoms):
            for i in range(stride_atoms):
                pairs.append((start + i, start + i + stride_atoms))
        word_base = block * self.arch.words_per_row
        for group in _chunks(pairs, self.pim.pair_slots):
            slots = []
            for slot, (col_a, col_b) in enumerate(group):
                buf_p, buf_s = 2 * slot, 2 * slot + 1
                b.cu_read(row, col_a, buf_p)
                b.cu_read(row, col_b, buf_s)
                slots.append((buf_p, buf_s))
            for slot, (col_a, col_b) in enumerate(group):
                word_a = word_base + col_a * na
                block_start = (word_a // (2 * length)) * (2 * length)
                zeta = self._zeta(length, block_start)
                b.c2(slots[slot][0], slots[slot][1], zeta, 1, gs=self.inverse)
            for slot, (col_a, col_b) in enumerate(group):
                b.cu_write(row, col_a, slots[slot][0])
                b.cu_write(row, col_b, slots[slot][1])

    # -- inter-row stage -------------------------------------------------------------
    def _inter_row_stage(self, b: ProgramBuilder, length: int) -> None:
        arch = self.arch
        na = arch.words_per_atom
        r_words = arch.words_per_row
        row_dist = length // r_words
        if row_dist < 1:
            raise MappingError(f"stride {length} is not inter-row")
        cols = arch.columns_per_row
        group_size = self.pim.pair_slots
        for rel_row in range(self.rows_used):
            if (rel_row * r_words) % (2 * length) >= length:
                continue
            row_a = self.base_row + rel_row
            row_b = row_a + row_dist
            for group in _chunks(range(cols), group_size):
                b.goto_row(row_a)
                slots = []
                for slot, col in enumerate(group):
                    buf_p, buf_s = 2 * slot, 2 * slot + 1
                    b.cu_read(row_a, col, buf_p)
                    slots.append((buf_p, buf_s))
                b.goto_row(row_b)
                for slot, col in enumerate(group):
                    b.cu_read(row_b, col, slots[slot][1])
                for slot, col in enumerate(group):
                    word_a = rel_row * r_words + col * na
                    block_start = (word_a // (2 * length)) * (2 * length)
                    zeta = self._zeta(length, block_start)
                    b.c2(slots[slot][0], slots[slot][1], zeta, 1,
                         gs=self.inverse)
                for slot, col in enumerate(group):
                    b.cu_write(row_b, col, slots[slot][1])
                b.goto_row(row_a)
                for slot, col in enumerate(group):
                    b.cu_write(row_a, col, slots[slot][0])
