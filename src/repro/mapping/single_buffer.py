"""Degenerate Nb=1 mapping (GSA only) — the paper's negative baseline.

With a single atom buffer and two scalar CU registers, intra-atom stages
still work (C1 through the GSA), but every inter-atom butterfly must
stage data element-by-element through the one buffer (Sec. III.B):

    [atom A in buffer]      LOAD_SCALAR  a <- buf[lane]
    CU_READ atom B          (clobbers the buffer)
    BU_SCALAR               b' -> buf[lane], a' stays in the register
    CU_WRITE atom B
    CU_READ atom A          (again!)
    STORE_SCALAR            a' -> buf[lane]
    CU_WRITE atom A         (buffer now holds A for the next butterfly)

i.e. ~2 reads + 2 writes *per element pair* instead of per atom pair, and
in the inter-row regime every read/write pair flips the open row — about
half of all accesses activate, exactly the paper's account.  Fig. 7's
"no advantage over software" line comes from this mapper.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..arith.modmath import mod_pow
from ..arith.roots import NttParams
from ..dram.commands import Command, CommandType
from ..dram.timing import ArchParams
from ..errors import MappingError
from ..pim.params import PimParams
from .program import ProgramBuilder
from .twiddle_params import c1_root

__all__ = ["SingleBufferMapper"]


class SingleBufferMapper:
    """Command generation when only the primary buffer exists."""

    def __init__(self, ntt: NttParams, arch: ArchParams, pim: PimParams,
                 base_row: int = 0, bank: int = 0):
        if pim.nb_buffers != 1:
            raise MappingError("SingleBufferMapper is exactly the Nb=1 case")
        if ntt.n < arch.words_per_atom:
            raise MappingError("N below one atom")
        rows_needed = (ntt.n + arch.words_per_row - 1) // arch.words_per_row
        if base_row + rows_needed > arch.rows_per_bank:
            raise MappingError("polynomial does not fit in the bank")
        self.ntt = ntt
        self.arch = arch
        self.pim = pim
        self.base_row = base_row
        self.bank = bank
        self.rows_used = rows_needed
        self.result_base_row = base_row  # Nb=1 always computes in place

    def generate(self) -> List[Command]:
        b = ProgramBuilder(self.bank, 1)
        b.emit(CommandType.PARAM_WRITE, payload_words=6)
        self._intra_atom_phase(b)
        log_na = self.arch.log_words_per_atom
        for stage in range(log_na + 1, self.ntt.log_n + 1):
            self._inter_atom_stage(b, stage)
        b.close_row()
        return b.build()

    def _intra_atom_phase(self, b: ProgramBuilder) -> None:
        arch = self.arch
        na = arch.words_per_atom
        root = c1_root(self.ntt, na)
        for block in range(self.rows_used):
            row = self.base_row + block
            words_here = min(self.ntt.n - block * arch.words_per_row,
                             arch.words_per_row)
            b.goto_row(row)
            for col in range(words_here // na):
                b.cu_read(row, col, 0)
                b.c1(0, root)
                b.cu_write(row, col, 0)

    def _locate(self, word: int) -> Tuple[int, int, int]:
        r = self.arch.words_per_row
        na = self.arch.words_per_atom
        return (self.base_row + word // r, (word % r) // na, word % na)

    def _inter_atom_stage(self, b: ProgramBuilder, stage: int) -> None:
        n, q = self.ntt.n, self.ntt.q
        m = 1 << (stage - 1)
        step_exp = n >> stage
        # Which (row, col) the buffer currently holds a *clean* copy of.
        held: Optional[Tuple[int, int]] = None

        for k in range(0, n, 2 * m):
            for j in range(m):
                word_a = k + j
                word_b = word_a + m
                row_a, col_a, lane = self._locate(word_a)
                row_b, col_b, _ = self._locate(word_b)
                omega = mod_pow(self.ntt.omega, step_exp * j, q)
                if held != (row_a, col_a):
                    b.goto_row(row_a)
                    b.cu_read(row_a, col_a, 0)
                b.load_scalar(0, lane)
                b.goto_row(row_b)
                b.cu_read(row_b, col_b, 0)
                b.bu_scalar(0, lane, omega)
                b.cu_write(row_b, col_b, 0)
                b.goto_row(row_a)
                b.cu_read(row_a, col_a, 0)
                b.store_scalar(0, lane)
                b.cu_write(row_a, col_a, 0)
                held = (row_a, col_a)
