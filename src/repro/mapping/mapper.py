"""The row-centric NTT mapping algorithm (paper Secs. III-V).

:class:`NttMapper` lowers one size-N NTT into a DRAM/PIM command
program, requiring at least one auxiliary buffer (Nb >= 2; for Nb = 1
see :mod:`repro.mapping.single_buffer`).

Structure (Sec. IV.B):

1. The first ``log R`` stages are split *vertically* into ``N/R``
   independent row-sized blocks — one activation each.  Within a block,
   the first ``log Na`` stages run as per-atom C1 commands and the rest
   as intra-row C2 commands with in-place update (read both operand
   atoms, butterfly, write both back to their origin — Sec. III.C).
2. The remaining stages are processed stage-by-stage (inter-row
   regime); each atom pair straddles two rows.

Pipelining (Sec. V) is purely a command-ordering matter here: atoms /
atom-pairs are processed in groups sized by the buffer pool (``Nb``
atoms in intra-atom, ``Nb // 2`` pairs otherwise), reads of a whole
group are emitted before its computes and writes, and in the inter-row
regime same-row accesses of a group share one activation pair — the
Fig. 6c effect that cuts activations by the group factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..arith.roots import NttParams
from ..dram.commands import Command, CommandType
from ..dram.timing import ArchParams
from ..errors import MappingError
from ..pim.params import PimParams
from .program import ProgramBuilder
from .twiddle_params import c1_root, c2_twiddles

__all__ = ["NttMapper", "MapperOptions"]


def _chunks(seq: Sequence, size: int):
    for start in range(0, len(seq), size):
        yield seq[start:start + size]


@dataclass(frozen=True)
class MapperOptions:
    """Ablation switches for the design choices DESIGN.md calls out.

    * ``in_place_update=False`` — the naive alternative of Sec. III.C:
      inter-row stage outputs go to a mirror region (ping-pong in DRAM)
      instead of back to the input atoms, so the '-'-leg write stops
      being a buffer hit and every group pays two extra activations.
    * ``group_same_row=False`` — disables the Fig. 6c same-row command
      grouping, processing one atom pair at a time even when the buffer
      pool could hold several; isolates the activation-reduction part of
      the pipelining win from the latency-overlap part.
    """

    in_place_update: bool = True
    group_same_row: bool = True


class NttMapper:
    """Generates the command program for one NTT on one bank."""

    def __init__(self, ntt: NttParams, arch: ArchParams, pim: PimParams,
                 base_row: int = 0, bank: int = 0,
                 options: MapperOptions = MapperOptions()):
        if pim.nb_buffers < 2:
            raise MappingError(
                "NttMapper needs an auxiliary buffer; use SingleBufferMapper "
                "for Nb=1")
        na = arch.words_per_atom
        if ntt.n < na:
            raise MappingError(f"N={ntt.n} below one atom ({na} words)")
        rows_needed = (ntt.n + arch.words_per_row - 1) // arch.words_per_row
        self.inter_row_stages = max(0, ntt.log_n - arch.log_words_per_row)
        regions = 1 if options.in_place_update or not self.inter_row_stages else 2
        if base_row + regions * rows_needed > arch.rows_per_bank:
            raise MappingError("polynomial (plus ping-pong region) does not "
                               "fit in the bank")
        self.ntt = ntt
        self.arch = arch
        self.pim = pim
        self.base_row = base_row
        self.bank = bank
        self.rows_used = rows_needed
        self.options = options
        #: Where the natural-order result lands (differs from base_row
        #: only in the out-of-place ablation with an odd stage count).
        if options.in_place_update or self.inter_row_stages % 2 == 0:
            self.result_base_row = base_row
        else:
            self.result_base_row = base_row + rows_needed

    # -- public API -------------------------------------------------------------
    def generate(self) -> List[Command]:
        """The full command program, PARAM_WRITE through final PRE."""
        b = ProgramBuilder(self.bank, self.pim.nb_buffers)
        # q plus Montgomery constants travel over the global buffer as
        # 16-bit chunks; 6 words covers a 32-bit q, q' and R^2 mod q.
        b.emit(CommandType.PARAM_WRITE, payload_words=6)
        for block in range(self.rows_used):
            self._row_block(b, block)
        log_n = self.ntt.log_n
        log_r = self.arch.log_words_per_row
        src_base = self.base_row
        for stage in range(log_r + 1, log_n + 1):
            if self.options.in_place_update:
                dst_base = src_base
            else:
                dst_base = (self.base_row + self.rows_used
                            if src_base == self.base_row else self.base_row)
            self._inter_row_stage(b, stage, src_base, dst_base)
            src_base = dst_base
        b.close_row()
        return b.build()

    # -- phase A: one row-sized vertical block ------------------------------------
    def _row_block(self, b: ProgramBuilder, block: int) -> None:
        arch = self.arch
        na = arch.words_per_atom
        row = self.base_row + block
        words_here = min(self.ntt.n - block * arch.words_per_row,
                         arch.words_per_row)
        atoms_here = words_here // na
        b.goto_row(row)
        self._intra_atom(b, row, atoms_here)
        log_top = min(self.ntt.log_n, arch.log_words_per_row)
        for stage in range(arch.log_words_per_atom + 1, log_top + 1):
            self._intra_row_stage(b, row, block, atoms_here, stage)

    def _intra_atom(self, b: ProgramBuilder, row: int, atoms_here: int) -> None:
        """C1 per atom, group-pipelined over the whole buffer pool."""
        root = c1_root(self.ntt, self.arch.words_per_atom)
        for group in _chunks(range(atoms_here), self.pim.nb_buffers):
            for buf, col in enumerate(group):
                b.cu_read(row, col, buf)
            for buf, col in enumerate(group):
                b.c1(buf, root)
            for buf, col in enumerate(group):
                b.cu_write(row, col, buf)

    def _intra_row_stage(self, b: ProgramBuilder, row: int, block: int,
                         atoms_here: int, stage: int) -> None:
        """C2 per atom pair inside one open row (all buffer hits)."""
        na = self.arch.words_per_atom
        m_words = 1 << (stage - 1)
        stride_atoms = m_words // na
        pairs: List[Tuple[int, int]] = []
        for block_start in range(0, atoms_here, 2 * stride_atoms):
            for i in range(stride_atoms):
                pairs.append((block_start + i, block_start + i + stride_atoms))
        word_base = block * self.arch.words_per_row
        for group in _chunks(pairs, self.pim.pair_slots):
            reads = []
            for slot, (col_a, col_b) in enumerate(group):
                buf_p, buf_s = 2 * slot, 2 * slot + 1
                b.cu_read(row, col_a, buf_p)
                b.cu_read(row, col_b, buf_s)
                reads.append((buf_p, buf_s))
            for slot, (col_a, col_b) in enumerate(group):
                word_a = word_base + col_a * na
                omega0, r_omega = c2_twiddles(self.ntt, stage, word_a)
                buf_p, buf_s = reads[slot]
                b.c2(buf_p, buf_s, omega0, r_omega)
            for slot, (col_a, col_b) in enumerate(group):
                buf_p, buf_s = reads[slot]
                b.cu_write(row, col_a, buf_p)
                b.cu_write(row, col_b, buf_s)

    # -- phase B: one inter-row stage ----------------------------------------------
    def _inter_row_stage(self, b: ProgramBuilder, stage: int,
                         src_base: int, dst_base: int) -> None:
        """C2 per atom pair straddling two rows, group-batched so a group
        shares one (ACT A, ACT B, ACT A) sweep — the pipelining payoff.

        With ``in_place_update`` off, ``dst_base`` points at the mirror
        region: writes open two *additional* rows per group.
        """
        arch = self.arch
        na = arch.words_per_atom
        r_words = arch.words_per_row
        m_words = 1 << (stage - 1)
        row_dist = m_words // r_words
        if row_dist < 1:
            raise MappingError(f"stage {stage} is not inter-row")
        cols = arch.columns_per_row
        group_size = self.pim.pair_slots if self.options.group_same_row else 1
        in_place = (dst_base == src_base)
        for rel_row in range(self.rows_used):
            if (rel_row * r_words) % (2 * m_words) >= m_words:
                continue  # this row is a '-'-leg row; handled with its partner
            row_a = src_base + rel_row
            row_b = row_a + row_dist
            out_a = dst_base + rel_row
            out_b = out_a + row_dist
            for group in _chunks(range(cols), group_size):
                # Reads of all '+'-legs (row A open once per group).
                b.goto_row(row_a)
                slots = []
                for slot, col in enumerate(group):
                    buf_p, buf_s = 2 * slot, 2 * slot + 1
                    b.cu_read(row_a, col, buf_p)
                    slots.append((buf_p, buf_s))
                # Reads of all '-'-legs.
                b.goto_row(row_b)
                for slot, col in enumerate(group):
                    b.cu_read(row_b, col, slots[slot][1])
                # Vectorized butterflies (no row involvement).
                for slot, col in enumerate(group):
                    word_a = rel_row * r_words + col * na
                    omega0, r_omega = c2_twiddles(self.ntt, stage, word_a)
                    b.c2(slots[slot][0], slots[slot][1], omega0, r_omega)
                if in_place:
                    # '-'-leg writes hit the still-open row B (the paper's
                    # in-place update); one activation back to row A for
                    # the '+'-legs, which the next group's reads reuse.
                    for slot, col in enumerate(group):
                        b.cu_write(row_b, col, slots[slot][1])
                    b.goto_row(row_a)
                    for slot, col in enumerate(group):
                        b.cu_write(row_a, col, slots[slot][0])
                else:
                    # Naive out-of-place: both writes miss.
                    b.goto_row(out_b)
                    for slot, col in enumerate(group):
                        b.cu_write(out_b, col, slots[slot][1])
                    b.goto_row(out_a)
                    for slot, col in enumerate(group):
                        b.cu_write(out_a, col, slots[slot][0])
