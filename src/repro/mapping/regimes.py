"""The three mapping regimes (paper Sec. IV.B, Fig. 5).

* **intra-atom** — stages ``1 .. log Na``: all data dependence inside an
  atom; handled by C1.
* **intra-row** — stages ``log Na + 1 .. log R``: dependence crosses
  atoms but stays inside a row; C2 with all accesses hitting the open
  row.
* **inter-row** — stages ``log R + 1 .. log N``: dependence crosses
  rows; C2 with intermittent activates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..arith.bitrev import is_power_of_two
from ..dram.timing import ArchParams

__all__ = ["Regime", "regime_of_stage", "RegimeProfile", "profile_regimes"]


class Regime(enum.Enum):
    INTRA_ATOM = "intra-atom"
    INTRA_ROW = "intra-row"
    INTER_ROW = "inter-row"


def regime_of_stage(stage: int, arch: ArchParams) -> Regime:
    """Which regime a (1-based) DIT stage falls into."""
    if stage < 1:
        raise ValueError(f"stage must be >= 1, got {stage}")
    if stage <= arch.log_words_per_atom:
        return Regime.INTRA_ATOM
    if stage <= arch.log_words_per_row:
        return Regime.INTRA_ROW
    return Regime.INTER_ROW


@dataclass(frozen=True)
class RegimeProfile:
    """How a size-N NTT's stages split across the regimes."""

    n: int
    intra_atom_stages: int
    intra_row_stages: int
    inter_row_stages: int

    @property
    def total_stages(self) -> int:
        return (self.intra_atom_stages + self.intra_row_stages
                + self.inter_row_stages)

    @property
    def inter_row_fraction(self) -> float:
        """Share of stages in the expensive regime — grows with N, which
        is the paper's explanation for Fig. 7's widening Nb gains."""
        return self.inter_row_stages / self.total_stages


def profile_regimes(n: int, arch: ArchParams) -> RegimeProfile:
    """Stage counts per regime for a size-``n`` transform."""
    if not is_power_of_two(n) or n < arch.words_per_atom:
        raise ValueError(
            f"N must be a power of two >= Na={arch.words_per_atom}, got {n}")
    log_n = n.bit_length() - 1
    intra_atom = min(log_n, arch.log_words_per_atom)
    intra_row = min(log_n, arch.log_words_per_row) - intra_atom
    inter_row = log_n - intra_atom - intra_row
    return RegimeProfile(n, intra_atom, intra_row, inter_row)
