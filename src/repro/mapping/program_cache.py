"""Memoized command-program generation.

A mapper's output is a deterministic artifact of ``(transform
parameters, geometry, PIM config, placement)``: running the same NTT
shape twice — every repetition of a batch, every bank of a multi-bank
round, every point of an experiment sweep that revisits a size —
regenerates an identical command list.  This module caches those
programs.

Cached programs are tuples of :class:`~repro.dram.commands.Command`
objects shared between consumers.  That is safe because nothing in the
simulator mutates a command after construction: the timing engine and
the functional bank only read fields, and the batch/multi-bank mergers
rewrite dependencies via ``dataclasses.replace`` (fresh copies).  Do not
mutate commands obtained from this cache.

The cache is thread-safe via the shared :class:`repro._cache.ArtifactCache`
(locked lookup/statistics/eviction, generation outside the lock, one
canonical entry per key), so the serving layer's worker pool
(:mod:`repro.serve.workers`) and the facade's pipelined compile thread
cannot corrupt statistics or race the eviction scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .._cache import ArtifactCache

from ..arith.roots import NttParams
from ..dram.commands import Command
from ..dram.timing import ArchParams
from ..ntt.negacyclic import NegacyclicParams
from ..pim.params import PimParams
from .mapper import MapperOptions, NttMapper
from .negacyclic_mapper import NegacyclicNttMapper
from .single_buffer import SingleBufferMapper

__all__ = ["CachedProgram", "cyclic_program", "negacyclic_program",
           "programs_recipe_key", "program_cache_info",
           "clear_program_cache"]

_MAX_ENTRIES = 512


@dataclass(frozen=True)
class CachedProgram:
    """One lowered NTT invocation, plus the mapper facts the driver needs.

    ``key`` is the program-cache key the program was generated under — a
    compact, exact stand-in for the command tuple's content (the program
    is a deterministic function of the key), which downstream caches
    (the schedule cache) use to avoid re-hashing thousands of commands
    per lookup.  ``None`` (e.g. a hand-built program) means "no compact
    key": consumers must fall back to structural keying, never share a
    sentinel.
    """

    commands: Tuple[Command, ...]
    result_base_row: int
    key: Optional[tuple] = None


_cache = ArtifactCache(_MAX_ENTRIES)


def programs_recipe_key(tag: str, programs, *extra) -> Optional[tuple]:
    """A merge-recipe cache key over component :class:`CachedProgram` keys.

    A merged command list (batch concat, multi-bank interleave) is a pure
    function of its component programs plus the merge rule, so
    ``(tag, component keys, rule parameters)`` is an exact — and cheap —
    stand-in for the merged content in the stream/schedule caches.
    ``None`` when any component lacks a compact key (consumers fall back
    to structural keying).
    """
    keys = tuple(p.key for p in programs)
    if any(k is None for k in keys):
        return None
    return (tag, keys) + extra


def cyclic_program(ntt: NttParams, arch: ArchParams, pim: PimParams,
                   base_row: int = 0, bank: int = 0,
                   options: MapperOptions = MapperOptions()) -> CachedProgram:
    """The command program of one cyclic NTT (Nb >= 2 row-centric mapping,
    or the Nb = 1 single-buffer mapping), memoized."""
    key = ("cyclic", ntt.n, ntt.q, ntt.omega, arch, pim, base_row, bank,
           options)

    def generate() -> CachedProgram:
        if pim.nb_buffers == 1:
            mapper = SingleBufferMapper(ntt, arch, pim, base_row, bank)
        else:
            mapper = NttMapper(ntt, arch, pim, base_row, bank,
                               options=options)
        return CachedProgram(tuple(mapper.generate()),
                             mapper.result_base_row, key)

    return _cache.get_or_create(key, generate)


def negacyclic_program(ring: NegacyclicParams, arch: ArchParams,
                       pim: PimParams, base_row: int = 0, bank: int = 0,
                       inverse: bool = False) -> CachedProgram:
    """The command program of one merged negacyclic transform, memoized."""
    key = ("negacyclic", ring.n, ring.q, ring.psi, arch, pim, base_row, bank,
           inverse)

    def generate() -> CachedProgram:
        mapper = NegacyclicNttMapper(ring, arch, pim, base_row, bank,
                                     inverse=inverse)
        return CachedProgram(tuple(mapper.generate()),
                             mapper.result_base_row, key)

    return _cache.get_or_create(key, generate)


def program_cache_info() -> Dict[str, int]:
    """Cache statistics (for benchmarks and diagnostics)."""
    return _cache.info()


def clear_program_cache() -> None:
    """Empty the cache and reset statistics (test isolation)."""
    _cache.clear()
