"""Area and power models (Table II and energy breakdowns)."""

from .area import AreaModel, cu_area_mm2, dram_bank_area_mm2, newton_area_mm2
from .gates import (
    GateLibrary,
    crossbar_gates,
    modadd_gates,
    montgomery_multiplier_gates,
    register_gates,
    sram_buffer_um2,
)
from .power import PowerModel, average_power_mw

__all__ = [
    "AreaModel",
    "cu_area_mm2",
    "dram_bank_area_mm2",
    "newton_area_mm2",
    "GateLibrary",
    "crossbar_gates",
    "modadd_gates",
    "montgomery_multiplier_gates",
    "register_gates",
    "sram_buffer_um2",
    "PowerModel",
    "average_power_mw",
]
