"""Area model reproducing Table II.

Three estimators:

* :func:`cu_area_mm2` — the NTT-PIM compute unit (BU + TFG + LSU +
  crossbar + scalar registers) as a function of Nb, from the gate model.
* :func:`newton_area_mm2` — Newton's 16-lane bf16 MAC datapath [7].
* :func:`dram_bank_area_mm2` — a CACTI-3DD-style bank estimate at 32 nm
  (cell area * array inefficiency), the Table II denominator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .gates import (
    GateLibrary,
    crossbar_gates,
    modadd_gates,
    montgomery_multiplier_gates,
    register_gates,
    sram_buffer_um2,
)

__all__ = ["AreaModel", "cu_area_mm2", "newton_area_mm2", "dram_bank_area_mm2"]


def cu_area_mm2(nb_buffers: int, bits: int = 32, atom_words: int = 8,
                lib: GateLibrary | None = None) -> float:
    """NTT-PIM per-bank overhead: CU logic + (Nb - 1) secondary buffers.

    The primary buffer (GSA) is free — every bank already has it.
    """
    if nb_buffers < 1:
        raise ValueError("Nb must be >= 1")
    lib = lib or GateLibrary()
    logic_gates = 0.0
    # Butterfly unit: one Montgomery ModMult + two ModAdd/Sub, pipelined.
    logic_gates += montgomery_multiplier_gates(bits)
    logic_gates += 2 * modadd_gates(bits)
    # Twiddle factor generator: a second (smaller-duty) modular multiplier
    # and its hold registers.
    logic_gates += montgomery_multiplier_gates(bits) * 0.55
    logic_gates += 2 * register_gates(bits, lib)
    # LSU, scalar operand registers, parameter registers, control FSM.
    logic_gates += 4 * register_gates(bits, lib)
    logic_gates += 600.0  # control / sequencing
    # Crossbar: full connectivity between Nb buffers + 2 BU register ports.
    logic_gates += crossbar_gates(nb_buffers + 2, bits)
    area_um2 = lib.gates_to_um2(logic_gates)
    # Secondary atom buffers (GSA excluded).
    atom_bits = atom_words * bits
    area_um2 += (nb_buffers - 1) * sram_buffer_um2(atom_bits, lib)
    return area_um2 / 1e6


def newton_area_mm2(lib: GateLibrary | None = None) -> float:
    """Newton's in-bank MVM unit: 16 bf16 multipliers, an adder tree,
    and input/accumulation registers [7]."""
    lib = lib or GateLibrary()
    gates = 0.0
    # bf16 multiplier: 8x8 mantissa multiplier + exponent add + round.
    bf16_mult = 4.5 * 8 * 8 + 10 * 8 + 82
    gates += 16 * bf16_mult
    # Adder tree: 15 FP adders (alignment shifter + normalizer dominate).
    fp_add = 700.0
    gates += 15 * fp_add
    # Operand / weight / accumulation registers and control.
    gates += 64 * register_gates(16, lib)
    gates += 1200.0
    return lib.gates_to_um2(gates) / 1e6


def dram_bank_area_mm2(rows: int = 32768, row_bytes: int = 1024,
                       feature_nm: float = 32.0,
                       cell_factor: float = 6.0,
                       array_efficiency: float = 0.3907) -> float:
    """CACTI-3DD-style bank estimate: bits * (cell_factor * F^2) scaled by
    array efficiency (periphery, decoders, spare rows)."""
    bits = rows * row_bytes * 8
    cell_um2 = cell_factor * (feature_nm / 1000.0) ** 2
    return bits * cell_um2 / array_efficiency / 1e6


@dataclass
class AreaModel:
    """Table II generator."""

    lib: GateLibrary = GateLibrary()
    bits: int = 32
    atom_words: int = 8

    def table(self, nb_values=(1, 2, 4, 6)) -> Dict[str, object]:
        """All Table II rows: bank, Newton, NTT-PIM per Nb (+ percent)."""
        bank = dram_bank_area_mm2()
        newton = newton_area_mm2(self.lib)
        rows = []
        for nb in nb_values:
            area = cu_area_mm2(nb, self.bits, self.atom_words, self.lib)
            rows.append({"nb": nb, "area_mm2": area,
                         "percent_of_bank": 100.0 * area / bank})
        return {
            "bank_mm2": bank,
            "newton_mm2": newton,
            "newton_percent": 100.0 * newton / bank,
            "ntt_pim": rows,
        }
