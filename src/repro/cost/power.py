"""Power model: average power of a PIM NTT run, plus the CU's dynamic
power estimate used for sanity checks against the Table II-scale logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.energy import EnergyParams
from ..dram.stats import SimStats
from ..dram.timing import TimingParams

__all__ = ["PowerModel", "average_power_mw"]


def average_power_mw(energy_nj: float, latency_us: float) -> float:
    """P = E / t (nJ / us == mW)."""
    if latency_us <= 0:
        raise ValueError("latency must be positive")
    return energy_nj / latency_us


@dataclass
class PowerModel:
    """Decomposes a run's energy into DRAM vs CU contributions."""

    energy: EnergyParams
    timing: TimingParams

    def breakdown(self, stats: SimStats) -> dict:
        """Per-category dynamic energy (pJ) plus static."""
        c = stats.command_counts
        act = c.get("ACT", 0) * self.energy.act_pj
        col = (c.get("RD", 0) * self.energy.rd_pj
               + c.get("WR", 0) * self.energy.wr_pj
               + c.get("CU_READ", 0) * self.energy.cu_rd_pj
               + c.get("CU_WRITE", 0) * self.energy.cu_wr_pj)
        compute = (c.get("C1", 0) * self.energy.c1_pj
                   + c.get("C2", 0) * self.energy.c2_pj
                   + sum(c.get(k, 0) for k in
                         ("LOAD_SCALAR", "BU_SCALAR", "STORE_SCALAR"))
                   * self.energy.scalar_pj
                   + c.get("PARAM_WRITE", 0) * self.energy.param_pj)
        static = (self.energy.static_mw
                  * self.timing.cycles_to_ns(stats.total_cycles))
        total = act + col + compute + static
        return {
            "activation_pj": act,
            "column_pj": col,
            "compute_pj": compute,
            "static_pj": static,
            "total_pj": total,
        }

    def average_power_mw(self, stats: SimStats) -> float:
        """Average power over the run."""
        total_pj = self.breakdown(stats)["total_pj"]
        ns = self.timing.cycles_to_ns(stats.total_cycles)
        return total_pj / ns  # pJ / ns == mW
