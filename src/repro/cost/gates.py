"""Gate-level building blocks for the area model (65 nm standard cells).

The paper synthesizes the CU with Synopsys DC on a Samsung 65 nm library
and sizes buffers with CACTI (Sec. VI.B).  We reproduce the *method*:
component gate counts from textbook datapath structure, a NAND2-
equivalent cell area for 65 nm, and an SRAM macro model for the atom
buffers.  Constants are calibrated once so Table II reproduces; the
relative scaling (with bitwidth, buffer count, crossbar size) is
structural, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GateLibrary", "montgomery_multiplier_gates", "modadd_gates",
           "crossbar_gates", "register_gates", "sram_buffer_um2"]


@dataclass(frozen=True)
class GateLibrary:
    """65 nm standard-cell metrics (NAND2-equivalent)."""

    nand2_um2: float = 1.42       # NAND2-equivalent placed area, routed
    ff_gates: float = 6.0         # one flip-flop in NAND2 equivalents
    sram_cell_um2: float = 0.62   # 6T cell at 65 nm
    utilization: float = 0.75     # placement density

    def gates_to_um2(self, gates: float) -> float:
        return gates * self.nand2_um2 / self.utilization


def montgomery_multiplier_gates(bits: int) -> float:
    """Pipelined Montgomery modular multiplier.

    Structure: two ``bits x bits`` partial-product multipliers (the
    product and the ``m = t*q'`` fold) sharing Booth recoding and
    compression (~2.2 NAND2 per bit-pair after sharing), one
    ``bits``-wide adder tree and the conditional-subtract stage, plus
    pipeline registers.
    """
    if bits < 4:
        raise ValueError("bitwidth too small")
    multiplier = 2.2 * bits * bits        # one b x b compressed multiplier
    adders = 8.0 * bits                   # wide carry-propagate stages
    pipeline_regs = 3 * bits * 6.0        # three pipeline cuts
    return 2 * multiplier + 3 * adders + pipeline_regs


def modadd_gates(bits: int) -> float:
    """Modular adder/subtractor: adder + conditional correction."""
    return 2.2 * (2 * bits) + 1.5 * bits


def register_gates(bits: int, lib: GateLibrary) -> float:
    """A ``bits``-wide register in NAND2 equivalents."""
    return bits * lib.ff_gates


def crossbar_gates(ports: int, bits: int) -> float:
    """Small mux-based crossbar between atom buffers and BU registers.

    Area grows ~quadratically with port count (the Sec. V overhead of
    deeper pipelining): each output needs a ports-to-1 mux per bit.
    """
    mux_per_bit = 0.75 * max(0, ports - 1)
    return ports * bits * mux_per_bit


def sram_buffer_um2(bits: int, lib: GateLibrary,
                    cells_per_bit: float = 8.0 / 6.0,
                    periphery_um2: float = 900.0) -> float:
    """One atom buffer: 6T cells + 2T complementary-signal inverters
    (Sec. IV.A) plus sense/drive periphery and wordline decode.

    The periphery constant dominates at atom size (256 bits) — matching
    Table II's ~0.0011-0.0019 mm^2 per-buffer increments.
    """
    cell_area = bits * cells_per_bit * lib.sram_cell_um2
    return cell_area + periphery_um2
