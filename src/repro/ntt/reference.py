"""Golden-model NTT kernels.

The PIM executes a decimation-in-time (DIT) Cooley-Tukey network on
bit-reversed input producing natural-order output (see DESIGN.md §3 for
why this is the consistent reading of the paper's Fig. 3 + Algorithms
1-2).  :func:`ntt_dit_bitrev_input` is therefore *the* semantic contract
the PIM simulator is verified against; everything else here exists to
cross-check it (direct O(N²) DFT, DIF variant, recursive formulation)
and to serve software baselines.
"""

from __future__ import annotations

from typing import List, Sequence

from ..arith import vector
from ..arith.bitrev import bit_reverse_permute, is_power_of_two
from ..arith.modmath import mod_mul_vec, mod_pow, mod_scale_vec
from ..arith.roots import NttParams

__all__ = [
    "direct_ntt",
    "ntt_dit_bitrev_input",
    "ntt_dif_natural_input",
    "ntt",
    "intt",
    "recursive_ntt",
    "cyclic_convolution",
    "naive_cyclic_convolution",
]


def _check_input(values: Sequence[int], params: NttParams) -> List[int]:
    if len(values) != params.n:
        raise ValueError(f"expected {params.n} coefficients, got {len(values)}")
    return [v % params.q for v in values]


def direct_ntt(values: Sequence[int], params: NttParams) -> List[int]:
    """O(N²) evaluation ``A[j] = sum_k a[k] * omega^(j*k)`` — ground truth."""
    x = _check_input(values, params)
    n, q, omega = params.n, params.q, params.omega
    out = []
    for j in range(n):
        acc = 0
        w = 1
        wj = mod_pow(omega, j, q)
        for k in range(n):
            acc = (acc + x[k] * w) % q
            w = (w * wj) % q
        out.append(acc)
    return out


def ntt_dit_bitrev_input(values: Sequence[int], params: NttParams) -> List[int]:
    """Iterative DIT Cooley-Tukey: bit-reversed input -> natural output.

    Stage ``s`` (1-based) works on pairs that differ in bit ``s-1``; the
    lane twiddle is ``omega^(j * N / 2^s)``, geometric across ``j`` — the
    exact pattern the hardware TFG generates from ``(omega0, r_omega)``.
    """
    n, q, omega = params.n, params.q, params.omega
    if len(values) != n:
        raise ValueError(f"expected {n} coefficients, got {len(values)}")
    if vector.numpy_active(q):
        return vector.ntt_dit_bitrev(values, n, q, omega)
    x = _check_input(values, params)
    log_n = params.log_n
    for s in range(1, log_n + 1):
        m = 1 << (s - 1)
        w_step = mod_pow(omega, n >> s, q)
        for k in range(0, n, 2 * m):
            w = 1
            for j in range(m):
                t = (w * x[k + j + m]) % q
                u = x[k + j]
                x[k + j] = (u + t) % q
                x[k + j + m] = (u - t) % q
                w = (w * w_step) % q
    return x


def ntt_dif_natural_input(values: Sequence[int], params: NttParams) -> List[int]:
    """Iterative DIF Gentleman-Sande: natural input -> bit-reversed output.

    The transpose network of :func:`ntt_dit_bitrev_input`; composing with
    a bit-reversal gives the same transform (asserted in tests).
    """
    n, q, omega = params.n, params.q, params.omega
    if len(values) != n:
        raise ValueError(f"expected {n} coefficients, got {len(values)}")
    if vector.numpy_active(q):
        return vector.ntt_dif_natural(values, n, q, omega)
    x = _check_input(values, params)
    log_n = params.log_n
    for s in range(log_n, 0, -1):
        m = 1 << (s - 1)
        w_step = mod_pow(omega, n >> s, q)
        for k in range(0, n, 2 * m):
            w = 1
            for j in range(m):
                u = x[k + j]
                v = x[k + j + m]
                x[k + j] = (u + v) % q
                x[k + j + m] = ((u - v) * w) % q
                w = (w * w_step) % q
    return x


def ntt(values: Sequence[int], params: NttParams) -> List[int]:
    """Natural-order forward NTT (software does the bit reversal, as in
    the paper's host-side assumption)."""
    return ntt_dit_bitrev_input(bit_reverse_permute(list(values)), params)


def intt(values: Sequence[int], params: NttParams) -> List[int]:
    """Natural-order inverse NTT, including the ``1/N`` scaling."""
    inv = params.inverse()
    y = ntt_dit_bitrev_input(bit_reverse_permute(list(values)), inv)
    return mod_scale_vec(y, params.n_inv, params.q)


def recursive_ntt(values: Sequence[int], params: NttParams) -> List[int]:
    """Recursive Cooley-Tukey on bit-reversed input.

    This is the formulation the mapping algorithm exploits (Sec. III.A):
    the first ``log M`` stages of a size-``N`` DIT network are ``N/M``
    *independent, identical* size-``M`` sub-transforms, which is what
    lets a row (or an atom) be processed with a single activation.
    """
    x = _check_input(values, params)
    return _recursive_dit(x, params.omega, params.q)


def _recursive_dit(x: List[int], omega: int, q: int) -> List[int]:
    n = len(x)
    if n == 1:
        return x
    half = n // 2
    omega_half = (omega * omega) % q
    even = _recursive_dit(x[:half], omega_half, q)
    odd = _recursive_dit(x[half:], omega_half, q)
    out = [0] * n
    w = 1
    for j in range(half):
        t = (w * odd[j]) % q
        out[j] = (even[j] + t) % q
        out[j + half] = (even[j] - t) % q
        w = (w * omega) % q
    return out


def cyclic_convolution(a: Sequence[int], b: Sequence[int], params: NttParams) -> List[int]:
    """Length-N cyclic convolution via the convolution theorem (Eq. 1)."""
    fa = ntt(a, params)
    fb = ntt(b, params)
    prod = mod_mul_vec(fa, fb, params.q)
    return intt(prod, params)


def naive_cyclic_convolution(a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
    """Schoolbook cyclic convolution, for verifying the NTT-based path."""
    n = len(a)
    if len(b) != n:
        raise ValueError(f"length mismatch: {n} vs {len(b)}")
    if not is_power_of_two(n):
        raise ValueError(f"length must be a power of two, got {n}")
    out = [0] * n
    for i in range(n):
        for j in range(n):
            out[(i + j) % n] = (out[(i + j) % n] + a[i] * b[j]) % q
    return out
