"""NTT kernels: golden models, algorithm variants, ring arithmetic."""

from .bluestein import bluestein_intt, bluestein_ntt, naive_dft
from .dataflow import Butterfly, all_butterflies, independent_blocks, stage_butterflies
from .incomplete import (
    IncompleteNttParams,
    incomplete_basemul,
    incomplete_intt,
    incomplete_ntt,
)
from .merged import (
    block_zeta,
    block_zeta_exponent,
    merged_negacyclic_intt,
    merged_negacyclic_ntt,
    merged_pointwise_multiply,
)
from .negacyclic import (
    NegacyclicParams,
    naive_negacyclic_convolution,
    negacyclic_convolution,
    negacyclic_intt,
    negacyclic_ntt,
    psi_power_table,
)
from .polynomial import Polynomial
from .reference import (
    cyclic_convolution,
    direct_ntt,
    intt,
    naive_cyclic_convolution,
    ntt,
    ntt_dif_natural_input,
    ntt_dit_bitrev_input,
    recursive_ntt,
)
from .twiddle import (
    TwiddleGenerator,
    TwiddleTable,
    lane_twiddles,
    stage_step,
    twiddle_exponent,
)
from .variants import four_step_ntt, pease_ntt, shuffle_stage_count, stockham_ntt

__all__ = [
    "bluestein_intt",
    "bluestein_ntt",
    "naive_dft",
    "IncompleteNttParams",
    "incomplete_basemul",
    "incomplete_intt",
    "incomplete_ntt",
    "block_zeta",
    "block_zeta_exponent",
    "merged_negacyclic_intt",
    "merged_negacyclic_ntt",
    "merged_pointwise_multiply",
    "Butterfly",
    "all_butterflies",
    "independent_blocks",
    "stage_butterflies",
    "NegacyclicParams",
    "naive_negacyclic_convolution",
    "negacyclic_convolution",
    "negacyclic_intt",
    "negacyclic_ntt",
    "psi_power_table",
    "Polynomial",
    "cyclic_convolution",
    "direct_ntt",
    "intt",
    "naive_cyclic_convolution",
    "ntt",
    "ntt_dif_natural_input",
    "ntt_dit_bitrev_input",
    "recursive_ntt",
    "TwiddleGenerator",
    "TwiddleTable",
    "lane_twiddles",
    "stage_step",
    "twiddle_exponent",
    "four_step_ntt",
    "pease_ntt",
    "shuffle_stage_count",
    "stockham_ntt",
]
