"""Negacyclic NTT for the FHE ring ``R_q = Z_q[X]/(X^N + 1)`` (Sec. II.B).

Multiplication in ``R_q`` is a *negacyclic* convolution.  With a ``2N``-th
root of unity ``psi`` (``psi^2 = omega``), pre-scaling coefficient ``i``
by ``psi^i`` turns it into the cyclic case handled by the plain NTT:

    NegaNTT(a)   = NTT(psi^i * a_i)
    NegaINTT(A)  = psi^{-i} * INTT(A)_i
    a *_nega b   = NegaINTT(NegaNTT(a) ⊙ NegaNTT(b))
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from ..arith.modmath import mod_inverse, mod_mul_vec, mod_pow
from ..arith.roots import NttParams, is_primitive_root_of_unity, root_of_unity
from .reference import intt, ntt

__all__ = [
    "NegacyclicParams",
    "psi_power_table",
    "negacyclic_ntt",
    "negacyclic_intt",
    "negacyclic_convolution",
    "naive_negacyclic_convolution",
]


class NegacyclicParams:
    """(N, q, psi) with ``psi`` a primitive 2N-th root; ``omega = psi^2``."""

    def __init__(self, n: int, q: int, psi: int | None = None):
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"q={q} does not support length-{n} negacyclic NTT")
        self.n = n
        self.q = q
        self.psi = root_of_unity(2 * n, q) if psi is None else psi % q
        if not is_primitive_root_of_unity(self.psi, 2 * n, q):
            raise ValueError(f"psi={psi} is not a primitive {2 * n}-th root mod {q}")
        self.psi_inv = mod_inverse(self.psi, q)
        self.cyclic = NttParams(n, q, mod_pow(self.psi, 2, q))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NegacyclicParams(n={self.n}, q={self.q}, psi={self.psi})"


@lru_cache(maxsize=64)
def psi_power_table(base: int, n: int, q: int) -> Tuple[int, ...]:
    """``(base^0, base^1, ..., base^(n-1)) mod q`` — the pre/post scaling
    vector of the decomposed negacyclic transform, computed once per
    ``(base, n, q)`` instead of once per call."""
    powers = [1] * n
    for i in range(1, n):
        powers[i] = (powers[i - 1] * base) % q
    return tuple(powers)


def negacyclic_ntt(values: Sequence[int], params: NegacyclicParams) -> List[int]:
    """Forward negacyclic transform (psi pre-scaling + cyclic NTT)."""
    q = params.q
    scaled = mod_mul_vec(values, psi_power_table(params.psi, params.n, q), q)
    return ntt(scaled, params.cyclic)


def negacyclic_intt(values: Sequence[int], params: NegacyclicParams) -> List[int]:
    """Inverse negacyclic transform (cyclic INTT + psi^{-i} post-scaling)."""
    q = params.q
    raw = intt(values, params.cyclic)
    return mod_mul_vec(raw, psi_power_table(params.psi_inv, params.n, q), q)


def negacyclic_convolution(a: Sequence[int], b: Sequence[int],
                           params: NegacyclicParams) -> List[int]:
    """Product in ``Z_q[X]/(X^N+1)`` via the transform (Eq. 1 of the paper)."""
    fa = negacyclic_ntt(a, params)
    fb = negacyclic_ntt(b, params)
    prod = [(x * y) % params.q for x, y in zip(fa, fb)]
    return negacyclic_intt(prod, params)


def naive_negacyclic_convolution(a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
    """Schoolbook product with ``X^N = -1`` reduction, for verification."""
    n = len(a)
    if len(b) != n:
        raise ValueError(f"length mismatch: {n} vs {len(b)}")
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] = (out[k] + a[i] * b[j]) % q
            else:
                out[k - n] = (out[k - n] - a[i] * b[j]) % q
    return out
