"""Butterfly-level dataflow graph of the DIT NTT network (paper Fig. 3).

The memory controller's mapping algorithm (Sec. IV.B) is described as
dividing the NTT's dataflow graph (DFG) stage-wise (horizontally) or
data-wise (vertically).  This module materializes that DFG so the mapper
and the tests can reason about it explicitly: which words each butterfly
touches, which twiddle it needs, and how stages partition into
independent blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..arith.bitrev import is_power_of_two
from .twiddle import twiddle_exponent

__all__ = ["Butterfly", "stage_butterflies", "all_butterflies", "independent_blocks"]


@dataclass(frozen=True)
class Butterfly:
    """One BU operation: word indices of its two operands and its twiddle.

    ``index_a`` is the '+' leg (bit ``stage-1`` clear), ``index_b`` the
    '×ω' leg.  ``twiddle_exp`` is the exponent of ``omega_N``.
    """

    stage: int
    index_a: int
    index_b: int
    twiddle_exp: int

    @property
    def stride(self) -> int:
        """Distance between the operands, ``2^(stage-1)``."""
        return self.index_b - self.index_a


def stage_butterflies(n: int, stage: int) -> Iterator[Butterfly]:
    """Yield the ``N/2`` butterflies of one stage in scan order
    (j inner, block outer — the order Algorithms 1-2 walk)."""
    if not is_power_of_two(n):
        raise ValueError(f"N must be a power of two, got {n}")
    log_n = n.bit_length() - 1
    if not 1 <= stage <= log_n:
        raise ValueError(f"stage {stage} outside [1, {log_n}]")
    m = 1 << (stage - 1)
    for k in range(0, n, 2 * m):
        for j in range(m):
            yield Butterfly(stage, k + j, k + j + m, twiddle_exponent(n, stage, j))


def all_butterflies(n: int) -> Iterator[Butterfly]:
    """Every butterfly of the full network, stage by stage."""
    log_n = n.bit_length() - 1
    for stage in range(1, log_n + 1):
        yield from stage_butterflies(n, stage)


def independent_blocks(n: int, block: int) -> List[range]:
    """Vertical partition of the first ``log block`` stages (Sec. III.A).

    Returns the ``N/block`` word ranges; all butterflies of stages
    ``1..log block`` stay within a single range (tests assert this),
    which is why one row activation suffices per block.
    """
    if not is_power_of_two(n) or not is_power_of_two(block):
        raise ValueError("N and block must be powers of two")
    if block > n:
        raise ValueError(f"block {block} exceeds N {n}")
    return [range(start, start + block) for start in range(0, n, block)]
