"""Alternative parallel NTT algorithms discussed in Sec. II.B.

The paper argues that Pease (constant geometry) and Stockham
(self-sorting) networks, while attractive for ASIC/FPGA, need ``log N``
shuffling stages and therefore fit DRAM-PIM poorly compared to recursive
Cooley-Tukey.  We implement all three so the claim is testable: the
functional results agree, and :func:`shuffle_stage_count` exposes the
structural difference the argument rests on.

Also includes the four-step (Bailey) decomposition used by cache-blocked
CPU libraries — the software baseline's large-N strategy.
"""

from __future__ import annotations

from typing import List, Sequence

from ..arith.bitrev import bit_reverse, is_power_of_two
from ..arith.modmath import mod_pow
from ..arith.roots import NttParams
from .reference import ntt as _reference_ntt

__all__ = ["pease_ntt", "stockham_ntt", "four_step_ntt", "shuffle_stage_count"]


def pease_ntt(values: Sequence[int], params: NttParams) -> List[int]:
    """Pease constant-geometry NTT (natural input, natural output).

    Every stage reads slot pairs ``(i, i + N/2)`` and writes results to
    ``(2i, 2i+1)`` — identical interconnect each stage, at the price of a
    full data shuffle per stage.  Implemented as a DIF network with the
    perfect-shuffle tracked explicitly, so correctness follows from the
    DIF semantics (and is asserted via the pairing invariant).
    """
    n, q, omega = params.n, params.q, params.omega
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    data = [v % q for v in values]
    # pos[slot] = index in the DIF array held by this slot.
    pos = list(range(n))
    log_n = params.log_n
    half = n // 2
    for s in range(log_n, 0, -1):
        m = 1 << (s - 1)
        w_step_exp = n >> s
        new_data = [0] * n
        new_pos = [0] * n
        for i in range(half):
            p_lo, p_hi = pos[i], pos[i + half]
            if p_hi != p_lo + m:  # pairing invariant of constant geometry
                raise AssertionError(
                    f"constant-geometry invariant broken at stage {s}: {p_lo}, {p_hi}")
            j = p_lo % m if m > 1 else 0
            w = mod_pow(omega, j * w_step_exp, q)
            a, b = data[i], data[i + half]
            new_data[2 * i] = (a + b) % q
            new_data[2 * i + 1] = ((a - b) * w) % q
            new_pos[2 * i] = p_lo
            new_pos[2 * i + 1] = p_hi
        data, pos = new_data, new_pos
    # DIF output at array index p is A[bit_reverse(p)].
    out = [0] * n
    bits = log_n
    for slot in range(n):
        out[bit_reverse(pos[slot], bits)] = data[slot]
    return out


def stockham_ntt(values: Sequence[int], params: NttParams) -> List[int]:
    """Stockham self-sorting NTT (natural input, natural output).

    Radix-2 DIF Stockham: no explicit bit-reversal, but ping-pong buffers
    and a stride that doubles each stage — the 'self-sorting' behaviour
    the paper contrasts with Cooley-Tukey.
    """
    n, q = params.n, params.q
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    x = [v % q for v in values]
    y = [0] * n
    _stockham_step(n, 1, False, x, y, params.omega, q)
    return x


def _stockham_step(n: int, stride: int, out_in_y: bool,
                   x: List[int], y: List[int], omega: int, q: int) -> None:
    """One recursion level: transform length ``n`` at ``stride`` copies."""
    if n == 1:
        if out_in_y:
            for i in range(stride):
                y[i] = x[i]
        return
    m = n // 2
    w = 1
    for p in range(m):
        for s in range(stride):
            a = x[stride * p + s]
            b = x[stride * (p + m) + s]
            y[stride * 2 * p + s] = (a + b) % q
            y[stride * (2 * p + 1) + s] = ((a - b) * w) % q
        w = (w * omega) % q
    _stockham_step(m, 2 * stride, not out_in_y, y, x, (omega * omega) % q, q)


def four_step_ntt(values: Sequence[int], params: NttParams,
                  n1: int | None = None) -> List[int]:
    """Bailey four-step NTT: column transforms, twiddle scale, row
    transforms, index transpose.  ``n1 * n2 = N`` with ``n1`` columns."""
    n, q, omega = params.n, params.q, params.omega
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    if n1 is None:
        n1 = 1 << (params.log_n // 2)
    if not is_power_of_two(n1) or n % n1:
        raise ValueError(f"n1={n1} must be a power-of-two divisor of {n}")
    n2 = n // n1
    if n1 == 1 or n2 == 1:
        return _reference_ntt(values, params)
    x = [v % q for v in values]
    params_n2 = NttParams(n2, q, mod_pow(omega, n1, q))
    params_n1 = NttParams(n1, q, mod_pow(omega, n2, q))
    # Step 1: size-n2 transform of each column k1 (elements k1 + n1*k2).
    cols = []
    for k1 in range(n1):
        col = [x[k1 + n1 * k2] for k2 in range(n2)]
        cols.append(_reference_ntt(col, params_n2))
    # Step 2: twiddle scaling by omega^(k1 * j2).
    for k1 in range(n1):
        for j2 in range(n2):
            cols[k1][j2] = (cols[k1][j2] * mod_pow(omega, k1 * j2, q)) % q
    # Step 3: size-n1 transform across columns for each j2.
    out = [0] * n
    for j2 in range(n2):
        row = [cols[k1][j2] for k1 in range(n1)]
        row = _reference_ntt(row, params_n1)
        # Step 4: transpose — output index j2 + n2*j1.
        for j1 in range(n1):
            out[j2 + n2 * j1] = row[j1]
    return out


def shuffle_stage_count(algorithm: str, n: int) -> int:
    """Number of whole-array data-movement stages each algorithm needs —
    the quantity behind the paper's 'more frequent interactions with CPU'
    argument against Pease/Stockham on PIM."""
    if not is_power_of_two(n):
        raise ValueError(f"N must be a power of two, got {n}")
    log_n = n.bit_length() - 1
    counts = {
        "cooley-tukey": 1,        # single bit-reversal (done on the host)
        "pease": log_n,           # perfect shuffle every stage
        "stockham": log_n,        # ping-pong copy every stage
        "four-step": 3,           # transpose-ish passes
    }
    try:
        return counts[algorithm]
    except KeyError:
        raise ValueError(f"unknown algorithm {algorithm!r}") from None
