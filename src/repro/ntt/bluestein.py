"""Bluestein's algorithm: NTT of *arbitrary* length via convolution.

The paper's designs (and ours) natively support power-of-two lengths.
Bluestein's chirp-z trick lifts a length-M transform (any M) onto a
length-2^k cyclic convolution — meaning the PIM's power-of-two NTT can
serve arbitrary-length transforms too.  Requirements on the modulus:
a primitive 2M-th root (for the chirp) and a power-of-two root for the
helper convolution, i.e. ``lcm(2M, 2^k) | q - 1``.

    A[j] = chirp(j) * sum_k a[k] chirp(k) * w^{-(j-k)^2/2 ...}

Implemented with exact integer arithmetic over Z_q.
"""

from __future__ import annotations

from typing import List, Sequence

from ..arith.modmath import mod_inverse, mod_pow
from ..arith.roots import NttParams, root_of_unity
from .reference import cyclic_convolution

__all__ = ["bluestein_ntt", "bluestein_intt", "naive_dft"]


def _next_power_of_two(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def naive_dft(values: Sequence[int], omega: int, q: int) -> List[int]:
    """Direct O(M^2) DFT with an arbitrary-order root — ground truth."""
    m = len(values)
    out = []
    for j in range(m):
        acc = 0
        for k in range(m):
            acc = (acc + values[k] * mod_pow(omega, j * k, q)) % q
        out.append(acc)
    return out


def bluestein_ntt(values: Sequence[int], q: int,
                  omega: int | None = None) -> List[int]:
    """Length-M DFT over Z_q for any M >= 1 via chirp-z.

    ``omega`` (a primitive M-th root) is derived from q when omitted.
    Raises :class:`ValueError` when q cannot support the transform.
    """
    m = len(values)
    if m == 0:
        raise ValueError("empty input")
    if m == 1:
        return [values[0] % q]
    if omega is None:
        omega = root_of_unity(m, q)
    # Chirp needs half-integer exponents k^2/2: use a 2M-th root.
    if (q - 1) % (2 * m) != 0:
        raise ValueError(f"q={q} lacks a 2*{m}-th root for the chirp")
    psi = root_of_unity(2 * m, q)
    if mod_pow(psi, 2, q) != omega % q:
        # Align psi so psi^2 == omega (both primitive; some power works).
        for e in range(1, 2 * m, 2):
            cand = mod_pow(psi, e, q)
            if mod_pow(cand, 2, q) == omega % q:
                psi = cand
                break
        else:
            raise ValueError("could not align chirp root with omega")

    size = _next_power_of_two(2 * m - 1)
    if (q - 1) % size != 0:
        raise ValueError(
            f"q={q} lacks a {size}-th root for the helper convolution")
    helper = NttParams(size, q)

    # a_k = x_k * psi^(k^2);  b_k = psi^(-k^2) (symmetric chirp kernel).
    psi_inv = mod_inverse(psi, q)
    a = [0] * size
    b = [0] * size
    for k in range(m):
        a[k] = (values[k] % q) * mod_pow(psi, k * k, q) % q
        chirp = mod_pow(psi_inv, k * k, q)
        b[k] = chirp
        if k:
            b[size - k] = chirp  # negative indices wrap in the cyclic helper
    conv = cyclic_convolution(a, b, helper)
    return [(mod_pow(psi, j * j, q) * conv[j]) % q for j in range(m)]


def bluestein_intt(values: Sequence[int], q: int,
                   omega: int | None = None) -> List[int]:
    """Inverse of :func:`bluestein_ntt` (1/M-scaled, inverse root)."""
    m = len(values)
    if omega is None:
        omega = root_of_unity(m, q)
    raw = bluestein_ntt(values, q, mod_inverse(omega, q))
    m_inv = mod_inverse(m, q)
    return [(v * m_inv) % q for v in raw]
