"""Merged-psi ("fully merged") negacyclic NTT kernels.

:mod:`repro.ntt.negacyclic` computes the negacyclic transform as
psi-prescale + cyclic NTT — the decomposition the paper's host protocol
implies.  Production lattice crypto (NewHope, Kyber, SEAL) instead
*merges* the psi powers into the twiddles, giving a transform that

* takes **natural-order** input (no host bit-reversal pass),
* uses a **constant twiddle per butterfly block** (``zeta = psi^brev(k)``),
  which the PIM's two-parameter TFG realizes as the degenerate geometric
  sequence ``(omega0 = zeta, r_omega = 1)``, and
* produces output in the standard "NTT domain order" where pointwise
  multiplication is valid directly.

The forward network runs Cooley-Tukey butterflies with *decreasing*
stride; the inverse runs Gentleman-Sande butterflies with increasing
stride and a final 1/N scale.  These kernels are the golden model for
the native negacyclic PIM mapping (:mod:`repro.mapping.negacyclic_mapper`).
"""

from __future__ import annotations

from typing import List, Sequence

from ..arith import vector
from ..arith.bitrev import bit_reverse
from ..arith.modmath import mod_inverse, mod_mul_vec, mod_pow
from .negacyclic import NegacyclicParams

__all__ = [
    "block_zeta_exponent",
    "block_zeta",
    "merged_negacyclic_ntt",
    "merged_negacyclic_intt",
    "merged_pointwise_multiply",
]


def block_zeta_exponent(n: int, length: int, start: int) -> int:
    """Exponent of psi for the block at (stride ``length``, offset
    ``start``): ``brev(N/2L + start/2L)`` over log N bits."""
    if length < 1 or n % (2 * length):
        raise ValueError(f"invalid stride {length} for N={n}")
    if start % (2 * length):
        raise ValueError(f"start {start} not aligned to 2*{length}")
    log_n = n.bit_length() - 1
    node = n // (2 * length) + start // (2 * length)
    return bit_reverse(node, log_n)


def block_zeta(params: NegacyclicParams, length: int, start: int) -> int:
    """The constant twiddle of one butterfly block."""
    return mod_pow(params.psi,
                   block_zeta_exponent(params.n, length, start), params.q)


def merged_negacyclic_ntt(values: Sequence[int],
                          params: NegacyclicParams) -> List[int]:
    """Forward merged transform: natural-order input, NTT-domain output.

    CT butterfly ``(a + zeta*b, a - zeta*b)`` with stride halving each
    stage; one zeta per block.
    """
    n, q = params.n, params.q
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    if vector.numpy_active(q):
        return vector.merged_negacyclic_forward(values, n, q, params.psi)
    x = [v % q for v in values]
    length = n // 2
    while length >= 1:
        for start in range(0, n, 2 * length):
            zeta = block_zeta(params, length, start)
            for j in range(start, start + length):
                t = (zeta * x[j + length]) % q
                x[j + length] = (x[j] - t) % q
                x[j] = (x[j] + t) % q
        length >>= 1
    return x


def merged_negacyclic_intt(values: Sequence[int],
                           params: NegacyclicParams) -> List[int]:
    """Inverse merged transform: NTT-domain input, natural-order output.

    GS butterfly ``(a + b, (a - b) * zeta^-1)`` with stride doubling,
    using each block's inverse zeta, then a 1/N scale.
    """
    n, q = params.n, params.q
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    if vector.numpy_active(q):
        return vector.merged_negacyclic_inverse(values, n, q, params.psi)
    x = [v % q for v in values]
    psi_inv = params.psi_inv
    length = 1
    while length < n:
        for start in range(0, n, 2 * length):
            exp = block_zeta_exponent(n, length, start)
            zeta_inv = mod_pow(psi_inv, exp, q)
            for j in range(start, start + length):
                a, b = x[j], x[j + length]
                x[j] = (a + b) % q
                x[j + length] = ((a - b) * zeta_inv) % q
        length <<= 1
    n_inv = mod_inverse(n, q)
    return [(v * n_inv) % q for v in x]


def merged_pointwise_multiply(a_hat: Sequence[int], b_hat: Sequence[int],
                              params: NegacyclicParams) -> List[int]:
    """Pointwise product in the merged NTT domain (full transform, so
    plain lane-wise multiplication — no base-case folding needed)."""
    if len(a_hat) != params.n or len(b_hat) != params.n:
        raise ValueError("operands must be full NTT-domain vectors")
    return mod_mul_vec(a_hat, b_hat, params.q)
