"""Twiddle-factor generation.

The paper generates twiddle factors on the fly (Sec. IV.A, after Aysu et
al. [21]) so that the full memory bandwidth serves polynomial data.  The
hardware TFG is a multiply-accumulate register seeded with two scalars
``(omega0, r_omega)``; each butterfly lane consumes the current value and
the register is multiplied by ``r_omega``.

:class:`TwiddleGenerator` models that register.  The module also provides
the *software side*: the formulas the memory controller uses to derive
``(omega0, r_omega)`` for each C1/C2 command (see
:mod:`repro.mapping.twiddle_params`), and a precomputed table for the
software baselines.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from ..arith.modmath import mod_mul, mod_pow
from ..arith.roots import NttParams

__all__ = [
    "TwiddleGenerator",
    "TwiddleTable",
    "stage_step",
    "lane_twiddles",
    "twiddle_exponent",
]


class TwiddleGenerator:
    """On-the-fly geometric twiddle sequence ``omega0 * r_omega^t``.

    The hardware equivalent is a single modular multiplier and a hold
    register inside the CU (the ``TFG`` block of Fig. 2); parameters are
    delivered via the global buffer as 16-bit chunks (Sec. IV.A).
    """

    def __init__(self, omega0: int, r_omega: int, q: int):
        if q <= 1:
            raise ValueError(f"modulus must exceed 1, got {q}")
        self.q = q
        self.omega0 = omega0 % q
        self.r_omega = r_omega % q
        self._current = self.omega0
        self.count = 0  # how many twiddles were consumed (for stats)

    def next(self) -> int:
        """Consume and return the next twiddle."""
        value = self._current
        self._current = mod_mul(self._current, self.r_omega, self.q)
        self.count += 1
        return value

    def peek(self) -> int:
        """Current twiddle without consuming it."""
        return self._current

    def reset(self, omega0: int | None = None, r_omega: int | None = None) -> None:
        """Reload the generator (a parameter write in hardware)."""
        if omega0 is not None:
            self.omega0 = omega0 % self.q
        if r_omega is not None:
            self.r_omega = r_omega % self.q
        self._current = self.omega0

    def take(self, count: int) -> List[int]:
        """Consume ``count`` twiddles (one vectorized C2's worth)."""
        return [self.next() for _ in range(count)]


def stage_step(params: NttParams, stage: int) -> int:
    """Lane-to-lane twiddle ratio at DIT stage ``stage``: ``omega^(N/2^s)``."""
    if not 1 <= stage <= params.log_n:
        raise ValueError(f"stage {stage} outside [1, {params.log_n}]")
    return mod_pow(params.omega, params.n >> stage, params.q)


def twiddle_exponent(n: int, stage: int, j: int) -> int:
    """Exponent of ``omega`` for lane ``j`` of a stage-``stage`` butterfly."""
    m = 1 << (stage - 1)
    if not 0 <= j < m:
        raise ValueError(f"lane {j} outside [0, {m})")
    return j * (n >> stage)


def lane_twiddles(params: NttParams, stage: int, j_start: int, count: int) -> List[int]:
    """Twiddles for lanes ``j_start .. j_start+count`` of one stage.

    This is what a single C2 command consumes: a geometric run starting
    at ``omega^(j_start * N/2^s)`` with ratio :func:`stage_step`.
    """
    step = stage_step(params, stage)
    first = mod_pow(params.omega, twiddle_exponent(params.n, stage, j_start), params.q)
    gen = TwiddleGenerator(first, step, params.q)
    return gen.take(count)


@lru_cache(maxsize=128)
def _power_run(n: int, q: int, omega: int) -> Tuple[int, ...]:
    """The geometric run ``omega^i mod q`` for ``i in [0, n)``, shared by
    every table instance with the same ``(n, q, omega)``."""
    powers = [1] * n
    for i in range(1, n):
        powers[i] = (powers[i - 1] * omega) % q
    return tuple(powers)


class TwiddleTable:
    """Fully precomputed twiddles, as a software library (or FPGA with
    BRAM-resident tables) would hold them.  Used by the CPU baseline.

    The underlying power run is memoized on ``(n, q, omega)``, so
    constructing many tables for the same transform (one per repetition
    of a sweep) costs one table's worth of multiplies in total.
    """

    def __init__(self, params: NttParams):
        self.params = params
        self.powers: Tuple[int, ...] = _power_run(params.n, params.q,
                                                  params.omega)

    def power(self, exponent: int) -> int:
        """``omega^exponent`` via table lookup."""
        return self.powers[exponent % self.params.n]

    def stage_lane(self, stage: int, j: int) -> int:
        """Twiddle for lane ``j`` of stage ``stage``."""
        return self.power(twiddle_exponent(self.params.n, stage, j))
