"""Incomplete (truncated) negacyclic NTT — Kyber's trick, generalized.

A *full* negacyclic NTT needs a 2N-th root of unity (``2N | q - 1``).
When the modulus has less 2-adicity (e.g. Kyber's q = 3329 with
q - 1 = 2^8 * 13), one stops the transform ``d`` stages early: the ring
factors into N/2^d quadratic-or-larger polynomials ``X^k - zeta`` and
"pointwise" multiplication becomes small schoolbook products per slot.

This extends the PIM story: the truncated stages are exactly the *last*
(smallest-stride) stages, i.e. the intra-atom work — an incomplete
transform simply ends before (or partway through) C1N, and the base-case
products are short vector ops the CU can also host.
"""

from __future__ import annotations

from typing import List, Sequence

from ..arith.modmath import mod_inverse, mod_pow
from ..arith.roots import is_primitive_root_of_unity, root_of_unity
from .merged import block_zeta_exponent

__all__ = ["IncompleteNttParams", "incomplete_ntt", "incomplete_intt",
           "incomplete_basemul"]


class IncompleteNttParams:
    """(N, q, depth): transform stopping after ``log N - log depth``
    stages, leaving slots of ``depth`` coefficients.

    Requires a primitive ``2N/depth``-th root of unity; ``depth = 1``
    recovers the full merged transform.
    """

    def __init__(self, n: int, q: int, depth: int):
        if n < 2 or n & (n - 1):
            raise ValueError(f"N must be a power of two, got {n}")
        if depth < 1 or depth & (depth - 1) or depth > n // 2:
            raise ValueError(f"depth must be a power of two <= N/2, got {depth}")
        order = 2 * n // depth
        if (q - 1) % order != 0:
            raise ValueError(
                f"q={q} lacks a primitive {order}-th root (depth {depth})")
        self.n = n
        self.q = q
        self.depth = depth
        #: psi plays the role of the 2N-th root of the *virtual* full
        #: transform: exponents are always multiples of depth, so only
        #: psi^depth (an order-2N/depth element) need exist.
        self.psi_effective = root_of_unity(order, q)
        assert is_primitive_root_of_unity(self.psi_effective, order, q)

    def _zeta(self, length: int, start: int, invert: bool = False) -> int:
        exp = block_zeta_exponent(self.n, length, start)
        if exp % self.depth:
            raise AssertionError("truncated stage touched a deep zeta")
        root = (mod_inverse(self.psi_effective, self.q) if invert
                else self.psi_effective)
        return mod_pow(root, exp // self.depth, self.q)

    def slot_zeta(self, slot: int) -> int:
        """The ``X^depth = zeta`` constant of base-case slot ``slot``.

        Adjacent slots share a magnitude with opposite signs: the last
        executed stage split ``X^2d - z^2`` into ``X^d - z`` (even slot)
        and ``X^d + z`` (odd slot) — Kyber's ``±zetas[64+i]`` pattern.
        """
        base = self._zeta(self.depth, (slot // 2) * 2 * self.depth)
        return base if slot % 2 == 0 else (self.q - base) % self.q


def incomplete_ntt(values: Sequence[int],
                   params: IncompleteNttParams) -> List[int]:
    """Forward truncated transform: stops once blocks reach ``depth``."""
    n, q = params.n, params.q
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    x = [v % q for v in values]
    length = n // 2
    while length >= params.depth:
        for start in range(0, n, 2 * length):
            zeta = params._zeta(length, start)
            for j in range(start, start + length):
                t = (zeta * x[j + length]) % q
                x[j + length] = (x[j] - t) % q
                x[j] = (x[j] + t) % q
        length >>= 1
    return x


def incomplete_intt(values: Sequence[int],
                    params: IncompleteNttParams) -> List[int]:
    """Inverse truncated transform with the (N/depth)^-1 scale."""
    n, q = params.n, params.q
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    x = [v % q for v in values]
    length = params.depth
    while length < n:
        for start in range(0, n, 2 * length):
            zeta_inv = params._zeta(length, start, invert=True)
            for j in range(start, start + length):
                a, b = x[j], x[j + length]
                x[j] = (a + b) % q
                x[j + length] = ((a - b) * zeta_inv) % q
        length <<= 1
    scale = mod_inverse(n // params.depth, q)
    return [(v * scale) % q for v in x]


def incomplete_basemul(a_hat: Sequence[int], b_hat: Sequence[int],
                       params: IncompleteNttParams) -> List[int]:
    """Slot-wise product: schoolbook multiply in ``Z_q[X]/(X^d - zeta)``
    per slot (Kyber's basemul, generalized to any depth)."""
    n, q, d = params.n, params.q, params.depth
    if len(a_hat) != n or len(b_hat) != n:
        raise ValueError("operands must be full transform-domain vectors")
    out = [0] * n
    for slot in range(n // d):
        zeta = params.slot_zeta(slot)
        base = slot * d
        for i in range(d):
            for j in range(d):
                prod = a_hat[base + i] * b_hat[base + j] % q
                k = i + j
                if k < d:
                    out[base + k] = (out[base + k] + prod) % q
                else:
                    out[base + k - d] = (out[base + k - d]
                                         + prod * zeta) % q
    return out
