"""Polynomials over ``R_q = Z_q[X]/(X^N + 1)`` — the FHE data type.

A thin, explicit wrapper: coefficients are a list of ints in ``[0, q)``;
multiplication goes through the negacyclic NTT (with a schoolbook path
for cross-checking).  The FHE layer (:mod:`repro.fhe`) builds ciphertexts
out of these.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .negacyclic import (
    NegacyclicParams,
    naive_negacyclic_convolution,
    negacyclic_convolution,
)

__all__ = ["Polynomial"]


class Polynomial:
    """Element of ``Z_q[X]/(X^N + 1)``."""

    def __init__(self, coefficients: Sequence[int], params: NegacyclicParams):
        if len(coefficients) != params.n:
            raise ValueError(
                f"expected {params.n} coefficients, got {len(coefficients)}")
        self.params = params
        self.coefficients: List[int] = [c % params.q for c in coefficients]

    # -- constructors -----------------------------------------------------
    @classmethod
    def zero(cls, params: NegacyclicParams) -> "Polynomial":
        """The additive identity."""
        return cls([0] * params.n, params)

    @classmethod
    def one(cls, params: NegacyclicParams) -> "Polynomial":
        """The multiplicative identity."""
        return cls([1] + [0] * (params.n - 1), params)

    @classmethod
    def monomial(cls, degree: int, params: NegacyclicParams,
                 coefficient: int = 1) -> "Polynomial":
        """``coefficient * X^degree`` (degree reduced mod 2N with sign)."""
        degree %= 2 * params.n
        sign = 1
        if degree >= params.n:
            degree -= params.n
            sign = -1
        coeffs = [0] * params.n
        coeffs[degree] = (sign * coefficient) % params.q
        return cls(coeffs, params)

    @classmethod
    def random_uniform(cls, params: NegacyclicParams,
                       rng: random.Random | None = None) -> "Polynomial":
        """Uniformly random element (used for RLWE public randomness)."""
        rng = rng or random
        return cls([rng.randrange(params.q) for _ in range(params.n)], params)

    @classmethod
    def random_ternary(cls, params: NegacyclicParams,
                       rng: random.Random | None = None) -> "Polynomial":
        """Coefficients in {-1, 0, 1} (typical RLWE secret distribution)."""
        rng = rng or random
        return cls([rng.choice((-1, 0, 1)) for _ in range(params.n)], params)

    @classmethod
    def random_noise(cls, params: NegacyclicParams, bound: int = 3,
                     rng: random.Random | None = None) -> "Polynomial":
        """Small bounded noise, stand-in for a discrete Gaussian."""
        rng = rng or random
        return cls([rng.randint(-bound, bound) for _ in range(params.n)], params)

    # -- ring operations ---------------------------------------------------
    def _check_compatible(self, other: "Polynomial") -> None:
        if self.params.n != other.params.n or self.params.q != other.params.q:
            raise ValueError("polynomials come from different rings")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        q = self.params.q
        return Polynomial(
            [(a + b) % q for a, b in zip(self.coefficients, other.coefficients)],
            self.params)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        q = self.params.q
        return Polynomial(
            [(a - b) % q for a, b in zip(self.coefficients, other.coefficients)],
            self.params)

    def __neg__(self) -> "Polynomial":
        q = self.params.q
        return Polynomial([(-a) % q for a in self.coefficients], self.params)

    def __mul__(self, other):
        if isinstance(other, int):
            return self.scalar_mul(other)
        self._check_compatible(other)
        return Polynomial(
            negacyclic_convolution(self.coefficients, other.coefficients,
                                   self.params),
            self.params)

    __rmul__ = __mul__

    def scalar_mul(self, scalar: int) -> "Polynomial":
        """Multiply every coefficient by an integer scalar."""
        q = self.params.q
        return Polynomial([(scalar * a) % q for a in self.coefficients], self.params)

    def mul_schoolbook(self, other: "Polynomial") -> "Polynomial":
        """O(N²) product — the verification path for ``__mul__``."""
        self._check_compatible(other)
        return Polynomial(
            naive_negacyclic_convolution(self.coefficients, other.coefficients,
                                         self.params.q),
            self.params)

    # -- comparisons / utilities -------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return (self.params.n == other.params.n
                and self.params.q == other.params.q
                and self.coefficients == other.coefficients)

    def __hash__(self):  # pragma: no cover - polynomials are not dict keys
        return hash((self.params.n, self.params.q, tuple(self.coefficients)))

    def centered(self) -> List[int]:
        """Coefficients lifted to ``(-q/2, q/2]`` — used for decoding."""
        q = self.params.q
        return [c - q if c > q // 2 else c for c in self.coefficients]

    def infinity_norm(self) -> int:
        """Max absolute centered coefficient (noise-budget measurements)."""
        return max((abs(c) for c in self.centered()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = ", ".join(str(c) for c in self.coefficients[:4])
        return f"Polynomial(n={self.params.n}, q={self.params.q}, [{head}, ...])"
