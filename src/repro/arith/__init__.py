"""Modular-arithmetic substrate: the BU's math, parameter generation.

Public surface re-exported for convenience::

    from repro.arith import mod_mul, MontgomeryContext, find_ntt_prime, NttParams
"""

from .barrett import BarrettContext, barrett_reduce
from .bitrev import (
    bit_reverse,
    bit_reverse_indices,
    bit_reverse_permute,
    is_power_of_two,
)
from .modmath import (
    egcd,
    is_unit,
    mod_add,
    mod_add_vec,
    mod_inverse,
    mod_mul,
    mod_mul_vec,
    mod_neg,
    mod_pow,
    mod_scale_vec,
    mod_sub,
    mod_sub_vec,
)
from .montgomery import MontgomeryContext, montgomery_reduce
from .vector import (
    HAS_NUMPY,
    get_backend,
    set_backend,
    use_backend,
)
from .primes import (
    DEFAULT_PRIME_14,
    DEFAULT_PRIME_16,
    DEFAULT_PRIME_32,
    find_ntt_prime,
    is_prime,
    ntt_prime_candidates,
)
from .roots import (
    NttParams,
    factorize,
    inverse_root_of_unity,
    is_primitive_root_of_unity,
    primitive_root,
    root_of_unity,
)

__all__ = [
    "BarrettContext",
    "barrett_reduce",
    "bit_reverse",
    "bit_reverse_indices",
    "bit_reverse_permute",
    "is_power_of_two",
    "egcd",
    "is_unit",
    "mod_add",
    "mod_add_vec",
    "mod_inverse",
    "mod_mul",
    "mod_mul_vec",
    "mod_neg",
    "mod_pow",
    "mod_scale_vec",
    "mod_sub",
    "mod_sub_vec",
    "MontgomeryContext",
    "montgomery_reduce",
    "HAS_NUMPY",
    "get_backend",
    "set_backend",
    "use_backend",
    "DEFAULT_PRIME_14",
    "DEFAULT_PRIME_16",
    "DEFAULT_PRIME_32",
    "find_ntt_prime",
    "is_prime",
    "ntt_prime_candidates",
    "NttParams",
    "factorize",
    "inverse_root_of_unity",
    "is_primitive_root_of_unity",
    "primitive_root",
    "root_of_unity",
]
