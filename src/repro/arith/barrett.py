"""Barrett reduction — the standard alternative to Montgomery.

The paper's CU uses Montgomery reduction; Barrett is included both as an
independent check of the arithmetic layer and as the reduction used by
the software (x86) baseline model, where compilers typically emit
Barrett-style magic-number sequences.
"""

from __future__ import annotations

__all__ = ["BarrettContext", "barrett_reduce"]


class BarrettContext:
    """Precomputed Barrett constant ``mu = floor(4^k / q)`` for modulus ``q``."""

    def __init__(self, q: int):
        if q <= 1:
            raise ValueError(f"modulus must exceed 1, got {q}")
        self.q = q
        self.k = q.bit_length()
        self.mu = (1 << (2 * self.k)) // q

    def reduce(self, t: int) -> int:
        """Reduce ``t`` in ``[0, q^2]`` to ``t mod q`` without division."""
        if t < 0 or t > self.q * self.q:
            raise ValueError(f"Barrett input {t} outside [0, q^2]")
        approx = (t * self.mu) >> (2 * self.k)
        r = t - approx * self.q
        while r >= self.q:
            r -= self.q
        return r

    def mul(self, a: int, b: int) -> int:
        """Return ``(a * b) mod q`` using Barrett reduction."""
        return self.reduce((a % self.q) * (b % self.q))


def barrett_reduce(t: int, q: int) -> int:
    """One-shot Barrett reduction of ``t`` modulo ``q``."""
    return BarrettContext(q).reduce(t)
