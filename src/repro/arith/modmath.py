"""Elementary modular arithmetic.

These routines are the mathematical ground truth for the whole library.
The PIM compute unit (:mod:`repro.pim.cu`) performs the same operations
through the Montgomery datapath model (:mod:`repro.arith.montgomery`);
unit tests cross-check both against the functions defined here.

All functions operate on plain Python integers so they remain exact for
any modulus width (the paper targets 32-bit moduli, MeNTT 14/16-bit).
"""

from __future__ import annotations

from typing import Iterable, List

from . import vector

__all__ = [
    "mod_add",
    "mod_sub",
    "mod_mul",
    "mod_neg",
    "mod_pow",
    "mod_inverse",
    "egcd",
    "is_unit",
    "mod_add_vec",
    "mod_sub_vec",
    "mod_mul_vec",
    "mod_scale_vec",
]


def mod_add(a: int, b: int, q: int) -> int:
    """Return ``(a + b) mod q``."""
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    return (a + b) % q


def mod_sub(a: int, b: int, q: int) -> int:
    """Return ``(a - b) mod q`` (always in ``[0, q)``)."""
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    return (a - b) % q


def mod_mul(a: int, b: int, q: int) -> int:
    """Return ``(a * b) mod q``."""
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    return (a * b) % q


def mod_neg(a: int, q: int) -> int:
    """Return ``(-a) mod q``."""
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    return (-a) % q


def mod_pow(base: int, exponent: int, q: int) -> int:
    """Return ``base**exponent mod q``; negative exponents use the inverse."""
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    if exponent < 0:
        return pow(mod_inverse(base, q), -exponent, q)
    return pow(base, exponent, q)


def egcd(a: int, b: int):
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y = g = gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def mod_inverse(a: int, q: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``q``.

    Raises :class:`ValueError` when ``gcd(a, q) != 1``.
    """
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    g, x, _ = egcd(a % q, q)
    if g not in (1, -1):
        raise ValueError(f"{a} is not invertible modulo {q} (gcd={g})")
    if g == -1:
        x = -x
    return x % q


def is_unit(a: int, q: int) -> bool:
    """True when ``a`` is invertible modulo ``q``."""
    g, _, _ = egcd(a % q, q)
    return g in (1, -1)


def mod_add_vec(xs: Iterable[int], ys: Iterable[int], q: int) -> List[int]:
    """Element-wise modular addition of two equal-length sequences.

    Dispatches to the NumPy lane kernels (:mod:`repro.arith.vector`)
    when that backend is active; bit-exact either way.
    """
    xs, ys = list(xs), list(ys)
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    if vector.numpy_active(q):
        return vector.mod_add_list(xs, ys, q)
    return [mod_add(x, y, q) for x, y in zip(xs, ys)]


def mod_sub_vec(xs: Iterable[int], ys: Iterable[int], q: int) -> List[int]:
    """Element-wise modular subtraction of two equal-length sequences."""
    xs, ys = list(xs), list(ys)
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    if vector.numpy_active(q):
        return vector.mod_sub_list(xs, ys, q)
    return [mod_sub(x, y, q) for x, y in zip(xs, ys)]


def mod_mul_vec(xs: Iterable[int], ys: Iterable[int], q: int) -> List[int]:
    """Element-wise modular product of two equal-length sequences."""
    xs, ys = list(xs), list(ys)
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    if vector.numpy_active(q):
        return vector.mod_mul_list(xs, ys, q)
    return [mod_mul(x, y, q) for x, y in zip(xs, ys)]


def mod_scale_vec(xs: Iterable[int], c: int, q: int) -> List[int]:
    """``[(x * c) mod q]`` — the element-wise scalings (1/N, psi powers)
    that bracket every inverse/negacyclic transform."""
    xs = list(xs)
    if q <= 0:
        raise ValueError(f"modulus must be positive, got {q}")
    if vector.numpy_active(q):
        return vector.scale_list(xs, c, q)
    return [(x * c) % q for x in xs]
