"""Primitive roots of unity for NTT parameterization.

Given a prime ``q`` with ``N | q - 1``, the NTT needs a primitive ``N``-th
root of unity ``ω`` (``ω^N = 1`` and ``ω^(N/2) = -1``); the negacyclic
transform additionally needs a ``2N``-th root ``ψ`` with ``ψ^2 = ω``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from .modmath import mod_inverse, mod_pow
from .primes import is_prime

__all__ = [
    "factorize",
    "primitive_root",
    "root_of_unity",
    "inverse_root_of_unity",
    "is_primitive_root_of_unity",
    "NttParams",
]


def factorize(n: int) -> Dict[int, int]:
    """Trial-division factorization (fine for q-1 of crypto-sized primes,
    whose cofactors beyond the power of two are small by construction)."""
    if n < 1:
        raise ValueError(f"cannot factorize {n}")
    factors: Dict[int, int] = {}
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors[d] = factors.get(d, 0) + 1
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


@lru_cache(maxsize=1024)
def primitive_root(q: int) -> int:
    """Smallest generator of the multiplicative group of ``Z_q`` (q prime).

    Memoized: experiment sweeps re-derive parameters for the same handful
    of moduli thousands of times, and the search factorizes ``q - 1``.
    """
    if not is_prime(q):
        raise ValueError(f"{q} is not prime")
    if q == 2:
        return 1
    group = q - 1
    prime_factors: List[int] = list(factorize(group))
    for g in range(2, q):
        if all(mod_pow(g, group // p, q) != 1 for p in prime_factors):
            return g
    raise ArithmeticError(f"no primitive root found for {q}")  # pragma: no cover


@lru_cache(maxsize=1024)
def root_of_unity(order: int, q: int) -> int:
    """A primitive ``order``-th root of unity modulo prime ``q`` (memoized —
    a deterministic artifact of ``(order, q)``)."""
    if order < 1:
        raise ValueError(f"order must be positive, got {order}")
    if (q - 1) % order != 0:
        raise ValueError(f"no order-{order} root exists: {order} does not divide q-1={q - 1}")
    g = primitive_root(q)
    omega = mod_pow(g, (q - 1) // order, q)
    assert is_primitive_root_of_unity(omega, order, q)
    return omega


def inverse_root_of_unity(order: int, q: int) -> int:
    """The inverse of :func:`root_of_unity` (drives the inverse NTT)."""
    return mod_inverse(root_of_unity(order, q), q)


def is_primitive_root_of_unity(omega: int, order: int, q: int) -> bool:
    """Check ``omega^order = 1`` and ``omega^(order/p) != 1`` for prime ``p | order``."""
    if mod_pow(omega, order, q) != 1:
        return False
    return all(mod_pow(omega, order // p, q) != 1 for p in factorize(order))


class NttParams:
    """Bundle of (N, q, ω) — what the host passes to the PIM as "write data".

    The paper's host interface sends the NTT parameters in a write request
    (Sec. IV.A); this class is the software-side representation, including
    the derived inverse parameters for the inverse transform.
    """

    def __init__(self, n: int, q: int, omega: int | None = None):
        if n < 2 or n & (n - 1):
            raise ValueError(f"N must be a power of two >= 2, got {n}")
        if (q - 1) % n != 0:
            raise ValueError(f"q={q} does not support length-{n} NTT")
        self.n = n
        self.q = q
        self.log_n = n.bit_length() - 1
        self.omega = root_of_unity(n, q) if omega is None else omega % q
        if not is_primitive_root_of_unity(self.omega, n, q):
            raise ValueError(f"omega={omega} is not a primitive {n}-th root mod {q}")
        self.omega_inv = mod_inverse(self.omega, q)
        self.n_inv = mod_inverse(n, q)

    def inverse(self) -> "NttParams":
        """Parameters of the inverse transform (twiddles inverted)."""
        return NttParams(self.n, self.q, self.omega_inv)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NttParams(n={self.n}, q={self.q}, omega={self.omega})"
