"""Vectorized NumPy compute backend for the whole simulator stack.

Every hot path of the library — golden NTTs, the PIM compute unit, the
RNS/RLWE element-wise ops — bottoms out in element-wise modular
arithmetic.  This module provides that arithmetic on NumPy ``uint64``
lanes, behind a process-wide backend selector:

* ``"python"`` — the pure-Python scalar routines of
  :mod:`repro.arith.modmath`; exact for any modulus and the library's
  ground truth.
* ``"numpy"`` — array kernels, selected automatically when NumPy is
  importable.  Bit-exact with the Python path (unit tests assert
  equality lane for lane), orders of magnitude faster.

Overflow safety
---------------

``uint64`` lane products overflow once ``q >= 2**32``, so the multiply
kernel runs in four regimes:

* ``q < 2**32`` — the product of two reduced operands fits in 64 bits;
  plain ``(a * b) % q``.
* odd ``q < 2**63`` — Montgomery multiplication with ``R = 2**64``:
  the full 128-bit product is formed as a (hi, lo) pair via 32-bit
  limb splitting (:func:`_mul_u64`) and reduced with a vectorized REDC,
  mirroring :func:`repro.arith.montgomery.montgomery_reduce` word for
  word.
* any ``q < 2**61`` (covering the even moduli Montgomery cannot) —
  Barrett reduction of the 128-bit product: the quotient is estimated
  with the precomputed ``mu = floor(2**(2k) / q)`` through shifted limb
  products, and the remainder recovered modulo ``2**(k+3)`` with at
  most three conditional subtractions.
* anything else — no lane support (:func:`lanes_supported` is False);
  callers fall back to the Python path.

Backend selection honours the ``REPRO_BACKEND`` environment variable
(``python`` or ``numpy``) and can be changed at runtime with
:func:`set_backend` / the :func:`use_backend` context manager.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "BACKENDS",
    "get_backend",
    "set_backend",
    "use_backend",
    "numpy_active",
    "lanes_supported",
    "mod_add_arr",
    "mod_sub_arr",
    "mod_mul_arr",
    "mod_add_list",
    "mod_sub_list",
    "mod_mul_list",
    "scale_list",
    "ntt_dit_bitrev",
    "ntt_dif_natural",
    "merged_negacyclic_forward",
    "merged_negacyclic_inverse",
    "is_array",
    "c1_atom",
    "c1_atom_arr",
    "c2_atom",
    "c2_atom_arr",
    "c1n_atom",
    "c1n_atom_arr",
    "c1_stack_wpack",
    "c1_stack_arr",
    "c2_stack_wpack",
    "c2_stack_arr",
    "c1n_stack_zpack",
    "c1n_stack_arr",
    "omega_power_array",
    "clear_caches",
]

BACKENDS = ("python", "numpy")

_MASK32 = (1 << 32) - 1
_DIRECT_LIMIT = 1 << 32   # below: reduced lane products fit in uint64
_LANE_LIMIT = 1 << 63     # below (odd q): Montgomery lane path
_BARRETT_LIMIT = 1 << 61  # below (any q): Barrett-split lane path


def _default_backend() -> str:
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if env in BACKENDS:
        if env == "numpy" and not HAS_NUMPY:
            return "python"
        return env
    return "numpy" if HAS_NUMPY else "python"


_backend = _default_backend()


def get_backend() -> str:
    """The currently selected backend name."""
    return _backend


def set_backend(name: str) -> None:
    """Select ``"python"`` or ``"numpy"`` for all subsequent kernels."""
    global _backend
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    if name == "numpy" and not HAS_NUMPY:
        raise ValueError("numpy backend requested but numpy is unavailable")
    _backend = name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch backends (used heavily by the equivalence tests)."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def lanes_supported(q: int) -> bool:
    """True when the uint64 lane kernels are exact for modulus ``q``."""
    if not HAS_NUMPY or q <= 0:
        return False
    return q < _BARRETT_LIMIT or (q < _LANE_LIMIT and q % 2 == 1)


def numpy_active(q: int) -> bool:
    """True when the numpy backend is selected *and* can handle ``q``."""
    return _backend == "numpy" and lanes_supported(q)


# -- uint64 lane primitives ----------------------------------------------------

@lru_cache(maxsize=1024)
def _u64(q: int):
    """Cached uint64 scalar of ``q`` — boxing a Python int into a NumPy
    scalar costs more than a small-array ufunc, so do it once per modulus."""
    return np.uint64(q)


def _mul_u64(a, b):
    """Full 128-bit product of two uint64 arrays as a (hi, lo) pair.

    Classic 32-bit limb splitting; every partial product and carry sum
    stays strictly below 2**64, so the arithmetic is exact.
    """
    a0 = a & np.uint64(_MASK32)
    a1 = a >> np.uint64(32)
    b0 = b & np.uint64(_MASK32)
    b1 = b >> np.uint64(32)
    ll = a0 * b0
    mid1 = a0 * b1 + (ll >> np.uint64(32))
    mid2 = a1 * b0 + (mid1 & np.uint64(_MASK32))
    hi = a1 * b1 + (mid1 >> np.uint64(32)) + (mid2 >> np.uint64(32))
    lo = (mid2 << np.uint64(32)) | (ll & np.uint64(_MASK32))
    return hi, lo


@lru_cache(maxsize=None)
def _mont_constants(q: int):
    """Per-modulus Montgomery constants for ``R = 2**64`` as uint64 scalars:
    ``-q^-1 mod R`` and ``R^2 mod q``."""
    r = 1 << 64
    neg_qinv = (-pow(q, -1, r)) % r
    r2 = (1 << 128) % q
    return np.uint64(neg_qinv), np.uint64(r2)


def _redc(hi, lo, q_u64, neg_qinv):
    """Vectorized REDC of the 128-bit values ``hi:lo`` (each < q * 2**64)."""
    m = lo * neg_qinv  # wraps mod 2**64 — exactly the REDC definition
    mq_hi, mq_lo = _mul_u64(m, q_u64)
    # lo + mq_lo is 0 mod 2**64 by construction: carry is 1 unless lo == 0.
    carry = (lo != np.uint64(0)).astype(np.uint64)
    u = hi + mq_hi + carry  # < 2q < 2**64, no wrap
    return np.where(u >= q_u64, u - q_u64, u)


def _mulmod_mont(a, b, q: int):
    """``a * b mod q`` on uint64 lanes for odd ``q < 2**63`` via two REDCs
    (product REDC + correction by ``R^2 mod q``), mirroring
    :meth:`repro.arith.montgomery.MontgomeryContext.mul`."""
    neg_qinv, r2 = _mont_constants(q)
    q_u64 = np.uint64(q)
    hi, lo = _mul_u64(a, b)
    t = _redc(hi, lo, q_u64, neg_qinv)          # a*b*R^-1 mod q
    hi2, lo2 = _mul_u64(t, r2)
    return _redc(hi2, lo2, q_u64, neg_qinv)     # a*b mod q


@lru_cache(maxsize=None)
def _barrett_constants(q: int):
    """Per-modulus Barrett constants for ``q < 2**61`` as uint64 scalars.

    ``mu = floor(2**(2k) / q)`` with ``k = q.bit_length()``; since
    ``2**(k-1) <= q``, ``mu < 2**(k+1) <= 2**62`` fits a uint64.  The
    shift pairs extract ``t >> (k-1)`` and ``x >> (k+1)`` from (hi, lo)
    128-bit pairs, and the mask reduces modulo ``2**(k+3)`` — wide
    enough to hold the remainder estimate ``t - q3*q < 4q``.
    """
    k = q.bit_length()
    mu = (1 << (2 * k)) // q
    mask = (1 << min(k + 3, 64)) - 1
    return (np.uint64(mu), np.uint64(k - 1), np.uint64(65 - k),
            np.uint64(k + 1), np.uint64(63 - k), np.uint64(mask))


def _mulmod_barrett(a, b, q: int):
    """``a * b mod q`` on uint64 lanes for any ``q < 2**61`` (the even and
    otherwise non-Montgomery moduli) via Barrett splitting.

    The 128-bit product ``t`` is kept as a (hi, lo) limb pair; the
    quotient estimate ``q3 = ((t >> (k-1)) * mu) >> (k+1)`` satisfies
    ``floor(t/q) - 3 <= q3 <= floor(t/q)``, so the remainder is
    recovered exactly from ``t - q3*q`` modulo ``2**(k+3)`` with three
    conditional subtractions.  All intermediates stay below 2**64.
    """
    mu, sh_lo, sh_hi, sh2_lo, sh2_hi, mask = _barrett_constants(q)
    q_u64 = np.uint64(q)
    hi, lo = _mul_u64(a, b)
    q1 = (hi << sh_hi) | (lo >> sh_lo)          # floor(t / 2**(k-1))
    h2, l2 = _mul_u64(q1, mu)
    q3 = (h2 << sh2_hi) | (l2 >> sh2_lo)        # floor(q1 * mu / 2**(k+1))
    r = (lo - q3 * q_u64) & mask                # t - q3*q  (mod 2**(k+3))
    r = np.where(r >= q_u64, r - q_u64, r)
    r = np.where(r >= q_u64, r - q_u64, r)
    return np.where(r >= q_u64, r - q_u64, r)


def mod_add_arr(a, b, q: int):
    """Lane-wise ``(a + b) mod q`` for reduced uint64 operands."""
    return (a + b) % _u64(q)


def mod_sub_arr(a, b, q: int):
    """Lane-wise ``(a - b) mod q`` for reduced uint64 operands."""
    q_u64 = _u64(q)
    return (a + (q_u64 - b)) % q_u64


def mod_mul_arr(a, b, q: int):
    """Lane-wise ``(a * b) mod q`` for reduced uint64 operands.

    Requires :func:`lanes_supported`\\ ``(q)``; picks the direct,
    Montgomery or Barrett regime by modulus width and parity.
    """
    if q < _DIRECT_LIMIT:
        return (a * b) % _u64(q)
    if q % 2 == 1 and q < _LANE_LIMIT:
        return _mulmod_mont(a, b, q)
    if q < _BARRETT_LIMIT:
        return _mulmod_barrett(a, b, q)
    raise ValueError(f"no uint64 lane support for modulus {q}")


def _as_lanes(xs: Sequence[int], q: int):
    """Reduce a sequence mod ``q`` into a uint64 array."""
    try:
        arr = np.array(xs, dtype=np.uint64)
    except (OverflowError, ValueError):
        # Negative or >= 2**64 inputs: reduce in Python first (rare path).
        arr = np.array([x % q for x in xs], dtype=np.uint64)
    return arr % _u64(q)


# -- list-level API (what modmath's mod_*_vec dispatch to) ---------------------

def mod_add_list(xs: Sequence[int], ys: Sequence[int], q: int) -> List[int]:
    return mod_add_arr(_as_lanes(xs, q), _as_lanes(ys, q), q).tolist()


def mod_sub_list(xs: Sequence[int], ys: Sequence[int], q: int) -> List[int]:
    return mod_sub_arr(_as_lanes(xs, q), _as_lanes(ys, q), q).tolist()


def mod_mul_list(xs: Sequence[int], ys: Sequence[int], q: int) -> List[int]:
    return mod_mul_arr(_as_lanes(xs, q), _as_lanes(ys, q), q).tolist()


def scale_list(xs: Sequence[int], c: int, q: int) -> List[int]:
    """``[(x * c) mod q]`` — the 1/N passes and psi pre/post scalings."""
    return mod_mul_arr(_as_lanes(xs, q), np.uint64(c % q), q).tolist()


# -- cached twiddle material ---------------------------------------------------

@lru_cache(maxsize=64)
def omega_power_array(n: int, q: int, omega: int):
    """uint64 array of ``omega^i mod q`` for ``i in [0, n)`` — the full
    twiddle table of one ``(n, q, omega)`` transform, computed once."""
    powers = np.empty(n, dtype=np.uint64)
    acc = 1
    for i in range(n):
        powers[i] = acc
        acc = (acc * omega) % q
    return powers


@lru_cache(maxsize=64)
def _merged_zeta_arrays(n: int, q: int, psi: int, inverse: bool):
    """Per-stage block-zeta arrays of the merged negacyclic transform.

    Stage order matches the kernels below: forward walks strides
    N/2, N/4, ..., 1; inverse walks 1, 2, ..., N/2 with inverse zetas.
    """
    from .bitrev import bit_reverse  # local import avoids a cycle

    log_n = n.bit_length() - 1
    base = pow(psi, -1, q) if inverse else psi % q
    stages = []
    lengths = ([n >> s for s in range(1, log_n + 1)] if not inverse
               else [1 << s for s in range(log_n)])
    for length in lengths:
        blocks = n // (2 * length)
        zetas = np.empty(blocks, dtype=np.uint64)
        for k in range(blocks):
            zetas[k] = pow(base, bit_reverse(blocks + k, log_n), q)
        stages.append(zetas)
    return tuple(stages)


@lru_cache(maxsize=8192)
def _geom_run_arr(first: int, step: int, count: int, q: int):
    """uint64 array of the geometric run ``first * step^j`` — exactly what
    one TFG parameter pair ``(omega0, r_omega)`` expands to.  Memoized:
    sweeps and batches replay the same command programs, hence the same
    runs."""
    out = np.empty(count, dtype=np.uint64)
    acc = first % q
    step = step % q
    for j in range(count):
        out[j] = acc
        acc = (acc * step) % q
    return out


def clear_caches() -> None:
    """Drop all memoized twiddle/constant material (test isolation)."""
    _mont_constants.cache_clear()
    _barrett_constants.cache_clear()
    omega_power_array.cache_clear()
    _merged_zeta_arrays.cache_clear()
    _geom_run_arr.cache_clear()
    _c1_stage_steps.cache_clear()


# -- whole-transform kernels ---------------------------------------------------

def ntt_dit_bitrev(values: Sequence[int], n: int, q: int, omega: int) -> List[int]:
    """Iterative DIT Cooley-Tukey on uint64 lanes: bit-reversed input,
    natural output.  Bit-exact with
    :func:`repro.ntt.reference.ntt_dit_bitrev_input`."""
    x = _as_lanes(values, q)
    powers = omega_power_array(n, q, omega)
    log_n = n.bit_length() - 1
    for s in range(1, log_n + 1):
        m = 1 << (s - 1)
        w = powers[:: n >> s][:m]  # omega^(j * N/2^s) for one block
        x = x.reshape(-1, 2 * m)
        a = x[:, :m].copy()  # copy: the next writes go through the view
        t = mod_mul_arr(w[None, :], x[:, m:], q)
        x[:, :m] = mod_add_arr(a, t, q)
        x[:, m:] = mod_sub_arr(a, t, q)
        x = x.reshape(-1)
    return x.tolist()


def ntt_dif_natural(values: Sequence[int], n: int, q: int, omega: int) -> List[int]:
    """Iterative DIF Gentleman-Sande on uint64 lanes: natural input,
    bit-reversed output — the transpose network of :func:`ntt_dit_bitrev`."""
    x = _as_lanes(values, q)
    powers = omega_power_array(n, q, omega)
    log_n = n.bit_length() - 1
    for s in range(log_n, 0, -1):
        m = 1 << (s - 1)
        w = powers[:: n >> s][:m]
        x = x.reshape(-1, 2 * m)
        a = x[:, :m].copy()
        b = x[:, m:]
        x[:, :m] = mod_add_arr(a, b, q)
        x[:, m:] = mod_mul_arr(mod_sub_arr(a, b, q), w[None, :], q)
        x = x.reshape(-1)
    return x.tolist()


def merged_negacyclic_forward(values: Sequence[int], n: int, q: int,
                              psi: int) -> List[int]:
    """Forward merged-psi negacyclic NTT on uint64 lanes (natural-order
    input, NTT-domain output) — bit-exact with
    :func:`repro.ntt.merged.merged_negacyclic_ntt`."""
    x = _as_lanes(values, q)
    length = n // 2
    for zetas in _merged_zeta_arrays(n, q, psi, inverse=False):
        xr = x.reshape(-1, 2 * length)
        a = xr[:, :length].copy()
        t = mod_mul_arr(zetas[:, None], xr[:, length:], q)
        xr[:, :length] = mod_add_arr(a, t, q)
        xr[:, length:] = mod_sub_arr(a, t, q)
        length >>= 1
    return x.tolist()


# -- PIM atom kernels (the CU's C1/C2/C1N on whole atoms) ----------------------
#
# The ``*_arr`` cores take and return uint64 arrays so the functional
# bank can keep atoms array-resident from DRAM cells through buffers to
# the CU with zero list conversions; the plain-named wrappers provide
# the list API the scalar path and tests use.

def is_array(x) -> bool:
    """True when ``x`` is a NumPy array (atom fast-path detection)."""
    return HAS_NUMPY and isinstance(x, np.ndarray)


def c1_atom_arr(x, q: int, steps: Sequence[int]):
    """Size-``Na`` DIT network on one atom with per-stage lane steps
    ``steps[s]`` (index 1..log Na) — the array form of
    :meth:`repro.pim.cu.ComputeUnit.execute_c1`."""
    na = len(x)
    x = x % _u64(q)
    log_na = na.bit_length() - 1
    for s in range(1, log_na + 1):
        m = 1 << (s - 1)
        w = _geom_run_arr(1, steps[s], m, q)
        x = x.reshape(-1, 2 * m)
        a = x[:, :m].copy()
        t = mod_mul_arr(w[None, :], x[:, m:], q)
        x[:, :m] = mod_add_arr(a, t, q)
        x[:, m:] = mod_sub_arr(a, t, q)
        x = x.reshape(-1)
    return x


def c1_atom(words: Sequence[int], q: int, steps: Sequence[int]) -> List[int]:
    """List-API form of :func:`c1_atom_arr`."""
    return c1_atom_arr(_as_lanes(words, q), q, steps).tolist()


def c2_atom_arr(p, s, q: int, omega0: int, r_omega: int, gs: bool = False):
    """One ``Na``-way butterfly between two atoms with the TFG's geometric
    lane twiddles — the array form of
    :meth:`repro.pim.cu.ComputeUnit.execute_c2`.

    The hottest kernel of the functional bank (one call per C2 command);
    the direct regime is written with raw ufuncs on a cached uint64
    scalar to keep the per-call overhead minimal.
    """
    q_u64 = _u64(q)
    p = p % q_u64
    s = s % q_u64
    w = _geom_run_arr(omega0, r_omega, len(p), q)
    if q < _DIRECT_LIMIT:
        if gs:
            return (p + s) % q_u64, ((p + (q_u64 - s)) % q_u64 * w) % q_u64
        t = (w * s) % q_u64
        return (p + t) % q_u64, (p + (q_u64 - t)) % q_u64
    if gs:
        return (mod_add_arr(p, s, q),
                mod_mul_arr(mod_sub_arr(p, s, q), w, q))
    t = mod_mul_arr(w, s, q)
    return mod_add_arr(p, t, q), mod_sub_arr(p, t, q)


def c2_atom(p_words: Sequence[int], s_words: Sequence[int], q: int,
            omega0: int, r_omega: int,
            gs: bool = False) -> Tuple[List[int], List[int]]:
    """List-API form of :func:`c2_atom_arr`."""
    p_out, s_out = c2_atom_arr(_as_lanes(p_words, q), _as_lanes(s_words, q),
                               q, omega0, r_omega, gs=gs)
    return p_out.tolist(), s_out.tolist()


def c1n_atom_arr(x, q: int, zetas: Sequence[int], gs: bool = False):
    """Merged-negacyclic intra-atom stages (constant zeta per block) —
    the array form of :meth:`repro.pim.cu.ComputeUnit.execute_c1n`.

    Zeta consumption order matches the scalar path: forward (CT) walks
    strides Na/2, Na/4, ..., 1; inverse (GS) walks 1, 2, ..., Na/2.
    """
    na = len(x)
    x = x % _u64(q)
    log_na = na.bit_length() - 1
    lengths = ([na >> s for s in range(1, log_na + 1)] if not gs
               else [1 << s for s in range(log_na)])
    idx = 0
    for length in lengths:
        blocks = na // (2 * length)
        z = np.array([zetas[idx + k] % q for k in range(blocks)],
                     dtype=np.uint64)
        idx += blocks
        xr = x.reshape(-1, 2 * length)
        a = xr[:, :length].copy()
        if gs:
            b = xr[:, length:].copy()
            xr[:, :length] = mod_add_arr(a, b, q)
            xr[:, length:] = mod_mul_arr(mod_sub_arr(a, b, q), z[:, None], q)
        else:
            t = mod_mul_arr(z[:, None], xr[:, length:], q)
            xr[:, :length] = mod_add_arr(a, t, q)
            xr[:, length:] = mod_sub_arr(a, t, q)
    return x


def c1n_atom(words: Sequence[int], q: int, zetas: Sequence[int],
             gs: bool = False) -> List[int]:
    """List-API form of :func:`c1n_atom_arr`."""
    return c1n_atom_arr(_as_lanes(words, q), q, zetas, gs=gs).tolist()


# -- stacked PIM kernels (fused macro-ops of the compiled command stream) ------
#
# The ``*_stack_arr`` kernels run one whole fused group of same-type
# compute commands — e.g. every C1 of a butterfly-stage pass — as a
# single vectorized call on a ``(k, Na)`` array of atom rows.  Row ``j``
# computes exactly what the ``j``-th command's per-atom kernel would,
# so the stacked path is bit-identical to ``k`` separate calls.  The
# ``*_wpack``/``*_zpack`` helpers prebuild the per-row twiddle material
# (cached per compiled stream and modulus by the executor).

@lru_cache(maxsize=4096)
def _c1_stage_steps(q: int, omega0: int, log_na: int):
    """Per-stage lane steps of one C1: stage ``s`` uses ``g^(Na / 2^s)``,
    derived from ``g = omega0`` by repeated squaring (exactly the CU's
    TFG derivation, which is an exact mod-mul either datapath)."""
    steps = [0] * (log_na + 1)
    steps[log_na] = omega0 % q
    for s in range(log_na - 1, 0, -1):
        steps[s] = (steps[s + 1] * steps[s + 1]) % q
    return tuple(steps)


def c1_stack_wpack(q: int, omegas: Sequence[int], na: int):
    """Per-stage twiddle matrices for a fused C1 group: one ``(k, m)``
    array per stage (collapsed to ``(1, m)`` when every row shares the
    same generator — the common case of a whole stage pass)."""
    log_na = na.bit_length() - 1
    rows = [_c1_stage_steps(q, omega0, log_na) for omega0 in omegas]
    uniform = all(r == rows[0] for r in rows)
    pack = []
    for s in range(1, log_na + 1):
        m = 1 << (s - 1)
        if uniform:
            w = _geom_run_arr(1, rows[0][s], m, q)[None, :]
        else:
            w = np.stack([_geom_run_arr(1, r[s], m, q) for r in rows])
        pack.append(w)
    return tuple(pack)


def c1_stack_arr(x, q: int, wpack):
    """Stacked form of :func:`c1_atom_arr`: ``x`` is ``(k, Na)``, one
    atom per row; ``wpack`` comes from :func:`c1_stack_wpack`."""
    k, na = x.shape
    x = x % _u64(q)
    log_na = na.bit_length() - 1
    for s in range(1, log_na + 1):
        m = 1 << (s - 1)
        w = wpack[s - 1]
        xr = x.reshape(k, -1, 2 * m)
        a = xr[:, :, :m].copy()
        t = mod_mul_arr(w[:, None, :], xr[:, :, m:], q)
        xr[:, :, :m] = mod_add_arr(a, t, q)
        xr[:, :, m:] = mod_sub_arr(a, t, q)
    return x


def c2_stack_wpack(q: int, omega0s: Sequence[int], r_omegas: Sequence[int],
                   na: int):
    """``(k, Na)`` twiddle matrix for a fused C2 group: row ``j`` is the
    TFG's geometric run of the ``j``-th command."""
    return np.stack([_geom_run_arr(omega0, r_omega, na, q)
                     for omega0, r_omega in zip(omega0s, r_omegas)])


def c2_stack_arr(p, s, q: int, w, gs: bool = False):
    """Stacked form of :func:`c2_atom_arr`: ``p``/``s``/``w`` are
    ``(k, Na)`` — the P legs, S legs and lane twiddles of ``k`` fused
    C2 commands."""
    q_u64 = _u64(q)
    p = p % q_u64
    s = s % q_u64
    if q < _DIRECT_LIMIT:
        if gs:
            return (p + s) % q_u64, ((p + (q_u64 - s)) % q_u64 * w) % q_u64
        t = (w * s) % q_u64
        return (p + t) % q_u64, (p + (q_u64 - t)) % q_u64
    if gs:
        return (mod_add_arr(p, s, q),
                mod_mul_arr(mod_sub_arr(p, s, q), w, q))
    t = mod_mul_arr(w, s, q)
    return mod_add_arr(p, t, q), mod_sub_arr(p, t, q)


def c1n_stack_zpack(q: int, zetas_rows: Sequence[Sequence[int]]):
    """``(k, Na-1)`` reduced block-zeta matrix for a fused C1N group."""
    return np.array([[z % q for z in zs] for zs in zetas_rows],
                    dtype=np.uint64)


def c1n_stack_arr(x, q: int, z2d, gs: bool = False):
    """Stacked form of :func:`c1n_atom_arr`: ``x`` is ``(k, Na)``,
    ``z2d`` the matching zeta matrix from :func:`c1n_stack_zpack`.
    Zeta consumption order per row matches the per-atom kernel."""
    k, na = x.shape
    x = x % _u64(q)
    log_na = na.bit_length() - 1
    lengths = ([na >> s for s in range(1, log_na + 1)] if not gs
               else [1 << s for s in range(log_na)])
    idx = 0
    for length in lengths:
        blocks = na // (2 * length)
        z = z2d[:, idx:idx + blocks]
        idx += blocks
        xr = x.reshape(k, blocks, 2 * length)
        a = xr[:, :, :length].copy()
        if gs:
            b = xr[:, :, length:].copy()
            xr[:, :, :length] = mod_add_arr(a, b, q)
            xr[:, :, length:] = mod_mul_arr(mod_sub_arr(a, b, q),
                                            z[:, :, None], q)
        else:
            t = mod_mul_arr(z[:, :, None], xr[:, :, length:], q)
            xr[:, :, :length] = mod_add_arr(a, t, q)
            xr[:, :, length:] = mod_sub_arr(a, t, q)
    return x


def merged_negacyclic_inverse(values: Sequence[int], n: int, q: int,
                              psi: int) -> List[int]:
    """Inverse merged transform on uint64 lanes, *including* the final
    1/N scale — bit-exact with
    :func:`repro.ntt.merged.merged_negacyclic_intt`."""
    x = _as_lanes(values, q)
    length = 1
    for zetas in _merged_zeta_arrays(n, q, psi, inverse=True):
        xr = x.reshape(-1, 2 * length)
        a = xr[:, :length].copy()
        b = xr[:, length:].copy()
        xr[:, :length] = mod_add_arr(a, b, q)
        xr[:, length:] = mod_mul_arr(mod_sub_arr(a, b, q), zetas[:, None], q)
        length <<= 1
    n_inv = pow(n, -1, q)
    return mod_mul_arr(x, np.uint64(n_inv), q).tolist()
