"""NTT-friendly prime generation and primality testing.

An NTT of length ``N`` over ``Z_q`` requires a primitive ``N``-th root of
unity, which exists iff ``N | q - 1``.  Negacyclic NTTs (the FHE ring
``Z_q[X]/(X^N + 1)``) need ``2N | q - 1``.  This module finds such primes
deterministically and provides a Miller-Rabin test that is exact for all
inputs below 3.3 * 10^24 and overwhelmingly reliable above.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "is_prime",
    "find_ntt_prime",
    "ntt_prime_candidates",
    "DEFAULT_PRIME_32",
    "DEFAULT_PRIME_14",
    "DEFAULT_PRIME_16",
]

# Deterministic Miller-Rabin witness sets (Sinclair / Jaeschke bounds).
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
)


def is_prime(n: int) -> bool:
    """Miller-Rabin primality test, deterministic for ``n < 3.3e24``."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_prime(n: int, bits: int, negacyclic: bool = False) -> int:
    """Return the largest prime ``q < 2**bits`` with ``q ≡ 1 (mod order)``.

    ``order`` is ``n`` for a cyclic NTT and ``2n`` for a negacyclic one.
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"NTT length must be a power of two >= 2, got {n}")
    order = 2 * n if negacyclic else n
    if bits <= order.bit_length():
        raise ValueError(f"{bits}-bit primes cannot satisfy q ≡ 1 mod {order}")
    # Largest k with k*order + 1 < 2**bits, scanning downward.
    k = ((1 << bits) - 2) // order
    while k > 0:
        q = k * order + 1
        if is_prime(q):
            return q
        k -= 1
    raise ValueError(f"no {bits}-bit prime with q ≡ 1 mod {order}")


def ntt_prime_candidates(n: int, bits: int, count: int,
                         negacyclic: bool = False) -> List[int]:
    """Return up to ``count`` distinct NTT-friendly primes below ``2**bits``.

    Used by the RNS layer of the FHE example, which needs a chain of
    coprime moduli all supporting the same transform length.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    order = 2 * n if negacyclic else n
    out: List[int] = []
    k = ((1 << bits) - 2) // order
    while k > 0 and len(out) < count:
        q = k * order + 1
        if is_prime(q):
            out.append(q)
        k -= 1
    if len(out) < count:
        raise ValueError(
            f"only found {len(out)} of {count} primes ≡ 1 mod {order} below 2^{bits}")
    return out


#: The classic 32-bit NTT prime used throughout the examples: supports
#: negacyclic transforms up to N = 2^19 (q - 1 = 2^20 * 4095).
DEFAULT_PRIME_32 = 0xFFF00001  # 4293918721

#: Small primes matching MeNTT's 14-bit and CryptoPIM's 16-bit datapaths.
DEFAULT_PRIME_14 = 12289       # 12289 = 3 * 2^12 + 1, supports N <= 2048 cyclic
DEFAULT_PRIME_16 = 65537       # Fermat prime F4, supports N <= 2^15 cyclic
