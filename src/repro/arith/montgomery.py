"""Montgomery modular multiplication (word-level model of the BU multiplier).

The paper's butterfly unit "supports ModAdd/Sub and ModMult for arbitrary
modulo values using Montgomery reduction" (Sec. VI.B, citing Montgomery
1985).  This module models that datapath faithfully:

* :func:`montgomery_reduce` implements REDC, the core of the hardware
  multiplier, for an ``R = 2**rbits`` radix.
* :class:`MontgomeryContext` keeps the per-modulus constants (``q'``,
  ``R^2 mod q``) that the CU loads through parameter writes, and exposes
  multiplication both in and out of the Montgomery domain.

Odd moduli only — exactly the restriction of the hardware algorithm (NTT
moduli are odd primes, so this is not limiting in practice).
"""

from __future__ import annotations

from functools import lru_cache

from .modmath import mod_inverse

__all__ = ["MontgomeryContext", "montgomery_reduce"]


def montgomery_reduce(t: int, q: int, rbits: int, q_neg_inv: int) -> int:
    """REDC: return ``t * R^-1 mod q`` for ``R = 2**rbits``.

    ``t`` must lie in ``[0, q * R)``; ``q_neg_inv`` is ``-q^-1 mod R``.
    The computation uses only shifts, masks, multiplies and one
    conditional subtraction — the same primitive ops as the RTL.
    """
    mask = (1 << rbits) - 1
    if not 0 <= t < (q << rbits):
        raise ValueError(f"REDC input {t} outside [0, q*R)")
    m = ((t & mask) * q_neg_inv) & mask
    u = (t + m * q) >> rbits
    if u >= q:
        u -= q
    return u


class MontgomeryContext:
    """Precomputed constants for Montgomery arithmetic modulo ``q``.

    Parameters
    ----------
    q:
        Odd modulus.
    rbits:
        Radix width; defaults to the modulus bit length rounded up to a
        word boundary the way a 32-bit datapath would (``max(32, bits)``).
    """

    def __init__(self, q: int, rbits: int | None = None):
        if q <= 2 or q % 2 == 0:
            raise ValueError(f"Montgomery requires an odd modulus > 2, got {q}")
        if rbits is None:
            rbits = max(32, q.bit_length())
        if (1 << rbits) <= q:
            raise ValueError(f"radix 2**{rbits} must exceed modulus {q}")
        self.q = q
        self.rbits = rbits
        self.r = 1 << rbits
        self.r_mask = self.r - 1
        # q' = -q^-1 mod R, the Newton-iterated constant baked into the RTL.
        self.q_neg_inv = (-mod_inverse(q, self.r)) % self.r
        self.r_mod_q = self.r % q
        self.r2_mod_q = (self.r_mod_q * self.r_mod_q) % q

    @classmethod
    @lru_cache(maxsize=256)
    def cached(cls, q: int, rbits: int | None = None) -> "MontgomeryContext":
        """Shared per-modulus context.

        Every PARAM_WRITE re-derives the Montgomery constants in hardware,
        but they are a pure function of ``(q, rbits)``; memoizing them
        keeps multi-bank / batched simulations from recomputing the same
        ``q'`` and ``R^2 mod q`` once per bank per run.  The context is
        immutable after construction, so sharing is safe.
        """
        return cls(q, rbits)

    def to_mont(self, a: int) -> int:
        """Map ``a`` into the Montgomery domain: ``a * R mod q``."""
        return self.reduce((a % self.q) * self.r2_mod_q)

    def from_mont(self, a_bar: int) -> int:
        """Map a Montgomery-domain value back to the plain domain."""
        return self.reduce(a_bar)

    def reduce(self, t: int) -> int:
        """REDC with this context's constants."""
        return montgomery_reduce(t, self.q, self.rbits, self.q_neg_inv)

    def mont_mul(self, a_bar: int, b_bar: int) -> int:
        """Product of two Montgomery-domain values (stays in the domain)."""
        return self.reduce(a_bar * b_bar)

    def mul(self, a: int, b: int) -> int:
        """Plain-domain modular product computed through the Montgomery path.

        This mirrors what the CU does for a ``ModMult``: one REDC to get
        ``a*b*R^-1``, then a correction multiply by ``R^2 mod q``.
        Functionally identical to ``(a*b) % q`` — unit tests assert so.
        """
        t = self.reduce((a % self.q) * (b % self.q))
        return self.reduce(t * self.r2_mod_q)

    def pow(self, base: int, exponent: int) -> int:
        """Plain-domain exponentiation via Montgomery ladder (for the TFG)."""
        if exponent < 0:
            raise ValueError("negative exponents are not supported here")
        acc = self.to_mont(1)
        b = self.to_mont(base)
        e = exponent
        while e:
            if e & 1:
                acc = self.mont_mul(acc, b)
            b = self.mont_mul(b, b)
            e >>= 1
        return self.from_mont(acc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MontgomeryContext(q={self.q}, rbits={self.rbits})"
