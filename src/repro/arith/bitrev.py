"""Bit-reversal permutation.

The paper assumes bit reversal is performed by software on the CPU
(Sec. II.B), so the PIM input is stored bit-reversed and the transform
produces natural order.  These helpers are that software step.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["bit_reverse", "bit_reverse_indices", "bit_reverse_permute", "is_power_of_two"]


def is_power_of_two(n: int) -> bool:
    """True for 1, 2, 4, 8, ..."""
    return n > 0 and n & (n - 1) == 0


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    if bits < 0:
        raise ValueError(f"bit width must be non-negative, got {bits}")
    if value < 0 or value >= (1 << bits):
        raise ValueError(f"value {value} does not fit in {bits} bits")
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


@lru_cache(maxsize=64)
def _indices(n: int) -> Tuple[int, ...]:
    if not is_power_of_two(n):
        raise ValueError(f"length must be a power of two, got {n}")
    bits = n.bit_length() - 1
    return tuple(bit_reverse(i, bits) for i in range(n))


def bit_reverse_indices(n: int) -> List[int]:
    """The permutation table ``i -> bit_reverse(i, log2 n)`` (memoized
    internally — every transform of size ``n`` uses the same table)."""
    return list(_indices(n))


def bit_reverse_permute(values: Sequence[T]) -> List[T]:
    """Return ``values`` reordered by bit-reversed index (an involution)."""
    table = _indices(len(values))
    return [values[i] for i in table]
