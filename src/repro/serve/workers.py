"""Worker-pool backends of the serving layer.

One interface, two executors:

* :class:`InlineWorkerPool` — runs work on the calling thread.  The
  deterministic default.
* :class:`ThreadWorkerPool` — a small thread pool, used to *pipeline*
  the compile side of dispatch group *k+1*
  (:func:`repro.api.workloads.precompile_request`: command program,
  compiled stream, timing schedule — all thread-safe caches) under the
  functional execution of group *k*.

Whether threads help is measured rather than assumed — and on CPython
they do not: the functional hot loops are *integer* NumPy ufuncs,
which hold the GIL throughout (unlike float BLAS kernels), and the
compile side is GIL-bound pure Python, so overlapping them buys
nothing.  ``benchmarks/bench_serve.py`` records the measured
inline-vs-thread wall clock in ``BENCH_serve.json`` (``pipeline``
section): with warm caches the thread backend is break-even (the
pipelined compile is a cache hit, a no-op); on cold caches it is
~1.3-1.6x *slower* — the compile contends with the execution thread
for the GIL instead of hiding under it.  That is why ``inline`` is the
default and the thread backend exists as the measured-and-documented
alternative behind the same interface (it becomes interesting on
free-threaded builds or if the kernels move to GIL-releasing
extensions).  Executors never change results: every artifact the
compile side produces is a pure function of ``(request shape,
config)``.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

__all__ = ["WorkerPool", "InlineWorkerPool", "ThreadWorkerPool",
           "WORKER_BACKENDS", "make_pool"]


class WorkerPool:
    """Executor interface the server codes against."""

    #: Whether submitted tasks can actually overlap (pipelining works).
    concurrent: bool = False

    def submit(self, fn: Callable, *args) -> "Future":
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release resources; the pool is unusable afterwards."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class InlineWorkerPool(WorkerPool):
    """Runs every task synchronously on the submitting thread."""

    concurrent = False

    def submit(self, fn: Callable, *args) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # pragma: no cover - propagated via result()
            future.set_exception(exc)
        return future


class ThreadWorkerPool(WorkerPool):
    """A bounded thread pool (default 2: one executing, one compiling)."""

    concurrent = True

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")

    def submit(self, fn: Callable, *args) -> Future:
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


#: Registered worker backends of the ``repro serve`` CLI.
WORKER_BACKENDS = ("inline", "thread")


def make_pool(kind: str, workers: int = 2) -> WorkerPool:
    """Build the named worker backend (``inline`` or ``thread``)."""
    if kind == "inline":
        return InlineWorkerPool()
    if kind == "thread":
        return ThreadWorkerPool(workers)
    raise ValueError(f"unknown worker backend {kind!r}; "
                     f"choose from {WORKER_BACKENDS}")
