"""Deterministic fault injection + resilience policies for serving.

The PR 4/5 serving stack models an ideal machine: shards never stall,
dispatches never fail, outputs are never corrupted.  The paper's host
protocol (Sec. IV.A) is exactly the boundary where a real PIM
deployment sees all three, so this module builds the *fault model* the
recovery machinery is measured against:

* :class:`FaultProfile` — rates and magnitudes of the four injectable
  fault kinds: transient dispatch **fail**ures, shard **stall**\\ s,
  shard **slowdown**\\ s, and functional **corrupt**\\ ion (flipped
  output words).
* :class:`FaultPlan` — the seeded, *virtual-time* injector.  Every
  decision is a pure function of ``(seed, dispatch seq, shard,
  attempt)``, so runs are bit-reproducible regardless of host timing,
  worker backend, or live-vs-offline entry style, and a re-dispatch of
  the same unit (new attempt) draws a fresh decision — exactly how a
  transient fault behaves.  A zero-rate plan never draws at all
  (:attr:`FaultPlan.active` is false), so it is provably identical to
  serving with no plan.
* :class:`ResiliencePolicy` — the recovery knobs the server/scheduler
  grow on top: per-request retry with capped exponential backoff in
  virtual time and a global retry budget, per-dispatch timeout with
  re-dispatch, a per-shard circuit breaker (K consecutive failures
  open it; traffic routes around; a half-open probe closes it after a
  cooldown), online golden-model detection of corrupted outputs
  (served values re-checked against the reference transforms — the
  test-only golden check promoted to a serving-path detector), and
  graceful degradation under overload (priority-aware load shedding
  and window shrinking at queue-depth thresholds).

* :class:`ReplicaFaultPlan` — the fault domain one level up: whole
  replicas **crash** (state lost), **hang** (dark link, state held) or
  **partition** (typed messages dropped) on a timeline that is a pure
  function of ``(seed, replica, virtual_time)``.  The cluster watchdog
  (:mod:`repro.cluster.watchdog`) observes these only through missed
  heartbeats and recovers with supervised restarts and failover.

Faults and policies are orthogonal: ``benchmarks/bench_serve.py``
sweeps fault rate x {policies off, policies on} and records the
goodput gap in ``BENCH_serve.json``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

__all__ = ["FaultProfile", "FaultDecision", "FaultPlan", "NO_FAULT",
           "ResiliencePolicy", "FAULT_PROFILES", "POLICIES",
           "make_fault_plan", "make_policy",
           "CRASH", "HANG", "PARTITION", "REPLICA_FAULT_KINDS",
           "ReplicaFaultProfile", "ReplicaFaultEvent", "ReplicaFaultPlan",
           "REPLICA_FAULT_PROFILES", "make_replica_fault_plan"]


@dataclass(frozen=True)
class FaultProfile:
    """Rates (per dispatch attempt) and magnitudes of injected faults.

    All times are simulated microseconds.  ``shard_weights`` scales
    every rate for specific shards — ``((0, 4.0),)`` models shard 0 as
    a degraded channel seeing 4x the fault pressure.  A ``fail`` draw
    preempts the others (the dispatch never produces output); stall,
    slowdown and corruption draws are independent and compose.
    """

    name: str = "custom"
    #: Transient dispatch failure: the shard burns ``fail_cost_us`` of
    #: virtual time and produces nothing (:class:`~repro.errors.ShardFailure`).
    fail_rate: float = 0.0
    fail_cost_us: float = 15.0
    #: Shard stall: service takes ``stall_us`` extra virtual time.
    stall_rate: float = 0.0
    stall_us: float = 1500.0
    #: Shard slowdown: service latency multiplied by ``slowdown_factor``.
    slowdown_rate: float = 0.0
    slowdown_factor: float = 4.0
    #: Functional corruption: one output word of the dispatch flips.
    corrupt_rate: float = 0.0
    #: ``(shard, rate_multiplier)`` pairs for unevenly degraded shards.
    shard_weights: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self):
        for rate_name in ("fail_rate", "stall_rate", "slowdown_rate",
                          "corrupt_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], "
                                 f"got {rate}")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire (zero-rate profiles are
        provably inert — no draw is ever made)."""
        return (self.fail_rate > 0 or self.stall_rate > 0
                or self.slowdown_rate > 0 or self.corrupt_rate > 0)

    def shard_weight(self, shard: int) -> float:
        for sid, weight in self.shard_weights:
            if sid == shard:
                return weight
        return 1.0

    @classmethod
    def scaled(cls, rate: float) -> "FaultProfile":
        """A uniform profile for sweeps: ``rate`` transient failures,
        half that rate of corruption, stalls and slowdowns."""
        return cls(name=f"rate:{rate:g}", fail_rate=rate,
                   corrupt_rate=rate / 2, stall_rate=rate / 2,
                   slowdown_rate=rate / 2)


#: Named fault profiles of the ``repro serve --faults`` CLI.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "transient": FaultProfile(name="transient", fail_rate=0.12),
    "degraded": FaultProfile(name="degraded", slowdown_rate=0.2,
                             stall_rate=0.08, fail_rate=0.04,
                             shard_weights=((0, 4.0),)),
    "chaos": FaultProfile(name="chaos", fail_rate=0.1, stall_rate=0.06,
                          slowdown_rate=0.1, corrupt_rate=0.08),
}


@dataclass(frozen=True)
class FaultDecision:
    """What one dispatch attempt suffers (``NO_FAULT`` when nothing)."""

    fail: bool = False
    stall_us: float = 0.0
    slowdown: float = 1.0
    corrupt: bool = False

    @property
    def any(self) -> bool:
        return (self.fail or self.corrupt or self.stall_us > 0
                or self.slowdown != 1.0)


NO_FAULT = FaultDecision()


class FaultPlan:
    """Seeded virtual-time fault injector over dispatch attempts.

    ``decide(seq, shard, attempt)`` is a pure function of its arguments
    plus the plan's seed — it draws from a throwaway RNG keyed on the
    whole tuple, never from shared mutable state — so injection is
    independent of execution order, host timing, and entry style, and
    identical across runs with the same seed.
    """

    def __init__(self, profile: Union[FaultProfile, str] = "chaos",
                 seed: int = 0):
        if isinstance(profile, str):
            profile = _named_profile(profile)
        self.profile = profile
        self.seed = seed

    @property
    def active(self) -> bool:
        return self.profile.active

    def _rng(self, seq: int, shard: int, attempt: int) -> random.Random:
        return random.Random(f"{self.seed}:{seq}:{shard}:{attempt}")

    def decide(self, seq: int, shard: int, attempt: int) -> FaultDecision:
        """The fault (if any) this dispatch attempt suffers."""
        if not self.active:
            return NO_FAULT
        profile = self.profile
        weight = profile.shard_weight(shard)
        rng = self._rng(seq, shard, attempt)
        # One draw per kind, always, so a decision never depends on
        # which other rates are zero (stable under profile tweaks).
        fail = rng.random() < profile.fail_rate * weight
        stall = rng.random() < profile.stall_rate * weight
        slow = rng.random() < profile.slowdown_rate * weight
        corrupt = rng.random() < profile.corrupt_rate * weight
        if fail:
            return FaultDecision(fail=True)
        if not (stall or slow or corrupt):
            return NO_FAULT
        return FaultDecision(
            stall_us=profile.stall_us if stall else 0.0,
            slowdown=profile.slowdown_factor if slow else 1.0,
            corrupt=corrupt)

    def corrupt_index(self, seq: int, shard: int, attempt: int,
                      banks: int, length: int) -> Tuple[int, int]:
        """Deterministic ``(bank_slot, word_index)`` to flip for a
        corrupted dispatch of ``banks`` outputs of ``length`` words."""
        rng = self._rng(seq, shard, attempt)
        rng.random()  # skip past the decision draws' stream prefix
        return rng.randrange(max(banks, 1)), rng.randrange(max(length, 1))

    def describe(self) -> str:
        return f"{self.profile.name} (seed {self.seed})"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Recovery knobs of the serving stack.  The default is fully
    neutral: no retries, no timeout, no breaker, no detection, no
    shedding — bit-identical serving to a policy-less server.

    All times/backoffs are simulated microseconds; retries happen in
    *virtual* time (a retried dispatch re-enters its shard's backlog at
    ``failure + backoff``), so resilience costs latency on the same
    clock every other serving number is measured on.
    """

    name: str = "custom"
    #: Re-dispatch attempts per unit after its first failure.
    max_retries: int = 0
    #: Capped exponential backoff: ``base * 2**(attempt-1)``, capped.
    retry_backoff_us: float = 25.0
    retry_backoff_cap_us: float = 400.0
    #: Global retry budget per serving session (``None`` = unlimited);
    #: exhausted budget fails fast instead of retrying.
    retry_budget: Optional[int] = None
    #: Per-dispatch service timeout: a dispatch whose (faulted) service
    #: would exceed this aborts at the timeout and re-dispatches.
    timeout_us: Optional[float] = None
    #: Circuit breaker: this many *consecutive* failures open a shard
    #: (0 disables).  Open shards are routed around when another shard
    #: can serve sooner; after ``breaker_cooldown_us`` a half-open
    #: probe decides between closing and re-opening.
    breaker_threshold: int = 0
    breaker_cooldown_us: float = 2000.0
    #: Online golden-model detection: served outputs are re-checked
    #: against the reference transforms; mismatches (e.g. injected
    #: corruption) surface as FunctionalMismatch and retry.
    detect: bool = False
    #: Load shedding: when queue depth reaches ``shed_depth``, arrivals
    #: with priority < ``shed_min_priority`` are dropped at admission
    #: (``None`` disables).  Priority-aware: urgent traffic still lands.
    shed_depth: Optional[int] = None
    shed_min_priority: int = 1
    #: Window shrinking: at queue depth >= ``shrink_depth`` new batching
    #: windows close after ``window * shrink_factor`` instead — trading
    #: batch occupancy for latency under overload (``None`` disables).
    shrink_depth: Optional[int] = None
    shrink_factor: float = 0.25

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_us < 0 or self.retry_backoff_cap_us < 0:
            raise ValueError("retry backoff times must be >= 0")
        if not 0.0 < self.shrink_factor <= 1.0:
            raise ValueError("shrink_factor must be in (0, 1]")

    @property
    def neutral(self) -> bool:
        """True when no knob can ever change serving behavior."""
        return (self.max_retries == 0 and self.timeout_us is None
                and self.breaker_threshold == 0 and not self.detect
                and self.shed_depth is None and self.shrink_depth is None)

    def backoff_us(self, attempt: int) -> float:
        """Virtual-time backoff before retry number ``attempt`` (1-based)."""
        return min(self.retry_backoff_us * (2 ** (attempt - 1)),
                   self.retry_backoff_cap_us)


#: Named policies of the ``repro serve --policy`` CLI.  ``standard`` is
#: the measured-in-BENCH_serve recovery stack; degradation thresholds
#: stay opt-in because they depend on the deployment's queue sizing.
POLICIES: Dict[str, ResiliencePolicy] = {
    "none": ResiliencePolicy(name="none"),
    "standard": ResiliencePolicy(
        name="standard", max_retries=3, retry_backoff_us=25.0,
        retry_backoff_cap_us=400.0, retry_budget=1024,
        timeout_us=600.0, breaker_threshold=3,
        breaker_cooldown_us=2000.0, detect=True),
}


def make_fault_plan(spec: Union[None, str, FaultProfile, FaultPlan],
                    seed: int = 0) -> Optional[FaultPlan]:
    """Normalize the server/CLI fault spec: ``None``/``"none"`` -> no
    plan, a profile name or ``"rate:<r>"`` -> a seeded plan, and
    profile/plan instances pass through (a plan keeps its own seed)."""
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, FaultProfile):
        return FaultPlan(spec, seed) if spec.active else None
    if spec == "none":
        return None
    if spec.startswith("rate:"):
        return FaultPlan(FaultProfile.scaled(float(spec[5:])), seed)
    return FaultPlan(_named_profile(spec), seed)


def make_policy(spec: Union[str, ResiliencePolicy],
                **overrides) -> ResiliencePolicy:
    """Resolve a policy name (or pass an instance through), optionally
    overriding individual knobs (the CLI's ``--shed-depth`` etc.)."""
    if isinstance(spec, str):
        try:
            spec = POLICIES[spec]
        except KeyError:
            known = ", ".join(sorted(POLICIES))
            raise ValueError(f"unknown policy {spec!r}; known: {known}") \
                from None
    return replace(spec, **overrides) if overrides else spec


def _named_profile(name: str) -> FaultProfile:
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(f"unknown fault profile {name!r}; known: {known}"
                         ) from None


# ---------------------------------------------------------------------------
# Replica-scoped faults: the failure domain *above* the dispatch level.
# A dispatch fault breaks one unit of work on one shard; a replica fault
# takes a whole SimServer replica off the cluster's message link.  The
# cluster watchdog (repro.cluster.watchdog) observes these only through
# missed heartbeats, exactly like a real supervisor.
# ---------------------------------------------------------------------------

#: Replica dies: every in-flight submission and unfetched result on it
#: is lost; only a supervised restart brings the slot back.
CRASH = "crash"
#: Replica stops answering the message link for a window but holds its
#: state; a slow-then-recovered replica can re-answer old requests.
HANG = "hang"
#: The message link drops typed messages for a window; the replica
#: itself is healthy and keeps its state.
PARTITION = "partition"

REPLICA_FAULT_KINDS = (CRASH, HANG, PARTITION)


@dataclass(frozen=True)
class ReplicaFaultProfile:
    """Rates (per decision interval, per replica) and window lengths of
    replica-scoped faults.

    Virtual time is cut into ``interval_us`` decision intervals; each
    interval draws at most one fault event per replica (precedence
    ``crash > hang > partition``) with a deterministic onset inside the
    interval.  All times are simulated microseconds.
    """

    name: str = "custom"
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    partition_rate: float = 0.0
    #: Width of one fault-decision interval.
    interval_us: float = 1000.0
    #: How long a hang window keeps the replica dark.
    hang_us: float = 1200.0
    #: How long a partition window drops the replica's messages.
    partition_us: float = 600.0

    def __post_init__(self):
        for rate_name in ("crash_rate", "hang_rate", "partition_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], "
                                 f"got {rate}")
        if self.interval_us <= 0:
            raise ValueError("interval_us must be > 0")
        if self.hang_us < 0 or self.partition_us < 0:
            raise ValueError("fault window lengths must be >= 0")

    @property
    def active(self) -> bool:
        """Whether any replica fault can ever fire (zero-rate profiles
        never draw — provably identical to no plan at all)."""
        return (self.crash_rate > 0 or self.hang_rate > 0
                or self.partition_rate > 0)

    @classmethod
    def scaled(cls, rate: float) -> "ReplicaFaultProfile":
        """A uniform profile for sweeps: ``rate`` crashes per interval,
        half that rate of hangs and partitions."""
        return cls(name=f"rate:{rate:g}", crash_rate=rate,
                   hang_rate=rate / 2, partition_rate=rate / 2)


#: Named replica-fault profiles of the ``--replica-faults`` CLI.
REPLICA_FAULT_PROFILES: Dict[str, ReplicaFaultProfile] = {
    "none": ReplicaFaultProfile(name="none"),
    "crashy": ReplicaFaultProfile(name="crashy", crash_rate=0.25,
                                  interval_us=800.0),
    "flaky": ReplicaFaultProfile(name="flaky", hang_rate=0.3,
                                 partition_rate=0.2, interval_us=800.0,
                                 hang_us=900.0, partition_us=500.0),
    "chaos": ReplicaFaultProfile(name="chaos", crash_rate=0.12,
                                 hang_rate=0.15, partition_rate=0.1,
                                 interval_us=800.0, hang_us=900.0,
                                 partition_us=500.0),
}


@dataclass(frozen=True)
class ReplicaFaultEvent:
    """One replica fault: ``kind`` strikes at ``onset_us`` and (for
    hang/partition) heals at ``end_us``; a crash never heals on its own
    (``end_us`` is ``inf`` — only a supervised restart ends it)."""

    kind: str
    onset_us: float
    end_us: float
    #: Decision interval the event was drawn in (its identity — one
    #: event per ``(replica, interval)``).
    interval: int


class ReplicaFaultPlan:
    """Seeded replica-fault timeline over virtual time.

    ``event(replica, interval)`` is a pure function of ``(seed,
    replica, interval)`` — it draws from a throwaway RNG keyed on the
    whole tuple — so the fault timeline is independent of traffic,
    probe cadence and host timing, and identical across runs with the
    same seed: chaos runs replay bit-for-bit.  ``outage`` evaluates the
    timeline at a point in virtual time for one replica incarnation
    (events that predate ``alive_since_us`` died with the previous
    incarnation and never re-fire).
    """

    def __init__(self, profile: Union[ReplicaFaultProfile, str] = "chaos",
                 seed: int = 0):
        if isinstance(profile, str):
            profile = _named_replica_profile(profile)
        self.profile = profile
        self.seed = seed
        self._events: Dict[Tuple[int, int], Optional[ReplicaFaultEvent]] = {}

    @property
    def active(self) -> bool:
        return self.profile.active

    def event(self, replica: int, interval: int
              ) -> Optional[ReplicaFaultEvent]:
        """The fault event (if any) drawn for ``replica`` in decision
        interval ``interval`` (memoized; the draw itself is pure)."""
        if not self.active or interval < 0:
            return None
        key = (replica, interval)
        if key in self._events:
            return self._events[key]
        profile = self.profile
        rng = random.Random(
            f"replica-fault:{self.seed}:{replica}:{interval}")
        # One draw per kind, always, so the timeline never depends on
        # which other rates are zero (stable under profile tweaks).
        crash = rng.random() < profile.crash_rate
        hang = rng.random() < profile.hang_rate
        partition = rng.random() < profile.partition_rate
        onset = (interval + rng.random()) * profile.interval_us
        if crash:
            event = ReplicaFaultEvent(CRASH, onset, float("inf"), interval)
        elif hang:
            event = ReplicaFaultEvent(HANG, onset, onset + profile.hang_us,
                                      interval)
        elif partition:
            event = ReplicaFaultEvent(PARTITION, onset,
                                      onset + profile.partition_us, interval)
        else:
            event = None
        self._events[key] = event
        return event

    def outage(self, replica: int, now_us: float,
               alive_since_us: float = 0.0) -> Optional[ReplicaFaultEvent]:
        """The event keeping ``replica``'s link dark at ``now_us``, or
        ``None`` while the link is clean.  A crash whose onset falls in
        ``(alive_since_us, now_us]`` is permanent; hang/partition
        windows cover ``[onset, end)``."""
        if not self.active:
            return None
        interval_us = self.profile.interval_us
        first = max(int(alive_since_us // interval_us), 0)
        last = int(now_us // interval_us)
        for interval in range(first, last + 1):
            event = self.event(replica, interval)
            if event is None or event.onset_us <= alive_since_us:
                continue
            if event.kind == CRASH:
                if event.onset_us <= now_us:
                    return event
            elif event.onset_us <= now_us < event.end_us:
                return event
        return None

    def describe(self) -> str:
        return f"{self.profile.name} (seed {self.seed})"


def make_replica_fault_plan(
        spec: Union[None, str, ReplicaFaultProfile, ReplicaFaultPlan],
        seed: int = 0) -> Optional[ReplicaFaultPlan]:
    """Normalize the cluster/CLI replica-fault spec exactly like
    :func:`make_fault_plan`: ``None``/``"none"``/zero-rate -> no plan
    (the fault path is literally plan-less), a profile name or
    ``"rate:<r>"`` -> a seeded plan, instances pass through."""
    if spec is None:
        return None
    if isinstance(spec, ReplicaFaultPlan):
        return spec if spec.active else None
    if isinstance(spec, ReplicaFaultProfile):
        return ReplicaFaultPlan(spec, seed) if spec.active else None
    if spec == "none":
        return None
    if spec.startswith("rate:"):
        profile = ReplicaFaultProfile.scaled(float(spec[5:]))
        return ReplicaFaultPlan(profile, seed) if profile.active else None
    profile = _named_replica_profile(spec)
    return ReplicaFaultPlan(profile, seed) if profile.active else None


def _named_replica_profile(name: str) -> ReplicaFaultProfile:
    try:
        return REPLICA_FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(REPLICA_FAULT_PROFILES))
        raise ValueError(f"unknown replica-fault profile {name!r}; "
                         f"known: {known}") from None
