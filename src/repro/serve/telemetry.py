"""Session/telemetry layer of the serving subsystem.

Every request that passes through :class:`repro.serve.server.SimServer`
leaves a :class:`RequestRecord` — arrival/dispatch/start/completion
virtual times, queue wait, batch occupancy, shard, simulated
cycles/energy share — and the server samples queue depth at every
arrival/dispatch event.  :meth:`Telemetry.snapshot` rolls those up into
the numbers a serving dashboard would plot: throughput (requests per
simulated second), p50/p99 latency, mean batch occupancy, admission
and deadline counts, cycle/energy totals and cache hit rates.

Thread-safe: records may be appended from worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = ["RequestRecord", "Telemetry", "percentile", "merge_snapshots",
           "STATUS_OK", "STATUS_REJECTED", "STATUS_EXPIRED",
           "STATUS_FAILED", "STATUS_SHED", "STATUS_THROTTLED",
           "STATUS_ORPHANED"]

#: Terminal states of a served request.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"   # admission control turned it away
STATUS_EXPIRED = "expired"     # deadline passed while still queued
STATUS_FAILED = "failed"       # dispatch failed past the retry policy
STATUS_SHED = "shed"           # dropped by overload load shedding
STATUS_THROTTLED = "throttled"  # per-tenant quota turned it away
#: Duplicate attempt of a failed-over request: another replica's result
#: was accepted, so this record is an orphan — kept for attribution but
#: excluded from request counts and completion-weighted percentiles
#: (the cluster must never double-count a recovered request).
STATUS_ORPHANED = "orphaned"


def percentile(values: List[float], p: float) -> float:
    """The ``p``-th percentile (0..100) with linear interpolation —
    matches ``numpy.percentile`` for the sizes telemetry sees, without
    requiring the array round-trip."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (p / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class RequestRecord:
    """Per-request serving facts (virtual / simulated time throughout)."""

    request_id: int
    workload: str = ""
    status: str = STATUS_OK
    priority: int = 0
    arrival_us: float = 0.0
    #: When the scheduler closed the request's dispatch group.
    dispatch_us: float = 0.0
    #: When the shard actually began serving the group.
    start_us: float = 0.0
    completion_us: float = 0.0
    deadline_us: Optional[float] = None
    deadline_missed: bool = False
    #: Members in the request's dispatch group (1 = unbatched).
    group_banks: int = 1
    shard: int = 0
    #: Replica that served the request (0 outside a cluster: a bare
    #: ``SimServer`` is replica 0 of a one-replica cluster).
    replica: int = 0
    #: Tenant the request arrived under ("" = untenanted traffic).
    tenant: str = ""
    #: Time the dispatch stalled waiting for the shared command bus
    #: (0 under the independent-channel model).
    bus_wait_us: float = 0.0
    #: This request's share of simulated cycles / energy (per-bank split
    #: for grouped dispatches, so sums over records stay physical).
    cycles: int = 0
    energy_nj: float = 0.0
    #: Dispatch attempts the request's unit took (1 = first try served;
    #: retries in between show up here even on eventual success).
    attempts: int = 1
    #: Last failure the request's unit suffered (empty on clean serves;
    #: the ShardFailure/FunctionalMismatch message for failed/retried
    #: dispatches — the surfaced form of the error hierarchy).
    error: str = ""
    #: Owning DAG's request id when this record is one *stage* of a
    #: :class:`~repro.api.DagRequest` (0 = a top-level request).  Stage
    #: records roll into the ``dag`` sub-rollup instead of the headline
    #: counts — the client-visible unit of DAG traffic is the graph.
    dag_id: int = 0
    #: Node name within the owning DAG ("" = not a stage).
    stage: str = ""
    #: Whole-DAG records only: the dependency critical-path length (the
    #: longest chain of stage service times) — the makespan lower bound
    #: the dependency-aware scheduler is judged against.
    critical_path_us: float = 0.0

    @property
    def latency_us(self) -> float:
        """Arrival-to-completion — what the client experienced."""
        return self.completion_us - self.arrival_us

    @property
    def queue_wait_us(self) -> float:
        """Arrival-to-service-start (window wait + shard backlog)."""
        return self.start_us - self.arrival_us

    @property
    def service_us(self) -> float:
        return self.completion_us - self.start_us


def _dag_rollup(records: List["RequestRecord"],
                stage_records: List["RequestRecord"]) -> Dict[str, object]:
    """The ``dag`` snapshot sub-section: whole-graph records (workload
    ``"dag"`` among the top-level ``records``) vs their stage records.

    ``critical_path_stretch`` is the aggregate ratio of actual served
    makespans to dependency critical paths over completed graphs —
    >= 1.0 by construction (a served graph can queue, batch and contend
    for the bus, but can never beat its own dependency chain).
    """
    dags = [r for r in records if r.workload == "dag"]
    done = [r for r in dags if r.status == STATUS_OK]
    stage_done = [r for r in stage_records if r.status == STATUS_OK]
    stage_latencies = [r.latency_us for r in stage_done]
    stage_waits = [r.queue_wait_us for r in stage_done]
    critical_paths = [r.critical_path_us for r in done]
    makespans = [r.latency_us for r in done]
    return {
        "dags": len(dags),
        "completed": len(done),
        "stages": len(stage_records),
        "stage_latency_p50_us": percentile(stage_latencies, 50.0),
        "stage_latency_p99_us": percentile(stage_latencies, 99.0),
        "stage_queue_wait_p50_us": percentile(stage_waits, 50.0),
        "stage_queue_wait_p99_us": percentile(stage_waits, 99.0),
        "critical_path_mean_us": (sum(critical_paths) / len(critical_paths)
                                  if critical_paths else 0.0),
        "makespan_mean_us": (sum(makespans) / len(makespans)
                             if makespans else 0.0),
        "critical_path_stretch": (sum(makespans) / sum(critical_paths)
                                  if sum(critical_paths) > 0 else 0.0),
    }


class Telemetry:
    """Accumulates records and event samples for one serving session."""

    def __init__(self):
        self._lock = threading.Lock()
        #: Replica label stamped onto every record added here (0 for a
        #: bare server; the cluster tier sets it per replica so merged
        #: rollups keep per-replica attribution).
        self.replica = 0
        self.records: List[RequestRecord] = []
        #: ``(virtual_time_us, queue_depth)`` at every queue event.
        self.depth_samples: List[tuple] = []
        #: Dispatch-group sizes, one entry per dispatched group.
        self.occupancies: List[int] = []
        #: Simulated time the shared command bus was occupied (stays 0
        #: under the independent-channel model).
        self.bus_busy_us: float = 0.0
        #: ``{"program": {...}, "stream": {...}, "schedule": {...}}``
        #: hit/miss deltas over the session (set by the server).
        self.cache: Dict[str, Dict[str, int]] = {}
        #: Resilience counters: injected faults per kind, retries,
        #: timeouts, breaker trips, reroutes, detected mismatches,
        #: shed arrivals, shrunk windows.  All zero on a fault-free,
        #: policy-neutral session.
        self.faults_injected: Dict[str, int] = {}
        self.retries: int = 0
        self.timeouts: int = 0
        self.breaker_trips: int = 0
        self.reroutes: int = 0
        self.detected_mismatches: int = 0
        self.shed: int = 0
        self.shrunk_windows: int = 0

    def add(self, record: RequestRecord) -> None:
        with self._lock:
            record.replica = self.replica
            self.records.append(record)

    # -- resilience events -------------------------------------------------------
    def note_fault(self, kind: str) -> None:
        """Count one injected fault (``fail``/``stall``/``slowdown``/
        ``corrupt``)."""
        with self._lock:
            self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1

    def note_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def note_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def note_breaker_trip(self) -> None:
        """One circuit breaker transitioned to open."""
        with self._lock:
            self.breaker_trips += 1

    def note_reroute(self) -> None:
        """One dispatch routed around an open-breaker shard."""
        with self._lock:
            self.reroutes += 1

    def note_detected(self) -> None:
        """Online golden-model check caught a corrupted response."""
        with self._lock:
            self.detected_mismatches += 1

    def note_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def note_shrunk_window(self) -> None:
        with self._lock:
            self.shrunk_windows += 1

    def sample_depth(self, now_us: float, depth: int) -> None:
        with self._lock:
            self.depth_samples.append((now_us, depth))

    def note_group(self, banks: int) -> None:
        with self._lock:
            self.occupancies.append(banks)

    def note_bus(self, occupancy_us: float) -> None:
        """Charge one dispatch's command-bus occupancy (shared-bus
        contention model)."""
        with self._lock:
            self.bus_busy_us += occupancy_us

    def reset(self) -> None:
        with self._lock:
            self.records.clear()
            self.depth_samples.clear()
            self.occupancies.clear()
            self.bus_busy_us = 0.0
            self.cache = {}
            self.faults_injected = {}
            self.retries = 0
            self.timeouts = 0
            self.breaker_trips = 0
            self.reroutes = 0
            self.detected_mismatches = 0
            self.shed = 0
            self.shrunk_windows = 0

    # -- merging -----------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Iterable["Telemetry"]) -> "Telemetry":
        """One telemetry holding every part's records and counters —
        the *exact* cluster rollup (percentiles come out of the pooled
        records, not a weighted approximation; contrast
        :func:`merge_snapshots`).

        Records keep their ``replica`` stamps, so per-replica
        attribution survives the merge; event streams are re-sorted by
        virtual time so depth samples read as one session.  Cache
        hit/miss deltas are summed (replica sessions share the
        process-wide compile caches, so overlapping sessions may double
        count a shared warm-up — the per-cache ``entries`` gauge takes
        the max instead).
        """
        merged = cls()
        for part in parts:
            with part._lock:
                merged.records.extend(part.records)
                merged.depth_samples.extend(part.depth_samples)
                merged.occupancies.extend(part.occupancies)
                merged.bus_busy_us += part.bus_busy_us
                for kind, count in part.faults_injected.items():
                    merged.faults_injected[kind] = \
                        merged.faults_injected.get(kind, 0) + count
                merged.retries += part.retries
                merged.timeouts += part.timeouts
                merged.breaker_trips += part.breaker_trips
                merged.reroutes += part.reroutes
                merged.detected_mismatches += part.detected_mismatches
                merged.shed += part.shed
                merged.shrunk_windows += part.shrunk_windows
                for name, stats in part.cache.items():
                    entry = merged.cache.setdefault(
                        name, {"hits": 0, "misses": 0, "entries": 0})
                    entry["hits"] += stats.get("hits", 0)
                    entry["misses"] += stats.get("misses", 0)
                    entry["entries"] = max(entry["entries"],
                                           stats.get("entries", 0))
        # Records stay in part order (a single part merges to itself,
        # bit-for-bit); only the event stream re-sorts by virtual time.
        merged.depth_samples.sort(key=lambda s: s[0])
        return merged

    # -- rollups -----------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The session rollup (all times in simulated microseconds)."""
        with self._lock:
            records = list(self.records)
            depth_samples = list(self.depth_samples)
            occupancies = list(self.occupancies)
            bus_busy_us = self.bus_busy_us
            cache = {k: dict(v) for k, v in self.cache.items()}
            resilience = {
                "faults_injected": dict(self.faults_injected),
                "retries": self.retries,
                "timeouts": self.timeouts,
                "breaker_trips": self.breaker_trips,
                "reroutes": self.reroutes,
                "detected_mismatches": self.detected_mismatches,
                "shed": self.shed,
                "shrunk_windows": self.shrunk_windows,
            }
        # DAG stage records are internal work units of a graph request:
        # the headline counts/latencies cover the *graph* (whose record
        # carries the summed cycles/energy), while the stages feed the
        # "dag" sub-rollup below.
        stage_records = [r for r in records if r.dag_id]
        records = [r for r in records if not r.dag_id]
        done = [r for r in records if r.status == STATUS_OK]
        orphaned = sum(r.status == STATUS_ORPHANED for r in records)
        latencies = [r.latency_us for r in done]
        waits = [r.queue_wait_us for r in done]
        bus_waits = [r.bus_wait_us for r in done]
        makespan_us = (max(r.completion_us for r in done) -
                       min(r.arrival_us for r in done)) if done else 0.0
        snapshot: Dict[str, object] = {
            # Orphaned records are duplicate attempts of requests served
            # elsewhere — they are not offered load, so they never
            # inflate the request count (or deflate availability).
            "requests": len(records) - orphaned,
            "completed": len(done),
            "orphaned": orphaned,
            "rejected": sum(r.status == STATUS_REJECTED for r in records),
            "expired": sum(r.status == STATUS_EXPIRED for r in records),
            "failed": sum(r.status == STATUS_FAILED for r in records),
            "shed": sum(r.status == STATUS_SHED for r in records),
            "throttled": sum(r.status == STATUS_THROTTLED for r in records),
            "deadline_missed": sum(r.deadline_missed for r in done),
            "makespan_us": makespan_us,
            "throughput_rps": (len(done) / (makespan_us * 1e-6)
                               if makespan_us > 0 else 0.0),
            # Availability: the fraction of offered requests that got a
            # successful response.  Goodput: *useful* completions per
            # simulated second — completed AND inside their deadline.
            "availability": (len(done) / (len(records) - orphaned)
                             if len(records) - orphaned else 1.0),
            "goodput_rps": (sum(not r.deadline_missed for r in done)
                            / (makespan_us * 1e-6)
                            if makespan_us > 0 else 0.0),
            "latency_p50_us": percentile(latencies, 50.0),
            "latency_p99_us": percentile(latencies, 99.0),
            "latency_mean_us": (sum(latencies) / len(latencies)
                                if latencies else 0.0),
            "queue_wait_p50_us": percentile(waits, 50.0),
            "queue_wait_p99_us": percentile(waits, 99.0),
            "max_queue_depth": max((d for _, d in depth_samples), default=0),
            "dispatches": len(occupancies),
            "mean_batch_occupancy": (sum(occupancies) / len(occupancies)
                                     if occupancies else 0.0),
            "total_cycles": sum(r.cycles for r in done),
            "total_energy_nj": sum(r.energy_nj for r in done),
            "bus_busy_us": bus_busy_us,
            "bus_utilization": (bus_busy_us / makespan_us
                                if makespan_us > 0 else 0.0),
            "bus_wait_p99_us": percentile(bus_waits, 99.0),
            "resilience": resilience,
            "dag": _dag_rollup(records, stage_records),
        }
        if cache:
            snapshot["cache"] = cache
            lookups = sum(c.get("hits", 0) + c.get("misses", 0)
                          for c in cache.values())
            hits = sum(c.get("hits", 0) for c in cache.values())
            snapshot["cache_hit_rate"] = hits / lookups if lookups else 0.0
        return snapshot

    def summary(self) -> str:
        """Multi-line human report (the ``repro serve`` CLI output)."""
        s = self.snapshot()
        lines = [
            f"requests       : {s['requests']} "
            f"(completed={s['completed']} rejected={s['rejected']} "
            f"expired={s['expired']} failed={s['failed']} "
            f"shed={s['shed']} throttled={s['throttled']} "
            f"deadline_missed={s['deadline_missed']}"
            + (f" orphaned={s['orphaned']}" if s.get("orphaned") else "")
            + ")",
            f"throughput     : {s['throughput_rps']:.1f} req/s over "
            f"{s['makespan_us'] / 1e3:.2f} ms simulated",
            f"latency        : p50={s['latency_p50_us']:.2f} us  "
            f"p99={s['latency_p99_us']:.2f} us  "
            f"mean={s['latency_mean_us']:.2f} us",
            f"queue wait     : p50={s['queue_wait_p50_us']:.2f} us  "
            f"p99={s['queue_wait_p99_us']:.2f} us  "
            f"max depth={s['max_queue_depth']}",
            f"batching       : {s['dispatches']} dispatches, "
            f"mean occupancy {s['mean_batch_occupancy']:.2f}",
            f"device totals  : {s['total_cycles']} cycles, "
            f"{s['total_energy_nj']:.1f} nJ",
        ]
        dag = s.get("dag") or {}
        if dag.get("dags"):
            lines.append(
                f"dag workloads  : {dag['dags']} graphs "
                f"({dag['stages']} stages), critical path "
                f"mean={dag['critical_path_mean_us']:.2f} us, makespan "
                f"mean={dag['makespan_mean_us']:.2f} us "
                f"(stretch x{dag['critical_path_stretch']:.2f}); stage "
                f"latency p99={dag['stage_latency_p99_us']:.2f} us")
        if s["bus_busy_us"] > 0:
            lines.append(f"shared bus     : "
                         f"{s['bus_utilization'] * 100:.1f}% utilized, "
                         f"wait p99={s['bus_wait_p99_us']:.2f} us")
        res = s["resilience"]
        if any(res["faults_injected"].values()) or any(
                res[k] for k in ("retries", "timeouts", "breaker_trips",
                                 "reroutes", "detected_mismatches", "shed",
                                 "shrunk_windows")):
            injected = sum(res["faults_injected"].values())
            kinds = ", ".join(f"{k}={v}" for k, v in
                              sorted(res["faults_injected"].items()))
            lines.append(
                f"resilience     : {injected} faults injected "
                f"({kinds or 'none'}); retries={res['retries']} "
                f"timeouts={res['timeouts']} "
                f"detected={res['detected_mismatches']}")
            lines.append(
                f"                 breaker trips={res['breaker_trips']} "
                f"reroutes={res['reroutes']} shed={res['shed']} "
                f"shrunk windows={res['shrunk_windows']}; "
                f"availability={s['availability'] * 100:.1f}% "
                f"goodput={s['goodput_rps']:.0f} req/s")
        if "cache_hit_rate" in s:
            lines.append(f"compile caches : "
                         f"{s['cache_hit_rate'] * 100:.1f}% hit rate")
        return "\n".join(lines)


#: Snapshot keys that add across replicas.  ``orphaned`` attempts add
#: too, but are already excluded from each part's ``requests`` count,
#: so a failed-over request is counted exactly once cluster-wide.
_ADDITIVE_KEYS = ("requests", "completed", "rejected", "expired", "failed",
                  "shed", "throttled", "orphaned", "deadline_missed",
                  "dispatches", "total_cycles", "total_energy_nj",
                  "bus_busy_us")
#: Snapshot keys combined as completion-weighted means.
_WEIGHTED_KEYS = ("latency_p50_us", "latency_p99_us", "latency_mean_us",
                  "queue_wait_p50_us", "queue_wait_p99_us",
                  "bus_wait_p99_us")


def merge_snapshots(snapshots: List[Dict[str, object]]) -> Dict[str, object]:
    """Cluster rollup over per-replica :meth:`Telemetry.snapshot` dicts.

    This is the combiner for when only snapshots cross a boundary (e.g.
    replica heartbeats): counters add, latency/wait percentiles combine
    as completed-count-weighted means (an approximation — exact pooled
    percentiles need the records; use :meth:`Telemetry.merge` when they
    are available), availability and goodput are recomputed over the
    cluster totals, and rates are re-derived against the widest
    replica makespan (replicas serve concurrently in the same virtual
    time, so the cluster makespan is the max, not the sum).
    """
    merged: Dict[str, object] = {key: 0 for key in _ADDITIVE_KEYS}
    if not snapshots:
        merged.update({"availability": 1.0, "throughput_rps": 0.0,
                       "goodput_rps": 0.0, "makespan_us": 0.0,
                       "max_queue_depth": 0, "mean_batch_occupancy": 0.0,
                       "bus_utilization": 0.0, "replicas": 0})
        for key in _WEIGHTED_KEYS:
            merged[key] = 0.0
        merged["resilience"] = {"faults_injected": {}}
        merged["dag"] = _dag_rollup([], [])
        return merged
    for snap in snapshots:
        for key in _ADDITIVE_KEYS:
            merged[key] += snap.get(key, 0)
    makespan_us = max(float(snap["makespan_us"]) for snap in snapshots)
    merged["makespan_us"] = makespan_us
    completed = [int(snap["completed"]) for snap in snapshots]
    total_done = sum(completed)
    for key in _WEIGHTED_KEYS:
        merged[key] = (sum(float(snap[key]) * done
                           for snap, done in zip(snapshots, completed))
                       / total_done if total_done else 0.0)
    # good_i = goodput_i * makespan_i: recover each replica's useful
    # completion count, then re-rate the total over the cluster makespan.
    good = sum(float(snap["goodput_rps"]) * float(snap["makespan_us"]) * 1e-6
               for snap in snapshots)
    merged["throughput_rps"] = (total_done / (makespan_us * 1e-6)
                                if makespan_us > 0 else 0.0)
    merged["goodput_rps"] = (good / (makespan_us * 1e-6)
                             if makespan_us > 0 else 0.0)
    merged["availability"] = (total_done / merged["requests"]
                              if merged["requests"] else 1.0)
    dispatches = [int(snap["dispatches"]) for snap in snapshots]
    merged["mean_batch_occupancy"] = (
        sum(float(snap["mean_batch_occupancy"]) * d
            for snap, d in zip(snapshots, dispatches)) / sum(dispatches)
        if sum(dispatches) else 0.0)
    merged["max_queue_depth"] = max(int(snap["max_queue_depth"])
                                    for snap in snapshots)
    merged["bus_utilization"] = (merged["bus_busy_us"] / makespan_us
                                 if makespan_us > 0 else 0.0)
    resilience: Dict[str, object] = {"faults_injected": {}}
    for snap in snapshots:
        res = snap.get("resilience", {})
        for kind, count in res.get("faults_injected", {}).items():
            resilience["faults_injected"][kind] = \
                resilience["faults_injected"].get(kind, 0) + count
        for key in ("retries", "timeouts", "breaker_trips", "reroutes",
                    "detected_mismatches", "shed", "shrunk_windows"):
            resilience[key] = resilience.get(key, 0) + res.get(key, 0)
    merged["resilience"] = resilience
    # DAG sub-rollup: counts add; stage percentiles combine weighted by
    # stage counts, critical-path/makespan means weighted by completed
    # graphs; the stretch re-derives from the combined means so it stays
    # the aggregate makespan/critical-path ratio.
    dag_parts = [snap.get("dag") for snap in snapshots if snap.get("dag")]
    dag = _dag_rollup([], [])
    for key in ("dags", "completed", "stages"):
        dag[key] = sum(int(part.get(key, 0)) for part in dag_parts)
    stage_weights = [int(part.get("stages", 0)) for part in dag_parts]
    done_weights = [int(part.get("completed", 0)) for part in dag_parts]
    for key, weights in (
            ("stage_latency_p50_us", stage_weights),
            ("stage_latency_p99_us", stage_weights),
            ("stage_queue_wait_p50_us", stage_weights),
            ("stage_queue_wait_p99_us", stage_weights),
            ("critical_path_mean_us", done_weights),
            ("makespan_mean_us", done_weights)):
        total = sum(weights)
        dag[key] = (sum(float(part.get(key, 0.0)) * w
                        for part, w in zip(dag_parts, weights)) / total
                    if total else 0.0)
    total_critical = sum(float(part.get("critical_path_mean_us", 0.0)) * w
                         for part, w in zip(dag_parts, done_weights))
    total_makespan = sum(float(part.get("makespan_mean_us", 0.0)) * w
                         for part, w in zip(dag_parts, done_weights))
    dag["critical_path_stretch"] = (total_makespan / total_critical
                                    if total_critical > 0 else 0.0)
    merged["dag"] = dag
    merged["replicas"] = len(snapshots)
    return merged
