"""Session/telemetry layer of the serving subsystem.

Every request that passes through :class:`repro.serve.server.SimServer`
leaves a :class:`RequestRecord` — arrival/dispatch/start/completion
virtual times, queue wait, batch occupancy, shard, simulated
cycles/energy share — and the server samples queue depth at every
arrival/dispatch event.  :meth:`Telemetry.snapshot` rolls those up into
the numbers a serving dashboard would plot: throughput (requests per
simulated second), p50/p99 latency, mean batch occupancy, admission
and deadline counts, cycle/energy totals and cache hit rates.

Thread-safe: records may be appended from worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["RequestRecord", "Telemetry", "percentile",
           "STATUS_OK", "STATUS_REJECTED", "STATUS_EXPIRED"]

#: Terminal states of a served request.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"   # admission control turned it away
STATUS_EXPIRED = "expired"     # deadline passed while still queued


def percentile(values: List[float], p: float) -> float:
    """The ``p``-th percentile (0..100) with linear interpolation —
    matches ``numpy.percentile`` for the sizes telemetry sees, without
    requiring the array round-trip."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (p / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class RequestRecord:
    """Per-request serving facts (virtual / simulated time throughout)."""

    request_id: int
    workload: str = ""
    status: str = STATUS_OK
    priority: int = 0
    arrival_us: float = 0.0
    #: When the scheduler closed the request's dispatch group.
    dispatch_us: float = 0.0
    #: When the shard actually began serving the group.
    start_us: float = 0.0
    completion_us: float = 0.0
    deadline_us: Optional[float] = None
    deadline_missed: bool = False
    #: Members in the request's dispatch group (1 = unbatched).
    group_banks: int = 1
    shard: int = 0
    #: Time the dispatch stalled waiting for the shared command bus
    #: (0 under the independent-channel model).
    bus_wait_us: float = 0.0
    #: This request's share of simulated cycles / energy (per-bank split
    #: for grouped dispatches, so sums over records stay physical).
    cycles: int = 0
    energy_nj: float = 0.0

    @property
    def latency_us(self) -> float:
        """Arrival-to-completion — what the client experienced."""
        return self.completion_us - self.arrival_us

    @property
    def queue_wait_us(self) -> float:
        """Arrival-to-service-start (window wait + shard backlog)."""
        return self.start_us - self.arrival_us

    @property
    def service_us(self) -> float:
        return self.completion_us - self.start_us


class Telemetry:
    """Accumulates records and event samples for one serving session."""

    def __init__(self):
        self._lock = threading.Lock()
        self.records: List[RequestRecord] = []
        #: ``(virtual_time_us, queue_depth)`` at every queue event.
        self.depth_samples: List[tuple] = []
        #: Dispatch-group sizes, one entry per dispatched group.
        self.occupancies: List[int] = []
        #: Simulated time the shared command bus was occupied (stays 0
        #: under the independent-channel model).
        self.bus_busy_us: float = 0.0
        #: ``{"program": {...}, "stream": {...}, "schedule": {...}}``
        #: hit/miss deltas over the session (set by the server).
        self.cache: Dict[str, Dict[str, int]] = {}

    def add(self, record: RequestRecord) -> None:
        with self._lock:
            self.records.append(record)

    def sample_depth(self, now_us: float, depth: int) -> None:
        with self._lock:
            self.depth_samples.append((now_us, depth))

    def note_group(self, banks: int) -> None:
        with self._lock:
            self.occupancies.append(banks)

    def note_bus(self, occupancy_us: float) -> None:
        """Charge one dispatch's command-bus occupancy (shared-bus
        contention model)."""
        with self._lock:
            self.bus_busy_us += occupancy_us

    def reset(self) -> None:
        with self._lock:
            self.records.clear()
            self.depth_samples.clear()
            self.occupancies.clear()
            self.bus_busy_us = 0.0
            self.cache = {}

    # -- rollups -----------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The session rollup (all times in simulated microseconds)."""
        with self._lock:
            records = list(self.records)
            depth_samples = list(self.depth_samples)
            occupancies = list(self.occupancies)
            bus_busy_us = self.bus_busy_us
            cache = {k: dict(v) for k, v in self.cache.items()}
        done = [r for r in records if r.status == STATUS_OK]
        latencies = [r.latency_us for r in done]
        waits = [r.queue_wait_us for r in done]
        bus_waits = [r.bus_wait_us for r in done]
        makespan_us = (max(r.completion_us for r in done) -
                       min(r.arrival_us for r in done)) if done else 0.0
        snapshot: Dict[str, object] = {
            "requests": len(records),
            "completed": len(done),
            "rejected": sum(r.status == STATUS_REJECTED for r in records),
            "expired": sum(r.status == STATUS_EXPIRED for r in records),
            "deadline_missed": sum(r.deadline_missed for r in done),
            "makespan_us": makespan_us,
            "throughput_rps": (len(done) / (makespan_us * 1e-6)
                               if makespan_us > 0 else 0.0),
            "latency_p50_us": percentile(latencies, 50.0),
            "latency_p99_us": percentile(latencies, 99.0),
            "latency_mean_us": (sum(latencies) / len(latencies)
                                if latencies else 0.0),
            "queue_wait_p50_us": percentile(waits, 50.0),
            "queue_wait_p99_us": percentile(waits, 99.0),
            "max_queue_depth": max((d for _, d in depth_samples), default=0),
            "dispatches": len(occupancies),
            "mean_batch_occupancy": (sum(occupancies) / len(occupancies)
                                     if occupancies else 0.0),
            "total_cycles": sum(r.cycles for r in done),
            "total_energy_nj": sum(r.energy_nj for r in done),
            "bus_busy_us": bus_busy_us,
            "bus_utilization": (bus_busy_us / makespan_us
                                if makespan_us > 0 else 0.0),
            "bus_wait_p99_us": percentile(bus_waits, 99.0),
        }
        if cache:
            snapshot["cache"] = cache
            lookups = sum(c.get("hits", 0) + c.get("misses", 0)
                          for c in cache.values())
            hits = sum(c.get("hits", 0) for c in cache.values())
            snapshot["cache_hit_rate"] = hits / lookups if lookups else 0.0
        return snapshot

    def summary(self) -> str:
        """Multi-line human report (the ``repro serve`` CLI output)."""
        s = self.snapshot()
        lines = [
            f"requests       : {s['requests']} "
            f"(completed={s['completed']} rejected={s['rejected']} "
            f"expired={s['expired']} deadline_missed={s['deadline_missed']})",
            f"throughput     : {s['throughput_rps']:.1f} req/s over "
            f"{s['makespan_us'] / 1e3:.2f} ms simulated",
            f"latency        : p50={s['latency_p50_us']:.2f} us  "
            f"p99={s['latency_p99_us']:.2f} us  "
            f"mean={s['latency_mean_us']:.2f} us",
            f"queue wait     : p50={s['queue_wait_p50_us']:.2f} us  "
            f"p99={s['queue_wait_p99_us']:.2f} us  "
            f"max depth={s['max_queue_depth']}",
            f"batching       : {s['dispatches']} dispatches, "
            f"mean occupancy {s['mean_batch_occupancy']:.2f}",
            f"device totals  : {s['total_cycles']} cycles, "
            f"{s['total_energy_nj']:.1f} nJ",
        ]
        if s["bus_busy_us"] > 0:
            lines.append(f"shared bus     : "
                         f"{s['bus_utilization'] * 100:.1f}% utilized, "
                         f"wait p99={s['bus_wait_p99_us']:.2f} us")
        if "cache_hit_rate" in s:
            lines.append(f"compile caches : "
                         f"{s['cache_hit_rate'] * 100:.1f}% hit rate")
        return "\n".join(lines)
