"""Admission-controlled request queue of the serving layer.

The paper's host protocol (Sec. IV.A, :mod:`repro.sim.host`) delivers
one NTT invocation at a time; a serving deployment sees a *stream* of
them.  :class:`RequestQueue` is the front door of that stream: each
incoming :class:`ServeRequest` (a facade request plus arrival time,
priority and an optional deadline) is admitted or rejected at arrival
(bounded queue depth — the backpressure signal a real memory-request
front-end gives), waits in priority order, and leaves when the
batching scheduler dispatches it.

The queue is thread-safe (one lock around every mutation) so the
worker pool and a submitting thread can share it; the deterministic
discrete-event planner in :mod:`repro.serve.scheduler` drives it
single-threaded.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..api.requests import SimRequest
from ..errors import ServeError
from ..sim.driver import SimConfig

__all__ = ["ServeRequest", "RequestQueue"]


@dataclass
class ServeRequest:
    """One entry of the serving stream.

    ``arrival_us`` is simulated (virtual) time — the serving layer is a
    discrete-event model over the simulated machine, so latencies and
    throughput come out in device time, not host wall clock.  ``config``
    optionally overrides the server's :class:`SimConfig` for this
    request (requests only batch with others under the *same* effective
    config — the merged program depends on it).
    """

    request: SimRequest
    arrival_us: float = 0.0
    #: Higher wins when the backlog forces a choice.
    priority: int = 0
    #: Absolute virtual-time deadline; ``None`` means best-effort.
    deadline_us: Optional[float] = None
    request_id: int = 0
    config: Optional[SimConfig] = None
    #: Tenant the request arrives under ("" = untenanted).  The cluster
    #: tier's per-tenant quotas (:mod:`repro.cluster.quotas`) meter on
    #: it; a bare server carries it through to telemetry untouched.
    tenant: str = ""

    def effective_config(self, default: SimConfig) -> SimConfig:
        """This request's config override, or the server's default —
        the config the merged program (and hence the coalescing key)
        actually depends on."""
        return self.config if self.config is not None else default


class RequestQueue:
    """Bounded, priority-ordered waiting room between arrivals and the
    batching scheduler."""

    def __init__(self, max_depth: int = 256):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._waiting: List[ServeRequest] = []
        self._ids = itertools.count(1)
        self.admitted = 0
        self.rejected = 0
        self.removed = 0

    def next_id(self) -> int:
        """A fresh request id (used when the caller did not assign one)."""
        return next(self._ids)

    # -- admission ---------------------------------------------------------------
    def offer(self, sreq: ServeRequest) -> bool:
        """Admit ``sreq`` unless the queue is full.

        Admission control happens *at arrival*: a full queue rejects
        immediately (the response a loaded server owes its clients)
        rather than growing without bound.
        """
        with self._lock:
            if len(self._waiting) >= self.max_depth:
                self.rejected += 1
                return False
            self.admitted += 1
            self._waiting.append(sreq)
            return True

    def remove(self, sreq: ServeRequest) -> None:
        """Take one waiting request out (dispatched or expired).

        Raises :class:`~repro.errors.ServeError` (with the request and
        queue context a caller can act on) when the request is not
        waiting — a double dispatch or a bookkeeping bug, not the bare
        ``ValueError`` a list raises.
        """
        if not self.discard(sreq):
            with self._lock:
                depth = len(self._waiting)
            raise ServeError(
                f"request {sreq.request_id} ({sreq.request.workload}, "
                f"arrival {sreq.arrival_us}us) is not waiting in the "
                f"queue (depth {depth}): it was already dispatched, "
                f"expired, or never admitted")

    def discard(self, sreq: ServeRequest) -> bool:
        """Idempotent :meth:`remove`: take the request out if it is
        waiting, report whether anything happened.  The scheduler's
        removal path uses this so a retried/already-closed group never
        trips over its own bookkeeping."""
        with self._lock:
            for i, waiting in enumerate(self._waiting):
                if waiting is sreq:
                    del self._waiting[i]
                    self.removed += 1
                    return True
            return False

    # -- inspection --------------------------------------------------------------
    def depth(self) -> int:
        with self._lock:
            return len(self._waiting)

    def waiting(self) -> List[ServeRequest]:
        """Snapshot of the backlog, priority-ordered (highest priority
        first, FIFO within a priority level)."""
        with self._lock:
            return sorted(self._waiting,
                          key=lambda s: (-s.priority, s.arrival_us,
                                         s.request_id))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"depth": len(self._waiting), "admitted": self.admitted,
                    "rejected": self.rejected, "removed": self.removed,
                    "max_depth": self.max_depth}
