"""Sharded, batching serving layer over the :mod:`repro.api` facade.

The ROADMAP's north star is a system that serves heavy NTT traffic;
this package is the layer between "a stream of incoming requests" and
the one-shot facade::

    from repro.serve import LoadGenerator, SimServer, make_scenario

    server = SimServer(max_banks=8, window_us=50.0)
    load = LoadGenerator(make_scenario("skewed"), rate_rps=50_000,
                         count=200, seed=0)
    results = server.serve(load.requests())
    print(server.telemetry.summary())

Pieces (each its own module):

* :mod:`~repro.serve.queueing` — admission-controlled priority queue of
  :class:`ServeRequest`\\ s (arrival time, priority, deadline).
* :mod:`~repro.serve.scheduler` — the batching scheduler: window
  coalescing of same-shape NTTs into multi-bank dispatches, sharding of
  distinct shapes across simulated channels.
* :mod:`~repro.serve.workers` — inline/thread worker pool pipelining
  group *k+1*'s compile under group *k*'s execution.
* :mod:`~repro.serve.telemetry` — per-request records and session
  rollups (throughput, p50/p99 latency, occupancy, energy).
* :mod:`~repro.serve.loadgen` — deterministic Poisson load over named
  scenario mixes (``uniform`` / ``skewed`` / ``fhe`` / ``mixed`` /
  ``chaos`` / ``dag`` / ``pipeline``), with step arrival-rate profiles
  for burst overloads.
* :mod:`~repro.serve.faults` — seeded virtual-time fault injection
  (:class:`FaultPlan`) and the :class:`ResiliencePolicy` recovery
  knobs: retries with backoff, timeouts, circuit breakers, online
  detection, load shedding; plus the replica-scoped
  crash/hang/partition timelines (:class:`ReplicaFaultPlan`) the
  cluster watchdog heals around.
* :mod:`~repro.serve.server` — :class:`SimServer`, the loop tying them
  together — including dependency-aware serving of
  :class:`~repro.api.DagRequest` op-graphs: a stage enters a batching
  window only once every parent has settled, ready stages from
  concurrent graphs coalesce by shape, and ``drain()`` returns whole
  graphs in submission order.

Scheduling changes *when* work runs, never *what it computes*: every
response is bit-identical to a standalone ``Simulator.run`` of the same
request (for a DAG, stage-by-stage against the golden ``"dag"``
workload) — and a zero-rate fault plan plus the neutral policy leave
the whole stack bit-identical to one without them.
"""

from .faults import (
    FAULT_PROFILES,
    POLICIES,
    REPLICA_FAULT_KINDS,
    REPLICA_FAULT_PROFILES,
    FaultDecision,
    FaultPlan,
    FaultProfile,
    ReplicaFaultEvent,
    ReplicaFaultPlan,
    ReplicaFaultProfile,
    ResiliencePolicy,
    make_fault_plan,
    make_policy,
    make_replica_fault_plan,
)
from .loadgen import SCENARIOS, LoadGenerator, Scenario, make_scenario
from .queueing import RequestQueue, ServeRequest
from .scheduler import (
    BatchingScheduler,
    DispatchUnit,
    PlanSession,
    sequential_policy,
    shape_key,
)
from .server import BUS_MODELS, ServeResult, SimServer
from .telemetry import (
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_ORPHANED,
    STATUS_REJECTED,
    STATUS_SHED,
    STATUS_THROTTLED,
    RequestRecord,
    Telemetry,
    merge_snapshots,
    percentile,
)
from .workers import (
    WORKER_BACKENDS,
    InlineWorkerPool,
    ThreadWorkerPool,
    WorkerPool,
    make_pool,
)

__all__ = [
    "ServeRequest",
    "RequestQueue",
    "BatchingScheduler",
    "DispatchUnit",
    "PlanSession",
    "sequential_policy",
    "shape_key",
    "BUS_MODELS",
    "WorkerPool",
    "InlineWorkerPool",
    "ThreadWorkerPool",
    "WORKER_BACKENDS",
    "make_pool",
    "RequestRecord",
    "Telemetry",
    "merge_snapshots",
    "percentile",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_EXPIRED",
    "STATUS_FAILED",
    "STATUS_SHED",
    "STATUS_THROTTLED",
    "STATUS_ORPHANED",
    "FaultProfile",
    "FaultDecision",
    "FaultPlan",
    "ResiliencePolicy",
    "FAULT_PROFILES",
    "POLICIES",
    "make_fault_plan",
    "make_policy",
    "ReplicaFaultProfile",
    "ReplicaFaultEvent",
    "ReplicaFaultPlan",
    "REPLICA_FAULT_PROFILES",
    "REPLICA_FAULT_KINDS",
    "make_replica_fault_plan",
    "Scenario",
    "LoadGenerator",
    "SCENARIOS",
    "make_scenario",
    "ServeResult",
    "SimServer",
]
