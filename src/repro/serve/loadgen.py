"""Synthetic open-loop load generation for serving experiments.

Arrivals are open-loop Poisson (exponential inter-arrival gaps from a
seeded RNG — clients do not wait for responses, so the server sees the
offered rate whether or not it keeps up), over named *scenario mixes*
of request shapes:

* ``uniform``  — equal thirds of N=256/512/1024 forward NTTs: shape
  diversity, exercises sharding.
* ``skewed``   — 90% one hot shape (N=512), 10% N=256: the
  batching-friendly traffic an FHE service actually sees (every limb of
  every ciphertext shares one ring), and the benchmark's headline mix.
* ``fhe``      — forward NTTs mixed with native negacyclic transforms
  and full FHE ring multiplies: batchable and unbatchable work
  interleaved, the worst case for a batching window.
* ``mixed``    — the full batchable transform zoo: forward and inverse
  cyclic NTTs plus forward and inverse negacyclic transforms, each
  kind coalescing into its own dispatch group (the generalized-
  batching scenario).

Everything is deterministic given ``seed``: the same scenario, rate and
count replay the same requests with the same arrival times, priorities
and values — the closed-form property the serving experiments and CI
assertions rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..api.requests import FheOpRequest, NegacyclicRequest, NttRequest, SimRequest
from ..arith.primes import find_ntt_prime
from ..arith.roots import NttParams
from ..ntt.negacyclic import NegacyclicParams
from .queueing import ServeRequest

__all__ = ["Scenario", "LoadGenerator", "SCENARIOS", "make_scenario"]


@lru_cache(maxsize=None)
def _ntt_params(n: int) -> NttParams:
    return NttParams(n, find_ntt_prime(n, 32))


@lru_cache(maxsize=None)
def _ring_params(n: int) -> NegacyclicParams:
    return NegacyclicParams(n, find_ntt_prime(n, 32, negacyclic=True))


def _ntt_maker(n: int,
               inverse: bool = False) -> Callable[[random.Random],
                                                  SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        params = _ntt_params(n)
        return NttRequest(params=params,
                          values=tuple(rng.randrange(params.q)
                                       for _ in range(n)),
                          inverse=inverse)
    return make


def _negacyclic_maker(n: int,
                      inverse: bool = False) -> Callable[[random.Random],
                                                         SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        ring = _ring_params(n)
        return NegacyclicRequest(ring=ring,
                                 values=tuple(rng.randrange(ring.q)
                                              for _ in range(n)),
                                 inverse=inverse)
    return make


def _fhe_maker(n: int) -> Callable[[random.Random], SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        ring = _ring_params(n)
        return FheOpRequest(
            ring=ring, op="multiply",
            a=tuple(rng.randrange(ring.q) for _ in range(n)),
            b=tuple(rng.randrange(ring.q) for _ in range(n)))
    return make


@dataclass(frozen=True)
class Scenario:
    """A weighted mix of request factories."""

    name: str
    description: str
    #: ``(weight, factory)`` pairs; weights need not be normalized.
    mix: Tuple[Tuple[float, Callable[[random.Random], SimRequest]], ...]


SCENARIOS: Dict[str, Scenario] = {
    "uniform": Scenario(
        name="uniform",
        description="equal thirds of N=256/512/1024 forward NTTs",
        mix=((1.0, _ntt_maker(256)), (1.0, _ntt_maker(512)),
             (1.0, _ntt_maker(1024)))),
    "skewed": Scenario(
        name="skewed",
        description="90% N=512 forward NTTs, 10% N=256 (hot-shape FHE "
                    "traffic; the batching benchmark's mix)",
        mix=((9.0, _ntt_maker(512)), (1.0, _ntt_maker(256)))),
    "fhe": Scenario(
        name="fhe",
        description="60% N=512 forward NTTs, 25% native negacyclic "
                    "N=256, 15% full FHE ring multiplies N=256",
        mix=((6.0, _ntt_maker(512)), (2.5, _negacyclic_maker(256)),
             (1.5, _fhe_maker(256)))),
    "mixed": Scenario(
        name="mixed",
        description="every batchable transform kind at N=512: 40% "
                    "forward / 25% inverse cyclic NTTs, 20% forward / "
                    "15% inverse negacyclic transforms",
        mix=((4.0, _ntt_maker(512)), (2.5, _ntt_maker(512, inverse=True)),
             (2.0, _negacyclic_maker(512)),
             (1.5, _negacyclic_maker(512, inverse=True)))),
}


def make_scenario(name: str) -> Scenario:
    """The named scenario, with the known names in the error message."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known: {known}") \
            from None


class LoadGenerator:
    """Deterministic open-loop Poisson arrival stream over a scenario.

    ``rate_rps`` is the offered rate in requests per *simulated* second;
    ``high_priority_fraction`` marks that share of requests priority 1
    (the rest 0); ``deadline_us`` optionally stamps every request with
    ``arrival + deadline_us``.
    """

    def __init__(self, scenario: Scenario, *, rate_rps: float,
                 count: int, seed: int = 0,
                 high_priority_fraction: float = 0.0,
                 deadline_us: Optional[float] = None):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")
        if count < 1:
            raise ValueError("count must be >= 1")
        if not 0.0 <= high_priority_fraction <= 1.0:
            raise ValueError("high_priority_fraction must be in [0, 1]")
        self.scenario = scenario
        self.rate_rps = rate_rps
        self.count = count
        self.seed = seed
        self.high_priority_fraction = high_priority_fraction
        self.deadline_us = deadline_us

    def stream(self) -> Iterator[ServeRequest]:
        """Yield the arrival stream one request at a time, in arrival
        order — the *live-client* form: each yielded request can go
        straight into :meth:`repro.serve.SimServer.submit` as it
        "happens", while :meth:`requests` is just this stream
        materialized for the offline ``serve()`` path."""
        rng = random.Random(self.seed)
        weights = [w for w, _ in self.scenario.mix]
        makers = [m for _, m in self.scenario.mix]
        mean_gap_us = 1e6 / self.rate_rps
        now_us = 0.0
        for request_id in range(1, self.count + 1):
            now_us += rng.expovariate(1.0) * mean_gap_us
            maker = rng.choices(makers, weights=weights, k=1)[0]
            priority = int(rng.random() < self.high_priority_fraction)
            deadline = (now_us + self.deadline_us
                        if self.deadline_us is not None else None)
            yield ServeRequest(request=maker(rng), arrival_us=now_us,
                               priority=priority, deadline_us=deadline,
                               request_id=request_id)

    def requests(self) -> List[ServeRequest]:
        """The full arrival list, sorted by arrival time, ids 1..count."""
        return list(self.stream())
