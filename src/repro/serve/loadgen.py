"""Synthetic open-loop load generation for serving experiments.

Arrivals are open-loop Poisson (exponential inter-arrival gaps from a
seeded RNG — clients do not wait for responses, so the server sees the
offered rate whether or not it keeps up), over named *scenario mixes*
of request shapes:

* ``uniform``  — equal thirds of N=256/512/1024 forward NTTs: shape
  diversity, exercises sharding.
* ``skewed``   — 90% one hot shape (N=512), 10% N=256: the
  batching-friendly traffic an FHE service actually sees (every limb of
  every ciphertext shares one ring), and the benchmark's headline mix.
* ``fhe``      — forward NTTs mixed with native negacyclic transforms
  and full FHE ring multiplies: batchable and unbatchable work
  interleaved, the worst case for a batching window.
* ``mixed``    — the full batchable transform zoo: forward and inverse
  cyclic NTTs plus forward and inverse negacyclic transforms, each
  kind coalescing into its own dispatch group (the generalized-
  batching scenario).
* ``chaos``    — the resilience drill: every transform kind plus
  unbatchable FHE ring multiplies, the traffic the fault-injection
  experiments (:mod:`repro.serve.faults`) run against.
* ``dag``      — dependent op-graphs (:class:`repro.api.DagRequest`):
  CKKS-style multiply chains and Kyber KEM batches from
  :mod:`repro.dag`, mixed with plain hot-shape NTTs — the traffic the
  dependency-aware scheduler exists for.
* ``pipeline`` — linear NTT pipelines over one hot ring mixed with
  single transforms of the same shape: every stage batchable, so
  concurrent graphs coalesce stage-by-stage.

Arrival rates can *step* over virtual time (``rate_profile``): a burst
or ramp overload — e.g. :meth:`LoadGenerator.burst_profile` — drives
the graceful-degradation policies (load shedding, window shrinking)
past their thresholds deterministically.

Everything is deterministic given ``seed``: the same scenario, rate and
count replay the same requests with the same arrival times, priorities
and values — the closed-form property the serving experiments and CI
assertions rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..api.requests import FheOpRequest, NegacyclicRequest, NttRequest, SimRequest
from ..arith.primes import find_ntt_prime
from ..arith.roots import NttParams
from ..errors import ServeError
from ..ntt.negacyclic import NegacyclicParams
from .queueing import ServeRequest

__all__ = ["Scenario", "LoadGenerator", "SCENARIOS", "make_scenario"]


@lru_cache(maxsize=None)
def _ntt_params(n: int) -> NttParams:
    return NttParams(n, find_ntt_prime(n, 32))


@lru_cache(maxsize=None)
def _ring_params(n: int) -> NegacyclicParams:
    return NegacyclicParams(n, find_ntt_prime(n, 32, negacyclic=True))


def _ntt_maker(n: int,
               inverse: bool = False) -> Callable[[random.Random],
                                                  SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        params = _ntt_params(n)
        return NttRequest(params=params,
                          values=tuple(rng.randrange(params.q)
                                       for _ in range(n)),
                          inverse=inverse)
    return make


def _negacyclic_maker(n: int,
                      inverse: bool = False) -> Callable[[random.Random],
                                                         SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        ring = _ring_params(n)
        return NegacyclicRequest(ring=ring,
                                 values=tuple(rng.randrange(ring.q)
                                              for _ in range(n)),
                                 inverse=inverse)
    return make


def _fhe_maker(n: int) -> Callable[[random.Random], SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        ring = _ring_params(n)
        return FheOpRequest(
            ring=ring, op="multiply",
            a=tuple(rng.randrange(ring.q) for _ in range(n)),
            b=tuple(rng.randrange(ring.q) for _ in range(n)))
    return make


def _ckks_chain_maker(n: int, limbs: int,
                      depth: int) -> Callable[[random.Random], SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        from ..dag import ckks_mul_chain
        return ckks_mul_chain(n, limbs=limbs, depth=depth,
                              seed=rng.randrange(2 ** 31))
    return make


def _kem_batch_maker(count: int,
                     n: int) -> Callable[[random.Random], SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        from ..dag import kem_batch
        return kem_batch(count, n=n, seed=rng.randrange(2 ** 31))
    return make


def _pipeline_maker(n: int,
                    stages: int) -> Callable[[random.Random], SimRequest]:
    def make(rng: random.Random) -> SimRequest:
        from ..dag import ntt_pipeline
        return ntt_pipeline(n, stages=stages, seed=rng.randrange(2 ** 31))
    return make


@dataclass(frozen=True)
class Scenario:
    """A weighted mix of request factories."""

    name: str
    description: str
    #: ``(weight, factory)`` pairs; weights need not be normalized.
    mix: Tuple[Tuple[float, Callable[[random.Random], SimRequest]], ...]


SCENARIOS: Dict[str, Scenario] = {
    "uniform": Scenario(
        name="uniform",
        description="equal thirds of N=256/512/1024 forward NTTs",
        mix=((1.0, _ntt_maker(256)), (1.0, _ntt_maker(512)),
             (1.0, _ntt_maker(1024)))),
    "skewed": Scenario(
        name="skewed",
        description="90% N=512 forward NTTs, 10% N=256 (hot-shape FHE "
                    "traffic; the batching benchmark's mix)",
        mix=((9.0, _ntt_maker(512)), (1.0, _ntt_maker(256)))),
    "fhe": Scenario(
        name="fhe",
        description="60% N=512 forward NTTs, 25% native negacyclic "
                    "N=256, 15% full FHE ring multiplies N=256",
        mix=((6.0, _ntt_maker(512)), (2.5, _negacyclic_maker(256)),
             (1.5, _fhe_maker(256)))),
    "mixed": Scenario(
        name="mixed",
        description="every batchable transform kind at N=512: 40% "
                    "forward / 25% inverse cyclic NTTs, 20% forward / "
                    "15% inverse negacyclic transforms",
        mix=((4.0, _ntt_maker(512)), (2.5, _ntt_maker(512, inverse=True)),
             (2.0, _negacyclic_maker(512)),
             (1.5, _negacyclic_maker(512, inverse=True)))),
    "chaos": Scenario(
        name="chaos",
        description="the resilience drill: 30% N=512 / 15% N=256 forward "
                    "NTTs, 15% inverse N=512 NTTs, 15% forward / 10% "
                    "inverse negacyclic N=256, 15% FHE ring multiplies "
                    "N=256 (batchable and unbatchable work under fault "
                    "injection)",
        mix=((3.0, _ntt_maker(512)), (1.5, _ntt_maker(256)),
             (1.5, _ntt_maker(512, inverse=True)),
             (1.5, _negacyclic_maker(256)),
             (1.0, _negacyclic_maker(256, inverse=True)),
             (1.5, _fhe_maker(256)))),
    "dag": Scenario(
        name="dag",
        description="dependent op-graphs: 40% CKKS multiply chains "
                    "(N=256, 2 limbs x 2 levels), 20% Kyber KEM batches "
                    "of 3, 40% plain N=512 forward NTTs",
        mix=((4.0, _ckks_chain_maker(256, limbs=2, depth=2)),
             (2.0, _kem_batch_maker(3, 256)),
             (4.0, _ntt_maker(512)))),
    "pipeline": Scenario(
        name="pipeline",
        description="linear NTT pipelines over the hot N=512 ring: 50% "
                    "3-stage chains, 50% single forward NTTs of the "
                    "same shape (stage-by-stage cross-graph batching)",
        mix=((5.0, _pipeline_maker(512, stages=3)),
             (5.0, _ntt_maker(512)))),
}


def make_scenario(name: str) -> Scenario:
    """The named scenario; an unknown name raises a contextful
    :class:`~repro.errors.ServeError` listing every available one."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ServeError(f"unknown scenario {name!r}; "
                         f"available scenarios: {known}") from None


class LoadGenerator:
    """Deterministic open-loop Poisson arrival stream over a scenario.

    ``rate_rps`` is the offered rate in requests per *simulated* second;
    ``high_priority_fraction`` marks that share of requests priority 1
    (the rest 0); ``deadline_us`` optionally stamps every request with
    ``arrival + deadline_us``.

    ``rate_profile`` steps the offered rate over virtual time: sorted
    ``(start_us, rate_rps)`` pairs, each taking effect at its start
    time (``rate_rps`` applies before the first step).  A burst or
    ramp overload is just a profile — see :meth:`burst_profile`.

    ``tenants`` turns the stream multi-tenant: ``(name, weight)`` pairs
    draw each request's ``tenant`` field (the arrival *mix* of tenants
    — :meth:`noisy_neighbor` is the skewed preset the quota
    experiments run).  The draw uses its own RNG stream, so a seeded
    stream yields bit-identical arrivals, shapes and values with or
    without tenancy — tenancy only labels them.
    """

    def __init__(self, scenario: Scenario, *, rate_rps: float,
                 count: int, seed: int = 0,
                 high_priority_fraction: float = 0.0,
                 deadline_us: Optional[float] = None,
                 rate_profile: Optional[Tuple[Tuple[float, float], ...]]
                 = None,
                 tenants: Optional[Tuple[Tuple[str, float], ...]] = None):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")
        if count < 1:
            raise ValueError("count must be >= 1")
        if not 0.0 <= high_priority_fraction <= 1.0:
            raise ValueError("high_priority_fraction must be in [0, 1]")
        if rate_profile is not None:
            steps = tuple(rate_profile)
            starts = [start for start, _ in steps]
            if starts != sorted(starts):
                raise ValueError("rate_profile steps must be sorted by "
                                 "start time")
            if any(rate <= 0 for _, rate in steps):
                raise ValueError("rate_profile rates must be > 0")
            rate_profile = steps
        if tenants is not None:
            tenants = tuple(tenants)
            if not tenants:
                raise ValueError("tenants must be non-empty when given")
            if any(weight <= 0 for _, weight in tenants):
                raise ValueError("tenant weights must be > 0")
        self.tenants = tenants
        self.scenario = scenario
        self.rate_rps = rate_rps
        self.count = count
        self.seed = seed
        self.high_priority_fraction = high_priority_fraction
        self.deadline_us = deadline_us
        self.rate_profile = rate_profile

    @staticmethod
    def noisy_neighbor(hog: str = "hog", neighbors: int = 3,
                       hog_share: float = 0.8
                       ) -> Tuple[Tuple[str, float], ...]:
        """The skewed tenant mix of the quota experiments: one ``hog``
        tenant offering ``hog_share`` of the traffic, the rest split
        evenly across ``neighbors`` well-behaved tenants — the classic
        noisy-neighbor shape per-tenant quotas exist to contain."""
        if not 0.0 < hog_share < 1.0:
            raise ValueError("hog_share must be in (0, 1)")
        if neighbors < 1:
            raise ValueError("neighbors must be >= 1")
        share = (1.0 - hog_share) / neighbors
        return ((hog, hog_share),) + tuple(
            (f"tenant-{chr(ord('a') + i)}", share)
            for i in range(neighbors))

    @staticmethod
    def burst_profile(base_rps: float, peak_rps: float, *,
                      start_us: float, duration_us: float
                      ) -> Tuple[Tuple[float, float], ...]:
        """A step overload: ``base_rps`` until ``start_us``, then
        ``peak_rps`` for ``duration_us``, then back — the arrival shape
        the graceful-degradation experiments drive."""
        return ((0.0, base_rps), (start_us, peak_rps),
                (start_us + duration_us, base_rps))

    def rate_at(self, now_us: float) -> float:
        """The offered rate in force at virtual time ``now_us``."""
        rate = self.rate_rps
        if self.rate_profile is not None:
            for start_us, step_rate in self.rate_profile:
                if start_us <= now_us:
                    rate = step_rate
                else:
                    break
        return rate

    def stream(self) -> Iterator[ServeRequest]:
        """Yield the arrival stream one request at a time, in arrival
        order — the *live-client* form: each yielded request can go
        straight into :meth:`repro.serve.SimServer.submit` as it
        "happens", while :meth:`requests` is just this stream
        materialized for the offline ``serve()`` path."""
        rng = random.Random(self.seed)
        weights = [w for w, _ in self.scenario.mix]
        makers = [m for _, m in self.scenario.mix]
        # Tenancy draws from a sibling stream so labelling requests
        # never perturbs their arrivals, shapes or values.
        trng = random.Random(f"tenants:{self.seed}")
        tenant_names = ([name for name, _ in self.tenants]
                        if self.tenants else None)
        tenant_weights = ([weight for _, weight in self.tenants]
                          if self.tenants else None)
        now_us = 0.0
        for request_id in range(1, self.count + 1):
            now_us += rng.expovariate(1.0) * (1e6 / self.rate_at(now_us))
            maker = rng.choices(makers, weights=weights, k=1)[0]
            priority = int(rng.random() < self.high_priority_fraction)
            deadline = (now_us + self.deadline_us
                        if self.deadline_us is not None else None)
            tenant = (trng.choices(tenant_names, weights=tenant_weights,
                                   k=1)[0] if tenant_names else "")
            yield ServeRequest(request=maker(rng), arrival_us=now_us,
                               priority=priority, deadline_us=deadline,
                               request_id=request_id, tenant=tenant)

    def requests(self) -> List[ServeRequest]:
        """The full arrival list, sorted by arrival time, ids 1..count."""
        return list(self.stream())
