"""`SimServer`: the serving loop over the Simulator facade.

::

    arrivals ──> RequestQueue ──> BatchingScheduler ──> shard 0 ─┐
                 (admission,      (window coalescing,   shard 1 ─┼─> shared
                  priorities,      multi-bank merge,      ...    │   command
                  deadlines)       shape→shard routing) shard S ─┘   bus
                                                            │
                        WorkerPool (inline | thread) ───────┘
                        pipelines group k+1's compile
                        under group k's execution

Two clocks run side by side.  *Virtual* (simulated-device) time drives
everything a client would measure: arrivals, batching windows, shard
backlogs, bus contention, latencies, throughput — a deterministic
discrete-event model whose service times are the timing engine's
schedule latencies.  *Host* wall-clock time is how long the functional
simulation takes to chew through the plan; the worker pool only
optimizes the latter and can never change the former.

Planning (group membership, dispatch times, drops) depends only on
arrivals and the window — never on service times — so the plan is fixed
before execution begins and execution can be pipelined freely.  That
same property is what makes the server *live-drivable*: the
two-phase model replans per window as requests arrive, so
:meth:`SimServer.submit` / :meth:`SimServer.poll` /
:meth:`SimServer.drain` expose the identical machinery incrementally —
an offline :meth:`SimServer.serve` call is literally a submit loop plus
a drain, and the two produce bit-identical results and records.

Shards contend for the command bus.  Under the default ``bus="shared"``
model every dispatch occupies the bus for its compiled stream's
command count (one command per cycle — the Sec. VI.A constraint,
extended across shards), so shard scaling bends realistically as the
bus saturates; ``bus="independent"`` restores the optimistic
independent-channel model for comparison.

Every response is bit-identical to a standalone ``Simulator.run`` of
the same request: a dispatch group executes as a
:class:`~repro.api.MultiBankRequest` whose per-bank streams are the
same compiled programs a solo run replays — for forward *and* inverse,
cyclic *and* negacyclic transforms
(``benchmarks/bench_serve.py`` asserts this on every run).

Faults and resilience.  An optional :class:`~repro.serve.FaultPlan`
(``faults=``/``fault_seed=``) injects deterministic, virtual-time
faults at the dispatch boundary — transient failures, stalls,
slowdowns, flipped output words — and a
:class:`~repro.serve.ResiliencePolicy` (``policy=``) recovers: retries
with capped exponential backoff under a global budget, per-dispatch
timeouts, per-shard circuit breakers that route traffic around a
failing channel, online golden-model detection of corrupted outputs,
and priority-aware load shedding / window shrinking under overload.
With no plan (or a zero-rate one) and a neutral policy every code path
below is byte-for-byte today's behavior — asserted in
``tests/test_serve_faults.py`` and the chaos-smoke CI job.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..api.dag import DagRequest
from ..api.requests import SimRequest
from ..api.response import SimResponse
from ..api.simulator import Simulator
from ..api.workloads import precompile_request
from ..errors import FunctionalMismatch, ReproError, ServeError, ShardFailure
from ..sim.driver import SimConfig
from ..sim.multibank import TransformSpec
from .faults import (
    NO_FAULT,
    FaultPlan,
    FaultProfile,
    ResiliencePolicy,
    make_fault_plan,
    make_policy,
)
from .queueing import RequestQueue, ServeRequest
from .scheduler import BatchingScheduler, DispatchUnit, PlanSession, \
    sequential_policy
from .telemetry import STATUS_FAILED, STATUS_OK, RequestRecord, Telemetry
from .workers import make_pool

__all__ = ["ServeResult", "SimServer", "BUS_MODELS"]

#: Cross-shard command-bus contention models.
BUS_MODELS = ("shared", "independent")


@dataclass
class ServeResult:
    """One served request: its record, and the response (``None`` when
    admission rejected it or its deadline expired in the queue)."""

    record: RequestRecord
    response: Optional[object] = None
    #: For a served :class:`~repro.api.DagRequest`: every stage's own
    #: :class:`ServeResult` by node name, in node order (``None`` for
    #: ordinary requests) — the per-stage records and responses the
    #: bit-identity gates compare against the standalone golden run.
    stages: Optional[Dict[str, "ServeResult"]] = None

    @property
    def ok(self) -> bool:
        return self.response is not None


@dataclass
class _Attempt:
    """One dispatch attempt of a unit.

    The retry policy re-enqueues the *same* unit with a bumped attempt
    number and a backoff-delayed ready time; the fault plan draws per
    attempt, so a re-dispatch sees fresh (in)fortune — exactly how a
    transient fault behaves."""

    unit: DispatchUnit
    ready_us: float
    attempt: int = 1

    @property
    def seq(self) -> int:
        return self.unit.seq

    @property
    def priority(self) -> int:
        return self.unit.priority


@dataclass
class _Breaker:
    """One shard's circuit breaker (materializes on its first failure).

    ``closed`` counts consecutive failures; at ``threshold`` the shard
    opens (serves nothing until ``open_until_us``, traffic reroutes);
    the first dispatch after the cooldown runs as a ``half_open`` probe
    whose outcome closes or re-opens the breaker."""

    threshold: int
    cooldown_us: float
    consecutive: int = 0
    state: str = "closed"
    open_until_us: float = 0.0


@dataclass
class _ShardState:
    """One simulated channel/device: when it frees up, and the
    dispatch attempts waiting for it."""

    now_us: float = 0.0
    backlog: List[_Attempt] = field(default_factory=list)


@dataclass
class _DagState:
    """Server-side execution state of one in-flight
    :class:`~repro.api.DagRequest`.

    Stages become ordinary planner arrivals *lazily*: roots at the
    graph's arrival, every other node only once all of its parents have
    settled (the dependency-aware release in
    :meth:`SimServer._release_ready`).
    """

    sreq: ServeRequest
    request: DagRequest
    #: Node name -> stage request id (allocated at release time).
    stage_ids: Dict[str, int] = field(default_factory=dict)
    #: Node names already released into the planner (or cascade-failed).
    released: set = field(default_factory=set)
    done: bool = False


class _Session:
    """One serving session: a planning walk plus its execution state.

    Both entry styles build on it — :meth:`SimServer.serve` feeds a
    whole sorted arrival list and drains immediately; the live
    :meth:`SimServer.submit` surface feeds one arrival at a time and
    settles lazily on :meth:`SimServer.poll`/:meth:`SimServer.drain`.
    """

    def __init__(self, server: "SimServer"):
        self.planner: PlanSession = server.scheduler.begin(
            server.queue, server.config, server.telemetry, server.policy)
        #: Session clock offset: arrivals are relative to serve()/first
        #: submit() and shifted onto the server's monotonic clock.
        self.offset = server._clock_us
        #: Request ids in submission order (drain()'s result order).
        self.order: List[int] = []
        self.results: Dict[int, ServeResult] = {}
        self.seen_ids: set = set()
        self.cache_before = Simulator(server.config).cache_info()
        self.shards: Dict[int, _ShardState] = {}
        #: Virtual time the shared command bus frees up.
        self.bus_free_us = 0.0
        self.max_arrival_us = self.offset
        #: Per-shard circuit breakers (created on a shard's first
        #: failure — a fault-free session never allocates one).
        self.breakers: Dict[int, _Breaker] = {}
        #: Remaining session-wide retry budget (``None`` = unlimited).
        self.retry_budget: Optional[int] = server.policy.retry_budget
        #: In-flight DAGs by their (whole-graph) request id.
        self.dags: Dict[int, _DagState] = {}
        #: Stage request id -> (owning dag id, node name).  Stage ids
        #: never enter ``order``: drain()/serve() return whole graphs.
        self.stages: Dict[int, Tuple[int, str]] = {}
        self._next_stage_id = 0
        self._unit_cursor = 0
        self._drop_cursor = 0
        self._queue = server.queue

    def assign_id(self, request_id: int) -> int:
        """Keep ``request_id`` if it is set and unseen in this session;
        otherwise allocate a fresh unique one.  The single id rule both
        entry styles share — part of the submit-loop == serve()
        equivalence."""
        if request_id == 0 or request_id in self.seen_ids:
            request_id = self._queue.next_id()
            while request_id in self.seen_ids:
                request_id = self._queue.next_id()
        self.seen_ids.add(request_id)
        return request_id

    def stage_id(self) -> int:
        """A fresh id for one DAG *stage* — negative, its own
        namespace: stage ids are internal to the session, so they must
        never collide with (or consume) the client-visible id sequence
        a cluster front-end relies on the server preserving."""
        self._next_stage_id += 1
        sid = -self._next_stage_id
        self.seen_ids.add(sid)
        return sid


class SimServer:
    """Async-style serving layer bound to one default :class:`SimConfig`.

    ``scheduler`` is ``"batching"`` (default), ``"sequential"`` (the
    naive baseline: no coalescing) or a :class:`BatchingScheduler`
    instance.  ``workers`` picks the execution backend (``"inline"`` or
    ``"thread"``); ``pipeline`` overlaps the next dispatch group's
    compile with the current group's execution when the backend is
    concurrent.  ``bus`` picks the cross-shard contention model
    (``"shared"`` — the default, realistic one — or ``"independent"``).

    ``faults`` turns on deterministic fault injection: a profile name
    (``"transient"``/``"degraded"``/``"chaos"``), a ``"rate:<r>"``
    sweep spec, a :class:`~repro.serve.FaultProfile` or a prebuilt
    :class:`~repro.serve.FaultPlan`; ``fault_seed`` seeds the plan.
    ``policy`` picks the :class:`~repro.serve.ResiliencePolicy`
    (``"none"``/``"standard"`` or an instance).  The defaults — no
    faults, neutral policy — leave every serving path byte-identical
    to a server without these parameters.
    """

    def __init__(self, config: Optional[SimConfig] = None, *,
                 scheduler: Union[str, BatchingScheduler] = "batching",
                 window_us: float = 50.0,
                 max_banks: int = 8,
                 num_shards: int = 1,
                 max_depth: int = 256,
                 workers: str = "inline",
                 worker_threads: int = 2,
                 pipeline: bool = True,
                 bus: str = "shared",
                 faults: Union[None, str, FaultProfile, FaultPlan] = None,
                 fault_seed: int = 0,
                 policy: Union[str, ResiliencePolicy] = "none"):
        self.config = config or SimConfig()
        if isinstance(scheduler, BatchingScheduler):
            self.scheduler = scheduler
        elif scheduler == "batching":
            self.scheduler = BatchingScheduler(
                window_us=window_us, max_banks=max_banks,
                num_shards=num_shards)
        elif scheduler == "sequential":
            self.scheduler = sequential_policy(num_shards)
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose 'batching', "
                f"'sequential' or pass a BatchingScheduler")
        if bus not in BUS_MODELS:
            raise ValueError(f"unknown bus model {bus!r}; "
                             f"choose from {BUS_MODELS}")
        self.fault_plan = make_fault_plan(faults, fault_seed)
        if self.fault_plan is not None and not self.fault_plan.active:
            # A zero-rate plan never draws; drop it so the execution
            # path below is *literally* the plan-less one.
            self.fault_plan = None
        self.policy = make_policy(policy)
        self.queue = RequestQueue(max_depth=max_depth)
        self.telemetry = Telemetry()
        self.workers = workers
        self.worker_threads = worker_threads
        self.pipeline = pipeline
        self.bus = bus
        # Session virtual clock: monotonic across serve() calls and
        # submit() sessions, so a sequence of calls reads as serial
        # traffic in the telemetry.
        self._clock_us = 0.0
        #: The open live (submit/poll) session, if any.
        self._live: Optional[_Session] = None

    # -- offline entry points ----------------------------------------------------
    def serve(self, requests: Iterable[Union[ServeRequest, SimRequest]]
              ) -> List[ServeResult]:
        """Serve a whole arrival stream; results come back in *input*
        order, one per request (including drops), so
        ``zip(requests, results)`` always correlates.

        The server's virtual clock is monotonic across calls: each
        call's arrivals (and deadlines) are offset to start where the
        previous call ended, so session telemetry over many calls —
        e.g. a :class:`~repro.sim.host.PimMemoryController` issuing one
        ``call()`` per NTT_INVOKE — reads as the serial traffic it is.
        Unassigned (0) or duplicate request ids are replaced with fresh
        ones (two concatenated ``LoadGenerator`` streams both number
        from 1); results stay positional either way.
        """
        if self._live is not None:
            raise RuntimeError("an open submit() session is active; "
                               "drain() it before calling serve()")
        session = _Session(self)
        offset = session.offset
        sreqs: List[ServeRequest] = []
        for item in requests:
            if not isinstance(item, ServeRequest):
                item = ServeRequest(request=item)
            item.request.validate()
            changes = {}
            if offset:
                changes["arrival_us"] = item.arrival_us + offset
                if item.deadline_us is not None:
                    changes["deadline_us"] = item.deadline_us + offset
            request_id = session.assign_id(item.request_id)
            if request_id != item.request_id:
                changes["request_id"] = request_id
            # Copy-on-write keeps the caller's ServeRequest untouched.
            sreqs.append(dataclasses.replace(item, **changes)
                         if changes else item)
        for sreq in sorted(sreqs, key=lambda s: (s.arrival_us,
                                                 s.request_id)):
            self._ingest(session, sreq)
        self._drain_session(session)
        return [session.results[s.request_id] for s in sreqs]

    def call(self, request: SimRequest, *,
             config: Optional[SimConfig] = None,
             priority: int = 0):
        """Serve one request synchronously through the full queue →
        scheduler → shard path and return its facade ``SimResponse``
        (the :class:`repro.sim.host.PimMemoryController` route)."""
        result = self.serve([ServeRequest(request=request, priority=priority,
                                          config=config)])[0]
        return result.response

    # -- live (online) entry points ----------------------------------------------
    def submit(self, request: Union[ServeRequest, SimRequest], *,
               arrival_us: Optional[float] = None,
               priority: int = 0,
               deadline_us: Optional[float] = None,
               config: Optional[SimConfig] = None,
               request_id: int = 0,
               tenant: str = "") -> int:
        """Submit one request to the live session and return its id.

        This is the incremental form of :meth:`serve`: each submission
        advances the virtual clock to its arrival time, closing every
        batching window that elapses on the way (the *replanning* half
        of the two-phase model); execution catches up lazily on
        :meth:`poll`/:meth:`drain`.  ``arrival_us`` is relative to the
        session start, defaults to "now" (the latest event), and is
        clamped forward — a live client cannot arrive in the past.
        Results are bit-identical to an offline :meth:`serve` of the
        same arrival stream.

        Pass either a bare facade request plus keyword scheduling
        fields, or a fully populated :class:`ServeRequest` — not both:
        a ``ServeRequest`` carries its own priority/deadline/config/id,
        so combining it with those keywords raises.
        """
        if isinstance(request, ServeRequest):
            if (priority, deadline_us, config, request_id,
                    tenant) != (0, None, None, 0, ""):
                raise ValueError(
                    "pass scheduling fields on the ServeRequest itself, "
                    "not as submit() keywords")
            if arrival_us is None and request.arrival_us:
                arrival_us = request.arrival_us
            priority = request.priority
            deadline_us = request.deadline_us
            config = request.config
            request_id = request.request_id
            tenant = request.tenant
            request = request.request
        request.validate()
        if self._live is None:
            self._live = _Session(self)
        session = self._live
        arrival = (session.offset + arrival_us if arrival_us is not None
                   else session.planner.now_us)
        # Live clients cannot arrive before already-processed events.
        arrival = max(arrival, session.planner.now_us, session.offset)
        deadline = (session.offset + deadline_us
                    if deadline_us is not None else None)
        request_id = session.assign_id(request_id)
        self._ingest(session, ServeRequest(
            request=request, arrival_us=arrival, priority=priority,
            deadline_us=deadline, request_id=request_id, config=config,
            tenant=tenant))
        return request_id

    def advance(self, now_us: float) -> None:
        """Idle tick: move the live session's virtual clock to
        ``now_us`` (session-relative, like :meth:`submit`'s
        ``arrival_us``) with *no* new traffic.

        Batching windows that age out on the way close exactly as they
        would have under a later submission, and execution settles up
        to the new clock — so a console (or any caller that stops
        submitting) sees results become pollable as virtual time
        passes instead of waiting for the next arrival or a full
        :meth:`drain`.  Opens the live session if none is active;
        ticking backwards is a no-op (the clock is monotonic).
        """
        if self._live is None:
            self._live = _Session(self)
        session = self._live
        session.planner.advance(max(session.offset + now_us,
                                    session.planner.now_us))
        self._absorb(session)
        with make_pool("inline") as pool:
            self._settle_loop(session, pool,
                              horizon_us=session.planner.now_us)

    def session_offset_us(self) -> float:
        """Virtual-time offset of the live session — or of the session
        the next :meth:`submit`/:meth:`advance` would open.  Session-
        relative times (``arrival_us``, ``advance``'s ``now_us``) plus
        this offset are absolute times on the server's monotonic clock;
        a cluster front-end uses it to translate cluster time into
        each replica's session coordinates."""
        return (self._live.offset if self._live is not None
                else self._clock_us)

    def live_stats(self) -> Dict[str, object]:
        """Lightweight live-session gauges for supervisors and
        consoles (no percentile math — see
        :meth:`Telemetry.snapshot` for the full rollup): queue depth,
        submissions vs settled results, per-shard backlog, and each
        tripped circuit breaker's ``(state, open_until_us)``."""
        session = self._live
        stats: Dict[str, object] = {
            "queue_depth": self.queue.depth(),
            "num_shards": self.scheduler.num_shards,
            "submitted": 0, "settled": 0, "backlog": 0,
            "now_us": self._clock_us, "breakers": {},
        }
        if session is None:
            return stats
        stats["submitted"] = len(session.order)
        stats["settled"] = len(session.results)
        stats["backlog"] = sum(len(state.backlog)
                               for state in session.shards.values())
        stats["now_us"] = session.planner.now_us
        stats["breakers"] = {
            shard: (breaker.state, breaker.open_until_us)
            for shard, breaker in session.breakers.items()}
        return stats

    def poll(self, request_id: int) -> Optional[ServeResult]:
        """The live session's result for ``request_id``, or ``None``
        while it is still queued, in an open window, or waiting for its
        shard (execution is settled up to the session's virtual clock
        first).  Rejected/expired requests return a result whose
        ``response`` is ``None`` (``result.ok`` is false)."""
        session = self._live
        if session is None:
            return None
        with make_pool("inline") as pool:
            self._settle_loop(session, pool,
                              horizon_us=session.planner.now_us)
        return session.results.get(request_id)

    def drain(self) -> List[ServeResult]:
        """Close the live session: flush every open window, run the
        backlog to completion, and return every submission's result in
        submission order (empty if nothing was submitted).

        The session only closes once execution succeeds — if a dispatch
        raises (e.g. a :class:`FunctionalMismatch` under
        ``verify=True``), the session survives, already-completed
        results stay pollable, and ``drain()`` can be retried over the
        remaining backlog.
        """
        session = self._live
        if session is None:
            return []
        self._drain_session(session)
        self._live = None
        return [session.results[rid] for rid in session.order]

    # -- session machinery -------------------------------------------------------
    def _ingest(self, session: _Session, sreq: ServeRequest) -> None:
        if isinstance(sreq.request, DagRequest):
            self._ingest_dag(session, sreq)
            return
        session.order.append(sreq.request_id)
        session.max_arrival_us = max(session.max_arrival_us, sreq.arrival_us)
        session.planner.offer(sreq)
        self._absorb(session)

    # -- DAG machinery -----------------------------------------------------------
    def _ingest_dag(self, session: _Session, sreq: ServeRequest) -> None:
        """Admit one :class:`~repro.api.DagRequest`: the graph itself
        never enters the planner — its *root* stages do, as ordinary
        arrivals at the graph's arrival time; every other stage is
        released lazily by :meth:`_release_ready` once its parents
        settle.  Stages from different graphs are just shaped arrivals
        to the planner, so ready stages coalesce into shared multi-bank
        dispatches exactly like independent requests."""
        session.order.append(sreq.request_id)
        session.max_arrival_us = max(session.max_arrival_us, sreq.arrival_us)
        state = _DagState(sreq=sreq, request=sreq.request)
        session.dags[sreq.request_id] = state
        for name in state.request.topological_order():
            if state.request.parents(name):
                continue
            try:
                stage = self._stage_request(session, state, name,
                                            sreq.arrival_us, {})
            except ReproError as exc:
                self._fail_stage(session, state, name, sreq.arrival_us,
                                 f"stage {name!r} failed to bind: {exc}")
                continue
            session.planner.offer(stage)
        self._absorb(session)

    def _stage_request(self, session: _Session, state: _DagState,
                       name: str, release_us: float,
                       parent_values: Dict[str, tuple]) -> ServeRequest:
        """Materialize one stage as a planner arrival: bind the parents'
        settled outputs into the node's request, allocate its stage id,
        and inherit the graph's priority/config/tenant.  Stages carry no
        deadline of their own — the graph's deadline is judged against
        the assembled completion in :meth:`_assemble_dag`."""
        bound = state.request.bound_request(name, parent_values)
        sid = session.stage_id()
        state.stage_ids[name] = sid
        state.released.add(name)
        session.stages[sid] = (state.sreq.request_id, name)
        return ServeRequest(request=bound, arrival_us=release_us,
                            priority=state.sreq.priority, request_id=sid,
                            config=state.sreq.config,
                            tenant=state.sreq.tenant)

    def _release_ready(self, session: _Session) -> bool:
        """Dependency-aware release: hand the planner every stage whose
        parents have all settled, at the virtual time the last parent
        completed (never before the graph's own arrival).  A stage with
        a failed/dropped parent cascade-fails immediately — it can never
        run.  Returns whether anything new entered the planner (the
        :meth:`_settle_loop` fixpoint condition); finished graphs
        assemble their whole-DAG results on the way out."""
        if not session.dags:
            return False
        released = False
        progress = True
        while progress:
            progress = False
            for dag_id in session.order:
                state = session.dags.get(dag_id)
                if state is None or state.done:
                    continue
                for name in state.request.topological_order():
                    if name in state.released:
                        continue
                    parents = state.request.parents(name)
                    parent_results = {}
                    for parent in parents:
                        pid = state.stage_ids.get(parent)
                        res = (session.results.get(pid)
                               if pid is not None else None)
                        if res is None:
                            break
                        parent_results[parent] = res
                    if len(parent_results) != len(parents):
                        continue  # a parent has not settled yet
                    release_us = max(
                        [state.sreq.arrival_us]
                        + [r.record.completion_us
                           for r in parent_results.values()])
                    failed = next((p for p in parents
                                   if not parent_results[p].ok), None)
                    if failed is not None:
                        self._fail_stage(
                            session, state, name, release_us,
                            f"upstream stage {failed!r} did not complete")
                        progress = True
                        continue
                    values = {p: tuple(parent_results[p].response.values)
                              for p in parents}
                    try:
                        stage = self._stage_request(session, state, name,
                                                    release_us, values)
                    except ReproError as exc:
                        self._fail_stage(
                            session, state, name, release_us,
                            f"stage {name!r} failed to bind: {exc}")
                        progress = True
                        continue
                    session.planner.release(stage)
                    released = True
                    progress = True
        for dag_id in session.order:
            state = session.dags.get(dag_id)
            if state is not None and not state.done:
                self._maybe_assemble(session, state)
        return released

    def _fail_stage(self, session: _Session, state: _DagState, name: str,
                    fail_us: float, error: str) -> None:
        """Record one stage as failed without it ever reaching the
        planner (cascade from a failed parent, or a binding error).
        ``start_us`` equals the failure time so the stage contributes
        zero service time to the graph's critical-path math."""
        sid = session.stage_id()
        state.stage_ids[name] = sid
        state.released.add(name)
        session.stages[sid] = (state.sreq.request_id, name)
        record = RequestRecord(
            request_id=sid,
            workload=state.request.node(name).workload,
            status=STATUS_FAILED,
            priority=state.sreq.priority,
            arrival_us=fail_us,
            start_us=fail_us,
            completion_us=fail_us,
            tenant=state.sreq.tenant,
            dag_id=state.sreq.request_id,
            stage=name,
            error=error)
        self.telemetry.add(record)
        session.results[sid] = ServeResult(record=record)

    def _maybe_assemble(self, session: _Session, state: _DagState) -> None:
        if state.done or len(state.stage_ids) < len(state.request.nodes):
            return
        if any(session.results.get(sid) is None
               for sid in state.stage_ids.values()):
            return
        state.done = True
        self._assemble_dag(session, state)

    def _assemble_dag(self, session: _Session, state: _DagState) -> None:
        """Fold the settled stage results into the graph's own
        :class:`ServeResult`: the record spans arrival to the last stage
        completion (the served makespan) and carries the dependency
        critical path; the response exposes the sink's values plus every
        node's output in node order — the same envelope the standalone
        golden ``"dag"`` workload returns."""
        request, sreq = state.request, state.sreq
        stage_results = {name: session.results[state.stage_ids[name]]
                         for name, _ in request.nodes}
        records = {name: res.record for name, res in stage_results.items()}
        ok = all(res.ok for res in stage_results.values())
        completion_us = max(r.completion_us for r in records.values())
        critical_path = request.critical_path_us(
            {name: rec.service_us for name, rec in records.items()
             if rec.status == STATUS_OK})
        ok_records = [r for r in records.values() if r.status == STATUS_OK]
        error = ""
        if not ok:
            for name in request.topological_order():
                if records[name].status != STATUS_OK:
                    error = (f"stage {name!r}: "
                             f"{records[name].error or records[name].status}")
                    break
        record = RequestRecord(
            request_id=sreq.request_id,
            workload="dag",
            status=STATUS_OK if ok else STATUS_FAILED,
            priority=sreq.priority,
            arrival_us=sreq.arrival_us,
            dispatch_us=min((r.dispatch_us for r in ok_records),
                            default=sreq.arrival_us),
            start_us=min((r.start_us for r in ok_records),
                         default=sreq.arrival_us),
            completion_us=completion_us,
            deadline_us=sreq.deadline_us,
            deadline_missed=(sreq.deadline_us is not None
                             and completion_us > sreq.deadline_us),
            group_banks=1,
            shard=records[request.sink_name].shard,
            tenant=sreq.tenant,
            bus_wait_us=sum(r.bus_wait_us for r in records.values()),
            cycles=sum(r.cycles for r in records.values()),
            energy_nj=sum(r.energy_nj for r in records.values()),
            attempts=max(r.attempts for r in records.values()),
            critical_path_us=critical_path,
            error=error)
        response = None
        if ok:
            responses = {name: res.response
                         for name, res in stage_results.items()}
            counters: Dict[str, int] = {}
            for resp in responses.values():
                for key, val in resp.counters.items():
                    counters[key] = counters.get(key, 0) + val
            makespan = record.latency_us
            metrics = {"stages": float(len(request.nodes)),
                       "critical_path_us": critical_path,
                       "makespan_us": makespan,
                       "critical_path_stretch": (makespan / critical_path
                                                 if critical_path else 0.0)}
            if request.label:
                metrics["label"] = request.label
            response = SimResponse(
                workload="dag",
                values=list(responses[request.sink_name].values),
                outputs=[list(responses[name].values)
                         for name, _ in request.nodes],
                cycles=record.cycles,
                latency_us=makespan,
                energy_nj=record.energy_nj,
                verified=all(resp.verified for resp in responses.values()),
                command_count=sum(resp.command_count
                                  for resp in responses.values()),
                counters=counters,
                metrics=metrics,
                request=request)
        self.telemetry.add(record)
        session.results[sreq.request_id] = ServeResult(
            record=record, response=response, stages=stage_results)

    def _settle_loop(self, session: _Session, pool,
                     horizon_us: Optional[float]) -> None:
        """Settle-then-release fixpoint: each settle pass can finalize
        parent stages, each release pass can hand the planner newly
        unblocked stages (possibly at past virtual times — the planner's
        :meth:`~repro.serve.scheduler.PlanSession.release` path), which
        the next settle pass executes.  Terminates because every
        iteration strictly shrinks the set of unreleased stages."""
        while True:
            self._settle(session, pool, horizon_us=horizon_us)
            if not self._release_ready(session):
                return
            if horizon_us is None:
                session.planner.flush()
            else:
                session.planner.advance(session.planner.now_us)
            self._absorb(session)

    def _absorb(self, session: _Session) -> None:
        """Move newly planned units onto their shards' backlogs and
        newly dropped requests into results/telemetry."""
        planner = session.planner
        for record in planner.dropped[session._drop_cursor:]:
            stage = session.stages.get(record.request_id)
            if stage is not None:
                record.dag_id, record.stage = stage
            self.telemetry.add(record)
            session.results[record.request_id] = ServeResult(record=record)
        session._drop_cursor = len(planner.dropped)
        for unit in planner.units[session._unit_cursor:]:
            session.shards.setdefault(unit.shard, _ShardState()).backlog \
                .append(_Attempt(unit=unit, ready_us=unit.ready_us))
        session._unit_cursor = len(planner.units)

    def _drain_session(self, session: _Session) -> None:
        """Flush the plan, run every backlog to completion, and fold
        the session's clock/cache into the server rollups; the caller
        picks its own ordering out of ``session.results``."""
        session.planner.flush()
        self._absorb(session)
        with make_pool(self.workers, self.worker_threads) as pool:
            self._settle_loop(session, pool, horizon_us=None)

        # Advance the session clock past everything this session touched.
        clock = session.max_arrival_us
        clock = max([clock] + [r.record.completion_us
                               for r in session.results.values()
                               if r.record.completion_us > 0])
        self._clock_us = max(self._clock_us, clock)

        # Session-wide cache rollup: accumulate this session's deltas
        # onto the running totals (entries is a point-in-time gauge).
        cache_after = Simulator(self.config).cache_info()
        rollup = self.telemetry.cache
        for name in ("program", "stream", "schedule"):
            entry = rollup.setdefault(name, {"hits": 0, "misses": 0})
            entry["hits"] += (cache_after[name]["hits"]
                              - session.cache_before[name]["hits"])
            entry["misses"] += (cache_after[name]["misses"]
                                - session.cache_before[name]["misses"])
            entry["entries"] = cache_after[name]["entries"]

    # -- execution ---------------------------------------------------------------
    def _effective_config(self, unit: DispatchUnit) -> SimConfig:
        return unit.members[0].effective_config(self.config)

    def _merged_request(self, unit: DispatchUnit) -> SimRequest:
        if unit.banks == 1:
            return unit.members[0].request
        return Simulator.merge_requests([m.request for m in unit.members])

    def _execute(self, unit: DispatchUnit):
        return Simulator(self._effective_config(unit)).run(
            self._merged_request(unit))

    def _settle(self, session: _Session, pool,
                horizon_us: Optional[float]) -> None:
        """Run shard backlogs forward in global virtual-time order.

        Each step commits the shard with the earliest *decision point*
        (the moment it picks its next unit: its free time, or the next
        unit's ready time) — that global order is also the order
        dispatches arbitrate for the shared command bus.  With
        ``horizon_us`` set (the live path), a decision at or past the
        horizon is not yet final — a future submission could still
        close a window and slot a competing unit — so it waits for the
        clock to move (or for :meth:`drain`, which settles with no
        horizon).

        Among ready units the most urgent (priority, then FIFO) serves
        first; the pipelined compile warms the unit most likely to
        serve next on the concurrent pool backend.

        Faults enter here: each selection draws the unit's
        :class:`FaultDecision` for its attempt number.  A ``fail`` draw
        burns the profile's failure cost and goes through the retry
        path without executing; everything else executes and lets
        :meth:`_complete` price the (possibly stretched) service time.
        An open circuit breaker floors its shard's decision point at
        the cooldown expiry, and :meth:`_route_around` detours queued
        work to healthy shards first.
        """
        shards = session.shards
        while True:
            self._route_around(session)
            chosen = None
            for shard_id in sorted(shards):
                state = shards[shard_id]
                if not state.backlog:
                    continue
                ready = [a for a in state.backlog
                         if a.ready_us <= state.now_us]
                decision = (state.now_us if ready
                            else min(a.ready_us for a in state.backlog))
                breaker = session.breakers.get(shard_id)
                if breaker is not None and breaker.state == "open":
                    # An open shard serves nothing until its cooldown
                    # elapses; its next decision is the half-open probe.
                    decision = max(decision, breaker.open_until_us)
                if horizon_us is not None and decision >= horizon_us:
                    continue
                if chosen is None or (decision, shard_id) < chosen[:2]:
                    chosen = (decision, shard_id, state)
            if chosen is None:
                return
            decision, shard_id, state = chosen
            state.now_us = max(state.now_us, decision)
            breaker = session.breakers.get(shard_id)
            if breaker is not None and breaker.state == "open":
                # Cooldown elapsed: this dispatch is the probe.
                breaker.state = "half_open"
            ready = [a for a in state.backlog if a.ready_us <= state.now_us]
            attempt = max(ready, key=lambda a: (a.priority, -a.seq))
            state.backlog.remove(attempt)
            unit = attempt.unit
            fault = (self.fault_plan.decide(unit.seq, shard_id,
                                            attempt.attempt)
                     if self.fault_plan is not None else NO_FAULT)
            if fault.fail:
                self.telemetry.note_fault("fail")
                start_us = max(state.now_us, attempt.ready_us)
                cost_us = self.fault_plan.profile.fail_cost_us
                self._fail(session, state, shard_id, attempt,
                           start_us=start_us, fail_us=start_us + cost_us,
                           error=ShardFailure(
                               f"injected transient failure of dispatch "
                               f"{unit.seq} (attempt {attempt.attempt}) "
                               f"on shard {shard_id}",
                               shard=shard_id, seq=unit.seq,
                               kind="transient"))
                continue
            try:
                execution = pool.submit(self._execute, unit)
                if self.pipeline and pool.concurrent and state.backlog:
                    # Warm the compile caches for the likely-next unit
                    # while this one executes (thread backend only) —
                    # service order is priority-first, so mirror it.
                    nxt = min(state.backlog,
                              key=lambda a: (-a.priority, a.ready_us,
                                             a.seq))
                    pool.submit(precompile_request,
                                self._effective_config(nxt.unit),
                                self._merged_request(nxt.unit))
                grouped = execution.result()
            except BaseException as exc:
                # Put the unit back so a retried drain() can serve it
                # (selection keys on (priority, seq), not list order).
                state.backlog.append(attempt)
                if isinstance(exc, ReproError) or \
                        not isinstance(exc, Exception):
                    raise
                # Arbitrary executor leaks surface as the serving
                # hierarchy; the original failure rides as __cause__.
                raise ServeError(
                    f"dispatch {unit.seq} ({unit.banks} bank(s), shard "
                    f"{shard_id}) failed in the worker pool: {exc}"
                ) from exc
            self._complete(session, state, shard_id, attempt, grouped,
                           fault)

    def _complete(self, session: _Session, state: _ShardState,
                  shard_id: int, attempt: _Attempt, grouped,
                  fault=NO_FAULT) -> None:
        """Price one executed dispatch in virtual time — applying any
        injected service-time faults plus the policy's timeout and
        online detection — and record every member's outcome."""
        unit = attempt.unit
        policy = self.policy
        start_us = max(state.now_us, attempt.ready_us)
        service_us = grouped.latency_us
        if fault.slowdown != 1.0:
            self.telemetry.note_fault("slowdown")
            service_us *= fault.slowdown
        if fault.stall_us:
            self.telemetry.note_fault("stall")
            service_us += fault.stall_us
        bus_wait_us = 0.0
        if self.bus == "shared":
            # One command per cycle on the shared bus: the dispatch
            # occupies it for its compiled stream's command count, and
            # stalls until the bus frees if another shard holds it.
            bus_begin = max(start_us, session.bus_free_us)
            bus_wait_us = bus_begin - start_us
            occupancy_us = (grouped.command_count * grouped.latency_us
                            / grouped.cycles if grouped.cycles else 0.0)
            session.bus_free_us = bus_begin + occupancy_us
            self.telemetry.note_bus(occupancy_us)
        else:
            bus_begin = start_us
        completion_us = bus_begin + service_us
        if policy.timeout_us is not None and service_us > policy.timeout_us:
            # The dispatch would outlive its service timeout: abort at
            # the deadline (commands already issued stay charged to the
            # bus) and let the retry policy re-dispatch it.
            self.telemetry.note_timeout()
            self._fail(session, state, shard_id, attempt,
                       start_us=start_us,
                       fail_us=bus_begin + policy.timeout_us,
                       error=ShardFailure(
                           f"dispatch {unit.seq} (attempt "
                           f"{attempt.attempt}) exceeded the "
                           f"{policy.timeout_us:g}us service timeout on "
                           f"shard {shard_id}",
                           shard=shard_id, seq=unit.seq, kind="timeout"))
            return
        if fault.corrupt:
            corrupted = self._corrupt(grouped, unit, shard_id,
                                      attempt.attempt)
            if corrupted is not None:
                self.telemetry.note_fault("corrupt")
                grouped = corrupted
                if policy.detect and self._mismatch(unit, grouped):
                    self.telemetry.note_detected()
                    self._fail(session, state, shard_id, attempt,
                               start_us=start_us, fail_us=completion_us,
                               error=FunctionalMismatch(
                                   f"online golden-model check caught a "
                                   f"corrupted output of dispatch "
                                   f"{unit.seq} on shard {shard_id}"))
                    return
        state.now_us = completion_us
        breaker = session.breakers.get(shard_id)
        if breaker is not None:
            # Any success closes the breaker and resets its count.
            breaker.consecutive = 0
            breaker.state = "closed"
        banks = unit.banks
        for slot, member in enumerate(unit.members):
            if banks == 1:
                response = grouped
            else:
                response = Simulator._split_group(
                    grouped, member.request, slot, banks)
            record = RequestRecord(
                request_id=member.request_id,
                workload=member.request.workload,
                priority=member.priority,
                arrival_us=member.arrival_us,
                dispatch_us=unit.ready_us,
                start_us=start_us,
                completion_us=completion_us,
                deadline_us=member.deadline_us,
                deadline_missed=(member.deadline_us is not None
                                 and completion_us > member.deadline_us),
                group_banks=banks,
                shard=shard_id,
                tenant=member.tenant,
                bus_wait_us=bus_wait_us,
                cycles=grouped.cycles // banks,
                energy_nj=grouped.energy_nj / banks,
                attempts=attempt.attempt)
            stage = session.stages.get(member.request_id)
            if stage is not None:
                record.dag_id, record.stage = stage
            self.telemetry.add(record)
            session.results[member.request_id] = ServeResult(
                record=record, response=response)

    # -- resilience machinery ----------------------------------------------------
    def _fail(self, session: _Session, state: _ShardState, shard_id: int,
              attempt: _Attempt, *, start_us: float, fail_us: float,
              error: ReproError) -> None:
        """One dispatch attempt failed at ``fail_us``: run the breaker
        bookkeeping, then either retry (budgeted, capped-exponential
        backoff in virtual time) or record every member as failed."""
        state.now_us = fail_us
        self._note_failure(session, shard_id, fail_us)
        policy = self.policy
        if (attempt.attempt <= policy.max_retries
                and (session.retry_budget is None
                     or session.retry_budget > 0)):
            if session.retry_budget is not None:
                session.retry_budget -= 1
            self.telemetry.note_retry()
            backoff_us = policy.backoff_us(attempt.attempt)
            attempt.attempt += 1
            attempt.ready_us = fail_us + backoff_us
            state.backlog.append(attempt)
            return
        unit = attempt.unit
        for member in unit.members:
            record = RequestRecord(
                request_id=member.request_id,
                workload=member.request.workload,
                status=STATUS_FAILED,
                priority=member.priority,
                arrival_us=member.arrival_us,
                dispatch_us=unit.ready_us,
                start_us=start_us,
                completion_us=fail_us,
                deadline_us=member.deadline_us,
                deadline_missed=(member.deadline_us is not None
                                 and fail_us > member.deadline_us),
                group_banks=unit.banks,
                shard=shard_id,
                tenant=member.tenant,
                attempts=attempt.attempt,
                error=str(error))
            stage = session.stages.get(member.request_id)
            if stage is not None:
                record.dag_id, record.stage = stage
            self.telemetry.add(record)
            session.results[member.request_id] = ServeResult(record=record)

    def _note_failure(self, session: _Session, shard_id: int,
                      now_us: float) -> None:
        """Circuit-breaker bookkeeping for one failure on ``shard_id``."""
        threshold = self.policy.breaker_threshold
        if threshold <= 0:
            return
        breaker = session.breakers.get(shard_id)
        if breaker is None:
            breaker = _Breaker(threshold=threshold,
                               cooldown_us=self.policy.breaker_cooldown_us)
            session.breakers[shard_id] = breaker
        breaker.consecutive += 1
        if (breaker.state == "half_open"
                or breaker.consecutive >= breaker.threshold):
            # A failed half-open probe re-opens immediately; a closed
            # breaker opens at K consecutive failures.
            breaker.state = "open"
            breaker.open_until_us = now_us + breaker.cooldown_us
            self.telemetry.note_breaker_trip()

    def _route_around(self, session: _Session) -> None:
        """Detour backlog off open-breaker shards when a healthy shard
        could *start* it sooner.  The scheduler's shape→shard placement
        stays put — only already-dispatched work routes around, and
        only while the breaker is open."""
        if not session.breakers:
            return
        shards = session.shards
        for shard_id in sorted(list(shards)):
            breaker = session.breakers.get(shard_id)
            if breaker is None or breaker.state != "open":
                continue
            state = shards[shard_id]
            for attempt in list(state.backlog):
                blocked_us = max(attempt.ready_us, breaker.open_until_us)
                best = None
                for alt_id in range(self.scheduler.num_shards):
                    if alt_id == shard_id:
                        continue
                    alt_breaker = session.breakers.get(alt_id)
                    if (alt_breaker is not None
                            and alt_breaker.state == "open"):
                        continue
                    alt_state = shards.get(alt_id)
                    alt_start = max(attempt.ready_us,
                                    alt_state.now_us if alt_state else 0.0)
                    if alt_start < blocked_us and (
                            best is None or (alt_start, alt_id) < best):
                        best = (alt_start, alt_id)
                if best is not None:
                    state.backlog.remove(attempt)
                    shards.setdefault(best[1], _ShardState()) \
                        .backlog.append(attempt)
                    self.telemetry.note_reroute()

    def _corrupt(self, grouped, unit: DispatchUnit, shard_id: int,
                 attempt_no: int):
        """A copy of ``grouped`` with one deterministically chosen
        output word bit-flipped (``None`` when there is nothing to
        flip — e.g. a response with no output image)."""
        outputs = [list(bank) for bank in grouped.outputs]
        values = list(grouped.values)
        if outputs and outputs[0]:
            slot, idx = self.fault_plan.corrupt_index(
                unit.seq, shard_id, attempt_no, len(outputs),
                len(outputs[0]))
            bank = outputs[slot]
            bank[idx % len(bank)] ^= 1
        elif values:
            _, idx = self.fault_plan.corrupt_index(
                unit.seq, shard_id, attempt_no, 1, len(values))
            values[idx] ^= 1
        else:
            return None
        return dataclasses.replace(grouped, values=values, outputs=outputs)

    def _mismatch(self, unit: DispatchUnit, grouped) -> bool:
        """Online golden-model check: does any member's served output
        diverge from the reference transform?  Only transform workloads
        with explicit input values have a golden model; others pass.
        Injection is the only corruption source in the simulation, so
        the server evaluates this at corrupted dispatches — where a
        mismatch is possible — rather than re-deriving every clean
        response."""
        banks = unit.banks
        for slot, member in enumerate(unit.members):
            expected = self._expected_values(member.request)
            if expected is None:
                continue
            if banks > 1 and slot < len(grouped.outputs):
                got = grouped.outputs[slot]
            else:
                got = grouped.values
            if list(got) != list(expected):
                return True
        return False

    @staticmethod
    def _expected_values(request) -> Optional[List[int]]:
        values = getattr(request, "values", None)
        if values is None:
            return None
        if request.workload == "ntt":
            spec = TransformSpec(kind="ntt", params=request.params,
                                 inverse=request.inverse)
        elif request.workload == "negacyclic":
            spec = TransformSpec(kind="negacyclic", ring=request.ring,
                                 inverse=request.inverse)
        else:
            return None
        return spec.expected(list(values))
