"""`SimServer`: the serving loop over the Simulator facade.

::

    arrivals ──> RequestQueue ──> BatchingScheduler ──> shard 0 ─┐
                 (admission,      (window coalescing,   shard 1 ─┼─> stream
                  priorities,      multi-bank merge,      ...    │   engine
                  deadlines)       shape→shard routing) shard S ─┘
                                                            │
                        WorkerPool (inline | thread) ───────┘
                        pipelines group k+1's compile
                        under group k's execution

Two clocks run side by side.  *Virtual* (simulated-device) time drives
everything a client would measure: arrivals, batching windows, shard
backlogs, latencies, throughput — a deterministic discrete-event model
whose service times are the timing engine's schedule latencies.  *Host*
wall-clock time is how long the functional simulation takes to chew
through the plan; the worker pool only optimizes the latter and can
never change the former.

Planning (group membership, dispatch times, drops) depends only on
arrivals and the window — never on service times — so the plan is fixed
before execution begins and execution can be pipelined freely.  Every
response is bit-identical to a standalone ``Simulator.run`` of the same
request: a dispatch group executes as a
:class:`~repro.api.MultiBankRequest` whose per-bank streams are the
same compiled programs a solo run replays
(``benchmarks/bench_serve.py`` asserts this on every run).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from ..api.requests import SimRequest
from ..api.simulator import Simulator
from ..api.workloads import precompile_request
from ..sim.driver import SimConfig
from .queueing import RequestQueue, ServeRequest
from .scheduler import BatchingScheduler, DispatchUnit, sequential_policy
from .telemetry import RequestRecord, Telemetry
from .workers import make_pool

__all__ = ["ServeResult", "SimServer"]


@dataclass
class ServeResult:
    """One served request: its record, and the response (``None`` when
    admission rejected it or its deadline expired in the queue)."""

    record: RequestRecord
    response: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.response is not None


class SimServer:
    """Async-style serving layer bound to one default :class:`SimConfig`.

    ``scheduler`` is ``"batching"`` (default), ``"sequential"`` (the
    naive baseline: no coalescing) or a :class:`BatchingScheduler`
    instance.  ``workers`` picks the execution backend (``"inline"`` or
    ``"thread"``); ``pipeline`` overlaps the next dispatch group's
    compile with the current group's execution when the backend is
    concurrent.
    """

    def __init__(self, config: Optional[SimConfig] = None, *,
                 scheduler: Union[str, BatchingScheduler] = "batching",
                 window_us: float = 50.0,
                 max_banks: int = 8,
                 num_shards: int = 1,
                 max_depth: int = 256,
                 workers: str = "inline",
                 worker_threads: int = 2,
                 pipeline: bool = True):
        self.config = config or SimConfig()
        if isinstance(scheduler, BatchingScheduler):
            self.scheduler = scheduler
        elif scheduler == "batching":
            self.scheduler = BatchingScheduler(
                window_us=window_us, max_banks=max_banks,
                num_shards=num_shards)
        elif scheduler == "sequential":
            self.scheduler = sequential_policy(num_shards)
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose 'batching', "
                f"'sequential' or pass a BatchingScheduler")
        self.queue = RequestQueue(max_depth=max_depth)
        self.telemetry = Telemetry()
        self.workers = workers
        self.worker_threads = worker_threads
        self.pipeline = pipeline
        # Session virtual clock: monotonic across serve() calls, so a
        # sequence of call()s reads as serial traffic in the telemetry.
        self._clock_us = 0.0

    # -- public entry points -----------------------------------------------------
    def serve(self, requests: Iterable[Union[ServeRequest, SimRequest]]
              ) -> List[ServeResult]:
        """Serve a whole arrival stream; results come back in *input*
        order, one per request (including drops), so
        ``zip(requests, results)`` always correlates.

        The server's virtual clock is monotonic across calls: each
        call's arrivals (and deadlines) are offset to start where the
        previous call ended, so session telemetry over many calls —
        e.g. a :class:`~repro.sim.host.PimMemoryController` issuing one
        ``call()`` per NTT_INVOKE — reads as the serial traffic it is.
        Unassigned (0) or duplicate request ids are replaced with fresh
        ones (two concatenated ``LoadGenerator`` streams both number
        from 1); results stay positional either way.
        """
        offset = self._clock_us
        sreqs: List[ServeRequest] = []
        seen_ids = set()
        for item in requests:
            if not isinstance(item, ServeRequest):
                item = ServeRequest(request=item)
            item.request.validate()
            changes = {}
            if offset:
                changes["arrival_us"] = item.arrival_us + offset
                if item.deadline_us is not None:
                    changes["deadline_us"] = item.deadline_us + offset
            request_id = item.request_id
            if request_id == 0 or request_id in seen_ids:
                request_id = self.queue.next_id()
                while request_id in seen_ids:
                    request_id = self.queue.next_id()
                changes["request_id"] = request_id
            seen_ids.add(request_id)
            # Copy-on-write keeps the caller's ServeRequest untouched.
            sreqs.append(dataclasses.replace(item, **changes)
                         if changes else item)
        arrivals = sorted(sreqs, key=lambda s: (s.arrival_us, s.request_id))

        cache_before = Simulator(self.config).cache_info()
        units, dropped = self.scheduler.plan(arrivals, self.queue,
                                             self.config, self.telemetry)
        results: Dict[int, ServeResult] = {}
        for record in dropped:
            self.telemetry.add(record)
            results[record.request_id] = ServeResult(record=record)

        by_shard: Dict[int, List[DispatchUnit]] = {}
        for unit in units:
            by_shard.setdefault(unit.shard, []).append(unit)
        with make_pool(self.workers, self.worker_threads) as pool:
            for shard in sorted(by_shard):
                self._run_shard(shard, by_shard[shard], pool, results)

        # Advance the session clock past everything this call touched.
        clock = max((s.arrival_us for s in sreqs), default=offset)
        clock = max([clock] + [r.record.completion_us
                               for r in results.values() if r.ok])
        self._clock_us = max(self._clock_us, clock)

        # Session-wide cache rollup: accumulate this call's deltas onto
        # the running totals (entries is a point-in-time gauge).
        cache_after = Simulator(self.config).cache_info()
        session = self.telemetry.cache
        for name in ("program", "stream", "schedule"):
            entry = session.setdefault(name, {"hits": 0, "misses": 0})
            entry["hits"] += (cache_after[name]["hits"]
                              - cache_before[name]["hits"])
            entry["misses"] += (cache_after[name]["misses"]
                                - cache_before[name]["misses"])
            entry["entries"] = cache_after[name]["entries"]
        return [results[s.request_id] for s in sreqs]

    def call(self, request: SimRequest, *,
             config: Optional[SimConfig] = None,
             priority: int = 0):
        """Serve one request synchronously through the full queue →
        scheduler → shard path and return its facade ``SimResponse``
        (the :class:`repro.sim.host.PimMemoryController` route)."""
        result = self.serve([ServeRequest(request=request, priority=priority,
                                          config=config)])[0]
        return result.response

    # -- execution ---------------------------------------------------------------
    def _effective_config(self, unit: DispatchUnit) -> SimConfig:
        override = unit.members[0].config
        return override if override is not None else self.config

    def _merged_request(self, unit: DispatchUnit) -> SimRequest:
        if unit.banks == 1:
            return unit.members[0].request
        return Simulator.merge_forward_ntts(
            [m.request for m in unit.members])

    def _execute(self, unit: DispatchUnit):
        return Simulator(self._effective_config(unit)).run(
            self._merged_request(unit))

    def _run_shard(self, shard: int, pending: List[DispatchUnit],
                   pool, results: Dict[int, ServeResult]) -> None:
        """Serve one shard's dispatch list in virtual time.

        Units wait at the shard until it frees up; among the ready ones
        the most urgent (priority, then FIFO) serves first.  Execution
        order within the shard is exactly this service order; the
        pipelined compile below warms the unit most likely to serve
        next (highest priority, then earliest — exact whenever that
        unit is ready by the time this one completes).
        """
        pending = list(pending)
        now_us = 0.0
        while pending:
            ready = [u for u in pending if u.ready_us <= now_us]
            if not ready:
                now_us = min(u.ready_us for u in pending)
                continue
            unit = max(ready, key=lambda u: (u.priority, -u.seq))
            pending.remove(unit)

            execution = pool.submit(self._execute, unit)
            if self.pipeline and pool.concurrent and pending:
                # Warm the compile caches for the likely-next unit
                # while this one executes (thread backend only) —
                # service order is priority-first, so mirror it.
                nxt = min(pending,
                          key=lambda u: (-u.priority, u.ready_us, u.seq))
                pool.submit(precompile_request, self._effective_config(nxt),
                            self._merged_request(nxt))
            grouped = execution.result()

            start_us = max(now_us, unit.ready_us)
            completion_us = start_us + grouped.latency_us
            now_us = completion_us
            banks = unit.banks
            for slot, member in enumerate(unit.members):
                if banks == 1:
                    response = grouped
                else:
                    response = Simulator._split_group(
                        grouped, member.request, slot, banks)
                record = RequestRecord(
                    request_id=member.request_id,
                    workload=member.request.workload,
                    priority=member.priority,
                    arrival_us=member.arrival_us,
                    dispatch_us=unit.ready_us,
                    start_us=start_us,
                    completion_us=completion_us,
                    deadline_us=member.deadline_us,
                    deadline_missed=(member.deadline_us is not None
                                     and completion_us > member.deadline_us),
                    group_banks=banks,
                    shard=shard,
                    cycles=grouped.cycles // banks,
                    energy_nj=grouped.energy_nj / banks)
                self.telemetry.add(record)
                results[member.request_id] = ServeResult(record=record,
                                                         response=response)
