"""Batching scheduler: coalesce, shard, dispatch.

The scheduler is the serving layer's core idea: a stream of single
transform invocations is *mergeable work*.  Same-shape requests
arriving within a batching window coalesce into one multi-bank
dispatch — exactly the Sec. VI.A deployment, built from the PR 2 merge
recipes, so the merged program, compiled stream and timing schedule
all come out of the shared caches once per shape.  All three transform
kinds merge: forward and inverse cyclic :class:`~repro.api.NttRequest`\\ s
and forward and inverse :class:`~repro.api.NegacyclicRequest`\\ s (the
coalescing key is :func:`repro.api.merge_key` plus the effective
config).  Distinct shapes are *sharded* across simulated
channels/devices, which contend for the shared command bus in
:mod:`repro.serve.server`'s execution model.

Planning is a deterministic discrete-event walk over virtual time:
admission happens at arrival against the bounded queue, a group closes
when its window elapses or it fills ``max_banks``, and requests whose
deadline passes while still queued expire before dispatch.  Group
membership and dispatch times depend only on arrivals and the window —
never on service times — which keeps the plan exact while execution is
pipelined underneath (:mod:`repro.serve.server`).

The walk itself lives in :class:`PlanSession`, which is *incremental*:
:meth:`PlanSession.offer` consumes one arrival at a time (closing every
window that elapses first), so a live client can drive it through
``SimServer.submit()`` while :meth:`BatchingScheduler.plan` replays a
whole offline arrival list through the identical code path — the two
can never diverge.

Results are bit-identical to sequential facade calls: a dispatch group
runs as a :class:`~repro.api.MultiBankRequest`, whose per-bank
functional execution is the same per-request compiled stream a
standalone ``Simulator.run`` replays.

``sequential_policy()`` degenerates the same machinery into the naive
baseline (window 0, one request per dispatch) the benchmark compares
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api.simulator import merge_key
from ..sim.driver import SimConfig
from .faults import ResiliencePolicy
from .queueing import RequestQueue, ServeRequest
from .telemetry import (
    RequestRecord,
    STATUS_EXPIRED,
    STATUS_REJECTED,
    STATUS_SHED,
    Telemetry,
)

__all__ = ["DispatchUnit", "BatchingScheduler", "PlanSession",
           "sequential_policy", "shape_key"]


def shape_key(sreq: ServeRequest,
              default_config: SimConfig) -> Optional[tuple]:
    """The coalescing key, or ``None`` when the request cannot batch.

    The transform-shape part comes from :func:`repro.api.merge_key`
    (forward/inverse cyclic NTTs and negacyclic transforms all merge);
    the effective :class:`SimConfig` is part of the key because the
    merged program depends on it — a per-request config override only
    batches with requests under the same override.
    """
    key = merge_key(sreq.request)
    if key is None:
        return None
    return key + (sreq.effective_config(default_config),)


@dataclass
class DispatchUnit:
    """One scheduler decision: these requests run together, here."""

    seq: int
    members: List[ServeRequest]
    #: Virtual time the group closed (left the queue).
    ready_us: float
    shard: int
    #: Coalescing key (``None`` for pass-through singles).
    shape: Optional[tuple] = None
    #: Effective priority: a group serves at its most urgent member's.
    priority: int = 0

    @property
    def banks(self) -> int:
        return len(self.members)


@dataclass
class _OpenGroup:
    shape: tuple
    close_at: float
    members: List[ServeRequest] = field(default_factory=list)


class PlanSession:
    """One incremental planning walk over an arrival stream.

    Feed arrivals in virtual-time order through :meth:`offer`; closed
    windows append :class:`DispatchUnit`\\ s to :attr:`units` and drops
    to :attr:`dropped` as they happen, so a consumer (the live server)
    can execute behind a cursor.  :meth:`flush` closes every still-open
    window (end of stream).  ``BatchingScheduler.plan`` is exactly
    ``offer`` in a loop plus ``flush``.
    """

    def __init__(self, scheduler: "BatchingScheduler", queue: RequestQueue,
                 default_config: SimConfig,
                 telemetry: Optional[Telemetry] = None,
                 policy: Optional[ResiliencePolicy] = None):
        self.scheduler = scheduler
        self.queue = queue
        self.default_config = default_config
        self.telemetry = telemetry
        #: Degradation knobs (load shedding, window shrinking); ``None``
        #: or a neutral policy leaves planning byte-identical.
        self.policy = policy
        self.units: List[DispatchUnit] = []
        self.dropped: List[RequestRecord] = []
        #: Virtual time of the last processed event — arrivals must not
        #: precede it.
        self.now_us = 0.0
        self._open: Dict[tuple, _OpenGroup] = {}

    # -- internal ---------------------------------------------------------------
    def _close_group(self, group: _OpenGroup, now_us: float) -> None:
        self._open.pop(group.shape, None)
        live: List[ServeRequest] = []
        for member in group.members:
            # discard(), not remove(): idempotent, so a group replayed
            # by the retry path can never trip over its own bookkeeping.
            self.queue.discard(member)
            if (member.deadline_us is not None
                    and member.deadline_us < now_us):
                self.dropped.append(RequestRecord(
                    request_id=member.request_id,
                    workload=member.request.workload,
                    status=STATUS_EXPIRED, priority=member.priority,
                    arrival_us=member.arrival_us,
                    deadline_us=member.deadline_us,
                    deadline_missed=True, tenant=member.tenant))
            else:
                live.append(member)
        if self.telemetry is not None:
            self.telemetry.sample_depth(now_us, self.queue.depth())
        if not live:
            return
        self.units.append(DispatchUnit(
            seq=len(self.units), members=live, ready_us=now_us,
            shard=self.scheduler._route(group.shape, live[0].request_id),
            shape=group.shape,
            priority=max(m.priority for m in live)))
        if self.telemetry is not None:
            self.telemetry.note_group(len(live))

    # -- the incremental surface ------------------------------------------------
    def advance(self, now_us: float) -> None:
        """Move virtual time forward to ``now_us``, closing (in
        close-time order) every window that elapses on the way."""
        while self._open:
            group = min(self._open.values(), key=lambda g: g.close_at)
            if group.close_at > now_us:
                break
            self._close_group(group, group.close_at)
        self.now_us = max(self.now_us, now_us)

    def offer(self, sreq: ServeRequest) -> None:
        """Process one arrival (arrivals must be fed in virtual-time
        order): admission control, then window coalescing or immediate
        dispatch for unbatchable requests."""
        if sreq.arrival_us < self.now_us:
            raise ValueError(
                f"arrival at {sreq.arrival_us}us precedes the plan clock "
                f"({self.now_us}us); feed arrivals in order")
        self.advance(sreq.arrival_us)
        now_us = sreq.arrival_us
        policy = self.policy
        if (policy is not None and policy.shed_depth is not None
                and self.queue.depth() >= policy.shed_depth
                and sreq.priority < policy.shed_min_priority):
            # Graceful degradation: past the shedding threshold the
            # queue's remaining headroom is reserved for urgent traffic;
            # best-effort arrivals are turned away *before* admission.
            self.dropped.append(RequestRecord(
                request_id=sreq.request_id,
                workload=sreq.request.workload,
                status=STATUS_SHED, priority=sreq.priority,
                arrival_us=now_us, deadline_us=sreq.deadline_us,
                tenant=sreq.tenant))
            if self.telemetry is not None:
                self.telemetry.note_shed()
            return
        if not self.queue.offer(sreq):
            self.dropped.append(RequestRecord(
                request_id=sreq.request_id,
                workload=sreq.request.workload,
                status=STATUS_REJECTED, priority=sreq.priority,
                arrival_us=now_us, deadline_us=sreq.deadline_us,
                tenant=sreq.tenant))
            return
        if self.telemetry is not None:
            self.telemetry.sample_depth(now_us, self.queue.depth())
        shape = shape_key(sreq, self.default_config)
        if shape is None or self.scheduler.max_banks == 1:
            # Unbatchable (or batching disabled): dispatch alone,
            # immediately — holding it in a window buys nothing.
            self.queue.remove(sreq)
            self.units.append(DispatchUnit(
                seq=len(self.units), members=[sreq], ready_us=now_us,
                shard=self.scheduler._route(None, sreq.request_id),
                priority=sreq.priority))
            if self.telemetry is not None:
                self.telemetry.note_group(1)
                self.telemetry.sample_depth(now_us, self.queue.depth())
            return
        group = self._open.get(shape)
        if group is None:
            window_us = self.scheduler.window_us
            if (policy is not None and policy.shrink_depth is not None
                    and self.queue.depth() >= policy.shrink_depth):
                # Overloaded: close new windows sooner — trade batch
                # occupancy for queue drain and latency.
                window_us *= policy.shrink_factor
                if self.telemetry is not None:
                    self.telemetry.note_shrunk_window()
            group = _OpenGroup(shape=shape, close_at=now_us + window_us)
            self._open[shape] = group
        group.members.append(sreq)
        if len(group.members) >= self.scheduler.max_banks:
            self._close_group(group, now_us)

    def release(self, sreq: ServeRequest) -> None:
        """Admit one *dependency-released* arrival — a DAG stage whose
        parents just settled (``sreq.arrival_us`` is the release time:
        the latest parent completion).

        Identical to :meth:`offer` except the plan clock does not gate
        it: settlement can run ahead of planning (the live path's
        finality horizon), so a stage's release time may lie behind
        ``now_us``.  A past release never advances the clock; it joins
        its shape's open window if one is open (every open window's
        close time is still ahead of the clock, hence ahead of the
        release), or opens a new one at its own release time — closed
        by the caller's next ``advance()``/``flush()`` like any other
        window.  Releases at or past the clock are plain offers.
        """
        if sreq.arrival_us >= self.now_us:
            self.offer(sreq)
            return
        now_us = sreq.arrival_us
        policy = self.policy
        if (policy is not None and policy.shed_depth is not None
                and self.queue.depth() >= policy.shed_depth
                and sreq.priority < policy.shed_min_priority):
            self.dropped.append(RequestRecord(
                request_id=sreq.request_id,
                workload=sreq.request.workload,
                status=STATUS_SHED, priority=sreq.priority,
                arrival_us=now_us, deadline_us=sreq.deadline_us,
                tenant=sreq.tenant))
            if self.telemetry is not None:
                self.telemetry.note_shed()
            return
        if not self.queue.offer(sreq):
            self.dropped.append(RequestRecord(
                request_id=sreq.request_id,
                workload=sreq.request.workload,
                status=STATUS_REJECTED, priority=sreq.priority,
                arrival_us=now_us, deadline_us=sreq.deadline_us,
                tenant=sreq.tenant))
            return
        if self.telemetry is not None:
            self.telemetry.sample_depth(now_us, self.queue.depth())
        shape = shape_key(sreq, self.default_config)
        if shape is None or self.scheduler.max_banks == 1:
            self.queue.remove(sreq)
            self.units.append(DispatchUnit(
                seq=len(self.units), members=[sreq], ready_us=now_us,
                shard=self.scheduler._route(None, sreq.request_id),
                priority=sreq.priority))
            if self.telemetry is not None:
                self.telemetry.note_group(1)
                self.telemetry.sample_depth(now_us, self.queue.depth())
            return
        group = self._open.get(shape)
        if group is None:
            window_us = self.scheduler.window_us
            if (policy is not None and policy.shrink_depth is not None
                    and self.queue.depth() >= policy.shrink_depth):
                window_us *= policy.shrink_factor
                if self.telemetry is not None:
                    self.telemetry.note_shrunk_window()
            group = _OpenGroup(shape=shape, close_at=now_us + window_us)
            self._open[shape] = group
        group.members.append(sreq)
        if len(group.members) >= self.scheduler.max_banks:
            # A full group closes at its *latest* member's ready time —
            # offer()'s now_us is exactly that for in-order arrivals; a
            # past release joining an already-open window must not pull
            # the close time before members that arrived after it.
            self._close_group(group, max(m.arrival_us
                                         for m in group.members))

    def flush(self) -> None:
        """End of stream: close every remaining window at its close
        time (in order), advancing the plan clock past them."""
        while self._open:
            group = min(self._open.values(), key=lambda g: g.close_at)
            close_at = group.close_at
            self._close_group(group, close_at)
            self.now_us = max(self.now_us, close_at)


class BatchingScheduler:
    """Window-based coalescing with round-robin shape→shard placement."""

    def __init__(self, *, window_us: float = 50.0, max_banks: int = 8,
                 num_shards: int = 1):
        if window_us < 0:
            raise ValueError("window_us must be >= 0")
        if max_banks < 1:
            raise ValueError("max_banks must be >= 1")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.window_us = window_us
        self.max_banks = max_banks
        self.num_shards = num_shards
        # Stable placement: shapes (and unbatchable singles) take shards
        # round-robin in order of first appearance — deterministic given
        # the arrival order, unlike hash()-based routing.
        self._shard_of: Dict[tuple, int] = {}
        self._next_shard = 0

    def _route(self, shape: Optional[tuple], request_id: int) -> int:
        if shape is None:
            # Unbatchable singles need no persistent placement (their
            # ids never recur) — plain round-robin, nothing stored.
            shard = self._next_shard % self.num_shards
            self._next_shard += 1
            return shard
        shard = self._shard_of.get(shape)
        if shard is None:
            shard = self._next_shard % self.num_shards
            self._next_shard += 1
            self._shard_of[shape] = shard
        return shard

    # -- planning ---------------------------------------------------------------
    def begin(self, queue: RequestQueue, default_config: SimConfig,
              telemetry: Optional[Telemetry] = None,
              policy: Optional[ResiliencePolicy] = None) -> PlanSession:
        """Start an incremental planning walk (the live-server entry)."""
        return PlanSession(self, queue, default_config, telemetry, policy)

    def plan(self, arrivals: List[ServeRequest], queue: RequestQueue,
             default_config: SimConfig,
             telemetry: Optional[Telemetry] = None,
             policy: Optional[ResiliencePolicy] = None
             ) -> Tuple[List[DispatchUnit], List[RequestRecord]]:
        """Deterministic discrete-event walk over the arrival stream.

        Returns ``(units, dropped)``: the dispatch plan plus records for
        requests that never reached a shard (admission rejections and
        queued-past-deadline expiries).  ``arrivals`` must be sorted by
        ``(arrival_us, request_id)``.
        """
        session = self.begin(queue, default_config, telemetry, policy)
        for sreq in arrivals:
            session.offer(sreq)
        session.flush()
        return session.units, session.dropped


def sequential_policy(num_shards: int = 1) -> BatchingScheduler:
    """The naive baseline: no window, no coalescing — every request is
    its own dispatch, served in arrival order.  Same machinery, so the
    benchmark's comparison isolates *batching*, nothing else."""
    return BatchingScheduler(window_us=0.0, max_banks=1,
                             num_shards=num_shards)
