"""Batching scheduler: coalesce, shard, dispatch.

The scheduler is the serving layer's core idea: a stream of single-NTT
invocations is *mergeable work*.  Same-shape forward
:class:`~repro.api.NttRequest`\\ s arriving within a batching window
coalesce into one multi-bank dispatch — exactly the Sec. VI.A
deployment, built from the PR 2 merge recipes, so the merged program,
compiled stream and timing schedule all come out of the shared caches
once per shape.  Distinct shapes are *sharded* across simulated
channels/devices: each shard owns its own command bus and bank set, so
two shapes serve concurrently in device time.

Planning is a deterministic discrete-event walk over virtual time
(:meth:`BatchingScheduler.plan`): admission happens at arrival against
the bounded queue, a group closes when its window elapses or it fills
``max_banks``, and requests whose deadline passes while still queued
expire before dispatch.  Group membership and dispatch times depend
only on arrivals and the window — never on service times — which keeps
the plan exact while execution is pipelined underneath
(:mod:`repro.serve.server`).

Results are bit-identical to sequential facade calls: a dispatch group
runs as a :class:`~repro.api.MultiBankRequest`, whose per-bank
functional execution is the same per-request compiled stream a
standalone ``Simulator.run`` replays.

``sequential_policy()`` degenerates the same machinery into the naive
baseline (window 0, one request per dispatch) the benchmark compares
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api.requests import NttRequest
from ..sim.driver import SimConfig
from .queueing import RequestQueue, ServeRequest
from .telemetry import RequestRecord, STATUS_EXPIRED, STATUS_REJECTED, Telemetry

__all__ = ["DispatchUnit", "BatchingScheduler", "sequential_policy",
           "shape_key"]


def shape_key(sreq: ServeRequest,
              default_config: SimConfig) -> Optional[tuple]:
    """The coalescing key, or ``None`` when the request cannot batch.

    Only forward cyclic NTTs merge (the multi-bank recipe); the
    effective :class:`SimConfig` is part of the key because the merged
    program depends on it — a per-request config override only batches
    with requests under the same override.
    """
    request = sreq.request
    if type(request) is NttRequest and not request.inverse:
        config = sreq.config if sreq.config is not None else default_config
        return ("ntt", request.params.n, request.params.q,
                request.params.omega, config)
    return None


@dataclass
class DispatchUnit:
    """One scheduler decision: these requests run together, here."""

    seq: int
    members: List[ServeRequest]
    #: Virtual time the group closed (left the queue).
    ready_us: float
    shard: int
    #: Coalescing key (``None`` for pass-through singles).
    shape: Optional[tuple] = None
    #: Effective priority: a group serves at its most urgent member's.
    priority: int = 0

    @property
    def banks(self) -> int:
        return len(self.members)


@dataclass
class _OpenGroup:
    shape: tuple
    close_at: float
    members: List[ServeRequest] = field(default_factory=list)


class BatchingScheduler:
    """Window-based coalescing with round-robin shape→shard placement."""

    def __init__(self, *, window_us: float = 50.0, max_banks: int = 8,
                 num_shards: int = 1):
        if window_us < 0:
            raise ValueError("window_us must be >= 0")
        if max_banks < 1:
            raise ValueError("max_banks must be >= 1")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.window_us = window_us
        self.max_banks = max_banks
        self.num_shards = num_shards
        # Stable placement: shapes (and unbatchable singles) take shards
        # round-robin in order of first appearance — deterministic given
        # the arrival order, unlike hash()-based routing.
        self._shard_of: Dict[tuple, int] = {}
        self._next_shard = 0

    def _route(self, shape: Optional[tuple], request_id: int) -> int:
        if shape is None:
            # Unbatchable singles need no persistent placement (their
            # ids never recur) — plain round-robin, nothing stored.
            shard = self._next_shard % self.num_shards
            self._next_shard += 1
            return shard
        shard = self._shard_of.get(shape)
        if shard is None:
            shard = self._next_shard % self.num_shards
            self._next_shard += 1
            self._shard_of[shape] = shard
        return shard

    # -- planning ---------------------------------------------------------------
    def plan(self, arrivals: List[ServeRequest], queue: RequestQueue,
             default_config: SimConfig,
             telemetry: Optional[Telemetry] = None
             ) -> Tuple[List[DispatchUnit], List[RequestRecord]]:
        """Deterministic discrete-event walk over the arrival stream.

        Returns ``(units, dropped)``: the dispatch plan plus records for
        requests that never reached a shard (admission rejections and
        queued-past-deadline expiries).  ``arrivals`` must be sorted by
        ``(arrival_us, request_id)``.
        """
        units: List[DispatchUnit] = []
        dropped: List[RequestRecord] = []
        open_groups: Dict[tuple, _OpenGroup] = {}
        i = 0

        def close_group(group: _OpenGroup, now_us: float) -> None:
            open_groups.pop(group.shape, None)
            live: List[ServeRequest] = []
            for member in group.members:
                queue.remove(member)
                if (member.deadline_us is not None
                        and member.deadline_us < now_us):
                    dropped.append(RequestRecord(
                        request_id=member.request_id,
                        workload=member.request.workload,
                        status=STATUS_EXPIRED, priority=member.priority,
                        arrival_us=member.arrival_us,
                        deadline_us=member.deadline_us,
                        deadline_missed=True))
                else:
                    live.append(member)
            if telemetry is not None:
                telemetry.sample_depth(now_us, queue.depth())
            if not live:
                return
            units.append(DispatchUnit(
                seq=len(units), members=live, ready_us=now_us,
                shard=self._route(group.shape, live[0].request_id),
                shape=group.shape,
                priority=max(m.priority for m in live)))
            if telemetry is not None:
                telemetry.note_group(len(live))

        while i < len(arrivals) or open_groups:
            next_arrival = (arrivals[i].arrival_us if i < len(arrivals)
                            else float("inf"))
            closing = (min(open_groups.values(), key=lambda g: g.close_at)
                       if open_groups else None)
            if closing is not None and closing.close_at <= next_arrival:
                close_group(closing, closing.close_at)
                continue

            sreq = arrivals[i]
            i += 1
            now_us = sreq.arrival_us
            if not queue.offer(sreq):
                dropped.append(RequestRecord(
                    request_id=sreq.request_id,
                    workload=sreq.request.workload,
                    status=STATUS_REJECTED, priority=sreq.priority,
                    arrival_us=now_us, deadline_us=sreq.deadline_us))
                continue
            if telemetry is not None:
                telemetry.sample_depth(now_us, queue.depth())
            shape = shape_key(sreq, default_config)
            if shape is None or self.max_banks == 1:
                # Unbatchable (or batching disabled): dispatch alone,
                # immediately — holding it in a window buys nothing.
                queue.remove(sreq)
                units.append(DispatchUnit(
                    seq=len(units), members=[sreq], ready_us=now_us,
                    shard=self._route(None, sreq.request_id),
                    priority=sreq.priority))
                if telemetry is not None:
                    telemetry.note_group(1)
                    telemetry.sample_depth(now_us, queue.depth())
                continue
            group = open_groups.get(shape)
            if group is None:
                group = _OpenGroup(shape=shape,
                                   close_at=now_us + self.window_us)
                open_groups[shape] = group
            group.members.append(sreq)
            if len(group.members) >= self.max_banks:
                close_group(group, now_us)
        return units, dropped


def sequential_policy(num_shards: int = 1) -> BatchingScheduler:
    """The naive baseline: no window, no coalescing — every request is
    its own dispatch, served in arrival order.  Same machinery, so the
    benchmark's comparison isolates *batching*, nothing else."""
    return BatchingScheduler(window_us=0.0, max_banks=1,
                             num_shards=num_shards)
