"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands::

    run [workload]   one workload through the repro.api facade
                     (ntt | negacyclic | batch | multibank | fhe;
                     --backend picks the compute backend, --cache-info
                     prints program/schedule cache statistics)
    compile          compile one workload through the repro.compile
                     pass pipeline without running it (--dump-ir
                     prints the SoA IR, --passes selects passes)
    serve            drive synthetic open-loop traffic through the
                     repro.serve layer (batching scheduler, shards,
                     worker pool) and print the telemetry rollup;
                     --cluster N serves through the repro.cluster
                     multi-replica front-end (routing, tenant quotas,
                     --watch live operator console)
    trace            dump the DRAM command trace for one NTT
    fig6 / fig7 / fig8 / table2 / table3 / ablations / banks
                     regenerate one experiment
    all              run every experiment (the full reproduction)
"""

from __future__ import annotations

import argparse
import random
import sys
from contextlib import ExitStack

from .api import (
    BatchRequest,
    FheOpRequest,
    MultiBankRequest,
    NegacyclicRequest,
    NttRequest,
    Simulator,
    workload_names,
)
from .arith.primes import find_ntt_prime
from .arith.roots import NttParams
from .arith.vector import BACKENDS, use_backend
from .experiments import (
    run_ablations,
    run_bank_scaling,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table2,
    run_table3,
)
from .experiments.runner import run_all
from .ntt.negacyclic import NegacyclicParams
from .pim.params import PimParams
from .sim.driver import NttPimDriver, SimConfig
from .sim.trace import format_trace, trace_summary

__all__ = ["main"]

#: Workloads the generic ``run <workload>`` subcommand can construct
#: from flags.  Other registered workloads are API-only.
CLI_WORKLOADS = ("ntt", "negacyclic", "batch", "multibank", "fhe")


def _add_run_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("-n", type=int, default=1024,
                     help="polynomial length (power of two, default 1024)")
    sub.add_argument("--nb", type=int, default=2,
                     help="number of atom buffers incl. primary (default 2)")
    sub.add_argument("--freq", type=float, default=1200.0,
                     help="clock in MHz (default 1200)")
    sub.add_argument("--seed", type=int, default=0)


def _make_config(args) -> SimConfig:
    config = SimConfig(pim=PimParams(nb_buffers=args.nb))
    if args.freq != 1200.0:
        config = config.at_frequency(args.freq)
    return config


def _build_request(args):
    """One facade request from the run subcommand's flags."""
    n, workload = args.n, args.workload
    rng = random.Random(args.seed)
    if workload in ("negacyclic", "fhe"):
        q = find_ntt_prime(n, 32, negacyclic=True)
        ring = NegacyclicParams(n, q)
        values = [rng.randrange(q) for _ in range(n)]
        if workload == "negacyclic":
            return NegacyclicRequest(ring=ring, values=values)
        other = [rng.randrange(q) for _ in range(n)]
        return FheOpRequest(ring=ring, op="multiply", a=values, b=other,
                            native=args.native)
    q = find_ntt_prime(n, 32)
    params = NttParams(n, q)
    if workload == "ntt":
        return NttRequest(params=params,
                          values=[rng.randrange(q) for _ in range(n)])
    inputs = [[rng.randrange(q) for _ in range(n)]
              for _ in range(args.count)]
    if workload == "batch":
        return BatchRequest(params=params, inputs=inputs)
    return MultiBankRequest(params=params, inputs=inputs)


def _print_cache_info(simulator: Simulator) -> None:
    info = simulator.cache_info()
    print(f"backend        : {info['backend']}")
    for cache in ("program", "stream", "schedule"):
        stats = info[cache]
        print(f"{cache + ' cache':<15}: entries={stats['entries']} "
              f"hits={stats['hits']} misses={stats['misses']}")


def _cmd_run(args) -> int:
    if args.workload not in CLI_WORKLOADS:
        registered = ", ".join(workload_names())
        print(f"unknown workload {args.workload!r}; CLI workloads: "
              f"{', '.join(CLI_WORKLOADS)} (registered: {registered})",
              file=sys.stderr)
        return 2
    simulator = Simulator(_make_config(args))
    with ExitStack() as stack:
        if args.backend:
            stack.enter_context(use_backend(args.backend))
        response = simulator.run(_build_request(args))
        print(response.summary())
        if args.cache_info:
            print(f"run caches     : program {response.cache['program']}, "
                  f"stream {response.cache['stream']}, "
                  f"schedule {response.cache['schedule']}")
            print(f"wall time      : {response.wall_time_s * 1e3:.2f} ms")
            _print_cache_info(simulator)
    return 0


def _cmd_compile(args) -> int:
    if args.workload not in ("ntt", "negacyclic", "batch", "multibank"):
        print(f"unknown compile workload {args.workload!r}; choose from "
              "ntt, negacyclic, batch, multibank", file=sys.stderr)
        return 2
    from .api import compile_request
    from .compile.passes import PASS_NAMES

    passes = None
    if args.passes is not None:
        passes = frozenset(p for p in args.passes.split(",") if p)
        unknown = passes - set(PASS_NAMES)
        if unknown:
            print(f"unknown passes: {', '.join(sorted(unknown))} "
                  f"(available: {', '.join(PASS_NAMES)})", file=sys.stderr)
            return 2
    compiled = compile_request(_build_request(args), _make_config(args),
                               passes=passes)
    if args.dump_ir:
        print(compiled.ir.describe())
        print(f"passes: {', '.join(compiled.passes) or '(none)'}")
        if compiled.fused:
            stats = compiled.pass_stats
            print(f"plan: mode={stats.get('mode')} "
                  f"ops={len(compiled.stream.plan.ops)} "
                  f"groups={stats.get('groups')} "
                  f"depth={stats.get('depth')} "
                  f"virtual={stats.get('n_virtual')}")
        else:
            print(f"fallback: {compiled.stream.fallback_reason}")
    else:
        print(compiled.describe())
    return 0


def _cmd_serve(args) -> int:
    # Imported here: the serving layer sits above the facade and only
    # this subcommand needs it.
    from .serve import LoadGenerator, SimServer, make_scenario

    from .errors import ServeError

    try:
        scenario = make_scenario(args.scenario)
    except (ValueError, ServeError) as exc:
        print(exc, file=sys.stderr)
        return 2
    config = SimConfig(verify=not args.no_verify)
    rate_profile = None
    if args.burst is not None:
        peak, start_us, duration_us = args.burst
        rate_profile = LoadGenerator.burst_profile(
            args.rate, peak, start_us=start_us, duration_us=duration_us)
    tenants = (LoadGenerator.noisy_neighbor() if args.tenants == "noisy"
               else None)
    load = LoadGenerator(scenario, rate_rps=args.rate, count=args.requests,
                         seed=args.seed,
                         high_priority_fraction=args.high_priority,
                         deadline_us=args.deadline_us,
                         rate_profile=rate_profile,
                         tenants=tenants)
    if args.cluster:
        return _serve_cluster(args, scenario, config, load)
    if args.replica_faults is not None or args.autoscale is not None:
        print("--replica-faults/--autoscale need --cluster N (replica "
              "fault domains and auto-scaling are cluster-tier concerns)",
              file=sys.stderr)
        return 2
    try:
        server = SimServer(config, scheduler=args.scheduler,
                           window_us=args.window_us,
                           max_banks=args.max_banks,
                           num_shards=args.shards, max_depth=args.depth,
                           workers=args.workers,
                           pipeline=not args.no_pipeline,
                           bus=args.bus, faults=args.faults,
                           fault_seed=args.fault_seed, policy=args.policy)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    import time as _time
    start = _time.perf_counter()
    if args.live:
        # Drive the server as a live client: submit each arrival as it
        # "happens", poll the oldest outstanding id in between (a real
        # client's interleaved check), drain the tail at the end.
        outstanding = []
        polled = 0
        for sreq in load.stream():
            outstanding.append(server.submit(sreq))
            if server.poll(outstanding[0]) is not None:
                outstanding.pop(0)
                polled += 1
        results = server.drain()
    else:
        results = server.serve(load.requests())
    wall_s = _time.perf_counter() - start
    print(f"scenario       : {scenario.name} ({scenario.description})")
    print(f"offered load   : {args.rate:.0f} req/s, "
          f"{args.requests} requests, seed {args.seed}")
    print(f"server         : scheduler={args.scheduler} "
          f"window={args.window_us:.0f}us max_banks={args.max_banks} "
          f"shards={args.shards} bus={args.bus} workers={args.workers}"
          f"{' [live submit/poll]' if args.live else ''}")
    if args.burst is not None:
        peak, start_us, duration_us = args.burst
        print(f"burst overload : {peak:.0f} req/s from {start_us:.0f}us "
              f"for {duration_us:.0f}us")
    if server.fault_plan is not None or args.policy != "none":
        injected = (server.fault_plan.describe()
                    if server.fault_plan is not None else "none")
        print(f"resilience     : faults={injected} policy={args.policy}")
    if args.live:
        print(f"live client    : {polled} results observed via poll() "
              f"mid-stream, {len(results) - polled} at drain()")
    print(server.telemetry.summary())
    print(f"host wall time : {wall_s * 1e3:.1f} ms "
          f"({len(results) / wall_s:.0f} req/s functional simulation)")
    return 0


def _serve_cluster(args, scenario, config, load) -> int:
    """The ``--cluster N`` branch of ``repro serve``: the same offered
    stream through a ClusterFrontend (optionally under the live
    operator console)."""
    from .cluster import ClusterFrontend, TenantQuota, have_textual, watch
    from .errors import ReproError

    try:
        quotas = None
        if args.quota_rps is not None:
            quotas = {"*": TenantQuota(rate_rps=args.quota_rps,
                                       burst=args.quota_burst)}
        frontend = ClusterFrontend(
            args.cluster, config, router=args.router, quotas=quotas,
            scheduler=args.scheduler, window_us=args.window_us,
            max_banks=args.max_banks, num_shards=args.shards,
            max_depth=args.depth, workers=args.workers,
            pipeline=not args.no_pipeline, bus=args.bus,
            faults=args.faults, fault_seed=args.fault_seed,
            policy=args.policy,
            replica_faults=args.replica_faults,
            replica_fault_seed=args.fault_seed,
            autoscale=args.autoscale)
    except (ValueError, ReproError) as exc:
        print(exc, file=sys.stderr)
        return 2
    import time as _time
    start = _time.perf_counter()
    if args.watch:
        mode = args.watch_mode
        if mode == "auto":
            mode = "textual" if have_textual() else "plain"
        results = watch(frontend, load.requests(),
                        every_us=args.watch_every_us,
                        mode=mode, max_frames=args.watch_frames)
    else:
        results = frontend.serve(load.requests())
    wall_s = _time.perf_counter() - start
    print(f"scenario       : {scenario.name} ({scenario.description})")
    print(f"offered load   : {args.rate:.0f} req/s, "
          f"{args.requests} requests, seed {args.seed}"
          f"{', tenants=' + args.tenants if args.tenants != 'none' else ''}")
    print(f"cluster        : {args.cluster} replicas, router={args.router}, "
          f"{args.shards} shards each, bus={args.bus}, "
          f"window={args.window_us:.0f}us"
          f"{' [watch]' if args.watch else ''}")
    if args.faults is not None or args.policy != "none":
        print(f"resilience     : faults={args.faults or 'none'} "
              f"policy={args.policy} (per-replica derived fault seeds)")
    if frontend.supervised:
        health = frontend.health.snapshot()
        print(f"self-healing   : replica-faults="
              f"{args.replica_faults or 'none'}"
              f"{', autoscale=' + args.autoscale if args.autoscale else ''}"
              f" | failovers={health['failovers']} "
              f"restarts={health['restarts']} "
              f"orphans={health['orphans_recovered']} "
              f"dups={health['duplicates_dropped']} "
              f"scale=+{health['scale_out']}/-{health['scale_in']} "
              f"mttr={health['mttr_us']:.0f}us")
    stats = frontend.quota_stats()
    if stats:
        print("tenants        : " + "  ".join(
            f"{t or '(none)'}={int(s['admitted'])}ok"
            f"/{int(s['throttled'])}thr" for t, s in stats.items()))
    print(frontend.cluster_telemetry().summary())
    print(f"host wall time : {wall_s * 1e3:.1f} ms "
          f"({len(results) / wall_s:.0f} req/s functional simulation)")
    return 0


def _cmd_trace(args) -> int:
    q = find_ntt_prime(args.n, 32)
    driver = NttPimDriver(_make_config(args))
    commands = driver.map_commands(NttParams(args.n, q))
    print(trace_summary(commands))
    print(format_trace(commands[:args.head]))
    if len(commands) > args.head:
        print(f"... ({len(commands) - args.head} more)")
    return 0


_EXPERIMENTS = {
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "table2": run_table2,
    "table3": run_table3,
    "ablations": run_ablations,
    "banks": run_bank_scaling,
}


def _cmd_experiment(name: str) -> int:
    result = _EXPERIMENTS[name]()
    print(result.table())
    if hasattr(result, "energy_table"):
        print(result.energy_table())
    ok = True
    for claim, holds in result.check_claims().items():
        print(f"[{'ok' if holds else 'FAIL'}] {claim}")
        ok = ok and holds
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subs = parser.add_subparsers(dest="command", required=True)

    run_p = subs.add_parser(
        "run", help="simulate one workload through the repro.api facade")
    run_p.add_argument("workload", nargs="?", default="ntt",
                       help=f"workload name (default ntt; one of "
                            f"{', '.join(CLI_WORKLOADS)})")
    _add_run_args(run_p)
    run_p.add_argument("--backend", choices=BACKENDS, default=None,
                       help="compute backend for this run "
                            "(default: current repro.arith.vector choice)")
    run_p.add_argument("--cache-info", action="store_true",
                       help="print program/schedule cache statistics")
    run_p.add_argument("--count", type=int, default=4,
                       help="polynomials for batch/multibank (default 4)")
    run_p.add_argument("--native", action="store_true",
                       help="fhe: use the native merged negacyclic mapping")

    compile_p = subs.add_parser(
        "compile", help="compile one workload's command stream "
                        "through the IR pass pipeline (no execution)")
    compile_p.add_argument("workload", nargs="?", default="ntt",
                           help="ntt | negacyclic | batch | multibank "
                                "(default ntt)")
    _add_run_args(compile_p)
    compile_p.add_argument("--count", type=int, default=4,
                           help="polynomials for batch/multibank "
                                "(default 4)")
    compile_p.add_argument("--dump-ir", action="store_true",
                           help="print the SoA IR column summary")
    compile_p.add_argument("--passes", default=None,
                           help="comma-separated pass subset (default: "
                                "all; empty string = none)")

    serve_p = subs.add_parser(
        "serve", help="drive synthetic traffic through the serving layer")
    serve_p.add_argument("--scenario", default="skewed",
                         help="shape mix: uniform | skewed | fhe | mixed "
                              "| chaos | dag | pipeline (default skewed; "
                              "dag/pipeline offer dependent op-graphs)")
    serve_p.add_argument("--live", action="store_true",
                         help="drive the server through the online "
                              "submit()/poll()/drain() surface instead "
                              "of one offline serve() call")
    serve_p.add_argument("--rate", type=float, default=150000.0,
                         help="offered load in requests per simulated "
                              "second (default 150000)")
    serve_p.add_argument("--requests", type=int, default=100,
                         help="number of requests to generate (default 100)")
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--scheduler", choices=("batching", "sequential"),
                         default="batching")
    serve_p.add_argument("--window-us", type=float, default=50.0,
                         help="batching window in simulated us (default 50)")
    serve_p.add_argument("--max-banks", type=int, default=8,
                         help="largest dispatch group (default 8)")
    serve_p.add_argument("--shards", type=int, default=1,
                         help="simulated channels/devices (default 1)")
    serve_p.add_argument("--bus", choices=("shared", "independent"),
                         default="shared",
                         help="cross-shard command-bus model (default "
                              "shared: dispatches contend for bus slots)")
    serve_p.add_argument("--depth", type=int, default=256,
                         help="admission-control queue depth (default 256)")
    serve_p.add_argument("--workers", choices=("inline", "thread"),
                         default="inline",
                         help="execution backend (default inline)")
    serve_p.add_argument("--high-priority", type=float, default=0.0,
                         help="fraction of requests at priority 1")
    serve_p.add_argument("--deadline-us", type=float, default=None,
                         help="per-request deadline in simulated us")
    serve_p.add_argument("--no-pipeline", action="store_true",
                         help="disable compile/execute pipelining")
    serve_p.add_argument("--no-verify", action="store_true",
                         help="skip golden-model verification per NTT")
    serve_p.add_argument("--faults", default=None,
                         help="inject deterministic faults: a profile "
                              "name (none/transient/degraded/chaos) or "
                              "'rate:<r>' (default: no injection)")
    serve_p.add_argument("--fault-seed", type=int, default=0,
                         help="fault-plan seed (default 0; same seed = "
                              "bit-identical fault schedule)")
    serve_p.add_argument("--policy", default="none",
                         help="resilience policy: none or standard "
                              "(retries+timeout+breaker+detection; "
                              "default none)")
    serve_p.add_argument("--burst", nargs=3, type=float, default=None,
                         metavar=("PEAK_RPS", "START_US", "DURATION_US"),
                         help="step the offered rate to PEAK_RPS from "
                              "START_US for DURATION_US (overload drill)")
    serve_p.add_argument("--cluster", type=int, default=0, metavar="N",
                         help="serve through a repro.cluster front-end "
                              "over N replicas (each with --shards "
                              "shards; default 0: single server)")
    serve_p.add_argument("--replica-faults", default=None,
                         metavar="PROFILE",
                         help="replica-scoped chaos (cluster only): a "
                              "profile name (crashy, flaky, chaos) or "
                              "'rate:<r>' -- whole replicas crash, hang "
                              "or partition on a deterministic timeline; "
                              "the watchdog fails over, restarts and "
                              "recovers orphans (seeded by --fault-seed)")
    serve_p.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                         help="heartbeat-driven auto-scaling (cluster "
                              "only): keep between MIN and MAX replicas, "
                              "scaling out on sustained load and in on "
                              "idleness")
    serve_p.add_argument("--router", choices=("hash", "least-loaded"),
                         default="hash",
                         help="cluster routing policy (default hash: "
                              "consistent hashing by batching merge key)")
    serve_p.add_argument("--tenants", choices=("none", "noisy"),
                         default="none",
                         help="tenant arrival mix: 'noisy' = one hog "
                              "tenant at 80%% of traffic plus 3 "
                              "well-behaved neighbors (default none)")
    serve_p.add_argument("--quota-rps", type=float, default=None,
                         help="per-tenant admission quota in requests "
                              "per simulated second (cluster only; "
                              "default: unmetered)")
    serve_p.add_argument("--quota-burst", type=float, default=8.0,
                         help="per-tenant token-bucket burst ceiling "
                              "(default 8)")
    serve_p.add_argument("--watch", action="store_true",
                         help="drive the cluster through the live "
                              "operator console (virtual-time frames)")
    serve_p.add_argument("--watch-mode",
                         choices=("auto", "plain", "textual"),
                         default="auto",
                         help="console renderer: auto = Textual "
                              "DataTable when installed, else plain "
                              "fixed-width frames (default auto)")
    serve_p.add_argument("--watch-every-us", type=float, default=200.0,
                         help="virtual time between console frames "
                              "(default 200us)")
    serve_p.add_argument("--watch-frames", type=int, default=3,
                         help="cap on plain frames printed (default 3; "
                              "the loop always runs to completion)")

    trace_p = subs.add_parser("trace", help="dump a command trace")
    _add_run_args(trace_p)
    trace_p.add_argument("--head", type=int, default=40,
                         help="lines of trace to print (default 40)")

    for name in _EXPERIMENTS:
        subs.add_parser(name, help=f"reproduce {name}")

    all_p = subs.add_parser("all", help="run every experiment")
    all_p.add_argument("--quick", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "all":
        checks = run_all(quick=args.quick)
        bad = [c for claims in checks.values()
               for c, ok in claims.items() if not ok]
        return 1 if bad else 0
    return _cmd_experiment(args.command)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
