"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands::

    run      one NTT on the simulated PIM (prints the run summary)
    trace    dump the DRAM command trace for one NTT
    fig6 / fig7 / fig8 / table2 / table3 / ablations / banks
             regenerate one experiment
    all      run every experiment (the full reproduction)
"""

from __future__ import annotations

import argparse
import random
import sys

from .arith.primes import find_ntt_prime
from .arith.roots import NttParams
from .experiments import (
    run_ablations,
    run_bank_scaling,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table2,
    run_table3,
)
from .experiments.runner import run_all
from .pim.params import PimParams
from .sim.driver import NttPimDriver, SimConfig
from .sim.trace import format_trace, trace_summary

__all__ = ["main"]


def _add_run_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("-n", type=int, default=1024,
                     help="polynomial length (power of two, default 1024)")
    sub.add_argument("--nb", type=int, default=2,
                     help="number of atom buffers incl. primary (default 2)")
    sub.add_argument("--freq", type=float, default=1200.0,
                     help="clock in MHz (default 1200)")
    sub.add_argument("--seed", type=int, default=0)


def _make_driver(args) -> tuple:
    q = find_ntt_prime(args.n, 32)
    params = NttParams(args.n, q)
    config = SimConfig(pim=PimParams(nb_buffers=args.nb))
    if args.freq != 1200.0:
        config = config.at_frequency(args.freq)
    return NttPimDriver(config), params, q


def _cmd_run(args) -> int:
    driver, params, q = _make_driver(args)
    rng = random.Random(args.seed)
    values = [rng.randrange(q) for _ in range(args.n)]
    result = driver.run_ntt(values, params)
    print(result.summary())
    return 0


def _cmd_trace(args) -> int:
    driver, params, _ = _make_driver(args)
    commands = driver.map_commands(params)
    print(trace_summary(commands))
    print(format_trace(commands[:args.head]))
    if len(commands) > args.head:
        print(f"... ({len(commands) - args.head} more)")
    return 0


_EXPERIMENTS = {
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "table2": run_table2,
    "table3": run_table3,
    "ablations": run_ablations,
    "banks": run_bank_scaling,
}


def _cmd_experiment(name: str) -> int:
    result = _EXPERIMENTS[name]()
    print(result.table())
    if hasattr(result, "energy_table"):
        print(result.energy_table())
    ok = True
    for claim, holds in result.check_claims().items():
        print(f"[{'ok' if holds else 'FAIL'}] {claim}")
        ok = ok and holds
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subs = parser.add_subparsers(dest="command", required=True)

    run_p = subs.add_parser("run", help="simulate one NTT")
    _add_run_args(run_p)

    trace_p = subs.add_parser("trace", help="dump a command trace")
    _add_run_args(trace_p)
    trace_p.add_argument("--head", type=int, default=40,
                         help="lines of trace to print (default 40)")

    for name in _EXPERIMENTS:
        subs.add_parser(name, help=f"reproduce {name}")

    all_p = subs.add_parser("all", help="run every experiment")
    all_p.add_argument("--quick", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "all":
        checks = run_all(quick=args.quick)
        bad = [c for claims in checks.values()
               for c, ok in claims.items() if not ok]
        return 1 if bad else 0
    return _cmd_experiment(args.command)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
