"""Builder helpers for dependent op-graphs (:class:`repro.api.DagRequest`).

The graphs real FHE/lattice services serve, assembled from the existing
primitives:

* :func:`ckks_mul_chain` — CKKS/BGV-style ciphertext chains: per RNS
  limb, ``depth`` levels of multiply → relinearize (key-switch by the
  evaluation key) → rescale, each level consuming the previous one's
  output.  Limbs are independent chains (one ring per RNS modulus, via
  :class:`repro.fhe.rns.RnsBasis`), so the graph exposes exactly the
  limb-per-bank parallelism of the paper's Sec. VI.A deployment.
* :func:`kem_batch` — a width-only graph of independent Kyber-style KEM
  ring products (the ``kyber_kem`` workload): all roots, no edges — the
  batch shape a KEM endpoint serves.
* :func:`ntt_pipeline` — a linear chain of alternating forward/inverse
  cyclic NTTs over one hot ring; every stage is batchable, so
  concurrent pipelines coalesce stage-by-stage in the serving layer.

Every builder is deterministic given ``seed``.  Nodes that receive an
edge binding carry zero placeholders of the right length; the serving
layer (and the golden model) overwrite them with the parent's actual
output at execution time.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Tuple

from ..api.dag import DagEdge, DagRequest
from ..api.requests import FheOpRequest, KyberKemRequest, NttRequest
from ..arith.primes import find_ntt_prime
from ..arith.roots import NttParams
from ..fhe.rns import RnsBasis
from ..ntt.negacyclic import NegacyclicParams

__all__ = ["DagEdge", "DagRequest", "ckks_mul_chain", "kem_batch",
           "ntt_pipeline"]


@lru_cache(maxsize=None)
def _rns_basis(n: int, limbs: int, bits: int) -> RnsBasis:
    return RnsBasis.generate(n, limbs, bits)


@lru_cache(maxsize=None)
def _chain_params(n: int) -> NttParams:
    return NttParams(n, find_ntt_prime(n, 32))


def _rand_poly(rng: random.Random, n: int, q: int) -> Tuple[int, ...]:
    return tuple(rng.randrange(q) for _ in range(n))


def ckks_mul_chain(n: int = 256, limbs: int = 2, depth: int = 1, *,
                   seed: int = 0, bits: int = 30,
                   label: str = "") -> DagRequest:
    """A CKKS-style homomorphic multiply chain as a :class:`DagRequest`.

    Per RNS limb ``l`` (its own negacyclic ring), ``depth`` levels of

    ``mul{d}_l{l}``     — ciphertext × plaintext ring multiply,
    ``relin{d}_l{l}``   — relinearize: multiply by the evaluation key,
    ``rescale{d}_l{l}`` — rescale: inverse transform of the result,

    with each level's ``mul`` consuming the previous level's
    ``rescale`` output.  Limbs are independent chains, so the critical
    path is one limb's chain while total work is ``limbs`` times that
    — the parallelism the dependency-aware scheduler should recover.
    """
    if limbs < 1 or depth < 1:
        raise ValueError("limbs and depth must be >= 1")
    rng = random.Random(f"ckks:{seed}:{n}:{limbs}:{depth}")
    basis = _rns_basis(n, limbs, bits)
    zeros = (0,) * n
    nodes = []
    edges = []
    for limb, ring in enumerate(basis.rings):
        previous = None
        for level in range(depth):
            mul = f"mul{level}_l{limb}"
            relin = f"relin{level}_l{limb}"
            rescale = f"rescale{level}_l{limb}"
            # Level 0 multiplies a fresh ciphertext limb; later levels
            # bind `a` from the previous rescale.
            ct = (_rand_poly(rng, n, ring.q) if previous is None else zeros)
            nodes.append((mul, FheOpRequest(
                ring=ring, op="multiply", a=ct,
                b=_rand_poly(rng, n, ring.q))))
            nodes.append((relin, FheOpRequest(
                ring=ring, op="multiply", a=zeros,
                b=_rand_poly(rng, n, ring.q))))
            nodes.append((rescale, FheOpRequest(
                ring=ring, op="inverse", a=zeros)))
            if previous is not None:
                edges.append(DagEdge(previous, mul, field="a"))
            edges.append(DagEdge(mul, relin, field="a"))
            edges.append(DagEdge(relin, rescale, field="a"))
            previous = rescale
    return DagRequest(nodes=tuple(nodes), edges=tuple(edges),
                      label=label or f"ckks[{n}x{limbs}x{depth}]")


def kem_batch(count: int = 4, *, n: int = 256, q: int = 3329,
              depth: int = 2, seed: int = 0,
              label: str = "") -> DagRequest:
    """A width-only DAG of ``count`` independent Kyber-style KEM ring
    products — all roots, no edges (the batch a KEM endpoint decrypts
    in one go)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = random.Random(f"kem:{seed}:{n}:{count}")
    nodes = tuple(
        (f"kem{i}", KyberKemRequest(a=_rand_poly(rng, n, q),
                                    b=_rand_poly(rng, n, q),
                                    n=n, q=q, depth=depth))
        for i in range(count))
    return DagRequest(nodes=nodes, label=label or f"kem[{count}x{n}]")


def ntt_pipeline(n: int = 512, stages: int = 3, *, seed: int = 0,
                 label: str = "") -> DagRequest:
    """A linear chain of ``stages`` alternating forward/inverse cyclic
    NTTs over one hot ring — every stage batchable, so concurrent
    pipelines coalesce stage-by-stage in the serving layer."""
    if stages < 1:
        raise ValueError("stages must be >= 1")
    params = _chain_params(n)
    rng = random.Random(f"pipeline:{seed}:{n}:{stages}")
    nodes = [("stage0", NttRequest(params=params,
                                   values=_rand_poly(rng, n, params.q)))]
    edges = []
    for i in range(1, stages):
        nodes.append((f"stage{i}", NttRequest(params=params, values=None,
                                              inverse=bool(i % 2))))
        edges.append(DagEdge(f"stage{i - 1}", f"stage{i}", field="values"))
    return DagRequest(nodes=tuple(nodes), edges=tuple(edges),
                      label=label or f"pipeline[{n}x{stages}]")
