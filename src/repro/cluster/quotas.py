"""Per-tenant admission quotas of the cluster front-end.

The front-end meters every submission against its tenant's token
bucket *before* routing: a tenant earns ``rate_rps`` tokens per second
of virtual time up to a ``burst`` ceiling, and each admitted request
spends one.  A tenant that outruns its refill is throttled — the
request is dropped at the front door with a ``throttled`` telemetry
record and a retry-after hint — so one noisy neighbor degrades only
its own goodput, not the cluster's.

Degradation is priority-aware rather than all-or-nothing: a quota may
grant an *overdraft* (extra tokens below zero) that only requests at or
above ``min_priority`` may spend.  Under pressure a tenant's urgent
traffic keeps landing while its bulk traffic sheds first — the same
shed-lowest-priority-first posture the in-replica scheduler takes when
a queue overflows.

Everything runs on the deterministic virtual clock (token refill is a
pure function of elapsed virtual time), so admission decisions replay
bit-for-bit with the rest of the simulation.

Quotas are **membership-independent** by construction: buckets are
keyed by tenant, never by replica, and refill depends only on virtual
time — so failovers, supervised restarts and autoscale events
(:mod:`repro.cluster.watchdog`) never reset a tenant's budget, and a
throttle decision is identical no matter how many replicas are up.
Failover *re-submits* bypass admission entirely (the request already
spent its token when it was first admitted), so a crash can never
double-charge a tenant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ClusterError

__all__ = ["TenantQuota", "QuotaManager"]


@dataclass(frozen=True)
class TenantQuota:
    """Admission budget for one tenant (or the ``"*"`` default).

    ``rate_rps`` tokens/second refill up to ``burst``; requests with
    ``priority >= min_priority`` may additionally overdraw the bucket
    by ``overdraft`` tokens before they too are throttled.
    """

    rate_rps: float
    burst: float
    overdraft: float = 0.0
    min_priority: int = 0

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ClusterError("quota rate_rps must be > 0")
        if self.burst < 1:
            raise ClusterError("quota burst must be >= 1")
        if self.overdraft < 0:
            raise ClusterError("quota overdraft must be >= 0")


@dataclass
class _Bucket:
    quota: TenantQuota
    tokens: float
    refilled_us: float


class QuotaManager:
    """Virtual-time token buckets, one per tenant.

    ``quotas`` maps tenant names to their :class:`TenantQuota`; the
    ``"*"`` entry (if present) is the default applied to tenants not
    named explicitly.  Without a matching quota a tenant is unmetered.
    """

    def __init__(self, quotas: Optional[Dict[str, TenantQuota]] = None):
        self.quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._buckets: Dict[str, _Bucket] = {}
        self._admitted: Dict[str, int] = {}
        self._throttled: Dict[str, int] = {}

    def _bucket(self, tenant: str, now_us: float) -> Optional[_Bucket]:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self.quotas.get(tenant, self.quotas.get("*"))
            if quota is None:
                return None
            bucket = _Bucket(quota=quota, tokens=quota.burst,
                             refilled_us=now_us)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now_us: float, *, priority: int = 0
              ) -> Tuple[bool, Optional[float]]:
        """Spend one token for ``tenant`` at virtual time ``now_us``.

        Returns ``(True, None)`` when admitted, else ``(False,
        retry_after_us)`` — the virtual-time wait until one token has
        refilled, the backpressure hint the front-end surfaces.
        """
        bucket = self._bucket(tenant, now_us)
        if bucket is None:
            self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            return True, None
        quota = bucket.quota
        if now_us > bucket.refilled_us:
            bucket.tokens = min(
                quota.burst,
                bucket.tokens
                + (now_us - bucket.refilled_us) * quota.rate_rps / 1e6)
        bucket.refilled_us = max(bucket.refilled_us, now_us)
        floor = (-quota.overdraft if priority >= quota.min_priority
                 and quota.overdraft > 0 else 0.0)
        if bucket.tokens - 1.0 >= floor:
            bucket.tokens -= 1.0
            self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            return True, None
        self._throttled[tenant] = self._throttled.get(tenant, 0) + 1
        deficit = 1.0 - (bucket.tokens - floor)
        return False, deficit * 1e6 / quota.rate_rps

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant ``{admitted, throttled, tokens}`` counters."""
        out: Dict[str, Dict[str, float]] = {}
        for tenant in sorted(set(self._admitted) | set(self._throttled)
                             | set(self._buckets)):
            bucket = self._buckets.get(tenant)
            out[tenant] = {
                "admitted": self._admitted.get(tenant, 0),
                "throttled": self._throttled.get(tenant, 0),
                "tokens": (round(bucket.tokens, 6) if bucket is not None
                           else float("inf")),
            }
        return out
