"""The cluster supervisor: one front door over N serving replicas.

:class:`ClusterFrontend` mirrors the :class:`~repro.serve.SimServer`
surface — ``serve()``, ``submit()/poll()/advance()/drain()`` — but owns
no shards itself.  Each call runs the front-end pipeline:

1. **Admission** — the tenant's token bucket
   (:class:`~repro.cluster.quotas.QuotaManager`) spends or throttles.
   Throttled requests drop at the front door with a ``throttled``
   record and a virtual-time retry-after hint; they never reach a
   replica.
2. **Health** — replicas answer :class:`~repro.cluster.messages.BreakerQuery`;
   a replica whose every shard breaker is open (cooldowns pending) is
   routed around until a cooldown expires.
3. **Routing** — the :mod:`~repro.cluster.router` policy places the
   request by its batching merge key among the healthy replicas, so
   coalescible traffic stays coalescible.
4. **Dispatch** — a typed :class:`~repro.cluster.messages.Submit` to
   the owning replica, recorded in the owner map for ``poll()``.

Time is one cluster-wide virtual clock; replicas translate into their
session coordinates.  Determinism is end-to-end: routing hashes are
process-independent, quotas refill as a pure function of virtual time,
and each replica's fault plan derives from the cluster seed — so a
chaos run replays bit-for-bit, and a **one-replica cluster is
bit-identical to a bare server** (same ids, same records, same
telemetry): the front-end assigns ids with the server's own algorithm,
admission is pass-through without quotas, and routing is trivial.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..api import merge_key
from ..api.requests import SimRequest
from ..errors import ClusterError
from ..serve.faults import FaultPlan, ResiliencePolicy, make_fault_plan
from ..serve.queueing import ServeRequest
from ..serve.server import ServeResult
from ..serve.telemetry import (
    STATUS_THROTTLED,
    RequestRecord,
    Telemetry,
    merge_snapshots,
)
from ..sim.driver import SimConfig
from .messages import (
    Advance,
    BreakerQuery,
    Drain,
    Heartbeat,
    HeartbeatReply,
    Poll,
    Submit,
)
from .quotas import QuotaManager, TenantQuota
from .replica import Replica
from .router import make_router

__all__ = ["ClusterFrontend", "derive_fault_plans"]

#: Per-replica fault-seed stride: replica ``i`` draws from ``seed +
#: 7919 * i``.  A prime far from any sweep step keeps the per-replica
#: streams decorrelated; replica 0 keeps the base seed itself, so a
#: one-replica cluster injects *exactly* the faults a bare server
#: with the same plan would.
FAULT_SEED_STRIDE = 7919


def derive_fault_plans(base: Optional[FaultPlan], replicas: int
                       ) -> List[Optional[FaultPlan]]:
    """Independent per-replica plans off one base plan (see
    :data:`FAULT_SEED_STRIDE`)."""
    if base is None:
        return [None] * replicas
    return [FaultPlan(base.profile, base.seed + FAULT_SEED_STRIDE * i)
            for i in range(replicas)]


class _ClusterSession:
    """Front-end state of one open serving session (the cluster analog
    of the server-side ``_Session``): id bookkeeping, the owner map,
    and the front-door drop results."""

    def __init__(self, offset_us: float):
        self.offset = offset_us
        self.order: List[int] = []
        self.seen: set = set()
        #: request id -> owning replica id (throttled drops never own).
        self.owner: Dict[int, int] = {}
        #: Front-door results (throttled drops settle immediately).
        self.results: Dict[int, ServeResult] = {}
        self.max_arrival_us = offset_us
        #: Latest absolute event time — the cluster's ``planner.now_us``.
        self.now_us = offset_us


class ClusterFrontend:
    """Supervise ``replicas`` :class:`SimServer` replicas behind one
    SimServer-shaped front door.

    ``router`` is ``"hash"``, ``"least-loaded"`` or a router instance;
    ``quotas`` maps tenant names to :class:`TenantQuota` (``"*"`` =
    default; ``None`` = unmetered).  ``faults``/``fault_seed`` build
    one base plan and derive an independent per-replica plan from it
    (:func:`derive_fault_plans`); ``fault_plans`` instead pins an
    explicit per-replica list (e.g. to poison one replica in a test).
    Remaining ``server_kwargs`` go verbatim to every replica's
    :class:`SimServer`.
    """

    def __init__(self, replicas: int = 1,
                 config: Optional[SimConfig] = None, *,
                 router="hash",
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 faults=None, fault_seed: int = 0,
                 fault_plans: Optional[Sequence[Optional[FaultPlan]]] = None,
                 policy: Union[str, ResiliencePolicy] = "none",
                 **server_kwargs):
        if replicas < 1:
            raise ClusterError("a cluster needs at least 1 replica")
        if fault_plans is not None:
            if len(fault_plans) != replicas:
                raise ClusterError(
                    f"fault_plans has {len(fault_plans)} entries for "
                    f"{replicas} replicas")
            plans = list(fault_plans)
        else:
            plans = derive_fault_plans(make_fault_plan(faults, fault_seed),
                                       replicas)
        self.replicas = [Replica(i, config, fault_plan=plans[i],
                                 policy=policy, **server_kwargs)
                         for i in range(replicas)]
        self.router = make_router(router, replicas)
        self.quotas = QuotaManager(quotas)
        #: Front-door telemetry: only records the cluster itself drops
        #: (throttled).  ``replica = -1`` marks "never reached one".
        self.telemetry = Telemetry()
        self.telemetry.replica = -1
        self._ids = itertools.count(1)
        self._clock_us = 0.0
        self._live: Optional[_ClusterSession] = None

    # -- id assignment (the server's own rule, lifted cluster-wide) --------------
    def _assign_id(self, session: _ClusterSession, request_id: int) -> int:
        if request_id == 0 or request_id in session.seen:
            request_id = next(self._ids)
            while request_id in session.seen:
                request_id = next(self._ids)
        session.seen.add(request_id)
        return request_id

    # -- offline entry point ------------------------------------------------------
    def serve(self, requests: Iterable[Union[ServeRequest, SimRequest]]
              ) -> List[ServeResult]:
        """Serve a whole arrival stream through the cluster; results in
        *input* order, one per request (throttled/rejected included),
        exactly like :meth:`SimServer.serve`."""
        if self._live is not None:
            raise RuntimeError("an open submit() session is active; "
                               "drain() it before calling serve()")
        session = _ClusterSession(self._clock_us)
        self._live = session
        offset = session.offset
        sreqs: List[ServeRequest] = []
        for item in requests:
            if not isinstance(item, ServeRequest):
                item = ServeRequest(request=item)
            item.request.validate()
            changes = {}
            if offset:
                changes["arrival_us"] = item.arrival_us + offset
                if item.deadline_us is not None:
                    changes["deadline_us"] = item.deadline_us + offset
            request_id = self._assign_id(session, item.request_id)
            if request_id != item.request_id:
                changes["request_id"] = request_id
            sreqs.append(dataclasses.replace(item, **changes)
                         if changes else item)
        for sreq in sorted(sreqs, key=lambda s: (s.arrival_us,
                                                 s.request_id)):
            self._admit(session, sreq)
        results = self._close(session)
        return [results[s.request_id] for s in sreqs]

    # -- live entry points --------------------------------------------------------
    def submit(self, request: Union[ServeRequest, SimRequest], *,
               arrival_us: Optional[float] = None,
               priority: int = 0,
               deadline_us: Optional[float] = None,
               config: Optional[SimConfig] = None,
               request_id: int = 0,
               tenant: str = "") -> int:
        """Admit, route and submit one request; returns its id (also
        for throttled drops, whose result is immediately pollable)."""
        if isinstance(request, ServeRequest):
            if (priority, deadline_us, config, request_id,
                    tenant) != (0, None, None, 0, ""):
                raise ValueError(
                    "pass scheduling fields on the ServeRequest itself, "
                    "not as submit() keywords")
            if arrival_us is None and request.arrival_us:
                arrival_us = request.arrival_us
            priority = request.priority
            deadline_us = request.deadline_us
            config = request.config
            request_id = request.request_id
            tenant = request.tenant
            request = request.request
        request.validate()
        if self._live is None:
            self._live = _ClusterSession(self._clock_us)
        session = self._live
        arrival = (session.offset + arrival_us if arrival_us is not None
                   else session.now_us)
        arrival = max(arrival, session.now_us, session.offset)
        deadline = (session.offset + deadline_us
                    if deadline_us is not None else None)
        request_id = self._assign_id(session, request_id)
        self._admit(session, ServeRequest(
            request=request, arrival_us=arrival, priority=priority,
            deadline_us=deadline, request_id=request_id, config=config,
            tenant=tenant))
        return request_id

    def advance(self, now_us: float) -> None:
        """Idle-tick every replica to session-relative ``now_us`` —
        the cluster form of :meth:`SimServer.advance` (the operator
        console's clock source)."""
        if self._live is None:
            self._live = _ClusterSession(self._clock_us)
        session = self._live
        session.now_us = max(session.now_us, session.offset + now_us)
        for replica in self.replicas:
            replica.send(Advance(now_us=session.now_us))

    def poll(self, request_id: int) -> Optional[ServeResult]:
        """The live session's result for ``request_id`` (front-door
        drops included), or ``None`` while pending/unknown."""
        session = self._live
        if session is None:
            return None
        if request_id in session.results:
            return session.results[request_id]
        owner = session.owner.get(request_id)
        if owner is None:
            return None
        return self.replicas[owner].send(Poll(request_id)).result

    def drain(self) -> List[ServeResult]:
        """Close the session on every replica and return every
        submission's result in cluster submission order."""
        session = self._live
        if session is None:
            return []
        results = self._close(session)
        return [results[rid] for rid in session.order]

    # -- the front-end pipeline ---------------------------------------------------
    def _admit(self, session: _ClusterSession, sreq: ServeRequest) -> None:
        """Quota -> health -> route -> dispatch for one absolute-time
        request (id already assigned)."""
        session.order.append(sreq.request_id)
        session.max_arrival_us = max(session.max_arrival_us, sreq.arrival_us)
        session.now_us = max(session.now_us, sreq.arrival_us)
        ok, retry_after = self.quotas.admit(sreq.tenant, sreq.arrival_us,
                                            priority=sreq.priority)
        if not ok:
            record = RequestRecord(
                request_id=sreq.request_id,
                workload=sreq.request.workload,
                status=STATUS_THROTTLED,
                priority=sreq.priority,
                arrival_us=sreq.arrival_us,
                deadline_us=sreq.deadline_us,
                tenant=sreq.tenant,
                error=(f"tenant {sreq.tenant!r} over quota; retry in "
                       f"{retry_after:.1f}us"))
            self.telemetry.add(record)
            session.results[sreq.request_id] = ServeResult(record=record)
            return
        up = [r.replica_id for r in self.replicas
              if r.send(BreakerQuery(now_us=session.now_us)).up]
        # All dark: route over everyone rather than fail the front door
        # (the soonest-cooling-down replica recovers it on dispatch).
        candidates = up or [r.replica_id for r in self.replicas]
        loads = {reply.replica: reply.outstanding + reply.backlog
                 for reply in (r.send(Heartbeat(now_us=session.now_us))
                               for r in self.replicas)}
        chosen = self.router.route(
            merge_key(sreq.request), sreq.request_id,
            now_us=session.now_us, candidates=candidates, loads=loads)
        reply = self.replicas[chosen].send(Submit(sreq=sreq))
        session.owner[sreq.request_id] = reply.replica

    def _close(self, session: _ClusterSession) -> Dict[int, ServeResult]:
        """Drain every replica, fold the cluster clock forward (the
        server's own rule: past every arrival and completion), and
        return the merged result map."""
        merged = dict(session.results)
        for replica in self.replicas:
            for result in replica.send(Drain()).results:
                merged[result.record.request_id] = result
        clock = session.max_arrival_us
        clock = max([clock] + [r.record.completion_us
                               for r in merged.values()
                               if r.record.completion_us > 0])
        self._clock_us = max(self._clock_us, clock)
        self._live = None
        return merged

    # -- observability ------------------------------------------------------------
    @property
    def now_us(self) -> float:
        """The cluster's current absolute virtual time."""
        return (self._live.now_us if self._live is not None
                else self._clock_us)

    def heartbeats(self, *, want_snapshot: bool = False
                   ) -> List[HeartbeatReply]:
        """One probe per replica at the cluster's current time — the
        operator console's data source."""
        now = self.now_us
        return [replica.send(Heartbeat(now_us=now,
                                       want_snapshot=want_snapshot))
                for replica in self.replicas]

    def cluster_telemetry(self) -> Telemetry:
        """Exact pooled telemetry: front-door drops plus every
        replica's records (:meth:`Telemetry.merge`)."""
        return Telemetry.merge(
            [self.telemetry] + [r.server.telemetry for r in self.replicas])

    def cluster_snapshot(self) -> Dict[str, object]:
        """The cluster rollup a dashboard plots: per-replica snapshots
        combined by :func:`repro.serve.telemetry.merge_snapshots`,
        front-door throttles included."""
        parts = [self.telemetry.snapshot()]
        parts += [r.server.telemetry.snapshot() for r in self.replicas]
        return merge_snapshots(parts)

    def quota_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant admitted/throttled/tokens counters."""
        return self.quotas.stats()
