"""The cluster supervisor: one front door over N serving replicas.

:class:`ClusterFrontend` mirrors the :class:`~repro.serve.SimServer`
surface — ``serve()``, ``submit()/poll()/advance()/drain()`` — but owns
no shards itself.  Each call runs the front-end pipeline:

1. **Admission** — the tenant's token bucket
   (:class:`~repro.cluster.quotas.QuotaManager`) spends or throttles.
   Throttled requests drop at the front door with a ``throttled``
   record and a virtual-time retry-after hint; they never reach a
   replica.
2. **Health** — replicas answer :class:`~repro.cluster.messages.BreakerQuery`;
   a replica whose every shard breaker is open (cooldowns pending) is
   routed around until a cooldown expires.
3. **Routing** — the :mod:`~repro.cluster.router` policy places the
   request by its batching merge key among the healthy replicas, so
   coalescible traffic stays coalescible.
4. **Dispatch** — a typed :class:`~repro.cluster.messages.Submit` to
   the owning replica, recorded in the owner map for ``poll()``.

**Self-healing** (``replica_faults`` / ``autoscale``): each replica
slot gets a :class:`~repro.cluster.watchdog.ReplicaSupervisor`, every
message goes through its fault-aware link, and a virtual-time watchdog
turns missed heartbeats into the UP/SUSPECT/DOWN lifecycle — failing
over orphaned in-flight requests to healthy replicas (deduped, so a
slow-then-recovered replica can never double-serve) and scheduling
deterministic supervised restarts.  An optional
:class:`~repro.cluster.watchdog.AutoscalePolicy` grows and shrinks the
fleet from the same heartbeat rollups with minimal ring remaps.  The
supervised machinery only engages when a replica-fault plan or an
autoscale policy is configured; otherwise every code path below is the
plain unsupervised pipeline.

Time is one cluster-wide virtual clock; replicas translate into their
session coordinates.  Determinism is end-to-end: routing hashes are
process-independent, quotas refill as a pure function of virtual time,
each replica's fault plan derives from the cluster seed, and replica
faults are pure functions of ``(seed, replica, virtual_time)`` — so a
chaos run with failovers, restarts and scale events replays
bit-for-bit, and a **one-replica cluster is bit-identical to a bare
server** (same ids, same records, same telemetry): the front-end
assigns ids with the server's own algorithm, admission is pass-through
without quotas, and routing is trivial.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..api import merge_key
from ..api.dag import DagRequest
from ..api.requests import SimRequest
from ..errors import ClusterError, ReproError
from ..serve.faults import (
    FaultPlan,
    ResiliencePolicy,
    make_fault_plan,
    make_replica_fault_plan,
)
from ..serve.queueing import ServeRequest
from ..serve.server import ServeResult
from ..serve.telemetry import (
    STATUS_ORPHANED,
    STATUS_THROTTLED,
    RequestRecord,
    Telemetry,
    merge_snapshots,
)
from ..sim.driver import SimConfig
from .messages import (
    Advance,
    BreakerQuery,
    Drain,
    Heartbeat,
    HeartbeatReply,
    Poll,
    Quiesce,
    Submit,
)
from .quotas import QuotaManager, TenantQuota
from .replica import Replica
from .router import make_router
from .watchdog import (
    DOWN,
    RETIRED,
    SUSPECT,
    UP,
    AutoscalePolicy,
    ClusterHealth,
    ReplicaSupervisor,
    WatchdogPolicy,
)

__all__ = ["ClusterFrontend", "derive_fault_plans"]

#: Per-replica fault-seed stride: replica ``i`` draws from ``seed +
#: 7919 * i``.  A prime far from any sweep step keeps the per-replica
#: streams decorrelated; replica 0 keeps the base seed itself, so a
#: one-replica cluster injects *exactly* the faults a bare server
#: with the same plan would.
FAULT_SEED_STRIDE = 7919


def _route_key(request: SimRequest):
    """Routing key of one request: its merge key — or, for a
    :class:`~repro.api.DagRequest` (which executes whole on one replica
    so its dependency edges never cross the cluster), the merge key of
    its first batchable stage.  Graphs over a hot shape thereby keep
    batching affinity with the plain traffic of the same shape."""
    if isinstance(request, DagRequest):
        for _, node in request.nodes:
            key = merge_key(node)
            if key is not None:
                return key
        return None
    return merge_key(request)


def derive_fault_plans(base: Optional[FaultPlan], replicas: int
                       ) -> List[Optional[FaultPlan]]:
    """Independent per-replica plans off one base plan (see
    :data:`FAULT_SEED_STRIDE`)."""
    if base is None:
        return [None] * replicas
    return [FaultPlan(base.profile, base.seed + FAULT_SEED_STRIDE * i)
            for i in range(replicas)]


class _ClusterSession:
    """Front-end state of one open serving session (the cluster analog
    of the server-side ``_Session``): id bookkeeping, the owner map,
    and the front-door drop results."""

    def __init__(self, offset_us: float):
        self.offset = offset_us
        self.order: List[int] = []
        self.seen: set = set()
        #: request id -> owning replica id (throttled drops never own).
        self.owner: Dict[int, int] = {}
        #: Front-door results (throttled drops settle immediately; the
        #: supervised path also accumulates settled results here, which
        #: is what makes a failed ``drain()`` retryable).
        self.results: Dict[int, ServeResult] = {}
        self.max_arrival_us = offset_us
        #: Latest absolute event time — the cluster's ``planner.now_us``.
        self.now_us = offset_us
        # -- supervised-only bookkeeping (inert otherwise) -----------------------
        #: Original absolute-time submissions, for failover re-submits.
        self.inflight: Dict[int, ServeRequest] = {}
        #: Owning supervisor incarnation at assignment time (a restarted
        #: slot is a different owner for dedup purposes).
        self.owner_inc: Dict[int, int] = {}
        #: Cluster id -> server-side id at the current owner, when the
        #: owner's session had to reassign on a failover re-submit.
        self.alias: Dict[int, int] = {}
        #: ``(slot, server_id) -> cluster id`` for every reassignment
        #: ever made — kept so late duplicate copies map back for dedup.
        self.reverse: Dict[Tuple[int, int], int] = {}
        #: Re-submit arrival shift per cluster id: subtracted from the
        #: serving record's arrival so latency spans the outage.
        self.resub_delta: Dict[int, float] = {}
        #: Requests with no routable replica at placement time; the
        #: watchdog retries them every tick, close() is the backstop.
        self.parked: List[int] = []


class ClusterFrontend:
    """Supervise ``replicas`` :class:`SimServer` replicas behind one
    SimServer-shaped front door.

    ``router`` is ``"hash"``, ``"least-loaded"`` or a router instance;
    ``quotas`` maps tenant names to :class:`TenantQuota` (``"*"`` =
    default; ``None`` = unmetered).  ``faults``/``fault_seed`` build
    one base plan and derive an independent per-replica plan from it
    (:func:`derive_fault_plans`); ``fault_plans`` instead pins an
    explicit per-replica list (e.g. to poison one replica in a test).

    ``replica_faults``/``replica_fault_seed`` resolve through
    :func:`repro.serve.faults.make_replica_fault_plan` into the
    replica-scoped crash/hang/partition timeline (zero-rate specs drop
    to ``None`` and leave the cluster unsupervised); ``watchdog``
    tunes missed-heartbeat detection and restarts
    (:class:`WatchdogPolicy`); ``autoscale`` is an
    :class:`AutoscalePolicy`, a ``(min, max)`` pair or a ``"min:max"``
    string.  Remaining ``server_kwargs`` go verbatim to every
    replica's :class:`SimServer`.
    """

    def __init__(self, replicas: int = 1,
                 config: Optional[SimConfig] = None, *,
                 router="hash",
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 faults=None, fault_seed: int = 0,
                 fault_plans: Optional[Sequence[Optional[FaultPlan]]] = None,
                 policy: Union[str, ResiliencePolicy] = "none",
                 replica_faults=None, replica_fault_seed: int = 0,
                 watchdog: Optional[WatchdogPolicy] = None,
                 autoscale=None,
                 **server_kwargs):
        if replicas < 1:
            raise ClusterError("a cluster needs at least 1 replica")
        base: Optional[FaultPlan] = None
        if fault_plans is not None:
            if len(fault_plans) != replicas:
                raise ClusterError(
                    f"fault_plans has {len(fault_plans)} entries for "
                    f"{replicas} replicas")
            plans = list(fault_plans)
        else:
            base = make_fault_plan(faults, fault_seed)
            plans = derive_fault_plans(base, replicas)
        self._config = config
        self._policy = policy
        self._server_kwargs = dict(server_kwargs)
        self._base_fault = base
        self._plans: List[Optional[FaultPlan]] = list(plans)
        self.replicas = [Replica(i, config, fault_plan=plans[i],
                                 policy=policy, **server_kwargs)
                         for i in range(replicas)]
        self.router = make_router(router, replicas)
        self.quotas = QuotaManager(quotas)
        #: Front-door telemetry: only records the cluster itself drops
        #: (throttled).  ``replica = -1`` marks "never reached one".
        self.telemetry = Telemetry()
        self.telemetry.replica = -1
        self._ids = itertools.count(1)
        self._clock_us = 0.0
        self._live: Optional[_ClusterSession] = None
        # -- self-healing tier ---------------------------------------------------
        self.replica_faults = make_replica_fault_plan(replica_faults,
                                                      replica_fault_seed)
        if isinstance(autoscale, str):
            lo, _, hi = autoscale.partition(":")
            autoscale = (int(lo), int(hi or lo))
        if isinstance(autoscale, (tuple, list)):
            lo, hi = autoscale
            autoscale = AutoscalePolicy(min_replicas=int(lo),
                                        max_replicas=int(hi))
        self._autoscale = autoscale
        self._supervised = (self.replica_faults is not None
                            or autoscale is not None
                            or watchdog is not None)
        self.watchdog = watchdog if watchdog is not None else WatchdogPolicy()
        self.health = ClusterHealth()
        self._supervisors: List[ReplicaSupervisor] = (
            [ReplicaSupervisor(i, self.replicas[i], plan=self.replica_faults)
             for i in range(replicas)] if self._supervised else [])
        self._tick = 0
        self._hi_ticks = 0
        self._lo_ticks = 0
        self._last_scale_us = float("-inf")

    @property
    def supervised(self) -> bool:
        """Whether the watchdog/failover/autoscale tier is engaged."""
        return self._supervised

    # -- id assignment (the server's own rule, lifted cluster-wide) --------------
    def _assign_id(self, session: _ClusterSession, request_id: int) -> int:
        if request_id == 0 or request_id in session.seen:
            request_id = next(self._ids)
            while request_id in session.seen:
                request_id = next(self._ids)
        session.seen.add(request_id)
        return request_id

    # -- offline entry point ------------------------------------------------------
    def serve(self, requests: Iterable[Union[ServeRequest, SimRequest]]
              ) -> List[ServeResult]:
        """Serve a whole arrival stream through the cluster; results in
        *input* order, one per request (throttled/rejected included),
        exactly like :meth:`SimServer.serve`."""
        if self._live is not None:
            raise RuntimeError("an open submit() session is active; "
                               "drain() it before calling serve()")
        session = _ClusterSession(self._clock_us)
        self._live = session
        offset = session.offset
        sreqs: List[ServeRequest] = []
        for item in requests:
            if not isinstance(item, ServeRequest):
                item = ServeRequest(request=item)
            item.request.validate()
            changes = {}
            if offset:
                changes["arrival_us"] = item.arrival_us + offset
                if item.deadline_us is not None:
                    changes["deadline_us"] = item.deadline_us + offset
            request_id = self._assign_id(session, item.request_id)
            if request_id != item.request_id:
                changes["request_id"] = request_id
            sreqs.append(dataclasses.replace(item, **changes)
                         if changes else item)
        for sreq in sorted(sreqs, key=lambda s: (s.arrival_us,
                                                 s.request_id)):
            self._admit(session, sreq)
        results = self._close(session)
        return [results[s.request_id] for s in sreqs]

    # -- live entry points --------------------------------------------------------
    def submit(self, request: Union[ServeRequest, SimRequest], *,
               arrival_us: Optional[float] = None,
               priority: int = 0,
               deadline_us: Optional[float] = None,
               config: Optional[SimConfig] = None,
               request_id: int = 0,
               tenant: str = "") -> int:
        """Admit, route and submit one request; returns its id (also
        for throttled drops, whose result is immediately pollable)."""
        if isinstance(request, ServeRequest):
            if (priority, deadline_us, config, request_id,
                    tenant) != (0, None, None, 0, ""):
                raise ValueError(
                    "pass scheduling fields on the ServeRequest itself, "
                    "not as submit() keywords")
            if arrival_us is None and request.arrival_us:
                arrival_us = request.arrival_us
            priority = request.priority
            deadline_us = request.deadline_us
            config = request.config
            request_id = request.request_id
            tenant = request.tenant
            request = request.request
        request.validate()
        if self._live is None:
            self._live = _ClusterSession(self._clock_us)
        session = self._live
        arrival = (session.offset + arrival_us if arrival_us is not None
                   else session.now_us)
        arrival = max(arrival, session.now_us, session.offset)
        deadline = (session.offset + deadline_us
                    if deadline_us is not None else None)
        request_id = self._assign_id(session, request_id)
        self._admit(session, ServeRequest(
            request=request, arrival_us=arrival, priority=priority,
            deadline_us=deadline, request_id=request_id, config=config,
            tenant=tenant))
        return request_id

    def advance(self, now_us: float) -> None:
        """Idle-tick every replica to session-relative ``now_us`` —
        the cluster form of :meth:`SimServer.advance` (the operator
        console's clock source)."""
        if self._live is None:
            self._live = _ClusterSession(self._clock_us)
        session = self._live
        session.now_us = max(session.now_us, session.offset + now_us)
        if self._supervised:
            self._run_watchdog(session, session.now_us)
            for sup in self._supervisors:
                if sup.state == RETIRED:
                    continue
                self._deliver(sup, Advance(now_us=session.now_us),
                              session.now_us)
            return
        for replica in self.replicas:
            replica.send(Advance(now_us=session.now_us))

    def poll(self, request_id: int) -> Optional[ServeResult]:
        """The live session's result for ``request_id`` (front-door
        drops included), or ``None`` while pending/unknown — or while
        the owning replica's link is dark."""
        session = self._live
        if session is None:
            return None
        if request_id in session.results:
            return session.results[request_id]
        owner = session.owner.get(request_id)
        if owner is None:
            return None
        if self._supervised:
            sup = self._supervisors[owner]
            sid = session.alias.get(request_id, request_id)
            reply = self._deliver(sup, Poll(sid), session.now_us)
            if reply is None or reply.result is None:
                return None
            self._accept(session, request_id, reply.result)
            return session.results[request_id]
        return self.replicas[owner].send(Poll(request_id)).result

    def drain(self) -> List[ServeResult]:
        """Close the session on every replica and return every
        submission's result in cluster submission order."""
        session = self._live
        if session is None:
            return []
        results = self._close(session)
        return [results[rid] for rid in session.order]

    # -- the front-end pipeline ---------------------------------------------------
    def _admit(self, session: _ClusterSession, sreq: ServeRequest) -> None:
        """Quota -> health -> route -> dispatch for one absolute-time
        request (id already assigned)."""
        session.order.append(sreq.request_id)
        session.max_arrival_us = max(session.max_arrival_us, sreq.arrival_us)
        session.now_us = max(session.now_us, sreq.arrival_us)
        if self._supervised:
            self._run_watchdog(session, session.now_us)
        ok, retry_after = self.quotas.admit(sreq.tenant, sreq.arrival_us,
                                            priority=sreq.priority)
        if not ok:
            record = RequestRecord(
                request_id=sreq.request_id,
                workload=sreq.request.workload,
                status=STATUS_THROTTLED,
                priority=sreq.priority,
                arrival_us=sreq.arrival_us,
                deadline_us=sreq.deadline_us,
                tenant=sreq.tenant,
                error=(f"tenant {sreq.tenant!r} over quota; retry in "
                       f"{retry_after:.1f}us"))
            self.telemetry.add(record)
            session.results[sreq.request_id] = ServeResult(record=record)
            return
        if self._supervised:
            self._admit_supervised(session, sreq)
            return
        up = [r.replica_id for r in self.replicas
              if r.send(BreakerQuery(now_us=session.now_us)).up]
        # All dark: route over everyone rather than fail the front door
        # (the soonest-cooling-down replica recovers it on dispatch).
        candidates = up or [r.replica_id for r in self.replicas]
        loads = {reply.replica: reply.outstanding + reply.backlog
                 for reply in (r.send(Heartbeat(now_us=session.now_us))
                               for r in self.replicas)}
        chosen = self.router.route(
            _route_key(sreq.request), sreq.request_id,
            now_us=session.now_us, candidates=candidates, loads=loads)
        reply = self.replicas[chosen].send(Submit(sreq=sreq))
        session.owner[sreq.request_id] = reply.replica

    def _admit_supervised(self, session: _ClusterSession,
                          sreq: ServeRequest) -> None:
        """The supervised dispatch tail: route among live-lifecycle
        replicas only, fall back along the ring when a link drops the
        Submit itself, park when the whole fleet is dark."""
        now = session.now_us
        session.inflight[sreq.request_id] = sreq
        routable = [sup for sup in self._supervisors
                    if sup.state == UP and sup.link_outage(now) is None]
        if not routable:
            session.parked.append(sreq.request_id)
            return
        up, loads = [], {}
        for sup in routable:
            breakers = self._deliver(sup, BreakerQuery(now_us=now), now)
            hb = self._deliver(sup, Heartbeat(now_us=now), now)
            if breakers is None or hb is None:
                continue
            if breakers.up:
                up.append(sup.slot)
            loads[sup.slot] = hb.outstanding + hb.backlog
        candidates = up or [sup.slot for sup in routable]
        chosen = self.router.route(
            _route_key(sreq.request), sreq.request_id,
            now_us=now, candidates=candidates, loads=loads)
        pivot = candidates.index(chosen)
        for slot in candidates[pivot:] + candidates[:pivot]:
            if self._place(session, sreq.request_id, sreq, slot, now):
                return
        session.parked.append(sreq.request_id)

    def _place(self, session: _ClusterSession, rid: int,
               sreq: ServeRequest, slot: int, now_us: float) -> bool:
        """Submit ``sreq`` (carrying cluster id ``rid``) to ``slot``;
        records ownership + any server-side id reassignment.  False
        when the link dropped the Submit."""
        sup = self._supervisors[slot]
        reply = self._deliver(sup, Submit(sreq=sreq), now_us)
        if reply is None:
            return False
        session.owner[rid] = slot
        session.owner_inc[rid] = sup.incarnation
        if reply.request_id != rid:
            session.alias[rid] = reply.request_id
            session.reverse[(slot, reply.request_id)] = rid
        else:
            session.alias.pop(rid, None)
        return True

    # -- the watchdog -------------------------------------------------------------
    def _deliver(self, sup: ReplicaSupervisor, message, now_us: float):
        """One link-mediated delivery, folding any newly observed fault
        events into the cluster health counters."""
        reply = sup.deliver(message, now_us)
        for kind in sup.pop_seen_kinds():
            self.health.note_fault(kind)
        return reply

    def _direct(self, sup: ReplicaSupervisor, message):
        """Bypass the link (close-time semantics: virtual-time close
        waits out transient outages), keeping the contextful-error
        wrap."""
        try:
            return sup.replica.send(message)
        except ReproError as exc:
            raise ClusterError(
                f"replica {sup.slot} ({sup.state}) failed handling "
                f"{type(message).__name__}: {exc}",
                replica=sup.slot, state=sup.state) from exc

    def _run_watchdog(self, session: _ClusterSession,
                      now_us: float) -> None:
        """Process every heartbeat tick in ``(last, now_us]``.  Ticks
        live on the integer grid ``(index + 1) * heartbeat_us`` so a
        replayed run probes at bit-identical times."""
        heartbeat = self.watchdog.heartbeat_us
        while (self._tick + 1) * heartbeat <= now_us:
            self._tick += 1
            self._on_tick(session, self._tick * heartbeat)

    def _on_tick(self, session: _ClusterSession, t: float) -> None:
        policy = self.watchdog
        loads: Dict[int, int] = {}
        for sup in list(self._supervisors):
            if sup.state == RETIRED:
                continue
            if (sup.state == DOWN and sup.restart_at_us is not None
                    and t >= sup.restart_at_us):
                self._restart(sup, t)
            reply = self._deliver(sup, Heartbeat(now_us=t), t)
            if reply is None:
                transition = sup.on_missed(t, policy)
                if transition == SUSPECT:
                    self.health.suspects += 1
                elif transition == DOWN:
                    self.health.downs += 1
                    self._failover(session, sup, t)
            else:
                mttr = sup.on_ack(t)
                if mttr is not None:
                    self.health.mttr_samples_us.append(mttr)
                loads[sup.slot] = reply.queue_depth + reply.outstanding
        self._retry_parked(session, t)
        self._autoscale_tick(session, t, loads)

    def _restart(self, sup: ReplicaSupervisor, t: float) -> None:
        """Supervised deterministic restart: fresh incarnation on the
        same slot with the same derived fault seed; the dead
        incarnation's telemetry is retired for the cluster rollup."""
        replica = Replica(sup.slot, self._config,
                          fault_plan=self._plan_for_slot(sup.slot),
                          policy=self._policy, **self._server_kwargs)
        mttr = sup.reborn(replica, t)
        self.replicas[sup.slot] = replica
        self.health.restarts += 1
        self.health.mttr_samples_us.append(mttr)

    def _plan_for_slot(self, slot: int) -> Optional[FaultPlan]:
        """The slot's derived dispatch-fault plan — restart reuses the
        original, scale-out extends the :data:`FAULT_SEED_STRIDE`
        derivation."""
        while len(self._plans) <= slot:
            index = len(self._plans)
            if self._base_fault is not None:
                self._plans.append(FaultPlan(
                    self._base_fault.profile,
                    self._base_fault.seed + FAULT_SEED_STRIDE * index))
            else:
                self._plans.append(None)
        return self._plans[slot]

    def _failover(self, session: _ClusterSession,
                  sup: ReplicaSupervisor, t: float) -> None:
        """A replica went DOWN: re-route its unsettled submissions to
        healthy replicas (results already settled into the session
        stay settled)."""
        self.health.failovers += 1
        orphans = [rid for rid in session.order
                   if session.owner.get(rid) == sup.slot
                   and rid not in session.results]
        for rid in orphans:
            self._reassign(session, rid, t)

    def _reassign(self, session: _ClusterSession, rid: int,
                  t: float) -> bool:
        """Move one orphaned request to a healthy replica (duplicate-id
        copy-on-write: the re-submit keeps the cluster id, and a
        server-side reassignment is tracked through the alias maps).
        Parks the request when the whole fleet is dark."""
        sreq = session.inflight.get(rid)
        if sreq is None:
            return False
        old = session.owner.get(rid)
        old_sup = self._supervisors[old] if old is not None else None
        if (old_sup is not None and old_sup.state == UP
                and old_sup.incarnation == session.owner_inc.get(rid, -1)
                and old_sup.link_outage(t) is None):
            # The owning incarnation recovered with its state intact —
            # nothing to move; it will serve the request itself.
            if rid in session.parked:
                session.parked.remove(rid)
            return True
        exclude = (old if old_sup is not None
                   and old_sup.incarnation == session.owner_inc.get(rid, -1)
                   else None)
        candidates = [sup.slot for sup in self._supervisors
                      if sup.state == UP and sup.slot != exclude
                      and sup.link_outage(t) is None]
        if not candidates:
            if rid not in session.parked:
                session.parked.append(rid)
            return False
        chosen = self.router.route(_route_key(sreq.request), rid,
                                   now_us=t, candidates=candidates,
                                   loads={})
        arrival = max(sreq.arrival_us, t)
        resub = dataclasses.replace(sreq, arrival_us=arrival)
        pivot = candidates.index(chosen)
        for slot in candidates[pivot:] + candidates[:pivot]:
            if self._place(session, rid, resub, slot, t):
                session.resub_delta[rid] = arrival - sreq.arrival_us
                self.health.orphans_recovered += 1
                if rid in session.parked:
                    session.parked.remove(rid)
                return True
        if rid not in session.parked:
            session.parked.append(rid)
        return False

    def _retry_parked(self, session: _ClusterSession, t: float) -> None:
        for rid in list(session.parked):
            self._reassign(session, rid, t)

    # -- auto-scaling -------------------------------------------------------------
    def _autoscale_tick(self, session: _ClusterSession, t: float,
                        loads: Dict[int, int]) -> None:
        policy = self._autoscale
        if policy is None:
            return
        if not loads:
            self._hi_ticks = self._lo_ticks = 0
            return
        mean = sum(loads.values()) / len(loads)
        if mean >= policy.scale_out_load:
            self._hi_ticks += 1
            self._lo_ticks = 0
        elif mean <= policy.scale_in_load:
            self._lo_ticks += 1
            self._hi_ticks = 0
        else:
            self._hi_ticks = self._lo_ticks = 0
        if t - self._last_scale_us < policy.cooldown_us:
            return
        active = sum(1 for sup in self._supervisors
                     if sup.state != RETIRED)
        if (self._hi_ticks >= policy.sustain_ticks
                and active < policy.max_replicas):
            self._scale_out(t)
            self._hi_ticks = 0
            self._last_scale_us = t
        elif (self._lo_ticks >= policy.sustain_ticks
                and active > policy.min_replicas):
            if self._scale_in(t):
                self._lo_ticks = 0
                self._last_scale_us = t

    def _scale_out(self, t: float) -> None:
        """Add one replica on a fresh slot: derived fault seed, born at
        ``t`` (pre-birth fault events never fire), minimal ring remap."""
        slot = len(self._supervisors)
        replica = Replica(slot, self._config,
                          fault_plan=self._plan_for_slot(slot),
                          policy=self._policy, **self._server_kwargs)
        sup = ReplicaSupervisor(slot, replica, plan=self.replica_faults,
                                born_us=t)
        self._supervisors.append(sup)
        self.replicas.append(replica)
        self.router.add_replica(slot)
        self.health.scale_out += 1

    def _scale_in(self, t: float) -> bool:
        """Retire the newest UP replica, but only after it confirms the
        Quiesce handshake (nothing queued or in flight — its settled
        results stay drainable)."""
        ups = [sup for sup in self._supervisors if sup.state == UP]
        if not ups:
            return False
        sup = ups[-1]
        reply = self._deliver(sup, Quiesce(now_us=t), t)
        if reply is None or not reply.idle:
            return False
        sup.retire()
        self.router.remove_replica(sup.slot)
        self.health.scale_in += 1
        return True

    # -- close --------------------------------------------------------------------
    def _accept(self, session: _ClusterSession, rid: int,
                result: ServeResult) -> None:
        """Settle ``result`` as cluster id ``rid``: restore the cluster
        id over a server-side reassignment and shift arrival back to
        the original submission, *mutating the shared record* so the
        serving replica's telemetry tells the same story."""
        record = result.record
        if record.request_id != rid:
            record.request_id = rid
        delta = session.resub_delta.pop(rid, 0.0)
        if delta:
            record.arrival_us -= delta
        session.results[rid] = result

    def _collect(self, session: _ClusterSession, slot: int,
                 result: ServeResult) -> None:
        """Fold one drained result in, deduped against the owner map:
        a copy from a non-owner (slow-then-recovered replica, or a
        superseded incarnation) is marked orphaned, never returned."""
        record = result.record
        rid = session.reverse.get((slot, record.request_id),
                                  record.request_id)
        existing = session.results.get(rid)
        if existing is not None and existing.record is record:
            return
        if existing is not None or session.owner.get(rid) != slot:
            if record.status != STATUS_ORPHANED:
                record.status = STATUS_ORPHANED
                self.health.duplicates_dropped += 1
            return
        self._accept(session, rid, result)

    def _close(self, session: _ClusterSession) -> Dict[int, ServeResult]:
        """Drain every replica, fold the cluster clock forward (the
        server's own rule: past every arrival and completion), and
        return the merged result map."""
        if self._supervised:
            return self._close_supervised(session)
        merged = dict(session.results)
        for replica in self.replicas:
            for result in replica.send(Drain()).results:
                merged[result.record.request_id] = result
        clock = session.max_arrival_us
        clock = max([clock] + [r.record.completion_us
                               for r in merged.values()
                               if r.record.completion_us > 0])
        self._clock_us = max(self._clock_us, clock)
        self._live = None
        return merged

    def _close_supervised(self, session: _ClusterSession
                          ) -> Dict[int, ServeResult]:
        """Supervised close: escalate crashes the watchdog has not
        reached yet, recover every orphan, drain everything reachable
        (transient outages are waited out in virtual time — the link is
        bypassed), dedup duplicates, and orphan-mark the lost copies in
        dead incarnations' telemetry."""
        now = session.now_us
        self._run_watchdog(session, now)
        for sup in self._supervisors:
            if sup.state in (RETIRED, DOWN):
                continue
            event = sup.link_outage(now)
            if event is not None:
                sup._note_event(event)
            if sup.crashed(now):
                sup.mark_down(now, self.watchdog)
                self.health.downs += 1
                self._failover(session, sup, now)
        for kinds_sup in self._supervisors:
            for kind in kinds_sup.pop_seen_kinds():
                self.health.note_fault(kind)
        self._retry_parked(session, now)
        # Crashed incarnations lost their state; everything else (hung,
        # partitioned, retired, healthy) is drained directly.
        lost: List[Telemetry] = []
        for sup in self._supervisors:
            if sup.state != RETIRED and sup.crashed(now):
                lost.append(sup.replica.server.telemetry)
                continue
            for result in self._direct(sup, Drain()).results:
                self._collect(session, sup.slot, result)
        # Backstop: a re-submit can itself land on a replica that dies
        # before close, or the whole fleet can be dark.  Bounded loop:
        # force-restart if nothing is reachable, re-place, drain again.
        for _ in range(2 * len(self._supervisors) + 2):
            missing = [rid for rid in session.order
                       if rid not in session.results]
            if not missing:
                break
            healthy = [sup for sup in self._supervisors
                       if sup.state == UP and sup.link_outage(now) is None]
            if not healthy:
                target = min((sup for sup in self._supervisors
                              if sup.state != RETIRED),
                             key=lambda s: s.slot)
                if target.state != RETIRED:
                    lost.append(target.replica.server.telemetry)
                self._restart(target, now)
                healthy = [target]
            for rid in missing:
                self._reassign(session, rid, now)
            for sup in healthy:
                for result in self._direct(sup, Drain()).results:
                    self._collect(session, sup.slot, result)
        missing = [rid for rid in session.order
                   if rid not in session.results]
        if missing:
            raise ClusterError(
                f"close could not recover {len(missing)} request(s) "
                f"(ids {missing[:5]}); drain() again to retry")
        # Lost copies (crash-dead incarnations) that were re-served
        # elsewhere must not double-count in the cluster rollup.
        lost += [telemetry for sup in self._supervisors
                 for telemetry in sup.retired_telemetries]
        for telemetry in lost:
            for record in telemetry.records:
                rid = session.reverse.get(
                    (telemetry.replica, record.request_id),
                    record.request_id)
                served = session.results.get(rid)
                if served is not None and served.record is record:
                    continue
                if record.status != STATUS_ORPHANED:
                    record.status = STATUS_ORPHANED
                    if served is not None:
                        self.health.duplicates_dropped += 1
        merged = session.results
        clock = session.max_arrival_us
        clock = max([clock] + [r.record.completion_us
                               for r in merged.values()
                               if r.record.completion_us > 0])
        self._clock_us = max(self._clock_us, clock)
        self._live = None
        return merged

    # -- observability ------------------------------------------------------------
    @property
    def now_us(self) -> float:
        """The cluster's current absolute virtual time."""
        return (self._live.now_us if self._live is not None
                else self._clock_us)

    def heartbeats(self, *, want_snapshot: bool = False
                   ) -> List[HeartbeatReply]:
        """One probe per replica at the cluster's current time — the
        operator console's data source.  Under supervision each reply
        carries the watchdog's lifecycle verdict, and a dark replica
        gets a synthesized not-up row (a real probe would get no
        answer either)."""
        now = self.now_us
        if not self._supervised:
            return [replica.send(Heartbeat(now_us=now,
                                           want_snapshot=want_snapshot))
                    for replica in self.replicas]
        replies = []
        for sup in self._supervisors:
            reply = None
            if sup.state != RETIRED:
                reply = self._deliver(
                    sup, Heartbeat(now_us=now,
                                   want_snapshot=want_snapshot), now)
            if reply is None:
                replies.append(HeartbeatReply(
                    replica=sup.slot, now_us=now, queue_depth=0,
                    outstanding=0, backlog=0, num_shards=0, breakers={},
                    up=False, snapshot=None, lifecycle=sup.state))
            else:
                replies.append(dataclasses.replace(reply,
                                                   lifecycle=sup.state))
        return replies

    def cluster_telemetry(self) -> Telemetry:
        """Exact pooled telemetry: front-door drops plus every
        replica's records (:meth:`Telemetry.merge`) — dead
        incarnations' retired telemetry included under supervision."""
        parts = [self.telemetry]
        if self._supervised:
            for sup in self._supervisors:
                parts.extend(sup.retired_telemetries)
                parts.append(sup.replica.server.telemetry)
        else:
            parts += [r.server.telemetry for r in self.replicas]
        return Telemetry.merge(parts)

    def cluster_snapshot(self) -> Dict[str, object]:
        """The cluster rollup a dashboard plots: per-replica snapshots
        combined by :func:`repro.serve.telemetry.merge_snapshots`,
        front-door throttles included.  Under supervision the rollup
        gains a ``"cluster"`` key with the self-healing counters
        (failovers, restarts, orphans, MTTR, scale events)."""
        parts = [self.telemetry.snapshot()]
        if self._supervised:
            for sup in self._supervisors:
                parts.extend(t.snapshot() for t in sup.retired_telemetries)
                parts.append(sup.replica.server.telemetry.snapshot())
            snapshot = merge_snapshots(parts)
            snapshot["cluster"] = self.health.snapshot()
            return snapshot
        parts += [r.server.telemetry.snapshot() for r in self.replicas]
        return merge_snapshots(parts)

    def quota_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant admitted/throttled/tokens counters."""
        return self.quotas.stats()
