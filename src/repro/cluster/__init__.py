"""Multi-replica serving tier over the :mod:`repro.serve` stack.

One :class:`ClusterFrontend` supervises N independent
:class:`~repro.serve.SimServer` replicas (each a full queue +
batching-scheduler + shard stack) behind the same
``serve()``/``submit()``/``poll()``/``drain()`` surface a single
server exposes, adding the cluster concerns on top:

* **typed supervision** — every front-end <-> replica interaction is a
  frozen message with a typed reply (:mod:`repro.cluster.messages`),
  the proactor pattern's observable actor boundary;
* **tenant quotas** — virtual-time token buckets with priority-aware
  overdraft (:mod:`repro.cluster.quotas`) throttle noisy neighbors at
  the front door;
* **routing** — consistent-hash or least-loaded placement by batching
  merge key (:mod:`repro.cluster.router`), so coalescible traffic
  stays coalescible;
* **failure handling** — per-shard circuit breakers lifted to replica
  health; dark replicas are routed around and catch up on the idle
  tick (:mod:`repro.cluster.replica`);
* **self-healing** — replica-scoped crash/hang/partition fault domains
  (:class:`repro.serve.faults.ReplicaFaultPlan`), a virtual-time
  watchdog turning missed heartbeats into the UP/SUSPECT/DOWN
  lifecycle with supervised restarts, failover with in-flight orphan
  recovery, and heartbeat-driven auto-scaling
  (:mod:`repro.cluster.watchdog`);
* **observability** — per-replica telemetry merged into exact cluster
  rollups, and a live operator console driven by the virtual clock
  (:mod:`repro.cluster.console`).

Everything stays deterministic: a one-replica cluster is bit-identical
to a bare server, and seeded chaos runs — failovers, restarts and
scale events included — replay bit-for-bit at any replica count.
"""

from .console import have_textual, render_plain, watch
from .frontend import ClusterFrontend, derive_fault_plans
from .messages import MESSAGE_TYPES
from .quotas import QuotaManager, TenantQuota
from .replica import Replica
from .router import (
    ROUTERS,
    ConsistentHashRouter,
    LeastLoadedRouter,
    make_router,
)
from .watchdog import (
    DOWN,
    LIFECYCLE_STATES,
    RETIRED,
    SUSPECT,
    UP,
    AutoscalePolicy,
    ClusterHealth,
    ReplicaSupervisor,
    WatchdogPolicy,
)

__all__ = [
    "ClusterFrontend",
    "Replica",
    "ConsistentHashRouter",
    "LeastLoadedRouter",
    "make_router",
    "ROUTERS",
    "QuotaManager",
    "TenantQuota",
    "derive_fault_plans",
    "render_plain",
    "watch",
    "have_textual",
    "MESSAGE_TYPES",
    "WatchdogPolicy",
    "AutoscalePolicy",
    "ClusterHealth",
    "ReplicaSupervisor",
    "LIFECYCLE_STATES",
    "UP",
    "SUSPECT",
    "DOWN",
    "RETIRED",
]
