"""Request -> replica routing policies of the cluster front-end.

Both policies route by the request's *merge key*
(:func:`repro.api.merge_key` — the transform-shape coalescing key of
the batching scheduler), because placement and batching are the same
decision at cluster scale: two requests can only coalesce into one
multi-bank dispatch if they land on the same replica, so the router's
job is to keep same-shape traffic together (batching affinity) while
spreading distinct shapes for parallelism.

* :class:`ConsistentHashRouter` — a classic hash ring (SHA-1 points,
  ``vnodes`` virtual nodes per replica).  Same key -> same replica,
  always; adding or removing a replica only remaps the keys whose ring
  arc it owns (~1/N of them), so a resize never reshuffles the whole
  key space.  Down replicas are skipped by walking the ring, which
  lands their keys on the next arc owner — and hands them *back* the
  moment they recover.
* :class:`LeastLoadedRouter` — joint-shortest-queue with deterministic
  tie-breaking (lowest replica id) over the supervisor's heartbeat
  loads, plus a batching-affinity lease: the first request of a shape
  picks the least-loaded replica and *pins* the shape there for
  ``epoch_us`` of virtual time, so a window's worth of same-shape
  traffic coalesces instead of scattering; when the lease expires the
  next request re-evaluates loads.

Hashing uses SHA-1 over the key's ``repr`` — never the builtin
``hash`` — so placement is stable across processes and
``PYTHONHASHSEED`` (the determinism every replay test relies on).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ClusterError

__all__ = ["ConsistentHashRouter", "LeastLoadedRouter", "ROUTERS",
           "make_router"]


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for ``label``."""
    return int.from_bytes(hashlib.sha1(label.encode()).digest()[:8], "big")


class ConsistentHashRouter:
    """Hash-ring placement: stable, process-independent, minimally
    disturbed by replica add/remove."""

    name = "hash"

    def __init__(self, replicas: int, *, vnodes: int = 64):
        if replicas < 1:
            raise ClusterError("a cluster needs at least 1 replica")
        if vnodes < 1:
            raise ClusterError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._ring: List[Tuple[int, int]] = []
        self._points: List[int] = []
        for replica in range(replicas):
            self.add_replica(replica)

    # -- membership --------------------------------------------------------------
    def add_replica(self, replica: int) -> None:
        for vnode in range(self.vnodes):
            entry = (_point(f"replica:{replica}:vnode:{vnode}"), replica)
            index = bisect.bisect(self._points, entry[0])
            self._points.insert(index, entry[0])
            self._ring.insert(index, entry)

    def remove_replica(self, replica: int) -> None:
        keep = [(point, owner) for point, owner in self._ring
                if owner != replica]
        self._ring = keep
        self._points = [point for point, _ in keep]

    # -- routing -----------------------------------------------------------------
    def route(self, key: Optional[tuple], request_id: int, *,
              now_us: float, candidates: Sequence[int],
              loads: Dict[int, int]) -> int:
        """The ring owner of ``key`` (unbatchable requests — ``key``
        ``None`` — spread by request id), skipping replicas not in
        ``candidates`` by walking to the next arc."""
        if not candidates:
            raise ClusterError("no replica is up to route to")
        up = set(candidates)
        start = bisect.bisect(
            self._points,
            _point(repr(key) if key is not None else f"solo:{request_id}"))
        for step in range(len(self._ring)):
            _, owner = self._ring[(start + step) % len(self._ring)]
            if owner in up:
                return owner
        raise ClusterError("hash ring has no routable replica "
                           f"(candidates {sorted(up)})")


@dataclass
class _Lease:
    replica: int
    expires_us: float


class LeastLoadedRouter:
    """Joint-shortest-queue with a per-shape batching-affinity lease."""

    name = "least-loaded"

    def __init__(self, replicas: int = 0, *, epoch_us: float = 1000.0):
        if epoch_us < 0:
            raise ClusterError("epoch_us must be >= 0")
        self.epoch_us = epoch_us
        self._leases: Dict[tuple, _Lease] = {}

    # -- membership --------------------------------------------------------------
    def add_replica(self, replica: int) -> None:
        """Load-based placement has no ring state; a new replica simply
        becomes eligible through ``candidates``/``loads``."""

    def remove_replica(self, replica: int) -> None:
        """Drop every lease pinned to the departing replica so its
        shapes re-evaluate immediately instead of waiting out the
        epoch."""
        self._leases = {key: lease for key, lease in self._leases.items()
                        if lease.replica != replica}

    def route(self, key: Optional[tuple], request_id: int, *,
              now_us: float, candidates: Sequence[int],
              loads: Dict[int, int]) -> int:
        """The leased replica of ``key`` while the lease holds (and the
        replica is routable); otherwise the least-loaded candidate,
        ties to the lowest replica id, renewing the lease."""
        if not candidates:
            raise ClusterError("no replica is up to route to")
        if key is not None:
            lease = self._leases.get(key)
            if (lease is not None and lease.replica in candidates
                    and now_us < lease.expires_us):
                return lease.replica
        chosen = min(candidates,
                     key=lambda replica: (loads.get(replica, 0), replica))
        if key is not None:
            self._leases[key] = _Lease(replica=chosen,
                                       expires_us=now_us + self.epoch_us)
        return chosen


#: Named routing policies of the ``repro serve --router`` CLI.
ROUTERS = ("hash", "least-loaded")


def make_router(spec: Union[str, ConsistentHashRouter, LeastLoadedRouter],
                replicas: int):
    """Resolve a router name (or pass an instance through)."""
    if not isinstance(spec, str):
        return spec
    if spec == "hash":
        return ConsistentHashRouter(replicas)
    if spec == "least-loaded":
        return LeastLoadedRouter(replicas)
    raise ClusterError(f"unknown router {spec!r}; "
                       f"choose from {', '.join(ROUTERS)}")
