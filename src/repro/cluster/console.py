"""Live operator console over a :class:`ClusterFrontend`.

The console is a *driver* of the deterministic virtual clock, not an
observer of wall time: each frame submits every arrival whose virtual
time has come and then idle-ticks the cluster
(:meth:`ClusterFrontend.advance`), so windows close and results settle
exactly as they would under an offline :meth:`ClusterFrontend.serve`
of the same stream — watching a run does not change it.  The
submit-before-advance order inside a frame is what preserves that
bit-identity: advancing first would clamp same-frame arrivals forward.

Two render paths share the frame loop: :func:`render_plain` formats a
fixed-width table any terminal (and the CI log) can show, and — when
the optional `textual <https://textual.textualize.io>`_ package is
installed — :func:`watch` upgrades to a Textual ``DataTable`` app that
repaints in place.  Textual is strictly optional: nothing here imports
it at module scope, and ``plain`` mode is always available.
"""

from __future__ import annotations

import importlib.util
from typing import Callable, Iterable, List, Optional

from ..serve.queueing import ServeRequest
from ..serve.server import ServeResult
from .frontend import ClusterFrontend

__all__ = ["render_plain", "watch", "have_textual"]

#: Columns of the per-replica table, with formatting widths.
_COLUMNS = (("replica", 7), ("state", 7), ("queue", 5), ("live", 5),
            ("backlog", 7), ("brk", 4), ("done", 6), ("thr", 5),
            ("p50_us", 9), ("p99_us", 9), ("goodput", 8))


def have_textual() -> bool:
    """Whether the optional Textual console can run here."""
    return importlib.util.find_spec("textual") is not None


def _state_cell(hb) -> str:
    """The watchdog's lifecycle verdict when it has one; the breaker
    view otherwise.  Dark states render uppercase so they jump out."""
    if hb.lifecycle != "up":
        return (hb.lifecycle.upper()
                if hb.lifecycle in ("down", "suspect") else hb.lifecycle)
    return "up" if hb.up else "DOWN"


def _rows(frontend: ClusterFrontend) -> List[List[str]]:
    rows = []
    for hb in frontend.heartbeats(want_snapshot=True):
        snap = hb.snapshot or {}
        rows.append([
            f"r{hb.replica}",
            _state_cell(hb),
            str(hb.queue_depth),
            str(hb.outstanding),
            str(hb.backlog),
            str(sum(1 for state, _ in hb.breakers.values()
                    if state == "open")),
            str(snap.get("completed", 0)),
            str(snap.get("failed", 0) + snap.get("expired", 0)
                + snap.get("shed", 0)),
            f"{snap.get('latency_p50_us', 0.0):.1f}",
            f"{snap.get('latency_p99_us', 0.0):.1f}",
            f"{snap.get('goodput_rps', 0.0):.0f}",
        ])
    return rows


def render_plain(frontend: ClusterFrontend) -> str:
    """One fixed-width console frame: the replica table, then tenant
    quota counters (skipped while no tenant is metered)."""
    header = " ".join(name.rjust(width) for name, width in _COLUMNS)
    lines = [f"cluster @ {frontend.now_us:.1f}us "
             f"({len(frontend.replicas)} replicas)",
             header, "-" * len(header)]
    for row in _rows(frontend):
        lines.append(" ".join(cell.rjust(width) for cell, (_, width)
                              in zip(row, _COLUMNS)))
    stats = frontend.quota_stats()
    if stats:
        lines.append("tenants: " + "  ".join(
            f"{tenant or '(none)'}: {int(s['admitted'])} ok"
            f"/{int(s['throttled'])} throttled"
            for tenant, s in stats.items()))
    if frontend.supervised:
        health = frontend.health.snapshot()
        lines.append(
            f"health: failovers={health['failovers']} "
            f"restarts={health['restarts']} "
            f"orphans={health['orphans_recovered']} "
            f"dups={health['duplicates_dropped']} "
            f"scale=+{health['scale_out']}/-{health['scale_in']} "
            f"mttr={health['mttr_us']:.0f}us")
    return "\n".join(lines)


def _frames(frontend: ClusterFrontend,
            requests: Iterable[ServeRequest], *,
            every_us: float):
    """The shared frame loop: yield after each virtual-time tick, then
    drain.  Arrivals are session-relative, like ``submit()``."""
    pending = sorted((s for s in requests),
                     key=lambda s: (s.arrival_us, s.request_id))
    cursor = 0
    tick = 0
    while True:
        tick += 1
        now = tick * every_us
        while (cursor < len(pending)
               and pending[cursor].arrival_us <= now):
            frontend.submit(pending[cursor])
            cursor += 1
        frontend.advance(now)
        done = cursor >= len(pending)
        yield now, done
        if done:
            break


def watch(frontend: ClusterFrontend,
          requests: Iterable[ServeRequest], *,
          every_us: float = 200.0,
          mode: str = "plain",
          emit: Optional[Callable[[str], None]] = print,
          max_frames: Optional[int] = None) -> List[ServeResult]:
    """Run the watch loop: feed ``requests`` into ``frontend`` on the
    virtual-time cadence ``every_us``, rendering one frame per tick,
    and return the drained results (cluster submission order).

    ``mode`` is ``"plain"`` (fixed-width frames through ``emit``) or
    ``"textual"`` (requires the optional package; falls back to plain
    with a notice when it is missing).  ``max_frames`` caps emitted
    frames so long runs don't flood a log — the loop itself always
    runs to completion.
    """
    if mode == "textual" and not have_textual():
        if emit is not None:
            emit("textual is not installed; falling back to plain "
                 "(pip install textual enables the DataTable console)")
        mode = "plain"
    if mode == "textual":
        return _watch_textual(frontend, requests, every_us=every_us)
    if mode != "plain":
        raise ValueError(f"unknown console mode {mode!r}; "
                         "choose 'plain' or 'textual'")
    emitted = 0
    for _now, _done in _frames(frontend, requests, every_us=every_us):
        if emit is not None and (max_frames is None
                                 or emitted < max_frames):
            emit(render_plain(frontend))
            emitted += 1
    results = frontend.drain()
    if emit is not None:
        emit(render_plain(frontend))
    return results


def _watch_textual(frontend: ClusterFrontend,
                   requests: Iterable[ServeRequest], *,
                   every_us: float) -> List[ServeResult]:
    """The Textual ``DataTable`` console (import guarded by
    :func:`have_textual`): same frame loop, repainted in place."""
    from textual.app import App, ComposeResult
    from textual.widgets import DataTable, Footer, Header

    results: List[ServeResult] = []

    class _Console(App):
        TITLE = "repro cluster"
        BINDINGS = [("q", "quit", "Quit")]

        def compose(self) -> ComposeResult:
            yield Header()
            yield DataTable()
            yield Footer()

        def on_mount(self) -> None:
            table = self.query_one(DataTable)
            table.add_columns(*(name for name, _ in _COLUMNS))
            self._loop = _frames(frontend, requests, every_us=every_us)
            self.set_interval(0.1, self._tick)

        def _tick(self) -> None:
            try:
                _now, _done = next(self._loop)
            except StopIteration:
                results.extend(frontend.drain())
                self.exit()
                return
            table = self.query_one(DataTable)
            table.clear()
            for row in _rows(frontend):
                table.add_row(*row)

    _Console().run()
    return results
