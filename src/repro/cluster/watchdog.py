"""Virtual-time watchdog machinery of the self-healing cluster.

The :class:`~repro.cluster.frontend.ClusterFrontend` supervises each
replica through a :class:`ReplicaSupervisor`: every typed message goes
through :meth:`ReplicaSupervisor.deliver`, which first consults the
replica's fault timeline (:class:`repro.serve.faults.ReplicaFaultPlan`)
— a crashed, hung or partitioned replica simply *does not answer*
(``None`` instead of a typed reply), exactly what a real supervisor
sees.  The watchdog turns missed heartbeats into the lifecycle state
machine::

    UP --missed >= suspect_after--> SUSPECT
       --missed >= down_after----> DOWN   (failover + restart scheduled)
    DOWN --link heals before restart--> UP   (slow-then-recovered)
    DOWN --restart_delay elapses------> UP   (fresh incarnation)
    UP --autoscaler Quiesce----------> RETIRED (scale-in)

Everything runs on the deterministic virtual clock: probe ticks land on
a fixed ``heartbeat_us`` grid, restarts fire at ``down + restart_delay``
and fault windows are pure functions of ``(seed, replica, time)`` — so
a chaos run with failovers, restarts and scale events replays
bit-for-bit.

:class:`AutoscalePolicy` drives membership from the same heartbeat
rollups: sustained mean load above ``scale_out_load`` grows the fleet
(up to ``max_replicas``), sustained idleness shrinks it (down to
``min_replicas``, only retiring replicas that confirm ``Quiesced.idle``),
with a cooldown between scale events to prevent flapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ClusterError, ReproError
from ..serve.faults import CRASH, ReplicaFaultEvent, ReplicaFaultPlan
from ..serve.telemetry import Telemetry

__all__ = ["UP", "SUSPECT", "DOWN", "RESTARTING", "RETIRED",
           "LIFECYCLE_STATES", "WatchdogPolicy", "AutoscalePolicy",
           "ClusterHealth", "ReplicaSupervisor"]

#: Replica lifecycle states, as the watchdog sees them.
UP = "up"                # answering heartbeats, routable
SUSPECT = "suspect"      # missed probes; routed around, not failed over
DOWN = "down"            # declared dead; failed over, restart scheduled
RESTARTING = "restarting"  # rebuild in progress this tick
RETIRED = "retired"      # scaled in; state kept for telemetry only

LIFECYCLE_STATES = (UP, SUSPECT, DOWN, RESTARTING, RETIRED)


@dataclass(frozen=True)
class WatchdogPolicy:
    """Missed-heartbeat detection and supervised-restart knobs (all
    times simulated microseconds)."""

    #: Probe cadence: heartbeats land on multiples of this.
    heartbeat_us: float = 500.0
    #: Consecutive missed probes before a replica turns SUSPECT
    #: (routed around, nothing failed over yet).
    suspect_after: int = 2
    #: Consecutive missed probes before DOWN: orphaned in-flight work
    #: is failed over and a restart is scheduled.
    down_after: int = 4
    #: Virtual time between declaring DOWN and the rebuilt incarnation
    #: coming up (a hung replica that answers again before this fires
    #: is taken back without losing its state).
    restart_delay_us: float = 1500.0

    def __post_init__(self):
        if self.heartbeat_us <= 0:
            raise ClusterError("heartbeat_us must be > 0")
        if not 1 <= self.suspect_after <= self.down_after:
            raise ClusterError("need 1 <= suspect_after <= down_after")
        if self.restart_delay_us < 0:
            raise ClusterError("restart_delay_us must be >= 0")


@dataclass(frozen=True)
class AutoscalePolicy:
    """Heartbeat-rollup-driven membership: scale-out on sustained load,
    scale-in on sustained idleness, cooldown against flapping."""

    min_replicas: int = 1
    max_replicas: int = 4
    #: Mean (queue depth + outstanding) per UP replica at/above which a
    #: tick votes for scale-out.
    scale_out_load: float = 12.0
    #: Mean load at/below which a tick votes for scale-in.
    scale_in_load: float = 0.0
    #: Consecutive agreeing ticks before a scale event fires.
    sustain_ticks: int = 2
    #: Minimum virtual time between scale events.
    cooldown_us: float = 2000.0

    def __post_init__(self):
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ClusterError("need 1 <= min_replicas <= max_replicas")
        if self.sustain_ticks < 1:
            raise ClusterError("sustain_ticks must be >= 1")
        if self.cooldown_us < 0:
            raise ClusterError("cooldown_us must be >= 0")
        if self.scale_in_load > self.scale_out_load:
            raise ClusterError("scale_in_load must not exceed "
                               "scale_out_load")


class ClusterHealth:
    """Cluster-level self-healing counters (virtual time throughout)."""

    def __init__(self):
        #: Distinct replica-fault events the supervisor observed, by kind.
        self.faults_seen: Dict[str, int] = {}
        self.suspects = 0
        self.downs = 0
        self.failovers = 0
        self.restarts = 0
        #: Orphaned in-flight requests re-submitted to healthy replicas.
        self.orphans_recovered = 0
        #: Duplicate results dropped (slow-then-recovered double-serves).
        self.duplicates_dropped = 0
        self.scale_out = 0
        self.scale_in = 0
        #: DOWN -> serving-again intervals, one sample per recovery.
        self.mttr_samples_us: List[float] = []

    @property
    def mttr_us(self) -> float:
        """Mean virtual time from DOWN to serving again (0 with no
        recoveries yet)."""
        if not self.mttr_samples_us:
            return 0.0
        return sum(self.mttr_samples_us) / len(self.mttr_samples_us)

    def note_fault(self, kind: str) -> None:
        self.faults_seen[kind] = self.faults_seen.get(kind, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "faults_seen": dict(self.faults_seen),
            "suspects": self.suspects,
            "downs": self.downs,
            "failovers": self.failovers,
            "restarts": self.restarts,
            "orphans_recovered": self.orphans_recovered,
            "duplicates_dropped": self.duplicates_dropped,
            "scale_out": self.scale_out,
            "scale_in": self.scale_in,
            "recoveries": len(self.mttr_samples_us),
            "mttr_us": self.mttr_us,
        }


class ReplicaSupervisor:
    """Lifecycle state machine + fault-aware message link for one
    replica slot.

    The supervisor owns the slot, not the object: a restart swaps in a
    fresh :class:`~repro.cluster.replica.Replica` incarnation (same
    slot, same derived fault seed) and keeps the dead incarnation's
    telemetry for cluster rollups.  The fault timeline is evaluated
    against ``alive_since_us``, so events that predate the current
    incarnation's birth never re-fire.
    """

    def __init__(self, slot: int, replica, *,
                 plan: Optional[ReplicaFaultPlan] = None,
                 born_us: float = 0.0):
        self.slot = slot
        self.replica = replica
        self.plan = plan
        self.state = UP
        self.missed = 0
        self.incarnation = 0
        self.alive_since_us = born_us
        self.down_since_us: Optional[float] = None
        self.restart_at_us: Optional[float] = None
        #: Telemetries of dead incarnations (crash-lost state keeps its
        #: completed-and-returned records attributable).
        self.retired_telemetries: List[Telemetry] = []
        #: Fault events already counted (one count per distinct event).
        self._seen_events: set = set()

    # -- the fault-aware link ----------------------------------------------------
    def link_outage(self, now_us: float) -> Optional[ReplicaFaultEvent]:
        """The fault event keeping this slot's link dark at ``now_us``
        (``None`` while clean or retired-with-no-plan)."""
        if self.plan is None:
            return None
        return self.plan.outage(self.slot, now_us, self.alive_since_us)

    def deliver(self, message, now_us: float):
        """Deliver one typed message through the (possibly faulty)
        link: the typed reply, or ``None`` when the link is dark or the
        slot is retired.  Replica-side exceptions are wrapped in a
        contextful :class:`ClusterError` with ``__cause__`` preserved."""
        if self.state == RETIRED:
            return None
        event = self.link_outage(now_us)
        if event is not None:
            self._note_event(event)
            return None
        try:
            return self.replica.send(message)
        except ReproError as exc:
            raise ClusterError(
                f"replica {self.slot} ({self.state}) failed handling "
                f"{type(message).__name__}: {exc}",
                replica=self.slot, state=self.state) from exc

    def _note_event(self, event: ReplicaFaultEvent):
        key = (event.interval, event.kind)
        if key not in self._seen_events:
            self._seen_events.add(key)
            self._last_event = event

    def pop_seen_kinds(self) -> List[str]:
        """Kinds of fault events newly observed since the last call
        (for health counters; each event counts once)."""
        kinds = [kind for _, kind in sorted(self._seen_events)]
        self._counted = getattr(self, "_counted", 0)
        fresh = kinds[self._counted:]
        self._counted = len(kinds)
        return fresh

    def crashed(self, now_us: float) -> bool:
        """Whether the current incarnation's link outage (if any) is a
        permanent crash — its state is unrecoverable without restart."""
        event = self.link_outage(now_us)
        return event is not None and event.kind == CRASH

    # -- the lifecycle state machine ---------------------------------------------
    def on_missed(self, now_us: float,
                  policy: WatchdogPolicy) -> Optional[str]:
        """One missed probe; returns the transition it caused
        (``"suspect"``/``"down"``) or ``None``."""
        self.missed += 1
        if self.state == UP and self.missed >= policy.suspect_after:
            self.state = SUSPECT
            return SUSPECT
        if self.state == SUSPECT and self.missed >= policy.down_after:
            self.mark_down(now_us, policy)
            return DOWN
        return None

    def mark_down(self, now_us: float, policy: WatchdogPolicy) -> None:
        self.state = DOWN
        self.down_since_us = now_us
        self.restart_at_us = now_us + policy.restart_delay_us

    def on_ack(self, now_us: float) -> Optional[float]:
        """One answered probe; heals SUSPECT back to UP, takes a
        slow-then-recovered DOWN replica back (cancelling its pending
        restart) and returns the MTTR sample when it does."""
        self.missed = 0
        if self.state == SUSPECT:
            self.state = UP
            return None
        if self.state == DOWN:
            self.state = UP
            self.restart_at_us = None
            mttr = now_us - (self.down_since_us or now_us)
            self.down_since_us = None
            return mttr
        return None

    def reborn(self, replica, now_us: float) -> float:
        """Swap in a fresh incarnation (supervised restart): retire the
        dead incarnation's telemetry, reset the link bookkeeping, and
        return the MTTR sample."""
        self.retired_telemetries.append(self.replica.server.telemetry)
        self.replica = replica
        self.incarnation += 1
        self.state = UP
        self.missed = 0
        self.alive_since_us = now_us
        self.restart_at_us = None
        mttr = now_us - (self.down_since_us or now_us)
        self.down_since_us = None
        return mttr

    def retire(self) -> None:
        """Scale-in: take the slot out of service for good (its live
        telemetry stays reachable through ``self.replica``)."""
        self.state = RETIRED
        self.restart_at_us = None
