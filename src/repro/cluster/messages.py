"""Typed messages of the front-end <-> replica protocol.

The cluster tier talks to its replicas the way the gridworks proactor
pattern talks to supervised actors: every interaction is a frozen,
typed message with a typed reply — never a bare method reach into the
replica's internals.  That keeps the protocol surface explicit (and
enumerable: :data:`MESSAGE_TYPES`), makes a replica swappable for a
remote one behind the same five verbs, and gives the supervisor one
choke point to observe.

The verbs:

* :class:`Submit` -> :class:`Submitted` — route one admitted request
  into the replica's live session.
* :class:`Poll` -> :class:`PollReply` — ask for one request's result.
* :class:`Advance` -> :class:`Advanced` — idle-tick the replica's
  virtual clock (close aged batching windows, settle execution).
* :class:`Drain` -> :class:`Drained` — close the live session and
  collect every result.
* :class:`Heartbeat` -> :class:`HeartbeatReply` — liveness + load +
  per-shard breaker states (the health the router routes around), and
  optionally a full telemetry snapshot for consoles.
* :class:`BreakerQuery` -> :class:`BreakerStates` — just the breaker
  map, for supervisors that only health-check.
* :class:`Quiesce` -> :class:`Quiesced` — the scale-in handshake: ask
  a replica whether it is idle enough to retire (no outstanding work,
  empty queue); the autoscaler only removes replicas that confirm.

All times are *absolute* cluster virtual time; the replica translates
into its own session-relative coordinates
(:meth:`repro.serve.SimServer.session_offset_us`).

Any of these messages can be **dropped by the link** when a replica
fault (:class:`repro.serve.faults.ReplicaFaultPlan`) has the replica
crashed, hung or partitioned — the supervisor sees ``None`` instead of
the typed reply and reacts through the watchdog, never through an
exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..serve.queueing import ServeRequest
from ..serve.server import ServeResult

__all__ = ["Submit", "Submitted", "Poll", "PollReply", "Advance",
           "Advanced", "Drain", "Drained", "Heartbeat", "HeartbeatReply",
           "BreakerQuery", "BreakerStates", "Quiesce", "Quiesced",
           "MESSAGE_TYPES"]


@dataclass(frozen=True)
class Submit:
    """Route one request (absolute ``arrival_us``) into the replica."""

    sreq: ServeRequest


@dataclass(frozen=True)
class Submitted:
    request_id: int
    replica: int


@dataclass(frozen=True)
class Poll:
    request_id: int


@dataclass(frozen=True)
class PollReply:
    request_id: int
    #: ``None`` while the request is still queued/windowed/executing.
    result: Optional[ServeResult]


@dataclass(frozen=True)
class Advance:
    """Idle-tick the replica to absolute virtual time ``now_us``."""

    now_us: float


@dataclass(frozen=True)
class Advanced:
    replica: int
    now_us: float


@dataclass(frozen=True)
class Drain:
    pass


@dataclass(frozen=True)
class Drained:
    replica: int
    #: Every result of the closed session, in submission order.
    results: List[ServeResult] = field(default_factory=list)


@dataclass(frozen=True)
class Heartbeat:
    """Health probe at absolute time ``now_us``; ``want_snapshot``
    additionally rolls up the replica's telemetry (consoles want it,
    per-submit health checks must stay cheap and skip it)."""

    now_us: float
    want_snapshot: bool = False


@dataclass(frozen=True)
class HeartbeatReply:
    replica: int
    now_us: float
    queue_depth: int
    #: Requests submitted to the live session but not yet settled.
    outstanding: int
    #: Dispatch attempts waiting on shard backlogs.
    backlog: int
    num_shards: int
    #: ``{shard: (state, open_until_us)}`` for every tripped breaker.
    breakers: Dict[int, Tuple[str, float]] = field(default_factory=dict)
    #: Replica is routable: at least one shard can currently serve.
    up: bool = True
    #: ``Telemetry.snapshot()`` when the probe asked for one.
    snapshot: Optional[Dict[str, object]] = None
    #: Supervisor-side lifecycle (``up``/``suspect``/``down``/
    #: ``restarting``); a replica always reports ``up`` for itself —
    #: only the watchdog can stamp anything else.
    lifecycle: str = "up"


@dataclass(frozen=True)
class BreakerQuery:
    now_us: float


@dataclass(frozen=True)
class BreakerStates:
    replica: int
    #: ``{shard: (state, open_until_us)}`` for every tripped breaker.
    breakers: Dict[int, Tuple[str, float]] = field(default_factory=dict)
    up: bool = True


@dataclass(frozen=True)
class Quiesce:
    """Scale-in probe at absolute time ``now_us``: is the replica idle
    enough to retire?"""

    now_us: float


@dataclass(frozen=True)
class Quiesced:
    replica: int
    #: Requests submitted to the live session but not yet settled.
    outstanding: int
    queue_depth: int
    #: The replica confirms it can retire (nothing queued or in flight).
    idle: bool = False


#: Every message a :class:`~repro.cluster.replica.Replica` accepts.
MESSAGE_TYPES = (Submit, Poll, Advance, Drain, Heartbeat, BreakerQuery,
                 Quiesce)
