"""One supervised serving replica behind the typed message protocol.

A :class:`Replica` owns a full :class:`~repro.serve.SimServer` — queue,
batching scheduler, shards, bus, fault plan, resilience policy — and
exposes it *only* through :meth:`Replica.send`, which dispatches the
typed messages of :mod:`repro.cluster.messages`.  The front-end never
reaches past the protocol, so a replica is exactly the actor the
gridworks proactor pattern supervises: typed inbox, typed replies,
observable link state (the heartbeat).

Clock translation happens here: cluster messages carry *absolute*
virtual time, the wrapped server thinks in session-relative time, and
:meth:`~repro.serve.SimServer.session_offset_us` bridges the two.  With
one replica the offset is identical to a bare server's, which is one
of the links in the cluster's single-replica bit-identity proof.

Health is the per-shard circuit-breaker machinery lifted to replica
granularity: a replica reports itself ``up`` while at least one shard
could serve a dispatch *now* — every shard's breaker open (and still
inside its cooldown) means the whole replica is effectively dark, and
the router routes around it until a cooldown expires.  Recovery is
catch-up by construction: the replica's backlog keeps settling on
every :class:`~repro.cluster.messages.Advance` tick, open breakers
half-open and re-close through the server's own probe machinery, and
the heartbeat flips back to ``up``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..errors import ClusterError
from ..serve.faults import FaultPlan, ResiliencePolicy
from ..serve.server import SimServer
from ..sim.driver import SimConfig
from .messages import (
    Advance,
    Advanced,
    BreakerQuery,
    BreakerStates,
    Drain,
    Drained,
    Heartbeat,
    HeartbeatReply,
    Poll,
    PollReply,
    Quiesce,
    Quiesced,
    Submit,
    Submitted,
)

__all__ = ["Replica"]


class Replica:
    """One :class:`SimServer` actor under the cluster supervisor.

    ``server_kwargs`` pass straight through to :class:`SimServer` —
    the replica adds nothing to the serving model itself, only the
    message boundary, the absolute-time translation, and the
    replica-granular health view.
    """

    def __init__(self, replica_id: int,
                 config: Optional[SimConfig] = None, *,
                 fault_plan: Optional[FaultPlan] = None,
                 policy: Union[str, ResiliencePolicy] = "none",
                 **server_kwargs):
        self.replica_id = replica_id
        self.server = SimServer(config, faults=fault_plan, policy=policy,
                                **server_kwargs)
        # Every record this replica ever produces carries its id, so
        # merged cluster telemetry keeps per-replica attribution.
        self.server.telemetry.replica = replica_id
        self._handlers = {
            Submit: self._submit,
            Poll: self._poll,
            Advance: self._advance,
            Drain: self._drain,
            Heartbeat: self._heartbeat,
            BreakerQuery: self._breakers,
            Quiesce: self._quiesce,
        }

    # -- the protocol ------------------------------------------------------------
    def send(self, message):
        """Dispatch one typed message and return its typed reply."""
        handler = self._handlers.get(type(message))
        if handler is None:
            raise ClusterError(
                f"replica {self.replica_id} has no handler for "
                f"{type(message).__name__!r}; the protocol accepts "
                f"Submit, Poll, Advance, Drain, Heartbeat, BreakerQuery, "
                f"Quiesce", replica=self.replica_id)
        return handler(message)

    # -- handlers ----------------------------------------------------------------
    def _to_relative(self, absolute_us: float) -> float:
        return absolute_us - self.server.session_offset_us()

    def _submit(self, message: Submit) -> Submitted:
        sreq = message.sreq
        request_id = self.server.submit(
            sreq.request,
            arrival_us=self._to_relative(sreq.arrival_us),
            priority=sreq.priority,
            deadline_us=(self._to_relative(sreq.deadline_us)
                         if sreq.deadline_us is not None else None),
            config=sreq.config, request_id=sreq.request_id,
            tenant=sreq.tenant)
        return Submitted(request_id=request_id, replica=self.replica_id)

    def _poll(self, message: Poll) -> PollReply:
        return PollReply(request_id=message.request_id,
                         result=self.server.poll(message.request_id))

    def _advance(self, message: Advance) -> Advanced:
        self.server.advance(self._to_relative(message.now_us))
        return Advanced(replica=self.replica_id, now_us=message.now_us)

    def _drain(self, message: Drain) -> Drained:
        return Drained(replica=self.replica_id,
                       results=self.server.drain())

    def _health(self, now_us: float, stats: Dict[str, object]
                ) -> Tuple[Dict[int, Tuple[str, float]], bool]:
        """The replica-granular lift of the per-shard breakers: the
        breaker map, plus ``up`` = some shard can serve at ``now_us``
        (an open breaker whose cooldown already expired counts as
        servable — its next dispatch is the half-open probe)."""
        breakers = dict(stats["breakers"])
        dark = sum(1 for state, open_until in breakers.values()
                   if state == "open" and open_until > now_us)
        return breakers, dark < int(stats["num_shards"])

    def _heartbeat(self, message: Heartbeat) -> HeartbeatReply:
        stats = self.server.live_stats()
        breakers, up = self._health(message.now_us, stats)
        snapshot = (self.server.telemetry.snapshot()
                    if message.want_snapshot else None)
        return HeartbeatReply(
            replica=self.replica_id, now_us=message.now_us,
            queue_depth=int(stats["queue_depth"]),
            outstanding=int(stats["submitted"]) - int(stats["settled"]),
            backlog=int(stats["backlog"]),
            num_shards=int(stats["num_shards"]),
            breakers=breakers, up=up, snapshot=snapshot)

    def _breakers(self, message: BreakerQuery) -> BreakerStates:
        breakers, up = self._health(message.now_us,
                                    self.server.live_stats())
        return BreakerStates(replica=self.replica_id, breakers=breakers,
                             up=up)

    def _quiesce(self, message: Quiesce) -> Quiesced:
        stats = self.server.live_stats()
        outstanding = int(stats["submitted"]) - int(stats["settled"])
        queue_depth = int(stats["queue_depth"])
        return Quiesced(replica=self.replica_id, outstanding=outstanding,
                        queue_depth=queue_depth,
                        idle=(outstanding == 0 and queue_depth == 0))
