"""Request-level host interface (paper Fig. 1 and Sec. IV.A).

From the software's point of view, the NTT function is invoked as a
*memory write request* whose "write data" carries the NTT parameters
(N, q, omega, base address); the input polynomial is already in memory.
The memory controller expands the request into DRAM commands, and a
write *response* signals completion.

This module models that protocol: plain reads/writes move data in and
out of the bank (through untimed host access, standing in for ordinary
DRAM traffic), and :class:`PimMemoryController` serves NTT_INVOKE
requests through the :class:`repro.api.Simulator` facade — or, when
constructed with a :class:`repro.serve.SimServer`, through the serving
layer's full queue → scheduler → shard path, so host-protocol traffic
shares admission control, telemetry and the batching machinery with
every other client of the server.  Both routes produce bit-identical
data results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..arith.bitrev import bit_reverse_permute
from ..arith.roots import NttParams
from ..errors import MappingError
from .driver import SimConfig
from .results import NttRunResult

__all__ = ["RequestType", "MemoryRequest", "MemoryResponse",
           "PimMemoryController"]


class RequestType(enum.Enum):
    READ = "R"
    WRITE = "W"
    NTT_INVOKE = "NTT"


@dataclass
class MemoryRequest:
    """One entry of the host's request stream.

    READ:        address (word index), length
    WRITE:       address, data (list of words)
    NTT_INVOKE:  address, ntt_params — the 'write request carrying
                 parameters as write data'.
    """

    rtype: RequestType
    address: int = 0
    length: int = 0
    data: Optional[List[int]] = None
    ntt_params: Optional[NttParams] = None
    pre_bit_reversed: bool = False  # has the host already permuted?


@dataclass
class MemoryResponse:
    """Completion record returned per request."""

    ok: bool
    data: List[int] = field(default_factory=list)
    run: Optional[NttRunResult] = None
    detail: str = ""


class PimMemoryController:
    """Serves host requests against one simulated PIM bank.

    Data written via WRITE persists across requests (it is "already in
    the memory" when the NTT arrives); NTT_INVOKE overwrites it with the
    transform result, as the paper's host protocol specifies.

    ``server`` optionally routes NTT invocations through a
    :class:`repro.serve.SimServer` (queue, batching scheduler, shards,
    telemetry) instead of a direct facade call; the data result is
    bit-identical either way.  The per-request :class:`SimConfig`
    (base row from the request address) rides along as the serve
    layer's config override.
    """

    def __init__(self, config: SimConfig | None = None, server=None):
        self.config = config or SimConfig()
        #: Optional :class:`repro.serve.SimServer` the NTT path uses.
        self.server = server
        self._words_per_row = self.config.arch.words_per_row
        # Host-visible backing store (word address space of one bank).
        self._memory = {}
        self.completed: List[MemoryResponse] = []

    # -- plain traffic -------------------------------------------------------
    def _write_words(self, address: int, data: List[int]) -> None:
        for offset, word in enumerate(data):
            self._memory[address + offset] = word

    def _read_words(self, address: int, length: int) -> List[int]:
        return [self._memory.get(address + i, 0) for i in range(length)]

    # -- request service --------------------------------------------------------
    def submit(self, request: MemoryRequest) -> MemoryResponse:
        """Serve one request synchronously and record the response."""
        if request.rtype is RequestType.WRITE:
            if request.data is None:
                response = MemoryResponse(ok=False, detail="WRITE without data")
            else:
                self._write_words(request.address, request.data)
                response = MemoryResponse(ok=True)
        elif request.rtype is RequestType.READ:
            response = MemoryResponse(
                ok=True, data=self._read_words(request.address, request.length))
        elif request.rtype is RequestType.NTT_INVOKE:
            response = self._serve_ntt(request)
        else:  # pragma: no cover - enum exhaustive
            response = MemoryResponse(ok=False, detail="unknown request")
        self.completed.append(response)
        return response

    def _serve_ntt(self, request: MemoryRequest) -> MemoryResponse:
        params = request.ntt_params
        if params is None:
            return MemoryResponse(ok=False, detail="NTT without parameters")
        if request.address % self._words_per_row != 0:
            return MemoryResponse(
                ok=False, detail="NTT base address must be row-aligned")
        base_row = request.address // self._words_per_row
        values = self._read_words(request.address, params.n)
        if request.pre_bit_reversed:
            # The stored data is the bit-reversed image; recover natural
            # order for the driver's host-side step (an involution).
            values = bit_reverse_permute(values)
        # Imported here, not at module top: repro.sim is an engine-room
        # package of the facade and the serving layer, so the dependency
        # must stay one-way at import time (repro.api/repro.serve ->
        # repro.sim).
        from ..api import NttRequest, Simulator

        config = SimConfig(
            arch=self.config.arch, timing=self.config.timing,
            pim=self.config.pim, energy=self.config.energy,
            base_row=base_row, verify=self.config.verify,
            functional=self.config.functional,
            mapper_options=self.config.mapper_options)
        ntt_request = NttRequest(params=params, values=tuple(values))
        try:
            if self.server is not None:
                response = self.server.call(ntt_request, config=config)
            else:
                response = Simulator(config).run(ntt_request)
        except MappingError as exc:
            return MemoryResponse(ok=False, detail=str(exc))
        run = response.raw
        if run.output:
            self._write_words(request.address, run.output)
        return MemoryResponse(ok=True, data=run.output, run=run)
