"""Simulation front end: driver, results, host protocol, traces,
bank-level parallelism."""

from .batch import BatchResult, compile_batch, concat_programs
from .driver import (
    NttPimDriver,
    SimConfig,
    cached_schedule,
    clear_schedule_cache,
    schedule_cache_info,
)
from .host import MemoryRequest, MemoryResponse, PimMemoryController, RequestType
from .multibank import (
    MultiBankResult,
    TransformSpec,
    compile_multibank,
    interleave_programs,
)
from .results import NttRunResult
from .trace import format_trace, parse_trace_line, trace_summary

__all__ = [
    "BatchResult",
    "compile_batch",
    "concat_programs",
    "NttPimDriver",
    "SimConfig",
    "cached_schedule",
    "clear_schedule_cache",
    "schedule_cache_info",
    "MemoryRequest",
    "MemoryResponse",
    "PimMemoryController",
    "RequestType",
    "MultiBankResult",
    "TransformSpec",
    "compile_multibank",
    "interleave_programs",
    "NttRunResult",
    "format_trace",
    "parse_trace_line",
    "trace_summary",
]
