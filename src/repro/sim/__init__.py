"""Simulation front end: driver, results, host protocol, traces,
bank-level parallelism."""

from .batch import BatchResult, concat_programs, run_batch
from .driver import (
    NttPimDriver,
    SimConfig,
    cached_schedule,
    clear_schedule_cache,
    schedule_cache_info,
)
from .host import MemoryRequest, MemoryResponse, PimMemoryController, RequestType
from .multibank import MultiBankResult, interleave_programs, run_multibank
from .results import NttRunResult
from .trace import format_trace, parse_trace_line, trace_summary

__all__ = [
    "BatchResult",
    "concat_programs",
    "run_batch",
    "NttPimDriver",
    "SimConfig",
    "cached_schedule",
    "clear_schedule_cache",
    "schedule_cache_info",
    "MemoryRequest",
    "MemoryResponse",
    "PimMemoryController",
    "RequestType",
    "MultiBankResult",
    "interleave_programs",
    "run_multibank",
    "NttRunResult",
    "format_trace",
    "parse_trace_line",
    "trace_summary",
]
