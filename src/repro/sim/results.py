"""Result record of one simulated NTT invocation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dram.engine import ScheduleResult

__all__ = ["NttRunResult"]


@dataclass
class NttRunResult:
    """Everything an experiment wants to know about one PIM NTT run."""

    n: int
    q: int
    nb_buffers: int
    output: List[int]
    schedule: ScheduleResult
    verified: bool
    command_count: int
    bu_ops: int

    @property
    def cycles(self) -> int:
        return self.schedule.total_cycles

    @property
    def latency_ns(self) -> float:
        return self.schedule.latency_ns

    @property
    def latency_us(self) -> float:
        return self.schedule.latency_us

    @property
    def energy_nj(self) -> float:
        return self.schedule.energy_nj

    @property
    def activations(self) -> int:
        return self.schedule.stats.activations

    def summary(self) -> str:
        """One-line report used by examples and experiment harnesses."""
        return (f"N={self.n:>5}  Nb={self.nb_buffers}  "
                f"{self.latency_us:9.2f} us  {self.energy_nj:9.2f} nJ  "
                f"ACTs={self.activations:>6}  cmds={self.command_count:>7}  "
                f"verified={'yes' if self.verified else 'NO'}")
