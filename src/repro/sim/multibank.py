"""Bank-level parallelism (Sec. VI.A / Conclusion).

FHE workloads run many independent NTTs (one per RNS limb / ciphertext
polynomial); the paper's architecture runs one per bank.  All banks
share the command bus (one command per cycle) while row/column timing
and the CUs are per-bank, so speedup is near-linear until the command
bus saturates — which this module lets us measure.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..arith.bitrev import bit_reverse_permute
from ..arith.roots import NttParams
from ..dram.commands import Command
from ..dram.engine import ScheduleResult
from ..dram.stream import cached_stream
from ..errors import FunctionalMismatch, warn_deprecated
from ..mapping.program_cache import cyclic_program
from ..ntt.reference import ntt as reference_ntt
from ..pim.bank_pim import PimBank
from .driver import SimConfig, cached_schedule

__all__ = ["interleave_programs", "compile_multibank", "MultiBankResult",
           "run_multibank"]


def interleave_programs(programs: Sequence[List[Command]]) -> List[Command]:
    """Round-robin merge of per-bank programs onto the shared bus.

    Dependency indices are rewritten from per-program to merged
    positions.  Round-robin models an MC draining per-bank queues
    fairly, which is what gives each bank steady command-bus share.
    """
    merged: List[Command] = []
    index_maps = [dict() for _ in programs]
    cursors = [0] * len(programs)
    remaining = sum(len(p) for p in programs)
    while remaining:
        for bank_idx, program in enumerate(programs):
            cur = cursors[bank_idx]
            if cur >= len(program):
                continue
            cmd = program[cur]
            new_deps = tuple(index_maps[bank_idx][d] for d in cmd.deps)
            merged.append(dataclasses.replace(cmd, deps=new_deps))
            index_maps[bank_idx][cur] = len(merged) - 1
            cursors[bank_idx] = cur + 1
            remaining -= 1
    return merged


@dataclasses.dataclass
class MultiBankResult:
    """Outcome of running one NTT per bank concurrently."""

    banks: int
    schedule: ScheduleResult
    single_bank_cycles: int
    verified: bool
    #: Per-bank transform outputs (populated on functional runs).
    outputs: List[List[int]] = dataclasses.field(default_factory=list)
    #: Executed butterfly µ-ops across all banks (functional runs).
    bu_ops: int = 0

    @property
    def cycles(self) -> int:
        return self.schedule.total_cycles

    @property
    def latency_us(self) -> float:
        return self.schedule.latency_us

    @property
    def speedup(self) -> float:
        """Throughput speedup over running the same work serially on one
        bank: (banks * T1) / T_parallel."""
        return self.banks * self.single_bank_cycles / self.cycles

    @property
    def efficiency(self) -> float:
        """Fraction of ideal linear scaling achieved."""
        return self.speedup / self.banks


def run_multibank(inputs: Sequence[Sequence[int]], ntt: NttParams,
                  config: SimConfig | None = None) -> MultiBankResult:
    """Deprecated shim — use
    ``repro.api.Simulator(config).run(MultiBankRequest(...))``."""
    warn_deprecated("repro.sim.multibank.run_multibank",
                    "repro.api.Simulator.run(MultiBankRequest(...))")
    return _run_multibank(inputs, ntt, config)


def compile_multibank(ntt: NttParams, banks: int, config: SimConfig):
    """Compile the ``banks``-way interleaved program for one shape.

    Returns ``(programs, merged_stream, merged_key)``.  Everything is
    memoized (program / stream caches), so this doubles as the *warm-up*
    step the streaming ``run_many`` and the serving layer's worker pool
    run for group *k+1* while group *k* executes.
    """
    if banks < 1:
        raise ValueError("need at least one bank's worth of input")
    # Programs are memoized per (params, config, bank): repeated rounds
    # over the same shape (e.g. every RNS limb round) reuse the programs.
    programs = [cyclic_program(ntt, config.arch, config.pim, config.base_row,
                               k, config.mapper_options)
                for k in range(banks)]
    # The merged list's content is a pure function of the component
    # programs, so the merge recipe over their keys is an exact (and
    # cheap) shared-cache key — and the merge itself runs lazily, only
    # when the stream cache misses on that key.
    keys = [p.key for p in programs]
    merged_key = (("interleave", tuple(keys))
                  if all(k is not None for k in keys) else None)
    merged_stream = cached_stream(
        lambda: interleave_programs([p.commands for p in programs]),
        config.arch, key=merged_key)
    return programs, merged_stream, merged_key


def _run_multibank(inputs: Sequence[Sequence[int]], ntt: NttParams,
                   config: SimConfig | None = None) -> MultiBankResult:
    """Run ``len(inputs)`` independent NTTs, one per bank."""
    config = config or SimConfig()
    banks = len(inputs)
    programs, merged_stream, merged_key = compile_multibank(ntt, banks,
                                                            config)
    compute = config.pim.compute_timing()
    schedule = cached_schedule(merged_stream, config.timing, config.arch,
                               compute, config.energy, key=merged_key)
    single = cached_schedule(programs[0].commands, config.timing, config.arch,
                             compute, config.energy, key=programs[0].key)

    verified = False
    outputs: List[List[int]] = []
    bu_ops = 0
    if config.functional:
        # Banks are functionally independent, so each executes its own
        # per-bank compiled stream (cached per (params, config, bank))
        # — equivalent to replaying the round-robin merge command by
        # command, minus the interleaving overhead.
        bank_models = []
        for values, program in zip(inputs, programs):
            bank = PimBank(config.arch, config.pim)
            bank.set_parameters(ntt.q)
            bank.load_polynomial(config.base_row,
                                 bit_reverse_permute(list(values)))
            bank.run_stream(cached_stream(program.commands, config.arch,
                                          key=program.key))
            bank_models.append(bank)
        bu_ops = sum(bank.cu.bu_ops for bank in bank_models)
        outputs = [bank.read_polynomial(config.base_row, ntt.n)
                   for bank in bank_models]
        if config.verify:
            for values, got in zip(inputs, outputs):
                if got != reference_ntt(values, ntt):
                    raise FunctionalMismatch("multi-bank NTT result wrong")
            verified = True

    return MultiBankResult(banks=banks, schedule=schedule,
                           single_bank_cycles=single.total_cycles,
                           verified=verified, outputs=outputs, bu_ops=bu_ops)
