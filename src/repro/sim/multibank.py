"""Bank-level parallelism (Sec. VI.A / Conclusion).

FHE workloads run many independent NTTs (one per RNS limb / ciphertext
polynomial); the paper's architecture runs one per bank.  All banks
share the command bus (one command per cycle) while row/column timing
and the CUs are per-bank, so speedup is near-linear until the command
bus saturates — which this module lets us measure.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..arith.bitrev import bit_reverse_permute
from ..arith.roots import NttParams
from ..dram.commands import Command
from ..dram.engine import ScheduleResult, TimingEngine
from ..errors import FunctionalMismatch
from ..ntt.reference import ntt as reference_ntt
from ..pim.bank_pim import PimBank
from .driver import NttPimDriver, SimConfig

__all__ = ["interleave_programs", "MultiBankResult", "run_multibank"]


def interleave_programs(programs: Sequence[List[Command]]) -> List[Command]:
    """Round-robin merge of per-bank programs onto the shared bus.

    Dependency indices are rewritten from per-program to merged
    positions.  Round-robin models an MC draining per-bank queues
    fairly, which is what gives each bank steady command-bus share.
    """
    merged: List[Command] = []
    index_maps = [dict() for _ in programs]
    cursors = [0] * len(programs)
    remaining = sum(len(p) for p in programs)
    while remaining:
        for bank_idx, program in enumerate(programs):
            cur = cursors[bank_idx]
            if cur >= len(program):
                continue
            cmd = program[cur]
            new_deps = tuple(index_maps[bank_idx][d] for d in cmd.deps)
            merged.append(dataclasses.replace(cmd, deps=new_deps))
            index_maps[bank_idx][cur] = len(merged) - 1
            cursors[bank_idx] = cur + 1
            remaining -= 1
    return merged


@dataclasses.dataclass
class MultiBankResult:
    """Outcome of running one NTT per bank concurrently."""

    banks: int
    schedule: ScheduleResult
    single_bank_cycles: int
    verified: bool

    @property
    def cycles(self) -> int:
        return self.schedule.total_cycles

    @property
    def latency_us(self) -> float:
        return self.schedule.latency_us

    @property
    def speedup(self) -> float:
        """Throughput speedup over running the same work serially on one
        bank: (banks * T1) / T_parallel."""
        return self.banks * self.single_bank_cycles / self.cycles

    @property
    def efficiency(self) -> float:
        """Fraction of ideal linear scaling achieved."""
        return self.speedup / self.banks


def run_multibank(inputs: Sequence[Sequence[int]], ntt: NttParams,
                  config: SimConfig | None = None) -> MultiBankResult:
    """Run ``len(inputs)`` independent NTTs, one per bank."""
    config = config or SimConfig()
    banks = len(inputs)
    if banks < 1:
        raise ValueError("need at least one bank's worth of input")
    driver = NttPimDriver(config)
    # map_commands is memoized per (params, config, bank): repeated rounds
    # over the same shape (e.g. every RNS limb round) reuse the programs.
    programs = [driver.map_commands(ntt, bank=k) for k in range(banks)]
    merged = interleave_programs(programs)

    engine = TimingEngine(config.timing, config.arch,
                          compute=config.pim.compute_timing(),
                          energy=config.energy)
    schedule = engine.simulate(merged)
    single = engine.simulate(programs[0])

    verified = False
    if config.functional:
        bank_models = []
        for values in inputs:
            bank = PimBank(config.arch, config.pim)
            bank.set_parameters(ntt.q)
            bank.load_polynomial(config.base_row,
                                 bit_reverse_permute(list(values)))
            bank_models.append(bank)
        for cmd in merged:
            bank_models[cmd.bank].execute(cmd)
        if config.verify:
            for values, bank in zip(inputs, bank_models):
                got = bank.read_polynomial(config.base_row, ntt.n)
                if got != reference_ntt(values, ntt):
                    raise FunctionalMismatch("multi-bank NTT result wrong")
            verified = True

    return MultiBankResult(banks=banks, schedule=schedule,
                           single_bank_cycles=single.total_cycles,
                           verified=verified)
