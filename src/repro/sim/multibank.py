"""Bank-level parallelism (Sec. VI.A / Conclusion).

FHE workloads run many independent NTTs (one per RNS limb / ciphertext
polynomial); the paper's architecture runs one per bank.  All banks
share the command bus (one command per cycle) while row/column timing
and the CUs are per-bank, so speedup is near-linear until the command
bus saturates — which this module lets us measure.

The merge is *kind-generic*: a :class:`TransformSpec` names which
per-bank program every bank runs — forward or inverse cyclic NTT, or
the merged negacyclic transform — plus how its functional I/O is
staged (input permutation, host-side 1/N scale, golden reference).
That one abstraction is what lets the serving layer's batching
scheduler coalesce negacyclic and inverse traffic exactly like forward
cyclic NTTs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..arith.bitrev import bit_reverse_permute
from ..arith.roots import NttParams
from ..dram.commands import Command
from ..dram.engine import ScheduleResult
from ..dram.stream import cached_stream
from ..errors import FunctionalMismatch
from ..mapping.program_cache import (
    CachedProgram,
    cyclic_program,
    negacyclic_program,
    programs_recipe_key,
)
from ..ntt.negacyclic import NegacyclicParams
from ..ntt.reference import intt as reference_intt
from ..ntt.reference import ntt as reference_ntt
from ..pim.bank_pim import PimBank
from .driver import SimConfig, cached_schedule

__all__ = ["TransformSpec", "interleave_programs", "compile_multibank",
           "MultiBankResult"]


@dataclasses.dataclass(frozen=True)
class TransformSpec:
    """One per-bank transform kind of a multi-bank dispatch.

    ``kind`` is ``"ntt"`` (cyclic, ``params``) or ``"negacyclic"``
    (merged C1N mapping, ``ring``); ``inverse`` selects the inverse
    transform, whose final 1/N scale runs host-side exactly as in the
    standalone driver paths — so a merged dispatch stays bit-identical
    to per-request ``Simulator.run`` calls.
    """

    kind: str = "ntt"
    inverse: bool = False
    params: Optional[NttParams] = None
    ring: Optional[NegacyclicParams] = None

    @classmethod
    def of(cls, params_or_spec) -> "TransformSpec":
        """Normalize the legacy ``NttParams`` calling convention."""
        if isinstance(params_or_spec, TransformSpec):
            return params_or_spec
        return cls(kind="ntt", params=params_or_spec)

    @property
    def n(self) -> int:
        return self.ring.n if self.kind == "negacyclic" else self.params.n

    @property
    def q(self) -> int:
        return self.ring.q if self.kind == "negacyclic" else self.params.q

    # -- per-bank artifacts ------------------------------------------------------
    def program(self, config: SimConfig, bank: int) -> CachedProgram:
        """The (memoized) command program one bank runs."""
        if self.kind == "negacyclic":
            return negacyclic_program(self.ring, config.arch, config.pim,
                                      config.base_row, bank,
                                      inverse=self.inverse)
        ntt = self.params.inverse() if self.inverse else self.params
        return cyclic_program(ntt, config.arch, config.pim, config.base_row,
                              bank, config.mapper_options)

    def load_layout(self, values: Sequence[int]) -> List[int]:
        """Bank-resident input image (the Sec. IV.A host protocol leaves
        cyclic inputs bit-reversed; the merged negacyclic mapping takes
        natural order)."""
        if self.kind == "negacyclic":
            return [v % self.q for v in values]
        return bit_reverse_permute(list(values))

    def finalize(self, output: List[int]) -> List[int]:
        """Host-side epilogue: the inverse transforms' 1/N scale (the
        same pass the standalone driver paths apply)."""
        if not self.inverse:
            return output
        from ..arith.modmath import mod_scale_vec
        n_inv = (self.params.n_inv if self.kind == "ntt"
                 else self.cyclic_params.n_inv)
        return mod_scale_vec(output, n_inv, self.q)

    @property
    def cyclic_params(self) -> NttParams:
        """The cyclic parameter view (negacyclic rings embed one)."""
        return self.ring.cyclic if self.kind == "negacyclic" else self.params

    def expected(self, values: Sequence[int]) -> List[int]:
        """Golden model of one bank's *finalized* output."""
        if self.kind == "negacyclic":
            from ..ntt.merged import (
                merged_negacyclic_intt,
                merged_negacyclic_ntt,
            )
            golden = (merged_negacyclic_intt if self.inverse
                      else merged_negacyclic_ntt)
            return golden(values, self.ring)
        if self.inverse:
            return reference_intt(values, self.params)
        return reference_ntt(values, self.params)

    def describe(self) -> str:
        return f"{'inverse ' if self.inverse else ''}{self.kind}"


def interleave_programs(programs: Sequence[List[Command]]) -> List[Command]:
    """Round-robin merge of per-bank programs onto the shared bus.

    Dependency indices are rewritten from per-program to merged
    positions.  Round-robin models an MC draining per-bank queues
    fairly, which is what gives each bank steady command-bus share.
    """
    merged: List[Command] = []
    index_maps = [dict() for _ in programs]
    cursors = [0] * len(programs)
    remaining = sum(len(p) for p in programs)
    while remaining:
        for bank_idx, program in enumerate(programs):
            cur = cursors[bank_idx]
            if cur >= len(program):
                continue
            cmd = program[cur]
            new_deps = tuple(index_maps[bank_idx][d] for d in cmd.deps)
            merged.append(dataclasses.replace(cmd, deps=new_deps))
            index_maps[bank_idx][cur] = len(merged) - 1
            cursors[bank_idx] = cur + 1
            remaining -= 1
    return merged


@dataclasses.dataclass
class MultiBankResult:
    """Outcome of running one transform per bank concurrently."""

    banks: int
    schedule: ScheduleResult
    single_bank_cycles: int
    verified: bool
    #: Per-bank transform outputs (populated on functional runs).
    outputs: List[List[int]] = dataclasses.field(default_factory=list)
    #: Executed butterfly µ-ops across all banks (functional runs).
    bu_ops: int = 0

    @property
    def cycles(self) -> int:
        return self.schedule.total_cycles

    @property
    def latency_us(self) -> float:
        return self.schedule.latency_us

    @property
    def speedup(self) -> float:
        """Throughput speedup over running the same work serially on one
        bank: (banks * T1) / T_parallel."""
        return self.banks * self.single_bank_cycles / self.cycles

    @property
    def efficiency(self) -> float:
        """Fraction of ideal linear scaling achieved."""
        return self.speedup / self.banks


def normalize_specs(spec, banks: int) -> List[TransformSpec]:
    """Per-bank spec list from either calling convention.

    ``spec`` is one :class:`TransformSpec` (or bare ``NttParams``) every
    bank shares, or a sequence of per-bank specs — the mixed-kind
    dispatch shape (e.g. forward and inverse limbs of one shape
    interleaved in a single bus program).
    """
    if isinstance(spec, (list, tuple)):
        specs = [TransformSpec.of(s) for s in spec]
        if len(specs) != banks:
            raise ValueError(
                f"got {len(specs)} per-bank specs for {banks} banks")
        return specs
    return [TransformSpec.of(spec)] * banks


def compile_multibank(spec, banks: int, config: SimConfig, passes=None):
    """Compile the ``banks``-way interleaved program for one shape.

    ``spec`` is a :class:`TransformSpec` (or bare ``NttParams``, the
    legacy forward-cyclic spelling), or a per-bank spec sequence for
    mixed-kind dispatches.  Returns ``(programs, merged_stream,
    merged_key)``.  Everything is memoized (program / stream caches),
    so this doubles as the *warm-up* step the streaming ``run_many``
    and the serving layer's worker pool run for group *k+1* while group
    *k* executes.

    With the ``interleave`` pass enabled (the default) the merge runs
    as a vectorized index permutation over the per-bank IR columns
    (:func:`repro.compile.interleave_irs`); toggled off, the legacy
    per-command :func:`interleave_programs` ground truth runs.  Both
    produce bit-identical merged programs.
    """
    if banks < 1:
        raise ValueError("need at least one bank's worth of input")
    specs = normalize_specs(spec, banks)
    # Programs are memoized per (spec, config, bank): repeated rounds
    # over the same shape (e.g. every RNS limb round) reuse the programs.
    programs = [s.program(config, k) for k, s in enumerate(specs)]
    # The merged list's content is a pure function of the component
    # programs, so the merge recipe over their keys is an exact (and
    # cheap) shared-cache key — and the merge itself runs lazily, only
    # when the stream cache misses on that key.
    from ..compile.lower import interleave_irs
    from ..compile.passes import normalize_passes

    merged_key = programs_recipe_key("interleave", programs)
    if "interleave" in normalize_passes(passes):
        def merge():
            return interleave_irs([p.commands for p in programs])
    else:
        def merge():
            return interleave_programs([p.commands for p in programs])
    merged_stream = cached_stream(merge, config.arch, key=merged_key,
                                  passes=passes)
    return programs, merged_stream, merged_key


def _run_multibank(inputs: Sequence[Sequence[int]], spec,
                   config: SimConfig | None = None) -> MultiBankResult:
    """Run ``len(inputs)`` independent transforms, one per bank.

    ``spec`` may be a per-bank sequence (mixed kinds/inverse per bank);
    every bank's output stays bit-identical to its standalone run.
    """
    config = config or SimConfig()
    banks = len(inputs)
    specs = normalize_specs(spec, banks)
    programs, merged_stream, merged_key = compile_multibank(specs, banks,
                                                            config)
    compute = config.pim.compute_timing()
    schedule = cached_schedule(merged_stream, config.timing, config.arch,
                               compute, config.energy, key=merged_key)
    single = cached_schedule(programs[0].commands, config.timing, config.arch,
                             compute, config.energy, key=programs[0].key)

    verified = False
    outputs: List[List[int]] = []
    bu_ops = 0
    if config.functional:
        # Banks are functionally independent, so each executes its own
        # per-bank compiled stream (cached per (spec, config, bank))
        # — equivalent to replaying the round-robin merge command by
        # command, minus the interleaving overhead.
        bank_models = []
        for values, program, bspec in zip(inputs, programs, specs):
            bank = PimBank(config.arch, config.pim)
            bank.set_parameters(bspec.q)
            bank.load_polynomial(config.base_row, bspec.load_layout(values))
            bank.run_stream(cached_stream(program.commands, config.arch,
                                          key=program.key))
            bank_models.append(bank)
        bu_ops = sum(bank.cu.bu_ops for bank in bank_models)
        outputs = [bspec.finalize(
            bank.read_polynomial(program.result_base_row, bspec.n))
            for bank, program, bspec in zip(bank_models, programs, specs)]
        if config.verify:
            for values, got, bspec in zip(inputs, outputs, specs):
                if got != bspec.expected(values):
                    raise FunctionalMismatch(
                        f"multi-bank {bspec.describe()} result wrong")
            verified = True

    return MultiBankResult(banks=banks, schedule=schedule,
                           single_bank_cycles=single.total_cycles,
                           verified=verified, outputs=outputs, bu_ops=bu_ops)
