"""Front-end driver: the paper's Python MC model + functional checker.

Mirrors Sec. VI.A: the driver (a) lowers the NTT invocation into DRAM
commands via the mapping algorithm and (b) runs them through both the
functional bank model and the timing engine, verifying the data result
against the golden NTT while collecting cycles/energy.

Host protocol (Sec. IV.A): the input polynomial is already in memory in
bit-reversed order (bit reversal is the host's job, as in MeNTT and
CryptoPIM); the NTT request passes only (N, q, omega, address); the
result overwrites the input, in natural order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .._cache import ArtifactCache
from ..arith.bitrev import bit_reverse_permute
from ..arith.roots import NttParams
from ..dram.commands import Command
from ..dram.energy import EnergyParams, HBM2E_ENERGY
from ..dram.engine import TimingEngine
from ..dram.stream import CommandStream, cached_stream
from ..dram.timing import HBM2E_ARCH, HBM2E_TIMING, ArchParams, TimingParams
from ..errors import FunctionalMismatch
from ..mapping.mapper import MapperOptions, NttMapper
from ..mapping.program_cache import cyclic_program, negacyclic_program
from ..mapping.single_buffer import SingleBufferMapper
from ..ntt.merged import merged_negacyclic_intt, merged_negacyclic_ntt
from ..ntt.negacyclic import NegacyclicParams
from ..ntt.reference import ntt as reference_ntt
from ..pim.bank_pim import PimBank
from ..pim.params import PimParams
from .results import NttRunResult

__all__ = ["SimConfig", "NttPimDriver", "VERIFY_DEFAULT", "cached_schedule",
           "schedule_cache_info", "clear_schedule_cache"]


class _VerifyDefault:
    """Sentinel for :meth:`NttPimDriver.run_ntt_with_params`: verify the
    output against the golden reference NTT (the :meth:`run_ntt` path)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<verify against reference NTT>"


#: Default for ``verify_against``: check against the golden reference NTT.
#: Pass ``None`` to skip verification, or an explicit expected output list.
VERIFY_DEFAULT = _VerifyDefault()


# -- schedule cache ------------------------------------------------------------
# The timing engine is deterministic: the same command sequence under the
# same (timing, arch, compute, energy) parameters always produces the
# same schedule.  Keys are *structural*, never identity-based: either
# the command tuple's own content (commands are frozen dataclasses that
# hash and compare by value), or — cheaper — the generating-parameter
# key of a memoized program, which determines the command content
# exactly (that determinism is the premise of the program cache).  The
# batch and multi-bank mergers build fresh lists on every call, yet hit
# the same entries via keys derived from their components' keys.
# Cached ScheduleResults are shared between runs — treat them as
# immutable.  Thread-safe via the shared ArtifactCache (locked
# lookup/stats/eviction, simulation outside the lock, one canonical
# ScheduleResult per key).
_MAX_SCHEDULES = 128
_schedule_cache = ArtifactCache(_MAX_SCHEDULES)


def cached_schedule(commands, timing, arch, compute, energy, key=None):
    """Memoized stream-compiled ``TimingEngine`` simulation.

    ``commands`` is a command sequence or an already-compiled
    :class:`~repro.dram.stream.CommandStream`.  Cold lookups compile the
    program (via the shared stream cache) and run the engine's
    vectorized stream loop — bit-identical to ``simulate(commands)``.

    ``key`` is an exact stand-in for the command content (e.g. a
    :class:`~repro.mapping.program_cache.CachedProgram` key, or a merge
    recipe over such keys) that avoids hashing thousands of commands per
    lookup; when ``None``, the command tuple itself is the key.
    """
    if isinstance(commands, CommandStream):
        stream = commands
        # Only materialize Command objects when no structural key exists
        # (merge-built streams are lazy; the timing loop never needs them).
        content_key = key if key is not None else tuple(commands.commands)
    else:
        stream = None
        content_key = key if key is not None else tuple(commands)
    cache_key = (content_key, timing, arch, compute, energy)

    def simulate():
        compiled = (stream if stream is not None
                    else cached_stream(commands, arch, key=key))
        return TimingEngine(timing, arch, compute=compute,
                            energy=energy).simulate_stream(compiled)

    return _schedule_cache.get_or_create(cache_key, simulate)


# Backwards-compatible internal alias (pre-facade name).
_cached_schedule = cached_schedule


def schedule_cache_info() -> dict:
    """Schedule-cache statistics (mirrors
    :func:`repro.mapping.program_cache.program_cache_info`)."""
    return _schedule_cache.info()


def clear_schedule_cache() -> None:
    """Empty the schedule cache and reset statistics (test isolation)."""
    _schedule_cache.clear()


@dataclass(frozen=True)
class SimConfig:
    """Full configuration of one simulated PIM bank."""

    arch: ArchParams = HBM2E_ARCH
    timing: TimingParams = HBM2E_TIMING
    pim: PimParams = field(default_factory=PimParams)
    energy: EnergyParams = HBM2E_ENERGY
    base_row: int = 0
    verify: bool = True
    functional: bool = True   # set False for timing-only sweeps (faster)
    mapper_options: MapperOptions = MapperOptions()

    def at_frequency(self, freq_mhz: float) -> "SimConfig":
        """Fig. 8 helper: same machine at a different clock."""
        return SimConfig(arch=self.arch, timing=self.timing.retimed(freq_mhz),
                         pim=self.pim, energy=self.energy,
                         base_row=self.base_row, verify=self.verify,
                         functional=self.functional,
                         mapper_options=self.mapper_options)


class NttPimDriver:
    """Runs NTT invocations against a simulated PIM bank.

    This is the engine room of the facade layer: :class:`repro.api.Simulator`
    is the supported public entry point, and dispatches into the private
    ``_run_*`` implementations here (the PR 2 ``run_*`` deprecation
    shims are gone).
    """

    def __init__(self, config: Optional[SimConfig] = None):
        self.config = config or SimConfig()

    def make_mapper(self, ntt: NttParams, bank: int = 0):
        """The mapper matching this configuration."""
        cfg = self.config
        if cfg.pim.nb_buffers == 1:
            return SingleBufferMapper(ntt, cfg.arch, cfg.pim,
                                      cfg.base_row, bank)
        return NttMapper(ntt, cfg.arch, cfg.pim, cfg.base_row, bank,
                         options=cfg.mapper_options)

    def _program(self, ntt: NttParams, bank: int = 0):
        """The (memoized) command program for this configuration."""
        cfg = self.config
        return cyclic_program(ntt, cfg.arch, cfg.pim, cfg.base_row, bank,
                              cfg.mapper_options)

    def map_commands(self, ntt: NttParams, bank: int = 0) -> List[Command]:
        """Lower one NTT invocation to a command program (cached — the
        program is a pure function of the parameters and configuration)."""
        return list(self._program(ntt, bank).commands)

    def _run_ntt(self, values: Sequence[int], ntt: NttParams) -> NttRunResult:
        """Simulate one forward NTT of ``values`` (natural order).

        Returns timing, energy and the transformed data; raises
        :class:`FunctionalMismatch` if the PIM result disagrees with the
        golden model (when ``verify`` is on).
        """
        cfg = self.config
        if len(values) != ntt.n:
            raise ValueError(f"expected {ntt.n} values, got {len(values)}")
        program = self._program(ntt)
        commands = program.commands
        stream = cached_stream(commands, cfg.arch, key=program.key)

        schedule = cached_schedule(stream, cfg.timing, cfg.arch,
                                   cfg.pim.compute_timing(), cfg.energy,
                                   key=program.key)

        output: List[int] = []
        verified = False
        bu_ops = 0
        if cfg.functional:
            bank = PimBank(cfg.arch, cfg.pim)
            bank.set_parameters(ntt.q)
            # Host-side bit reversal, then data is "already in memory".
            bank.load_polynomial(cfg.base_row, bit_reverse_permute(list(values)))
            bank.run_stream(stream)
            output = bank.read_polynomial(program.result_base_row, ntt.n)
            bu_ops = bank.cu.bu_ops
            if cfg.verify:
                expected = reference_ntt(values, ntt)
                if output != expected:
                    raise FunctionalMismatch(
                        f"PIM NTT result wrong for N={ntt.n}, "
                        f"Nb={cfg.pim.nb_buffers}")
                verified = True

        return NttRunResult(
            n=ntt.n, q=ntt.q, nb_buffers=cfg.pim.nb_buffers,
            output=output, schedule=schedule, verified=verified,
            command_count=len(commands), bu_ops=bu_ops)

    def _run_negacyclic_ntt(self, values: Sequence[int],
                            ring: NegacyclicParams,
                            inverse: bool = False) -> NttRunResult:
        """Native merged negacyclic transform (extension; see
        :mod:`repro.mapping.negacyclic_mapper`).

        Natural-order input, NTT-domain output (forward); the inverse
        returns natural order *before* the 1/N scale, which the caller
        (or :meth:`run_negacyclic_intt`) applies host-side.
        """
        cfg = self.config
        if len(values) != ring.n:
            raise ValueError(f"expected {ring.n} values, got {len(values)}")
        program = negacyclic_program(ring, cfg.arch, cfg.pim, cfg.base_row,
                                     inverse=inverse)
        commands = program.commands
        stream = cached_stream(commands, cfg.arch, key=program.key)
        schedule = cached_schedule(stream, cfg.timing, cfg.arch,
                                   cfg.pim.compute_timing(), cfg.energy,
                                   key=program.key)
        output: List[int] = []
        verified = False
        bu_ops = 0
        if cfg.functional:
            bank = PimBank(cfg.arch, cfg.pim)
            bank.set_parameters(ring.q)
            bank.load_polynomial(cfg.base_row, [v % ring.q for v in values])
            bank.run_stream(stream)
            output = bank.read_polynomial(program.result_base_row, ring.n)
            bu_ops = bank.cu.bu_ops
            if cfg.verify:
                if inverse:
                    expected = [(v * ring.n) % ring.q for v in
                                merged_negacyclic_intt(values, ring)]
                else:
                    expected = merged_negacyclic_ntt(values, ring)
                if output != expected:
                    raise FunctionalMismatch(
                        f"PIM negacyclic NTT wrong for N={ring.n}")
                verified = True
        return NttRunResult(
            n=ring.n, q=ring.q, nb_buffers=cfg.pim.nb_buffers,
            output=output, schedule=schedule, verified=verified,
            command_count=len(commands), bu_ops=bu_ops)

    def _run_negacyclic_intt(self, values: Sequence[int],
                             ring: NegacyclicParams) -> NttRunResult:
        """Inverse merged transform including the host-side 1/N scale."""
        from ..arith.modmath import mod_inverse, mod_scale_vec
        result = self._run_negacyclic_ntt(values, ring, inverse=True)
        n_inv = mod_inverse(ring.n, ring.q)
        result.output = mod_scale_vec(result.output, n_inv, ring.q)
        return result

    def _run_intt(self, values: Sequence[int], ntt: NttParams) -> NttRunResult:
        """Inverse transform: same machine, inverse twiddles; the final
        1/N scaling is an element-wise pass the host (or an FHE pipeline's
        next element-wise stage) absorbs — as in the compared works."""
        from ..arith.modmath import mod_scale_vec
        result = self._run_ntt_with_params(values, ntt.inverse(),
                                           verify_against=None)
        result.output = mod_scale_vec(result.output, ntt.n_inv, ntt.q)
        return result

    def _run_ntt_with_params(
            self, values: Sequence[int], ntt: NttParams,
            verify_against: Optional[List[int]] | _VerifyDefault = VERIFY_DEFAULT,
    ) -> NttRunResult:
        """Like :meth:`_run_ntt` but with custom verification data.

        ``verify_against`` is :data:`VERIFY_DEFAULT` (check against the
        golden reference NTT), ``None`` (skip verification), or the
        explicit expected output.
        """
        cfg = self.config
        if verify_against is VERIFY_DEFAULT or (
                isinstance(verify_against, str) and verify_against == "default"):
            # The string is the legacy spelling of the sentinel; honour it
            # rather than treating it as expected-output data.
            return self._run_ntt(values, ntt)
        program = self._program(ntt)
        commands = program.commands
        stream = cached_stream(commands, cfg.arch, key=program.key)
        schedule = cached_schedule(stream, cfg.timing, cfg.arch,
                                   cfg.pim.compute_timing(), cfg.energy,
                                   key=program.key)
        output: List[int] = []
        bu_ops = 0
        verified = False
        if cfg.functional:
            bank = PimBank(cfg.arch, cfg.pim)
            bank.set_parameters(ntt.q)
            bank.load_polynomial(cfg.base_row, bit_reverse_permute(list(values)))
            bank.run_stream(stream)
            output = bank.read_polynomial(program.result_base_row, ntt.n)
            bu_ops = bank.cu.bu_ops
            if verify_against is not None:
                if output != verify_against:
                    raise FunctionalMismatch("PIM result mismatch")
                verified = True
        return NttRunResult(
            n=ntt.n, q=ntt.q, nb_buffers=cfg.pim.nb_buffers,
            output=output, schedule=schedule, verified=verified,
            command_count=len(commands), bu_ops=bu_ops)
