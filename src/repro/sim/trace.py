"""Command-trace export — the "DRAM cmd seq" of the paper's Fig. 1.

Serializes a command program (optionally with its simulated timing) in
a DRAMsim3-style text format, one command per line, so schedules can be
diffed, inspected, or replayed by external tools.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Sequence

from ..dram.commands import Command
from ..dram.engine import CommandTiming

__all__ = ["format_trace", "parse_trace_line", "trace_summary"]


def format_trace(commands: Sequence[Command],
                 timings: Optional[Sequence[CommandTiming]] = None) -> str:
    """Render a command program as text.

    With timings, each line is prefixed by the issue cycle::

        123  bank0  CU_READ r5 c3 b1
    """
    if timings is not None and len(timings) != len(commands):
        raise ValueError("timings and commands differ in length")
    if timings is None:
        return "\n".join(f"bank{cmd.bank}  {cmd.describe()}"
                         for cmd in commands)
    return "\n".join(f"{t.issue:>10}  bank{cmd.bank}  {cmd.describe()}"
                     for cmd, t in zip(commands, timings))


def parse_trace_line(line: str) -> dict:
    """Parse one (untimed or timed) trace line back into fields."""
    parts = line.split()
    if not parts:
        raise ValueError("empty trace line")
    cursor = 0
    issue = None
    if parts[0].isdigit():
        issue = int(parts[0])
        cursor = 1
    if not parts[cursor].startswith("bank"):
        raise ValueError(f"malformed trace line: {line!r}")
    bank = int(parts[cursor][4:])
    op = parts[cursor + 1]
    fields = {"issue": issue, "bank": bank, "op": op}
    for token in parts[cursor + 2:]:
        if token.startswith("r") and token[1:].isdigit():
            fields["row"] = int(token[1:])
        elif token.startswith("c") and token[1:].isdigit():
            fields["col"] = int(token[1:])
        elif token.startswith("b") and token[1:].replace(",", "").isdigit():
            fields.setdefault("bufs", []).append(token)
    return fields


def trace_summary(commands: Iterable[Command]) -> str:
    """One-line histogram of a program's command mix."""
    counts = Counter(cmd.ctype.value for cmd in commands)
    body = ", ".join(f"{name}={count}"
                     for name, count in counts.most_common())
    return f"{sum(counts.values())} commands: {body}"
