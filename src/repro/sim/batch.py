"""Batched NTT execution in one bank (extension).

An FHE ciphertext operation needs many NTTs; besides spreading them over
banks (:mod:`repro.sim.multibank`), a single bank can run them
back-to-back.  Batching amortizes the parameter write and lets the MC
overlap the tail of one transform with the head of the next (the final
PRE of polynomial *i* and the first reads of polynomial *i+1* pipeline
on the bus).  :func:`run_batch` measures steady-state throughput per
transform vs the single-shot latency.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence

from ..arith.bitrev import bit_reverse_permute
from ..arith.roots import NttParams
from ..dram.commands import Command, CommandType
from ..dram.engine import ScheduleResult, TimingEngine
from ..errors import FunctionalMismatch
from ..mapping.program_cache import cyclic_program
from ..ntt.reference import ntt as reference_ntt
from ..pim.bank_pim import PimBank
from .driver import SimConfig

__all__ = ["BatchResult", "concat_programs", "run_batch"]


def concat_programs(programs: Sequence[List[Command]],
                    skip_leading_param: bool = True) -> List[Command]:
    """Concatenate per-polynomial programs with dependency re-indexing.

    With ``skip_leading_param`` the PARAM_WRITE of every program after
    the first is dropped — the modulus registers are already loaded.
    """
    merged: List[Command] = []
    for prog_index, program in enumerate(programs):
        offset_map = {}
        for i, cmd in enumerate(program):
            if (skip_leading_param and prog_index > 0 and i == 0
                    and cmd.ctype is CommandType.PARAM_WRITE):
                continue
            new_deps = tuple(offset_map[d] for d in cmd.deps
                             if d in offset_map)
            merged.append(dataclasses.replace(cmd, deps=new_deps))
            offset_map[i] = len(merged) - 1
    return merged


@dataclass
class BatchResult:
    """Timing of a back-to-back batch in one bank."""

    count: int
    schedule: ScheduleResult
    single_cycles: int
    verified: bool

    @property
    def cycles(self) -> int:
        return self.schedule.total_cycles

    @property
    def cycles_per_transform(self) -> float:
        return self.cycles / self.count

    @property
    def amortization(self) -> float:
        """single-shot cycles / steady-state cycles-per-transform
        (>1 means batching helps)."""
        return self.single_cycles / self.cycles_per_transform


def run_batch(inputs: Sequence[Sequence[int]], params: NttParams,
              config: SimConfig | None = None) -> BatchResult:
    """Run ``len(inputs)`` NTTs back-to-back in one bank.

    Each polynomial occupies its own row region so results stay resident
    (an FHE pipeline reads them later).
    """
    config = config or SimConfig()
    count = len(inputs)
    if count < 1:
        raise ValueError("need at least one polynomial")
    rows_each = max(1, params.n // config.arch.words_per_row)
    # Per-slot programs differ only in base row; each is memoized, so a
    # repeated batch (or a bigger batch reusing earlier slots) maps for free.
    programs = [
        list(cyclic_program(params, config.arch, config.pim,
                            config.base_row + i * rows_each,
                            options=config.mapper_options).commands)
        for i in range(count)
    ]
    merged = concat_programs(programs)

    engine = TimingEngine(config.timing, config.arch,
                          compute=config.pim.compute_timing(),
                          energy=config.energy)
    schedule = engine.simulate(merged)
    single = engine.simulate(programs[0])

    verified = False
    if config.functional:
        bank = PimBank(config.arch, config.pim)
        bank.set_parameters(params.q)
        for i, values in enumerate(inputs):
            bank.load_polynomial(config.base_row + i * rows_each,
                                 bit_reverse_permute(list(values)))
        bank.run(merged)
        if config.verify:
            for i, values in enumerate(inputs):
                got = bank.read_polynomial(config.base_row + i * rows_each,
                                           params.n)
                if got != reference_ntt(values, params):
                    raise FunctionalMismatch(f"batch element {i} wrong")
            verified = True
    return BatchResult(count=count, schedule=schedule,
                       single_cycles=single.total_cycles, verified=verified)
